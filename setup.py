"""Legacy setup shim.

The primary metadata lives in ``pyproject.toml``; this file exists so the
package can be installed editable on minimal offline environments where
the ``wheel`` package (required by PEP 660 editable installs) is absent:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
