"""Extension experiment: TVLA leakage assessment of the three styles.

The paper demonstrates resistance by showing a *specific* attack (CPA)
fails.  Modern evaluation practice adds the non-specific fixed-vs-random
Welch t-test, which detects any first-order dependence without needing a
key hypothesis.  The expected (and obtained) nuance:

* CMOS fails TVLA immediately and by a wide margin;
* MCML and PG-MCML also exceed the 4.5 threshold at a few hundred
  traces — their mismatch residual *is* first-order leakage, just a
  thousandfold smaller — while the CPA of Fig. 6 still cannot turn it
  into a key.  This matches the later literature's consensus that MCML
  reduces, but does not eliminate, information leakage.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional

from ..cells import (
    build_cmos_library,
    build_mcml_library,
    build_pg_mcml_library,
)
from ..power import MeasurementChain
from ..sca import TVLA_THRESHOLD, fixed_vs_random_tvla
from ..sca.attack import build_reduced_aes
from ..obs import default_telemetry
from .runner import CheckpointedRun, print_table


@dataclass
class TVLAStyleRow:
    style: str
    n_traces: int
    max_abs_t: float
    leaks: bool
    n_leaking_samples: int
    max_abs_delta: float = 0.0


@dataclass
class TVLAExperiment:
    rows: List[TVLAStyleRow]
    key: int

    def row(self, style: str) -> TVLAStyleRow:
        for r in self.rows:
            if r.style == style:
                return r
        raise KeyError(style)

    def cmos_margin_over_mcml(self) -> float:
        """Amplitude ratio: how much larger the exploitable CMOS signal
        is than the MCML mismatch residual."""
        return self.row("cmos").max_abs_delta / max(
            self.row("mcml").max_abs_delta, 1e-15)


def run(key: int = 0x2B, n_traces: int = 128,
        chain: Optional[MeasurementChain] = None,
        checkpoint_dir: Optional[str] = None,
        chunk_size: int = 32,
        workers: int = 1,
        backend: str = "auto",
        telemetry=None) -> TVLAExperiment:
    """Assess all three styles with fixed-vs-random TVLA.

    ``checkpoint_dir`` makes each per-style acquisition resumable
    (snapshots at ``<dir>/tvla_<style>.npz`` every ``chunk_size``
    traces); a killed assessment restarted with the same directory
    resumes and yields identical t statistics.  ``workers`` spreads
    each acquisition over a worker pool with byte-identical traces.
    """
    rows: List[TVLAStyleRow] = []
    for build in (build_cmos_library, build_mcml_library,
                  build_pg_mcml_library):
        library = build()
        netlist, _ = build_reduced_aes(library)
        runner = None
        if checkpoint_dir is not None:
            runner = CheckpointedRun(
                os.path.join(checkpoint_dir, f"tvla_{library.style}.npz"),
                chunk_size=chunk_size, telemetry=telemetry)
        result = fixed_vs_random_tvla(netlist, key=key, n_traces=n_traces,
                                      chain=chain, runner=runner,
                                      workers=workers, backend=backend,
                                      telemetry=telemetry)
        rows.append(TVLAStyleRow(
            style=library.style, n_traces=n_traces,
            max_abs_t=result.max_abs_t, leaks=result.leaks,
            n_leaking_samples=len(result.leaking_samples()),
            max_abs_delta=result.max_abs_delta))
    return TVLAExperiment(rows=rows, key=key)


def detection_threshold(style_builder, key: int = 0x2B,
                        counts=(16, 32, 64, 128, 256),
                        chain: Optional[MeasurementChain] = None,
                        workers: int = 1,
                        backend: str = "auto") -> Optional[int]:
    """Smallest trace count at which TVLA first flags the style."""
    library = style_builder()
    netlist, _ = build_reduced_aes(library)
    for n in counts:
        result = fixed_vs_random_tvla(netlist, key=key, n_traces=n,
                                      chain=chain, workers=workers,
                                      backend=backend)
        if result.leaks:
            return n
    return None


def main(key: int = 0x2B, n_traces: int = 128,
         telemetry=None) -> TVLAExperiment:
    tele = telemetry if telemetry is not None else default_telemetry()
    experiment = run(key=key, n_traces=n_traces, telemetry=telemetry)
    tele.progress(f"TVLA (fixed-vs-random Welch t-test), {n_traces} traces, "
                  f"threshold |t| > {TVLA_THRESHOLD}")
    print_table(
        [[r.style.upper(), f"{r.max_abs_t:.2f}",
          "LEAKS" if r.leaks else "passes",
          str(r.n_leaking_samples),
          f"{r.max_abs_delta * 1e6:.3g}"] for r in experiment.rows],
        ["Style", "max |t|", "verdict", "leaking samples",
         "amplitude [uA]"], emit=tele.progress)
    tele.progress("\ndetection thresholds (traces to first |t| > 4.5):")
    for build in (build_cmos_library, build_mcml_library,
                  build_pg_mcml_library):
        n = detection_threshold(build, key=key)
        name = build().style.upper()
        tele.progress(f"  {name:8s}: {n if n is not None else '>256'}")
    tele.progress("\nnon-specific leakage exists in every style (mismatch "
                  "is physics); only the CMOS leakage is large enough for "
                  "the Fig. 6 CPA to exploit.")
    return experiment


if __name__ == "__main__":
    main()
