"""Protection-scope study: S-box ISE vs a fully protected AES core.

§2 motivates the ISE approach: "to minimize the area and the cost
overhead due to MCML gates, researchers considered to use them only for
critical cryptographic operations and to realize the rest of the design
with static CMOS".  This experiment quantifies the alternative the paper
chose not to build — an entire AES-128 round core in PG-MCML — against
the paper's S-box ISE:

* **area** — the full core carries 16 S-boxes, the key schedule and
  256 register bits in the expensive differential fabric (~7x the ISE);
* **power** — both sleep between uses, so average power stays micro-watt
  class either way; the full core's wake windows are longer (11 cycles
  per block vs 1 per instruction);
* **security scope** — the ISE protects SubBytes only: every other AES
  step executes on the unprotected CMOS processor, where its (linear)
  intermediates still leak.  The full core hides the entire cipher.

The paper's trade (small protected island + software) is vindicated on
cost; the study shows what buying complete coverage would take.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..cells import build_pg_mcml_library
from ..cpu import aes_firmware
from ..power import BlockPowerModel
from ..synth import build_aes_core, build_sbox_ise, report_block
from ..units import ns
from ..obs import default_telemetry
from .runner import print_table
from .table3 import CLOCK_PERIOD

#: Cycles the full core is awake per encrypted block (load + 10 rounds
#: plus one insertion-delay guard).
CORE_AWAKE_CYCLES_PER_BLOCK = 12


@dataclass
class ScopeRow:
    approach: str
    cells: int
    area_um2: float
    delay_ns: float
    avg_power_w: float
    protected_fraction: str


@dataclass
class ScopeResult:
    rows: List[ScopeRow]
    blocks_per_second: float

    def row(self, approach: str) -> ScopeRow:
        for r in self.rows:
            if r.approach == approach:
                return r
        raise KeyError(approach)

    def area_ratio(self) -> float:
        return (self.row("full PG-MCML core").area_um2
                / self.row("PG-MCML S-box ISE").area_um2)


def run(blocks_per_second: float = 1000.0) -> ScopeResult:
    """Compare the two protection scopes at a given encryption rate.

    ``blocks_per_second`` sets the duty for both options (a smart-card
    authenticating once a millisecond).
    """
    library = build_pg_mcml_library()

    ise = build_sbox_ise(library)
    core = build_aes_core(library)
    ise_report = report_block(ise.netlist)
    core_report = report_block(core.netlist)

    # ISE: 40 l.sbox cycles per block (firmware-measured), one cycle each.
    firmware = aes_firmware(n_blocks=1, use_ise=True)
    _, stats = firmware.run(bytes(16), [bytes(16)])
    ise_awake = stats.sbox_cycles * 3 * CLOCK_PERIOD * blocks_per_second
    ise_awake = min(ise_awake, 1.0)
    core_awake = min(CORE_AWAKE_CYCLES_PER_BLOCK * CLOCK_PERIOD
                     * blocks_per_second, 1.0)

    rows: List[ScopeRow] = []
    for approach, report, netlist, awake, scope in (
        ("PG-MCML S-box ISE", ise_report, ise.netlist, ise_awake,
         "SubBytes only (rest runs on unprotected CMOS)"),
        ("full PG-MCML core", core_report, core.netlist, core_awake,
         "entire cipher incl. key schedule"),
    ):
        model = BlockPowerModel(netlist)
        vdd = model.tech.vdd
        power = vdd * (model.static_current() * awake
                       + model.static_current(asleep=True) * (1 - awake))
        rows.append(ScopeRow(
            approach=approach, cells=report.cells,
            area_um2=report.core_area_um2, delay_ns=report.delay_ns,
            avg_power_w=power, protected_fraction=scope))
    return ScopeResult(rows=rows, blocks_per_second=blocks_per_second)


def main(blocks_per_second: float = 1000.0,
         telemetry=None) -> ScopeResult:
    tele = telemetry if telemetry is not None else default_telemetry()
    result = run(blocks_per_second)
    tele.progress(f"Protection scope at {result.blocks_per_second:,.0f} "
                  f"encryptions/s (400 MHz core)")
    print_table(
        [[r.approach, str(r.cells), f"{r.area_um2:,.0f}",
          f"{r.delay_ns:.3f}", f"{r.avg_power_w * 1e6:,.3g}",
          r.protected_fraction] for r in result.rows],
        ["approach", "cells", "area [um2]", "crit [ns]", "P [uW]",
         "protected scope"], emit=tele.progress)
    tele.progress(f"\nfull-cipher protection costs "
                  f"{result.area_ratio():.1f}x the ISE's differential "
                  f"area — the paper's 'critical operations only' trade, "
                  f"quantified.")
    return result


if __name__ == "__main__":
    main()
