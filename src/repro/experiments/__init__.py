"""Experiment drivers: one module per table/figure of the paper.

Every module exposes ``run(...)`` returning a result dataclass and a
``main()`` that prints the paper-style table; the ``benchmarks/``
directory wraps these in pytest-benchmark targets, and EXPERIMENTS.md
records paper-vs-measured for each.

=========  ===========================================  ==================
module     paper artefact                               headline check
=========  ===========================================  ==================
table1     Table 1 (+ §4 ~6 % overhead claim)           +5.6 % area/cell
table2     Table 2 (+ §5 1.6x CMOS ratio claim)         ratio ~1.6x
table3     Table 3 (+ §6 power-reduction claims)        PG ~ duty * MCML
fig3       Fig. 3 delay/area-delay vs tail current      optimum ~50 uA
fig5       Fig. 5 gated vs ungated current waveform     ~10^3-10^4 gap
fig6       Fig. 6 CPA outcome per style                 CMOS breaks only
ablation   Fig. 2 topology study + Vt assignment (§4/5) (d) wins
=========  ===========================================  ==================
"""

from . import (
    ablation,
    fig3,
    fig5,
    fig6,
    matrix,
    related,
    scope,
    software_attack,
    table1,
    table2,
    table3,
    tvla,
)
from .runner import ExperimentRecord, print_table

__all__ = [
    "table1",
    "table2",
    "table3",
    "fig3",
    "fig5",
    "fig6",
    "ablation",
    "tvla",
    "matrix",
    "related",
    "scope",
    "software_attack",
    "ExperimentRecord",
    "print_table",
]
