"""Fig. 3: buffer delay and area-delay trade-off vs tail current.

(a) transistor-level delay of the MCML buffer/inverter driving FO1 and
FO4 loads across the Iss design space — delay improves roughly as 1/Iss
and saturates at high currents ("increasing the bias current above
250 µA provides a limited speed improvement");

(b) power-delay and area-delay products — the area-delay optimum the
paper picks sits near 50 µA, which is where the whole library is biased.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..cells import (
    McmlCellGenerator,
    characterize_mcml_cell,
    function,
    solve_bias,
)
from ..tech import TECH90
from ..units import uA
from ..obs import default_telemetry
from .runner import print_table

#: Default sweep points, amperes.
DEFAULT_SWEEP = tuple(uA(x) for x in (10, 20, 35, 50, 75, 100, 150, 250, 400))

#: Buffer area model vs tail current: the X1 layout (5 sites, 7.448 µm²
#: with sleep) is sized for 50 µA; the pair/tail/load widths scale with
#: Iss while the pins, rails, and well overhead do not.
AREA_FIXED_FRACTION = 0.6
AREA_AT_50UA_UM2 = 7.448


def buffer_area_um2(iss: float) -> float:
    """First-order buffer layout area as a function of tail current."""
    scale = iss / uA(50)
    return AREA_AT_50UA_UM2 * (AREA_FIXED_FRACTION
                               + (1.0 - AREA_FIXED_FRACTION) * scale)


@dataclass
class Fig3Point:
    iss: float
    delay_fo1: float
    delay_fo4: float
    swing: float
    area_um2: float

    @property
    def power_w(self) -> float:
        return TECH90.vdd * self.iss

    @property
    def pdp_fo4(self) -> float:
        """Power-delay product (J) at FO4."""
        return self.power_w * self.delay_fo4

    @property
    def adp_fo4(self) -> float:
        """Area-delay product (µm²·s) at FO4."""
        return self.area_um2 * self.delay_fo4


@dataclass
class Fig3Result:
    points: List[Fig3Point]

    def optimum_iss(self) -> float:
        """Tail current minimising the FO4 area-delay product."""
        return min(self.points, key=lambda p: p.adp_fo4).iss

    def delay_saturation_ratio(self) -> float:
        """Speedup left between 250 µA and the highest simulated Iss."""
        pts = sorted(self.points, key=lambda p: p.iss)
        at_250 = min(pts, key=lambda p: abs(p.iss - uA(250)))
        fastest = pts[-1]
        return at_250.delay_fo4 / fastest.delay_fo4


def run(sweep: Sequence[float] = DEFAULT_SWEEP) -> Fig3Result:
    points: List[Fig3Point] = []
    fn = function("BUF")
    for iss in sweep:
        bias = solve_bias(iss)
        generator = McmlCellGenerator(sizing=bias.sizing)
        fo1 = characterize_mcml_cell(fn, generator, fanout=1)
        fo4 = characterize_mcml_cell(fn, generator, fanout=4)
        points.append(Fig3Point(
            iss=iss, delay_fo1=fo1.delay, delay_fo4=fo4.delay,
            swing=fo1.swing, area_um2=buffer_area_um2(iss)))
    return Fig3Result(points=points)


def main(sweep: Sequence[float] = DEFAULT_SWEEP,
         telemetry=None) -> Fig3Result:
    tele = telemetry if telemetry is not None else default_telemetry()
    result = run(sweep)
    rows = []
    for p in result.points:
        rows.append([
            f"{p.iss * 1e6:.0f}",
            f"{p.delay_fo1 * 1e12:.2f}", f"{p.delay_fo4 * 1e12:.2f}",
            f"{p.swing:.3f}", f"{p.area_um2:.3f}",
            f"{p.pdp_fo4 * 1e15:.3f}", f"{p.adp_fo4 * 1e18:.3f}",
        ])
    tele.progress("Fig. 3: MCML buffer design space vs tail current")
    print_table(rows, ["Iss[uA]", "tFO1[ps]", "tFO4[ps]", "swing[V]",
                       "area[um2]", "PDP[fJ]", "ADP[um2*as]"],
                emit=tele.progress)
    tele.progress(f"area-delay optimum: {result.optimum_iss() * 1e6:.0f} uA "
                  f"(paper: ~50 uA)")
    tele.progress(f"delay left above 250 uA: "
                  f"{(result.delay_saturation_ratio() - 1) * 100:.1f}% "
                  f"(paper: 'limited improvement')")
    return result


if __name__ == "__main__":
    main()
