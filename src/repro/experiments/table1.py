"""Table 1: layout area of conventional MCML vs PG-MCML cells.

Also checks §4's prose claim: "on average, the cells with sleep
transistor are approximately 6 % larger than conventional MCML gates."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..cells import LayoutModel
from ..cells.library import PG_MCML_CELL_NAMES
from ..obs import default_telemetry
from .runner import print_table

#: The published Table 1 rows: cell -> (MCML µm², PG-MCML µm²).
PAPER_TABLE1: Dict[str, Tuple[float, float]] = {
    "BUF": (7.056, 7.448),
    "MUX4": (19.7568, 20.8544),
    "AND4": (16.9344, 17.8752),
    "DLATCH": (8.4672, 8.9376),
}

#: Paper cell names as printed (for the report).
DISPLAY_NAMES = {"BUF": "BUFX1", "MUX4": "MUX4X1", "AND4": "AND4X1",
                 "DLATCH": "DLX1"}


@dataclass
class Table1Result:
    rows: List[Tuple[str, float, float, float, float]]  # name, m, pg, pm, ppg
    mean_overhead_pct: float
    library_mean_overhead_pct: float

    def max_abs_error_um2(self) -> float:
        worst = 0.0
        for _, m, pg, pm, ppg in self.rows:
            worst = max(worst, abs(m - pm), abs(pg - ppg))
        return worst


def run() -> Table1Result:
    mcml = LayoutModel("mcml")
    pg = LayoutModel("pgmcml")
    rows = []
    overheads = []
    for name, (paper_m, paper_pg) in PAPER_TABLE1.items():
        area_m = mcml.area_um2(name)
        area_pg = pg.area_um2(name)
        rows.append((DISPLAY_NAMES[name], area_m, area_pg, paper_m, paper_pg))
        overheads.append(area_pg / area_m - 1.0)
    mean_overhead = 100.0 * sum(overheads) / len(overheads)

    # The §4 claim averages over the whole library, not just Table 1.
    lib_overheads = [pg.area_um2(n) / mcml.area_um2(n) - 1.0
                     for n in PG_MCML_CELL_NAMES]
    lib_mean = 100.0 * sum(lib_overheads) / len(lib_overheads)
    return Table1Result(rows=rows, mean_overhead_pct=mean_overhead,
                        library_mean_overhead_pct=lib_mean)


def main(telemetry=None) -> Table1Result:
    tele = telemetry if telemetry is not None else default_telemetry()
    result = run()
    tele.progress("Table 1: area of conventional MCML vs PG-MCML cells "
                  "(90 nm)")
    print_table(
        [[name, f"{m:.4f}", f"{pg:.4f}", f"{pm:.4f}", f"{ppg:.4f}"]
         for name, m, pg, pm, ppg in result.rows],
        ["Cell", "MCML [um2]", "PG-MCML [um2]", "paper MCML", "paper PG"],
        emit=tele.progress)
    tele.progress(f"mean sleep-transistor area overhead (Table 1 cells): "
                  f"{result.mean_overhead_pct:.2f}%  (paper: ~6%)")
    tele.progress(f"mean overhead over all 16 library cells: "
                  f"{result.library_mean_overhead_pct:.2f}%")
    return result


if __name__ == "__main__":
    main()
