"""Fig. 5: supply-current waveform of the S-box ISE with/without gating.

Reconstructs the oscilloscope picture: the conventional MCML block draws
a flat tail current whether or not it works; the PG-MCML block sits at
its sleep-leakage floor, the sleep signal rises one insertion delay
before a SubBytes burst, the current ramps up with the cells' wake
constant, and everything collapses after the burst.  The sleep and
clock signals are plotted alongside, as in the paper's figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..cells import build_mcml_library, build_pg_mcml_library
from ..cpu import aes_firmware
from ..power import (
    BlockPowerModel,
    GatingSchedule,
    gated_block_current,
    schedule_from_sbox_events,
    ungated_block_current,
)
from ..spice import Waveform
from ..synth import build_sbox_ise
from ..units import ns
from ..obs import default_telemetry
from .runner import print_table
from .table3 import CLOCK_PERIOD


@dataclass
class Fig5Result:
    times: np.ndarray
    mcml_current: Waveform
    pg_current: Waveform
    sleep_signal: Waveform
    schedule: GatingSchedule
    window: Tuple[float, float]

    @property
    def mcml_flat_ma(self) -> float:
        return self.mcml_current.average() * 1e3

    @property
    def pg_peak_ma(self) -> float:
        return self.pg_current.peak() * 1e3

    @property
    def pg_floor_ua(self) -> float:
        """Sleep-mode current before the window opens."""
        return self.pg_current.v[0] * 1e6

    @property
    def on_off_ratio(self) -> float:
        return self.pg_current.peak() / max(self.pg_current.v[0], 1e-12)

    def window_length_ns(self) -> float:
        t_on, t_off = self.window
        return (t_off - t_on) * 1e9


def run(n_blocks: int = 1, burst_index: int = 0,
        margin: float = ns(8.0)) -> Fig5Result:
    """Render the waveform around one SubBytes burst."""
    firmware = aes_firmware(n_blocks=n_blocks, use_ise=True)
    key = bytes(range(16))
    plaintexts = [bytes((23 * b + i) & 0xFF for i in range(16))
                  for b in range(n_blocks)]
    _, stats = firmware.run(key, plaintexts)

    pg_lib = build_pg_mcml_library()
    mcml_lib = build_mcml_library()
    pg_ise = build_sbox_ise(pg_lib)
    mcml_ise = build_sbox_ise(mcml_lib)
    tree_delay = pg_ise.sleep_tree.insertion_delay

    schedule = schedule_from_sbox_events(
        [c for c, _, _ in stats.sbox_events], CLOCK_PERIOD,
        insertion_delay=tree_delay)
    if burst_index >= len(schedule.windows):
        raise IndexError(
            f"burst {burst_index} of {len(schedule.windows)} windows")
    t_on, t_off = schedule.windows[burst_index]
    t0 = max(t_on - margin, 0.0)
    t1 = t_off + margin
    times = np.linspace(t0, t1, 600)

    pg_model = BlockPowerModel(pg_ise.netlist)
    mcml_model = BlockPowerModel(mcml_ise.netlist)
    pg_current = gated_block_current(pg_model, schedule, times)
    mcml_current = ungated_block_current(mcml_model, times)
    sleep_signal = schedule.signal(times)
    return Fig5Result(times=times, mcml_current=mcml_current,
                      pg_current=pg_current, sleep_signal=sleep_signal,
                      schedule=schedule, window=(t_on, t_off))


def main(telemetry=None) -> Fig5Result:
    tele = telemetry if telemetry is not None else default_telemetry()
    result = run()
    rows = [
        ["MCML flat current", f"{result.mcml_flat_ma:.3f}", "mA",
         "~30 mA (paper)"],
        ["PG-MCML peak (awake)", f"{result.pg_peak_ma:.3f}", "mA",
         "approaches the MCML level"],
        ["PG-MCML sleep floor", f"{result.pg_floor_ua:.4f}", "uA",
         "'almost negligible' (paper)"],
        ["on/off current ratio", f"{result.on_off_ratio:,.0f}", "x", "-"],
        ["wake window", f"{result.window_length_ns():.2f}", "ns",
         "14.421 ns annotated in Fig. 5"],
    ]
    tele.progress("Fig. 5: S-box ISE current with and without "
                  "power gating")
    print_table(rows, ["quantity", "value", "unit", "paper"],
                emit=tele.progress)
    from .plotting import render_fig5
    tele.progress("")
    tele.progress(render_fig5(result))
    return result


if __name__ == "__main__":
    main()
