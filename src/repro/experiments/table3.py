"""Table 3: the S-box ISE in CMOS, MCML and PG-MCML.

The full pipeline of §6:

1. synthesise the four-S-box custom functional unit onto each library
   (cells / area / delay rows);
2. run the AES-128 firmware on the OpenRISC-flavoured core to obtain the
   ISE activity timeline and duty factor;
3. derive the sleep schedule (ISE trigger drives the sleep signal, one
   insertion delay of guard) and compute long-run average power per
   style.

Because our compact firmware keeps the core busier with AES than the
paper's full software stack did, the measured duty is higher than the
paper's 0.01 %; the result is therefore reported both at the measured
duty and re-evaluated at the paper's operating point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..cells import (
    build_cmos_library,
    build_mcml_library,
    build_pg_mcml_library,
)
from ..cpu import aes_firmware
from ..netlist import LogicSimulator
from ..power import BlockPowerModel, schedule_from_sbox_events
from ..synth import SBoxISE, build_sbox_ise, report_block
from ..units import ns
from ..obs import default_telemetry
from .runner import print_table

#: 400 MHz operating frequency (§6).
CLOCK_PERIOD = ns(2.5)

#: Table 3 as published: style -> (cells, area um2, delay ns, avg power W).
PAPER_TABLE3 = {
    "cmos": (3865, 30547.52, 0.630, 207.72e-6),
    "mcml": (2911, 77378.97, 0.698, 490.56e-3),
    "pgmcml": (3076, 78355.21, 0.717, 47.77e-6),
}

PAPER_DUTY = 1e-4  # the paper's 0.01 % ISE activity


@dataclass
class Table3Row:
    style: str
    cells: int
    area_um2: float
    delay_ns: float
    avg_power_w: float
    avg_power_at_paper_duty_w: float


@dataclass
class Table3Result:
    rows: List[Table3Row]
    measured_duty: float
    awake_fraction: float
    cycles: int
    n_blocks: int

    def row(self, style: str) -> Table3Row:
        for r in self.rows:
            if r.style == style:
                return r
        raise KeyError(style)

    def power_ratio(self, a: str, b: str) -> float:
        return self.row(a).avg_power_w / self.row(b).avg_power_w

    def power_ratio_at_paper_duty(self, a: str, b: str) -> float:
        return (self.row(a).avg_power_at_paper_duty_w
                / self.row(b).avg_power_at_paper_duty_w)


def _cmos_energy_per_op(ise: SBoxISE, model: BlockPowerModel,
                        operands: Sequence[int]) -> float:
    """Mean switching energy of one ``l.sbox`` execution (CMOS block).

    Simulates the netlist through the real operand sequence (state
    carries over between operations, as the registered inputs would).
    """
    simulator = LogicSimulator(ise.netlist)
    simulator.initialize({net: False for net in ise.inputs})
    vdd = model.tech.vdd
    total = 0.0
    n_bits = ise.n_sboxes * 8
    for op_index, operand in enumerate(operands):
        stimuli = [(0.0, f"op{i}", bool((operand >> (n_bits - 1 - i)) & 1))
                   for i in range(n_bits)]
        trace = simulator.run(stimuli, duration=CLOCK_PERIOD)
        for tr in trace.transitions:
            if tr.instance is None:
                continue
            ip = model.instances.get(tr.instance)
            if ip is None or ip.toggle_charge == 0.0:
                continue
            inst = ise.netlist.instances[tr.instance]
            load = ise.netlist.load_cap(tr.net)
            scale = max(load / max(inst.cell.input_cap, 1e-18), 0.25)
            total += ip.toggle_charge * vdd * scale
    return total / max(len(operands), 1)


def run(n_blocks: int = 2, energy_sample_ops: int = 12,
        duty_override: Optional[float] = None) -> Table3Result:
    """Build, simulate, and summarise the three implementations."""
    libraries = (build_cmos_library(), build_mcml_library(),
                 build_pg_mcml_library())
    ises: Dict[str, SBoxISE] = {}
    for lib in libraries:
        ises[lib.style] = build_sbox_ise(lib)

    # Firmware run: one protected build drives the activity timeline.
    firmware = aes_firmware(n_blocks=n_blocks, use_ise=True)
    key = bytes(range(16))
    plaintexts = [bytes((17 * b + i) & 0xFF for i in range(16))
                  for b in range(n_blocks)]
    _, stats = firmware.run(key, plaintexts)
    duty = duty_override if duty_override is not None else stats.ise_duty
    total_time = stats.cycles * CLOCK_PERIOD

    # Sleep schedule from the sbox cycle numbers.
    pg_tree = ises["pgmcml"].sleep_tree
    schedule = schedule_from_sbox_events(
        [c for c, _, _ in stats.sbox_events], CLOCK_PERIOD,
        insertion_delay=pg_tree.insertion_delay if pg_tree else ns(1.0))
    awake = schedule.awake_fraction(0.0, total_time)
    if duty_override is not None:
        # Re-scale the wake fraction with the requested duty (the guard
        # band keeps the same proportion to the active time).
        awake = awake * duty_override / max(stats.ise_duty, 1e-12)

    ops = [op for _, op, _ in stats.sbox_events[:energy_sample_ops]]
    op_rate = stats.sbox_cycles / total_time

    rows: List[Table3Row] = []
    for lib in libraries:
        ise = ises[lib.style]
        model = BlockPowerModel(ise.netlist)
        report = report_block(ise.netlist)
        vdd = model.tech.vdd
        if lib.style == "cmos":
            e_op = _cmos_energy_per_op(ise, model, ops)
            static = vdd * model.static_current()
            power = static + e_op * op_rate
            power_paper = static + e_op * op_rate * (
                PAPER_DUTY / max(duty, 1e-12))
        elif lib.style == "mcml":
            power = vdd * model.static_current()
            power_paper = power
        else:
            on = vdd * model.static_current(asleep=False)
            off = vdd * model.static_current(asleep=True)
            power = on * awake + off * (1.0 - awake)
            awake_paper = awake * PAPER_DUTY / max(duty, 1e-12)
            power_paper = on * awake_paper + off * (1.0 - awake_paper)
        rows.append(Table3Row(
            style=lib.style, cells=report.cells,
            area_um2=report.core_area_um2, delay_ns=report.delay_ns,
            avg_power_w=power, avg_power_at_paper_duty_w=power_paper))

    return Table3Result(rows=rows, measured_duty=duty,
                        awake_fraction=awake, cycles=stats.cycles,
                        n_blocks=n_blocks)


def main(n_blocks: int = 2, telemetry=None) -> Table3Result:
    tele = telemetry if telemetry is not None else default_telemetry()
    result = run(n_blocks=n_blocks)
    table = []
    for r in result.rows:
        paper = PAPER_TABLE3[r.style]
        table.append([
            r.style.upper(), str(r.cells), str(paper[0]),
            f"{r.area_um2:,.0f}", f"{paper[1]:,.0f}",
            f"{r.delay_ns:.3f}", f"{paper[2]:.3f}",
            f"{r.avg_power_w * 1e6:,.3g}",
            f"{r.avg_power_at_paper_duty_w * 1e6:,.3g}",
            f"{paper[3] * 1e6:,.4g}",
        ])
    tele.progress("Table 3: S-box ISE in three logic styles")
    print_table(table, [
        "Style", "Cells", "paper", "Area[um2]", "paper", "Delay[ns]",
        "paper", "Power[uW]@meas.duty", "Power[uW]@0.01%", "paper[uW]"],
        emit=tele.progress)
    tele.progress(f"measured ISE duty: {result.measured_duty * 100:.3f}%  "
                  f"(paper: 0.01%); awake fraction incl. guard: "
                  f"{result.awake_fraction * 100:.3f}%")
    tele.progress(
        f"MCML / PG-MCML power ratio: "
        f"{result.power_ratio('mcml', 'pgmcml'):,.0f}x at measured duty, "
        f"{result.power_ratio_at_paper_duty('mcml', 'pgmcml'):,.0f}x at "
        f"0.01% duty (paper: ~1.0e4x)")
    tele.progress(
        f"CMOS / PG-MCML power ratio at 0.01% duty: "
        f"{result.power_ratio_at_paper_duty('cmos', 'pgmcml'):.2f}x "
        f"(paper: ~4.3x)")
    return result


if __name__ == "__main__":
    main()
