"""Related-work baselines: DyCML, SABL, MDPL vs PG-MCML (§2, quantified).

The paper's related-work section argues PG-MCML beats the alternatives
qualitatively; this extension experiment puts numbers behind the
argument using literature-calibrated block models layered on our mapped
netlists:

* **DyCML** (Allam & Elmasry, JSSC 2001): current-mode logic with a
  *dynamic* current pulse — dissipates only per evaluation, so its power
  scales with activity like CMOS while keeping CML-ish current shapes.
  Costs: every gate needs the clock (precharge/evaluate), self-timed
  completion trees in practice, and no commodity EDA support.
* **SABL** (Tiri et al., ESSCIRC 2002): dual-rail precharged CMOS with
  constant switching activity — every cell charges its (balanced)
  load once per cycle regardless of data.  Power is therefore the
  *worst-case* CMOS dynamic power at full clock rate, always.
* **MDPL** (Popp & Mangard, CHES 2005): masked dual-rail precharge from
  standard cells (no routing constraints); roughly 4-5x CMOS area and
  ~4x power in the original paper, security resting on mask quality.

Each model reports block power at the S-box ISE operating point, the
area factor, and flags for the two practicality axes the paper leans on
(commodity EDA flow, no per-gate clock).  Absolute numbers are
literature-derived approximations — the point is the *position* of each
style on the power/security/practicality map, with PG-MCML uniquely
combining idle power ~0 with an unmodified flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..cells import build_cmos_library, build_mcml_library, \
    build_pg_mcml_library
from ..power import BlockPowerModel
from ..synth import build_sbox_ise, report_block
from ..units import MHz, fF
from ..obs import default_telemetry
from .runner import print_table
from .table3 import CLOCK_PERIOD, PAPER_DUTY

#: Charge drawn by one DyCML gate per evaluation (the dynamic current
#: pulse integrates to roughly C_load * Vswing; Allam's gates at ~0.5 pJ
#: class energies scaled to 90 nm).
DYCML_CHARGE_PER_EVAL = 25e-15  # coulombs

#: SABL: effective switched capacitance per cell per cycle (balanced
#: true+false rails both cycle through precharge/evaluate).
SABL_CAP_PER_CELL = fF(8.0)

#: Area factors relative to the CMOS reference block (literature).
AREA_FACTOR = {"dycml": 1.8, "sabl": 2.0, "mdpl": 4.5}

#: Power factor of MDPL relative to CMOS dynamic at the same activity.
MDPL_POWER_FACTOR = 4.0


@dataclass
class RelatedStyleRow:
    style: str
    area_um2: float
    power_at_duty_w: float
    idle_power_w: float
    commodity_eda: bool
    needs_gate_clock: bool
    dpa_resistant: bool


@dataclass
class RelatedWorkResult:
    rows: List[RelatedStyleRow]
    duty: float
    clock_hz: float

    def row(self, style: str) -> RelatedStyleRow:
        for r in self.rows:
            if r.style == style:
                return r
        raise KeyError(style)

    def pg_wins_on(self) -> List[str]:
        """Axes where PG-MCML strictly beats every other *resistant* style."""
        pg = self.row("pgmcml")
        axes = []
        others = [r for r in self.rows
                  if r.dpa_resistant and r.style != "pgmcml"]
        if all(pg.idle_power_w < o.idle_power_w for o in others):
            axes.append("idle power")
        if all(pg.commodity_eda >= o.commodity_eda for o in others) and \
                not pg.needs_gate_clock:
            axes.append("flow practicality")
        return axes


def run(duty: float = PAPER_DUTY,
        clock_period: float = CLOCK_PERIOD) -> RelatedWorkResult:
    clock_hz = 1.0 / clock_period
    cmos_ise = build_sbox_ise(build_cmos_library())
    mcml_ise = build_sbox_ise(build_mcml_library())
    pg_ise = build_sbox_ise(build_pg_mcml_library())

    cmos_model = BlockPowerModel(cmos_ise.netlist)
    mcml_model = BlockPowerModel(mcml_ise.netlist)
    pg_model = BlockPowerModel(pg_ise.netlist)
    vdd = cmos_model.tech.vdd

    cmos_report = report_block(cmos_ise.netlist)
    mcml_report = report_block(mcml_ise.netlist)
    pg_report = report_block(pg_ise.netlist)
    n_cells = mcml_report.cells

    # CMOS: leakage + (small) dynamic at the ISE duty.
    cmos_dynamic = (cmos_report.cells * fF(3.0) * vdd ** 2
                    * clock_hz * duty)
    cmos_power = vdd * cmos_model.static_current() + cmos_dynamic

    # Conventional MCML: constant.
    mcml_power = vdd * mcml_model.static_current()

    # PG-MCML: gated (guard band of ~3x the instruction duty).
    awake = min(3.0 * duty, 1.0)
    pg_power = vdd * (pg_model.static_current() * awake
                      + pg_model.static_current(asleep=True) * (1 - awake))

    # DyCML: per-evaluation charge at the ISE duty, plus CMOS-like leak.
    dycml_power = (n_cells * DYCML_CHARGE_PER_EVAL * vdd * clock_hz * duty
                   + vdd * cmos_model.static_current())

    # SABL: every cell cycles every clock, data-independent by design.
    sabl_power = (cmos_report.cells * SABL_CAP_PER_CELL * vdd ** 2
                  * clock_hz)

    # MDPL: masked dual-rail at CMOS-style activity (full clock rate:
    # precharge logic evaluates every cycle).
    mdpl_power = (cmos_report.cells * fF(3.0) * vdd ** 2 * clock_hz
                  * MDPL_POWER_FACTOR)

    rows = [
        RelatedStyleRow("cmos", cmos_report.core_area_um2, cmos_power,
                        vdd * cmos_model.static_current(),
                        commodity_eda=True, needs_gate_clock=False,
                        dpa_resistant=False),
        RelatedStyleRow("mcml", mcml_report.core_area_um2, mcml_power,
                        mcml_power, commodity_eda=True,
                        needs_gate_clock=False, dpa_resistant=True),
        RelatedStyleRow("dycml",
                        cmos_report.core_area_um2 * AREA_FACTOR["dycml"],
                        dycml_power,
                        vdd * cmos_model.static_current(),
                        commodity_eda=False, needs_gate_clock=True,
                        dpa_resistant=True),
        RelatedStyleRow("sabl",
                        cmos_report.core_area_um2 * AREA_FACTOR["sabl"],
                        sabl_power, sabl_power, commodity_eda=False,
                        needs_gate_clock=True, dpa_resistant=True),
        RelatedStyleRow("mdpl",
                        cmos_report.core_area_um2 * AREA_FACTOR["mdpl"],
                        mdpl_power, mdpl_power, commodity_eda=True,
                        needs_gate_clock=True, dpa_resistant=True),
        RelatedStyleRow("pgmcml", pg_report.core_area_um2, pg_power,
                        vdd * pg_model.static_current(asleep=True),
                        commodity_eda=True, needs_gate_clock=False,
                        dpa_resistant=True),
    ]
    return RelatedWorkResult(rows=rows, duty=duty, clock_hz=clock_hz)


def main(duty: float = PAPER_DUTY, telemetry=None) -> RelatedWorkResult:
    tele = telemetry if telemetry is not None else default_telemetry()
    result = run(duty=duty)
    tele.progress(f"Related-work positioning at "
                  f"{result.clock_hz / 1e6:.0f} MHz, "
                  f"ISE duty {duty * 100:.2f}% (S-box ISE block)")
    print_table(
        [[r.style.upper(), f"{r.area_um2:,.0f}",
          f"{r.power_at_duty_w * 1e6:,.3g}",
          f"{r.idle_power_w * 1e6:,.3g}",
          "yes" if r.commodity_eda else "no",
          "yes" if r.needs_gate_clock else "no",
          "yes" if r.dpa_resistant else "NO"]
         for r in result.rows],
        ["Style", "Area[um2]", "P@duty[uW]", "P idle[uW]",
         "EDA flow", "gate clock", "resistant"], emit=tele.progress)
    tele.progress(f"\nPG-MCML uniquely wins on: {result.pg_wins_on()}")
    return result


if __name__ == "__main__":
    main()
