"""Dependency-free figure rendering: ASCII plots and CSV export.

The paper's figures are plots; this reproduction regenerates their
*data* and renders it two ways without pulling in matplotlib:

* :func:`ascii_plot` — a terminal line plot good enough to eyeball the
  Fig. 5 current envelope or the Fig. 6 correlation cloud;
* :func:`write_csv` — the underlying series, so any external tool can
  produce publication plots.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, TextIO, Tuple

import numpy as np

from ..errors import ReproError


def ascii_plot(series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
               width: int = 72, height: int = 18,
               x_label: str = "", y_label: str = "",
               markers: str = "*o+x#@%&") -> str:
    """Render named (x, y) series onto a character canvas.

    Each series gets the next marker character; later series overwrite
    earlier ones where they collide (plot the important one last).
    """
    if not series:
        raise ReproError("nothing to plot")
    if width < 16 or height < 4:
        raise ReproError("canvas too small")

    xs_all: List[float] = []
    ys_all: List[float] = []
    for x, y in series.values():
        x_arr, y_arr = np.asarray(x, float), np.asarray(y, float)
        if x_arr.shape != y_arr.shape or x_arr.ndim != 1:
            raise ReproError("each series needs matching 1-D x and y")
        if x_arr.size == 0:
            raise ReproError("empty series")
        xs_all.extend(x_arr)
        ys_all.extend(y_arr)
    x_min, x_max = min(xs_all), max(xs_all)
    y_min, y_max = min(ys_all), max(ys_all)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    legend: List[str] = []
    for index, (name, (x, y)) in enumerate(series.items()):
        mark = markers[index % len(markers)]
        legend.append(f"{mark} {name}")
        for xv, yv in zip(np.asarray(x, float), np.asarray(y, float)):
            col = int(round((xv - x_min) / x_span * (width - 1)))
            row = int(round((yv - y_min) / y_span * (height - 1)))
            canvas[height - 1 - row][col] = mark

    lines = []
    top_label = f"{y_max:.4g}"
    bottom_label = f"{y_min:.4g}"
    pad = max(len(top_label), len(bottom_label))
    for i, row_chars in enumerate(canvas):
        if i == 0:
            prefix = top_label.rjust(pad)
        elif i == height - 1:
            prefix = bottom_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row_chars)}")
    axis = " " * pad + " +" + "-" * width
    lines.append(axis)
    x_axis = (" " * pad + "  " + f"{x_min:.4g}"
              + f"{x_max:.4g}".rjust(width - len(f"{x_min:.4g}")))
    lines.append(x_axis)
    if y_label or x_label:
        lines.append(" " * pad + f"  y: {y_label}   x: {x_label}".rstrip())
    lines.append(" " * pad + "  " + "   ".join(legend))
    return "\n".join(lines)


def write_csv(stream: TextIO, columns: Dict[str, Sequence[float]]) -> None:
    """Write named columns as CSV (header + rows)."""
    if not columns:
        raise ReproError("no columns to write")
    names = list(columns)
    arrays = [np.asarray(columns[n], float) for n in names]
    length = arrays[0].size
    if any(a.size != length for a in arrays):
        raise ReproError("all columns must have the same length")
    stream.write(",".join(names) + "\n")
    for i in range(length):
        stream.write(",".join(f"{a[i]:.9g}" for a in arrays) + "\n")


def render_fig5(result) -> str:
    """ASCII rendering of the Fig. 5 current waveforms."""
    times_ns = result.times * 1e9
    return ascii_plot(
        {
            "MCML (no gating)": (times_ns, result.mcml_current.v * 1e3),
            "sleep signal (x20 mA/V)": (times_ns,
                                        result.sleep_signal.v * 20.0),
            "PG-MCML": (times_ns, result.pg_current.v * 1e3),
        },
        x_label="time [ns]", y_label="supply current [mA]")


def render_fig6(result, style: str = "pgmcml") -> str:
    """ASCII rendering of one style's Fig. 6 correlation cloud.

    Wrong-key peak envelope in light marks, the true key's |rho(t)| as
    the emphasised trace — the 'black line' of the figure.
    """
    res = result.results[style]
    rho = np.abs(res.cpa.rho)
    n_samples = rho.shape[1]
    samples = np.arange(n_samples, dtype=float)
    wrong = np.delete(rho, result.key, axis=0)
    return ascii_plot(
        {
            "wrong-key envelope": (samples, wrong.max(axis=0)),
            f"true key {result.key:#04x}": (samples, rho[result.key]),
        },
        x_label="sample", y_label="|rho|", markers=".#")


def fig6_csv(result, stream: TextIO, style: str = "pgmcml") -> None:
    """Export one style's per-guess |rho| peaks plus the true-key trace."""
    res = result.results[style]
    rho = np.abs(res.cpa.rho)
    columns = {
        "sample": np.arange(rho.shape[1], dtype=float),
        "true_key_abs_rho": rho[result.key],
        "wrong_key_max_abs_rho": np.delete(rho, result.key,
                                           axis=0).max(axis=0),
    }
    write_csv(stream, columns)


def fig5_csv(result, stream: TextIO) -> None:
    """Export the Fig. 5 waveforms."""
    write_csv(stream, {
        "time_s": result.times,
        "mcml_current_a": result.mcml_current.v,
        "pg_current_a": result.pg_current.v,
        "sleep_signal_v": result.sleep_signal.v,
    })


def fig3_csv(result, stream: TextIO) -> None:
    """Export the Fig. 3 sweep."""
    write_csv(stream, {
        "iss_a": [p.iss for p in result.points],
        "delay_fo1_s": [p.delay_fo1 for p in result.points],
        "delay_fo4_s": [p.delay_fo4 for p in result.points],
        "area_um2": [p.area_um2 for p in result.points],
        "pdp_j": [p.pdp_fo4 for p in result.points],
        "adp_um2_s": [p.adp_fo4 for p in result.points],
    })
