"""Extension experiment: the attack × countermeasure matrix.

Runs a declarative campaign grid (:mod:`repro.sca.matrix`) across
library styles, attacks, noise levels, process corners and trace
budgets, and prints the unified comparison report: tie-corrected
guessing entropy, success rate and MTD per cell, TVLA verdicts, and
the security-vs-overhead frontier.

The default grid is the CI smoke configuration — CMOS vs. WDDL under
first-order CPA, second-order CPA, MLPA and TVLA at one noise level and
the typical corner.  Pass a JSON grid spec (``repro matrix --grid
examples/matrix_smoke.json``) to sweep anything else; the expected
headline on the default grid:

* CMOS: CPA recovers the key, TVLA flags it immediately;
* WDDL: the constant-switching discipline defeats the same CPA at the
  same budget (residual rail imbalance needs ~2-3x the traces), while
  TVLA still detects the imbalance — reduced, not eliminated.
"""

from __future__ import annotations

from typing import Optional

from ..obs import default_telemetry
from ..sca.matrix import MatrixReport, MatrixSpec, run_matrix

#: The CI smoke grid: 2 styles × 4 attacks at one budget.  Small enough
#: for a pull-request gate, wide enough to exercise WDDL, both
#: higher-order attacks, TVLA scheduling, and the acquisition dedupe.
SMOKE_GRID = {
    "styles": ["cmos", "wddl"],
    "attacks": ["cpa", "cpa2", "mlpa", "tvla"],
    "noises": [5e-7],
    "corners": ["tt"],
    "budgets": [256],
    "key": 0x3C,
    "repeats": 1,
}


def run(spec: Optional[MatrixSpec] = None, telemetry=None,
        workers: int = 1, backend: str = "auto") -> MatrixReport:
    if spec is None:
        spec = MatrixSpec.from_dict(SMOKE_GRID)
    return run_matrix(spec, telemetry=telemetry, workers=workers,
                      backend=backend)


def main(grid: Optional[str] = None, report: Optional[str] = None,
         telemetry=None) -> MatrixReport:
    """CLI driver: ``grid`` is a JSON spec path, ``report`` an output path."""
    tele = telemetry if telemetry is not None else default_telemetry()
    spec = MatrixSpec.from_json(grid) if grid else None
    result = run(spec=spec, telemetry=telemetry)
    tele.progress("attack x countermeasure matrix "
                  f"({len(result.cells)} cells):\n")
    tele.progress(result.format_table())
    failed = [c for c in result.cells if not c.ok]
    if failed:
        tele.progress(f"\n{len(failed)} cell(s) failed and were isolated "
                      "(see error_code column)")
    if report:
        result.to_json(report)
        tele.progress(f"\nwrote {report}")
    return result
