"""Shared experiment plumbing: records, table printing, comparisons,
and checkpointed (resumable) campaign execution."""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
import zipfile
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CheckpointError, ReproError
from ..obs import NULL_TELEMETRY


def _fsync_directory(directory: str) -> None:
    """Flush a rename to the directory's metadata, where supported.

    Some filesystems (and all of Windows) refuse O_RDONLY directory
    fds; durability is then best-effort, same as before this helper.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@dataclass
class ExperimentRecord:
    """One measured quantity next to its paper value."""

    name: str
    measured: float
    paper: Optional[float] = None
    unit: str = ""

    @property
    def ratio(self) -> Optional[float]:
        if self.paper in (None, 0.0):
            return None
        return self.measured / self.paper

    def row(self) -> List[str]:
        paper = "-" if self.paper is None else f"{self.paper:.6g}"
        ratio = "-" if self.ratio is None else f"{self.ratio:.3f}"
        return [self.name, f"{self.measured:.6g}", paper, ratio, self.unit]


def print_table(rows: Sequence[Sequence[str]],
                headers: Sequence[str],
                emit: Optional[Callable[[str], None]] = None) -> str:
    """Render a fixed-width table through ``emit``; returns the text.

    ``emit`` defaults to ``print`` (the historical behaviour); drivers
    pass their telemetry's ``progress`` method so the rendering lands
    in trace sinks too, and tests pass a muted handle's to keep stdout
    clean.
    """
    if not rows:
        raise ReproError("no rows to print")
    table = [list(headers)] + [list(r) for r in rows]
    widths = [max(len(str(row[i])) for row in table)
              for i in range(len(headers))]
    lines = []
    for i, row in enumerate(table):
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    text = "\n".join(lines)
    (emit if emit is not None else print)(text)
    return text


def records_table(records: Sequence[ExperimentRecord],
                  emit: Optional[Callable[[str], None]] = None) -> str:
    return print_table([r.row() for r in records],
                       ["quantity", "measured", "paper", "ratio", "unit"],
                       emit=emit)


# -- checkpointed execution ---------------------------------------------------

@dataclass
class CheckpointStats:
    """What a :class:`CheckpointedRun` did on its last :meth:`run`."""

    chunks_total: int = 0
    chunks_resumed: int = 0
    chunks_run: int = 0
    retries: int = 0
    failures: List[str] = field(default_factory=list)


class CheckpointedRun:
    """Chunked, atomically-checkpointed, resumable campaign execution.

    Long trace campaigns (the fig6 CPA and TVLA drivers push thousands
    of logic simulations through the power models) die wholesale when a
    single chunk fails or the process is killed.  This helper processes
    an item list in fixed chunks, snapshots accumulated results (plus any
    caller-provided generator state) to an ``.npz`` after every chunk via
    atomic rename, retries failed chunks with capped exponential backoff,
    and on restart resumes from the last completed chunk — producing
    byte-identical results to an uninterrupted run.

    Parameters
    ----------
    path:
        Checkpoint file (``.npz`` appended when missing).
    chunk_size:
        Items per chunk — also the checkpoint granularity.
    max_retries:
        Per-chunk retry budget for exceptions in ``retry_on``.
    backoff_base, backoff_cap:
        Exponential backoff: attempt *k* sleeps
        ``min(backoff_cap, backoff_base * 2**(k-1))`` seconds.
    retry_on:
        Exception classes considered transient.  Anything else
        propagates immediately (the checkpoint keeps completed chunks).
    sleep:
        Injectable sleep function (tests pass a recorder).
    """

    def __init__(self, path, chunk_size: int = 32, max_retries: int = 3,
                 backoff_base: float = 0.05, backoff_cap: float = 2.0,
                 retry_on: Tuple[type, ...] = (ReproError,),
                 sleep: Callable[[float], None] = time.sleep,
                 telemetry=None):
        path = os.fspath(path)
        if not path.endswith(".npz"):
            path += ".npz"
        if chunk_size < 1:
            raise CheckpointError("chunk_size must be >= 1")
        if max_retries < 0:
            raise CheckpointError("max_retries must be >= 0")
        self.path = path
        self.chunk_size = chunk_size
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.retry_on = tuple(retry_on)
        self.sleep = sleep
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.stats = CheckpointStats()

    # -- persistence ---------------------------------------------------------

    def _fingerprint(self, items: Sequence,
                     extra: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        digest = hashlib.sha256(repr(list(items)).encode()).hexdigest()
        fp: Dict[str, Any] = {"n_items": len(items), "items_sha": digest,
                              "chunk_size": self.chunk_size}
        if extra:
            fp.update(extra)
        return fp

    def _save(self, blocks: List[np.ndarray], n_done: int,
              fingerprint: Dict[str, Any], state: Any) -> None:
        # Crash-durable rename-into-place: the temp file is fsync'd
        # before os.replace (rename alone orders nothing on power loss —
        # the new name could point at unwritten blocks), and the
        # directory is fsync'd after so the rename itself survives.
        directory = os.path.dirname(self.path) or "."
        fd, tmp = tempfile.mkstemp(suffix=".npz", dir=directory)
        try:
            with self.telemetry.span("checkpoint.save", n_done=n_done), \
                    self.telemetry.timer("checkpoint.save_seconds"):
                rows = np.vstack(blocks) if blocks else np.zeros((0, 0))
                with os.fdopen(fd, "wb") as handle:
                    fd = None
                    np.savez(handle, rows=rows, n_done=np.int64(n_done),
                             meta=np.array(json.dumps(fingerprint)),
                             state=np.array(json.dumps(state)))
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, self.path)
                _fsync_directory(directory)
        except BaseException:
            if fd is not None:
                os.close(fd)
            if os.path.exists(tmp):
                os.remove(tmp)
            raise

    def load(self) -> Optional[Tuple[np.ndarray, int, Dict[str, Any], Any]]:
        """Existing checkpoint as (rows, n_done, fingerprint, state)."""
        if not os.path.exists(self.path):
            return None
        try:
            with self.telemetry.span("checkpoint.load"), \
                    self.telemetry.timer("checkpoint.load_seconds"):
                with np.load(self.path, allow_pickle=False) as archive:
                    rows = np.array(archive["rows"])
                    n_done = int(archive["n_done"])
                    meta = json.loads(str(archive["meta"][()]))
                    state = json.loads(str(archive["state"][()]))
        except (OSError, KeyError, ValueError, EOFError,
                zipfile.BadZipFile) as err:
            raise CheckpointError(
                f"unreadable checkpoint {self.path}: {err}") from err
        return rows, n_done, meta, state

    def clear(self) -> None:
        """Delete the checkpoint (start the next run from scratch)."""
        if os.path.exists(self.path):
            os.remove(self.path)

    # -- execution -----------------------------------------------------------

    def run(self, items: Sequence, process_chunk: Callable,
            fingerprint: Optional[Dict[str, Any]] = None,
            get_state: Optional[Callable[[], Any]] = None,
            set_state: Optional[Callable[[Any], None]] = None) -> np.ndarray:
        """Process ``items`` in chunks, checkpointing after each.

        ``process_chunk(chunk_items, start_index)`` must return an array
        with one row per item, computed independently of any other chunk.
        ``get_state``/``set_state`` round-trip external mutable state
        through the checkpoint for processes that are not pure functions
        of the item index.  (Trace campaigns no longer need this: their
        noise is counter-based, keyed by trace index.)
        """
        items = list(items)
        fp = self._fingerprint(items, fingerprint)
        self.stats = CheckpointStats(
            chunks_total=-(-len(items) // self.chunk_size) if items else 0)
        blocks: List[np.ndarray] = []
        start = 0
        loaded = self.load()
        if loaded is not None:
            rows, n_done, meta, state = loaded
            if meta != fp:
                # Both fingerprints ride in the context so the refusal
                # is diagnosable from a JSONL post-mortem alone: which
                # noise entropy / scheme / style the snapshot belongs
                # to, and which one the caller asked to resume.
                raise CheckpointError(
                    f"checkpoint {self.path} belongs to a different "
                    f"campaign (saved {meta}, expected {fp}); "
                    f"clear() it to restart",
                    context={"path": self.path, "saved": meta,
                             "expected": fp})
            if n_done % self.chunk_size != 0 and n_done != len(items):
                raise CheckpointError(
                    f"checkpoint {self.path} is torn: {n_done} rows is "
                    f"not a chunk boundary")
            if n_done > 0:
                blocks = [rows[:n_done]]
                start = n_done
                self.stats.chunks_resumed = -(-n_done // self.chunk_size)
                if set_state is not None and state is not None:
                    set_state(state)

        for begin in range(start, len(items), self.chunk_size):
            chunk = items[begin:begin + self.chunk_size]
            state0 = get_state() if get_state is not None else None
            attempt = 0
            while True:
                try:
                    out = np.asarray(process_chunk(chunk, begin))
                    break
                except self.retry_on as err:
                    attempt += 1
                    self.stats.retries += 1
                    self.stats.failures.append(
                        f"chunk@{begin} attempt {attempt}: {err}")
                    if attempt > self.max_retries:
                        raise CheckpointError(
                            f"chunk at item {begin} failed after "
                            f"{self.max_retries} retries: {err}") from err
                    if set_state is not None and state0 is not None:
                        set_state(state0)
                    self.sleep(min(self.backoff_cap,
                                   self.backoff_base * 2 ** (attempt - 1)))
            if out.ndim == 1:
                out = out.reshape(len(chunk), -1)
            if out.shape[0] != len(chunk):
                raise CheckpointError(
                    f"process_chunk returned {out.shape[0]} rows for a "
                    f"{len(chunk)}-item chunk")
            blocks.append(out)
            n_done = begin + len(chunk)
            state_now = get_state() if get_state is not None else None
            self._save(blocks, n_done, fp, state_now)
            self.stats.chunks_run += 1

        tele = self.telemetry
        if self.stats.chunks_run:
            tele.counter("checkpoint.chunks_run").inc(self.stats.chunks_run)
        if self.stats.chunks_resumed:
            tele.counter("checkpoint.chunks_resumed").inc(
                self.stats.chunks_resumed)
        if self.stats.retries:
            tele.counter("checkpoint.retries").inc(self.stats.retries)
        return np.vstack(blocks) if blocks else np.zeros((0, 0))
