"""Shared experiment plumbing: records, table printing, comparisons."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import ReproError


@dataclass
class ExperimentRecord:
    """One measured quantity next to its paper value."""

    name: str
    measured: float
    paper: Optional[float] = None
    unit: str = ""

    @property
    def ratio(self) -> Optional[float]:
        if self.paper in (None, 0.0):
            return None
        return self.measured / self.paper

    def row(self) -> List[str]:
        paper = "-" if self.paper is None else f"{self.paper:.6g}"
        ratio = "-" if self.ratio is None else f"{self.ratio:.3f}"
        return [self.name, f"{self.measured:.6g}", paper, ratio, self.unit]


def print_table(rows: Sequence[Sequence[str]],
                headers: Sequence[str]) -> str:
    """Render and print a fixed-width table; returns the text."""
    if not rows:
        raise ReproError("no rows to print")
    table = [list(headers)] + [list(r) for r in rows]
    widths = [max(len(str(row[i])) for row in table)
              for i in range(len(headers))]
    lines = []
    for i, row in enumerate(table):
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    text = "\n".join(lines)
    print(text)
    return text


def records_table(records: Sequence[ExperimentRecord]) -> str:
    return print_table([r.row() for r in records],
                       ["quantity", "measured", "paper", "ratio", "unit"])
