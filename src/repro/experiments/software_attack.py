"""System-level study: attacking the software AES around the ISE.

Fig. 6 proves the *block* resists: traces measured on the protected
unit's own supply reveal nothing.  A system-level adversary, however,
probes the whole processor.  Using the instruction-level leakage model
(:mod:`repro.power.cpu_power`) this experiment attacks the complete
firmware execution in four scenarios:

========================================  ==================  =========
scenario                                  measured window     outcome
========================================  ==================  =========
software table lookup on the CMOS core    full trace          broken
ISE, result written to CMOS reg file      ``l.sbox`` cycles   broken
ISE incl. protected result path           ``l.sbox`` cycles   resists
ISE incl. protected result path           full trace          broken
========================================  ==================  =========

The last row is the important nuance: even a perfectly protected S-box
unit cannot hide state that the surrounding *software* then moves
through CMOS memory during ShiftRows/MixColumns.  Protecting the
critical operation secures the operation (rows 2-3, matching Fig. 6's
block-level claim); securing the *cipher* needs the whole datapath in
protected logic — which is what the full PG-MCML core of
:mod:`repro.experiments.scope` provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..cpu import aes_firmware
from ..power.cpu_power import CpuLeakageModel, software_aes_traces
from ..sca import cpa_attack
from ..obs import default_telemetry
from .runner import print_table

DEFAULT_KEY_BYTE = 0x2B
DEFAULT_TRACES = 120


@dataclass
class ScenarioResult:
    name: str
    window: str
    rank: int
    peak_rho: float

    @property
    def broken(self) -> bool:
        return self.rank == 0


@dataclass
class SoftwareAttackResult:
    scenarios: List[ScenarioResult]
    key_byte: int
    n_traces: int

    def scenario(self, name: str, window: str) -> ScenarioResult:
        for s in self.scenarios:
            if s.name == name and s.window == window:
                return s
        raise KeyError((name, window))

    def matches_expectation(self) -> bool:
        return (self.scenario("software lookup", "full").broken
                and self.scenario("ISE, CMOS writeback", "sbox").broken
                and not self.scenario("ISE, protected path", "sbox").broken
                and self.scenario("ISE, protected path", "full").broken)


def _sbox_cycles() -> List[int]:
    """Exact cycle indices of the ``l.sbox`` executions.

    The firmware's control flow is data-independent, so the cycle
    numbers from one reference run hold for every plaintext.  Measuring
    *only* these cycles isolates the protected unit's own contribution
    — the neighbouring load/store instructions move the state through
    CMOS memory and belong to the surrounding-software channel, which
    the full-trace rows quantify.
    """
    firmware = aes_firmware(n_blocks=1, use_ise=True)
    _, stats = firmware.run(bytes(16), [bytes(16)])
    return [c for c, _, _ in stats.sbox_events]


def run(key_byte: int = DEFAULT_KEY_BYTE,
        n_traces: int = DEFAULT_TRACES, seed: int = 0
        ) -> SoftwareAttackResult:
    rng = np.random.default_rng(seed)
    key = bytes([key_byte]) + bytes(range(1, 16))
    pt_bytes = [int(b) for b in rng.integers(0, 256, size=n_traces)]
    plaintexts = [bytes([p]) + bytes(15) for p in pt_bytes]

    sbox_cycles = _sbox_cycles()
    cases = [
        ("software lookup", "full", False, CpuLeakageModel(), None),
        ("ISE, CMOS writeback", "sbox", True,
         CpuLeakageModel(protected_sbox=True, protected_writeback=False),
         sbox_cycles),
        ("ISE, protected path", "sbox", True,
         CpuLeakageModel(protected_sbox=True, protected_writeback=True),
         sbox_cycles),
        ("ISE, protected path", "full", True,
         CpuLeakageModel(protected_sbox=True, protected_writeback=True),
         None),
    ]
    scenarios: List[ScenarioResult] = []
    for name, window_name, use_ise, model, cycles in cases:
        traces = software_aes_traces(
            lambda u=use_ise: aes_firmware(1, use_ise=u), key, plaintexts,
            model=model, cycles=cycles)
        attack = cpa_attack(traces, pt_bytes, true_key=key_byte)
        scenarios.append(ScenarioResult(
            name=name, window=window_name,
            rank=attack.rank_of_true_key(),
            peak_rho=float(attack.peak_per_guess[key_byte])))
    return SoftwareAttackResult(scenarios=scenarios, key_byte=key_byte,
                                n_traces=n_traces)


def main(n_traces: int = DEFAULT_TRACES,
         telemetry=None) -> SoftwareAttackResult:
    tele = telemetry if telemetry is not None else default_telemetry()
    result = run(n_traces=n_traces)
    tele.progress(f"System-level CPA on the firmware "
                  f"({result.n_traces} traces, "
                  f"instruction-level leakage model)")
    print_table(
        [[s.name, s.window, "BROKEN" if s.broken else "resists",
          str(s.rank), f"{s.peak_rho:.3f}"] for s in result.scenarios],
        ["scenario", "window", "outcome", "true-key rank", "peak rho"],
        emit=tele.progress)
    tele.progress("\nthe protected unit hides its own computation "
                  "(Fig. 6's block-level claim holds at system level "
                  "too), but software that moves the S-box output "
                  "through CMOS memory re-exposes it: full-cipher "
                  "protection (see `python -m repro scope`) is what "
                  "closes the system-level channel.")
    return result


if __name__ == "__main__":
    main()
