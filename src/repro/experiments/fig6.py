"""Fig. 6: correlation power analysis per logic style.

The paper's security evaluation: attack the reduced AES (key addition +
S-box) with CPA using the Hamming weight of the S-box output, over all
256 plaintexts, at 1 µA / 1 ps measurement resolution.  Expected
outcome: "all the attacks on the CMOS implementations were successful,
while none of the ones performed on conventional MCML as well as on
PG-MCML were able to reveal the secret key."

Also carries the measurement-chain ablation (A3 in DESIGN.md): how much
instrument resolution the attacker would need before the MCML mismatch
residuals become visible.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cells import (
    build_cmos_library,
    build_mcml_library,
    build_pg_mcml_library,
)
from ..obs import default_telemetry
from ..power import MeasurementChain
from ..sca import AttackCampaign, CampaignResult
from ..units import uA
from .runner import CheckpointedRun, print_table

DEFAULT_KEY = 0x2B


@dataclass
class Fig6Result:
    results: Dict[str, CampaignResult]
    key: int

    def succeeded(self, style: str) -> bool:
        return self.results[style].succeeded

    def rank(self, style: str) -> int:
        return self.results[style].rank

    def distinguishability(self, style: str) -> float:
        return self.results[style].cpa.distinguishability()

    def matches_paper(self) -> bool:
        """CMOS broken, both MCML flavours safe."""
        return (self.succeeded("cmos")
                and not self.succeeded("mcml")
                and not self.succeeded("pgmcml"))


def run(key: int = DEFAULT_KEY,
        chain: Optional[MeasurementChain] = None,
        plaintexts: Optional[Sequence[int]] = None,
        mismatch_seed: int = 0,
        checkpoint_dir: Optional[str] = None,
        chunk_size: int = 32,
        workers: int = 1,
        backend: str = "auto",
        telemetry=None) -> Fig6Result:
    """Run the three-style CPA campaign.

    ``checkpoint_dir`` makes each per-style acquisition resumable: traces
    are snapshotted to ``<dir>/fig6_<style>.npz`` every ``chunk_size``
    plaintexts, and a killed run restarted with the same directory
    resumes mid-campaign with byte-identical final correlations.

    ``workers`` spreads each style's acquisition over a worker pool
    (``repro.sca.acquisition``); trace noise is keyed by trace index,
    so any worker count produces byte-identical traces and the same
    CPA verdicts.
    """
    results: Dict[str, CampaignResult] = {}
    for lib in (build_cmos_library(), build_mcml_library(),
                build_pg_mcml_library()):
        campaign = AttackCampaign(lib, key, chain=chain,
                                  mismatch_seed=mismatch_seed,
                                  telemetry=telemetry)
        if checkpoint_dir is None:
            results[lib.style] = campaign.run(plaintexts, workers=workers,
                                              backend=backend)
        else:
            runner = CheckpointedRun(
                os.path.join(checkpoint_dir, f"fig6_{lib.style}.npz"),
                chunk_size=chunk_size, telemetry=telemetry)
            results[lib.style] = campaign.run_checkpointed(
                runner, plaintexts, workers=workers, backend=backend)
    return Fig6Result(results=results, key=key)


@dataclass
class ResolutionAblation:
    """CPA outcome vs instrument resolution (PG-MCML target)."""

    rows: List[Dict[str, float]]


def resolution_ablation(key: int = DEFAULT_KEY,
                        resolutions=(uA(1.0), uA(0.1), uA(0.01), 0.0),
                        noise_sigma: float = 0.0,
                        mismatch_seed: int = 0,
                        workers: int = 1,
                        backend: str = "auto") -> ResolutionAblation:
    """Sweep the probe resolution against the PG-MCML implementation.

    With an impossibly ideal probe (no noise, no quantisation) the
    mismatch residuals eventually become visible — resistance is
    quantitative, not absolute, exactly as the side-channel literature
    insists.  The paper's 1 µA instrument sits far on the safe side.
    """
    lib = build_pg_mcml_library()
    rows: List[Dict[str, float]] = []
    for resolution in resolutions:
        chain = MeasurementChain(noise_sigma=noise_sigma,
                                 resolution=resolution)
        campaign = AttackCampaign(lib, key, chain=chain,
                                  mismatch_seed=mismatch_seed)
        outcome = campaign.run(workers=workers, backend=backend)
        rows.append({
            "resolution_ua": resolution * 1e6,
            "rank": outcome.rank,
            "succeeded": float(outcome.succeeded),
            "true_peak": float(outcome.cpa.peak_per_guess[key]),
        })
    return ResolutionAblation(rows=rows)


def main(key: int = DEFAULT_KEY, telemetry=None) -> Fig6Result:
    tele = telemetry if telemetry is not None else default_telemetry()
    result = run(key, telemetry=telemetry)
    rows = []
    for style in ("cmos", "mcml", "pgmcml"):
        res = result.results[style]
        peaks = res.cpa.peak_per_guess
        rows.append([
            style.upper(),
            "KEY RECOVERED" if res.succeeded else "resists",
            str(res.rank),
            f"{peaks[key]:.4f}",
            f"{np.delete(peaks, key).max():.4f}",
            f"{result.distinguishability(style):.3f}",
        ])
    tele.progress(f"Fig. 6: CPA with HW(S-box out) model, key={key:#04x}, "
                  f"256 plaintexts, 1 uA probe")
    print_table(rows, ["Style", "outcome", "true-key rank", "true peak rho",
                       "best wrong rho", "margin"], emit=tele.progress)
    verdict = "matches the paper" if result.matches_paper() else "MISMATCH"
    tele.progress(f"outcome pattern {verdict}: "
                  "CMOS broken, MCML/PG-MCML resist")
    from .plotting import render_fig6
    tele.progress("\nPG-MCML (the published figure -- black line buried):")
    tele.progress(render_fig6(result, "pgmcml"))
    tele.progress("\nCMOS (what the attacker wants to see):")
    tele.progress(render_fig6(result, "cmos"))
    return result


if __name__ == "__main__":
    main()
