"""Table 2: area and delay of the 16 PG-MCML library cells.

Two layers of reproduction:

* the **datasheet** layer — our library's areas come from the site-count
  layout model and must match the published µm² exactly; the published
  delays are carried as the datasheet values;
* the **characterisation** layer — for the combinational cells whose
  generated netlists our SPICE engine simulates quickly, we re-derive
  delay, swing and tail current from transistor-level transients and
  report them against the paper's column (shape agreement: ordering and
  roughly proportional magnitudes; our generic 90 nm models are not the
  authors' PDK).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..cells import (
    build_cmos_library,
    build_pg_mcml_library,
    function,
    PgMcmlCellGenerator,
    solve_bias,
    characterize_mcml_cell,
)
from ..cells.library import (
    PAPER_AREA_RATIOS,
    PAPER_PG_DELAYS,
    PG_MCML_CELL_NAMES,
)
from ..units import uA
from ..obs import default_telemetry
from .runner import print_table

#: Cells characterised at transistor level by default (small, fast nets;
#: the deeper cells take several seconds each and are exercised by the
#: benchmark, not the default run).
DEFAULT_SPICE_CELLS = ("BUF", "AND2", "XOR2", "MUX2")


@dataclass
class Table2Row:
    cell: str
    area_um2: float
    paper_delay_ps: float
    area_ratio: Optional[float]
    paper_ratio: Optional[float]
    spice_delay_ps: Optional[float] = None
    spice_swing_v: Optional[float] = None
    spice_iss_ua: Optional[float] = None


@dataclass
class Table2Result:
    rows: List[Table2Row]
    mean_ratio: float

    def row_for(self, cell: str) -> Table2Row:
        for row in self.rows:
            if row.cell == cell:
                return row
        raise KeyError(cell)


def run(spice_cells: Tuple[str, ...] = DEFAULT_SPICE_CELLS,
        iss: float = uA(50)) -> Table2Result:
    pg = build_pg_mcml_library()
    cmos = build_cmos_library()

    bias = solve_bias(iss, gated=True) if spice_cells else None
    generator = PgMcmlCellGenerator(sizing=bias.sizing) if bias else None

    rows: List[Table2Row] = []
    ratios: List[float] = []
    for name in PG_MCML_CELL_NAMES:
        cell = pg.cell(name)
        ratio = None
        if name in PAPER_AREA_RATIOS and name in cmos:
            ratio = cell.area_um2 / cmos.cell(name).area_um2
            ratios.append(ratio)
        row = Table2Row(
            cell=name,
            area_um2=cell.area_um2,
            paper_delay_ps=PAPER_PG_DELAYS[name] * 1e12,
            area_ratio=ratio,
            paper_ratio=PAPER_AREA_RATIOS.get(name),
        )
        if generator is not None and name in spice_cells:
            meas = characterize_mcml_cell(function(name), generator)
            row.spice_delay_ps = meas.delay * 1e12
            row.spice_swing_v = meas.swing
            row.spice_iss_ua = meas.iss * 1e6
        rows.append(row)
    mean_ratio = sum(ratios) / len(ratios)
    return Table2Result(rows=rows, mean_ratio=mean_ratio)


def main(spice_cells: Tuple[str, ...] = DEFAULT_SPICE_CELLS,
         telemetry=None) -> Table2Result:
    tele = telemetry if telemetry is not None else default_telemetry()
    result = run(spice_cells)
    table = []
    for r in result.rows:
        table.append([
            r.cell,
            f"{r.area_um2:.4f}",
            f"{r.paper_delay_ps:.2f}",
            "-" if r.spice_delay_ps is None else f"{r.spice_delay_ps:.2f}",
            "-" if r.area_ratio is None else f"{r.area_ratio:.2f}",
            "-" if r.paper_ratio is None else f"{r.paper_ratio:.1f}",
        ])
    tele.progress("Table 2: PG-MCML library (areas exact; delays: paper "
                  "datasheet vs our SPICE characterisation)")
    print_table(table, ["Cell", "Area [um2]", "paper delay [ps]",
                        "SPICE delay [ps]", "MCML/CMOS area", "paper ratio"],
                emit=tele.progress)
    tele.progress(f"mean PG-MCML/CMOS area ratio: {result.mean_ratio:.3f} "
                  f"(paper: 1.6x average)")
    return result


if __name__ == "__main__":
    main()
