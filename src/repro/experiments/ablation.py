"""Design-choice ablations (§4 and §5 replayed quantitatively).

* **Topology study** — Fig. 2's four power-gating candidates, simulated
  at transistor level on the buffer cell: active current accuracy, sleep
  leakage, wake time, and device overhead.  The paper rejects (a) and
  (b) for wake-up speed/cost and (c) for bias range and well area,
  keeping (d); the numbers here show why.

* **Vt-flavour study** — §5 assigns high-Vt to the NMOS network, tail
  and sleep devices and low-Vt to the PMOS loads.  Sweeping the
  assignment shows the trade: low-Vt everywhere wakes the same but leaks
  orders of magnitude more in sleep; high-Vt loads would need to be
  wider (slower cell) for the same resistance.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from ..cells import (
    McmlSizing,
    PgMcmlCellGenerator,
    PowerGateTopology,
    function,
    solve_bias,
)
from ..cells.pgmcml import gating_overhead
from ..spice import DC, Pulse, run_transient, solve_dc
from ..tech import TECH90
from ..units import nA, ns, ps, uA
from ..obs import default_telemetry
from .runner import print_table


@dataclass
class TopologyPoint:
    topology: PowerGateTopology
    active_current: float
    sleep_current: float
    wake_time: Optional[float]
    extra_transistors: int
    note: str

    @property
    def on_off_ratio(self) -> float:
        return self.active_current / max(self.sleep_current, 1e-15)


@dataclass
class TopologyAblation:
    points: List[TopologyPoint]

    def point(self, topology: PowerGateTopology) -> TopologyPoint:
        for p in self.points:
            if p.topology is topology:
                return p
        raise KeyError(topology)

    def chosen_is_best(self) -> bool:
        """Does (d) dominate: fast wake, huge on/off ratio, one device?

        Topologies (a)/(b) may never reach 90 % of the active current
        within the simulated window (``wake_time is None``) — that *is*
        the slow-wake failure the paper rejects them for.
        """
        d = self.point(PowerGateTopology.SERIES_SLEEP)
        a = self.point(PowerGateTopology.BIAS_PULLDOWN)
        d_fast = d.wake_time is not None and d.wake_time < 0.5e-9
        a_slow = a.wake_time is None or a.wake_time > 2.0 * (d.wake_time or 0)
        return d_fast and a_slow and d.on_off_ratio > 1e3


def _testbench(topology: PowerGateTopology, sizing: McmlSizing,
               sleep_stimulus, tech=TECH90):
    """Buffer cell + sources; returns (circuit, sleep-ish net name)."""
    generator = PgMcmlCellGenerator(tech, sizing, topology)
    cell = generator.build(function("BUF"))
    ckt = cell.circuit
    ckt.v("vdd", cell.vdd_net, tech.vdd)
    ckt.v("vvp", cell.vp_net, sizing.vp)
    inp, inn = cell.input_nets["A"]
    ckt.v("vinp", inp, DC(sizing.input_high(tech)))
    ckt.v("vinn", inn, DC(sizing.input_low(tech)))
    if topology in (PowerGateTopology.BIAS_PULLDOWN,
                    PowerGateTopology.BIAS_SWITCH):
        # Bias-path topologies: Vn is supplied; the pulldown is driven
        # by the complement control (high = sleep).
        ckt.v("vvn", cell.vn_net, sizing.vn)
        ckt.v("vctl", "sleep_b", sleep_stimulus(invert=True))
    elif topology is PowerGateTopology.BODY_BIAS:
        # ON signal on the tail gate; Vn is the (wide-range) bulk bias.
        ckt.v("vvn", cell.vn_net, DC(-0.5))
        ckt.v("vctl", cell.sleep_net, sleep_stimulus(invert=False))
    else:
        ckt.v("vvn", cell.vn_net, sizing.vn)
        ckt.v("vctl", cell.sleep_net, sleep_stimulus(invert=False))
    return ckt


def run_topologies(iss: float = uA(50)) -> TopologyAblation:
    bias = solve_bias(iss, gated=True)
    sizing = bias.sizing
    tech = TECH90
    points: List[TopologyPoint] = []
    for topology in PowerGateTopology:
        def dc_level(active: bool):
            def make(invert: bool):
                on = 0.0 if invert else tech.vdd
                off = tech.vdd if invert else 0.0
                return DC(on if active else off)
            return make

        ckt_on = _testbench(topology, sizing, dc_level(True))
        active = solve_dc(ckt_on).current("vdd")
        ckt_off = _testbench(topology, sizing, dc_level(False))
        sleep = solve_dc(ckt_off).current("vdd")

        # Wake transient: sleep -> active at t = 1 ns.
        def pulse(invert: bool):
            lo, hi = (tech.vdd, 0.0) if invert else (0.0, tech.vdd)
            return Pulse(lo, hi, ns(1.0), ps(50), ps(50), ns(19), 0.0)

        ckt_tr = _testbench(topology, sizing, lambda invert: pulse(invert))
        result = run_transient(ckt_tr, tstop=ns(10.0), dt=ps(10.0))
        supply = result.current("vdd")
        target = sleep + 0.9 * (active - sleep)
        crossing = supply.first_crossing(target, edge="rise", after=ns(1.0))
        wake = None if crossing is None else crossing - ns(1.0)

        overhead = gating_overhead(topology)
        points.append(TopologyPoint(
            topology=topology, active_current=active, sleep_current=sleep,
            wake_time=wake, extra_transistors=overhead.extra_transistors,
            note=overhead.wake_path))
    return TopologyAblation(points=points)


@dataclass
class VtPoint:
    name: str
    delay: float
    sleep_current: float
    active_current: float


@dataclass
class VtAblation:
    points: List[VtPoint]

    def point(self, name: str) -> VtPoint:
        for p in self.points:
            if p.name == name:
                return p
        raise KeyError(name)


def run_vt_flavors(iss: float = uA(50)) -> VtAblation:
    from ..cells import characterize_mcml_cell, measure_leakage

    bias = solve_bias(iss, gated=True)
    base = bias.sizing
    variants = {
        "paper mix (hvt core, lvt loads)": base,
        "all low-Vt": replace(base, pair_flavor="nmos_lvt",
                              tail_flavor="nmos_lvt",
                              sleep_flavor="nmos_lvt",
                              load_flavor="pmos_lvt"),
        "all high-Vt": replace(base, pair_flavor="nmos_hvt",
                               tail_flavor="nmos_hvt",
                               sleep_flavor="nmos_hvt",
                               load_flavor="pmos_hvt"),
    }
    fn = function("BUF")
    points: List[VtPoint] = []
    for name, sizing in variants.items():
        generator = PgMcmlCellGenerator(sizing=sizing)
        meas = characterize_mcml_cell(fn, generator, fanout=1)
        sleep = measure_leakage(fn, generator, asleep=True)
        points.append(VtPoint(name=name, delay=meas.delay,
                              sleep_current=sleep,
                              active_current=meas.iss))
    return VtAblation(points=points)


@dataclass
class TemperaturePoint:
    temp_k: float
    sleep_current: float
    active_current: float

    @property
    def on_off_ratio(self) -> float:
        return self.active_current / max(self.sleep_current, 1e-15)


@dataclass
class TemperatureStudy:
    points: List[TemperaturePoint]

    def point(self, temp_k: float) -> TemperaturePoint:
        for p in self.points:
            if abs(p.temp_k - temp_k) < 0.5:
                return p
        raise KeyError(temp_k)

    def leakage_growth(self) -> float:
        """Sleep-leakage ratio between the hottest and coolest points."""
        pts = sorted(self.points, key=lambda p: p.temp_k)
        return pts[-1].sleep_current / max(pts[0].sleep_current, 1e-15)


#: Threshold temperature coefficient, V/K (Vt drops as the die heats).
VT_TEMP_COEFF = -1.0e-3


def run_temperature(temps_k=(300.0, 340.0, 380.0),
                    iss: float = uA(50)) -> TemperatureStudy:
    """Sleep leakage vs die temperature for the PG-MCML buffer.

    Battery devices spend their lives asleep, so the *hot* sleep
    leakage bounds the standby battery life.  Subthreshold current
    grows exponentially with temperature through both the thermal
    voltage and the falling threshold; the study verifies the sleep
    mode keeps a healthy on/off ratio across the industrial range.
    The cell is biased once at 300 K (as a real chip would be) and then
    measured hot.
    """
    from ..cells import PgMcmlCellGenerator, function, measure_leakage
    from ..tech import Technology

    bias = solve_bias(iss, gated=True)
    base = TECH90
    points: List[TemperaturePoint] = []
    for temp in temps_k:
        dvt = VT_TEMP_COEFF * (temp - 300.0)
        flavors = {name: p.shifted(dvt) if dvt else p
                   for name, p in base.flavors.items()}
        tech = Technology(
            name=f"{base.name}@{temp:.0f}K", vdd=base.vdd, temp_k=temp,
            cell_height=base.cell_height,
            site_width_mcml=base.site_width_mcml,
            site_width_pgmcml=base.site_width_pgmcml,
            site_width_cmos=base.site_width_cmos, cwire=base.cwire,
            swing=base.swing, flavors=flavors)
        generator = PgMcmlCellGenerator(tech, bias.sizing)
        sleep = measure_leakage(function("BUF"), generator, asleep=True,
                                tech=tech)
        active = measure_leakage(function("BUF"), generator, asleep=False,
                                 tech=tech)
        points.append(TemperaturePoint(temp_k=temp, sleep_current=sleep,
                                       active_current=active))
    return TemperatureStudy(points=points)


@dataclass
class GranularityPoint:
    """One power-gating granularity option for an N-cell block."""

    name: str
    area_overhead_pct: float
    wake_time: float
    wakes_whole_block: bool
    ir_drop_mv: float


@dataclass
class GranularityStudy:
    points: List[GranularityPoint]
    n_cells: int

    def point(self, name: str) -> GranularityPoint:
        for p in self.points:
            if p.name == name:
                return p
        raise KeyError(name)


#: Virtual-ground rail capacitance contributed per gated cell, farads.
VIRTUAL_RAIL_CAP_PER_CELL = 15e-15

#: Saturation current per metre of sleep-switch width (high-Vt, 1.2 V
#: overdrive), used to size the coarse switch for an IR-drop budget.
SWITCH_IDSAT_PER_WIDTH = 600.0  # A/m


def run_granularity(n_cells: int = 2216, iss_per_cell: float = uA(50),
                    ir_budget: float = 12e-3) -> GranularityStudy:
    """§4's coarse-vs-fine argument, quantified for the S-box ISE block.

    * **Fine grain** (the paper's choice for MCML): one small series
      device per cell.  Area cost is the Table 1 site delta (+5.6 %);
      wake time is the single-cell constant because every sleep device
      only charges its own tail node; cells could even be gated
      selectively.
    * **Coarse grain** (the CMOS-world default): one external switch
      sized so the full block current drops less than ``ir_budget``
      across it, which makes it enormous; waking must recharge the whole
      virtual rail, so the time constant scales with the block.
    """
    block_current = n_cells * iss_per_cell
    tech = TECH90

    # Fine grain: per-cell series device (Table 1 numbers).
    fine_area_pct = 100.0 * (7.448 / 7.056 - 1.0)
    fine_wake = 0.09e-9  # measured by run_topologies() for one cell
    # Each cell's sleep device carries exactly its own Iss; the series
    # drop is the same few millivolts for every cell by construction.
    fine_ir = 5.0

    # Coarse grain: switch conductance must satisfy the IR budget at the
    # full block current.
    switch_width = block_current / (SWITCH_IDSAT_PER_WIDTH
                                    * (ir_budget / tech.vdd))
    switch_area = switch_width * 8 * 0.1e-6  # folded fingers, metres^2
    block_area = n_cells * 8.9376e-12  # mean MCML cell, metres^2
    coarse_area_pct = 100.0 * switch_area / block_area
    rail_cap = n_cells * VIRTUAL_RAIL_CAP_PER_CELL
    # The giant switch could slam the rail instantly, but the inrush
    # into the shared supply network is a fixed system-level budget
    # (staggered turn-on in every commercial coarse-grain flow), so the
    # wake time grows with the block's rail capacitance.
    inrush = 10e-3  # amperes, the supply network's di/dt budget
    coarse_wake = rail_cap * tech.vdd / inrush
    points = [
        GranularityPoint("fine (per cell)", fine_area_pct, fine_wake,
                         wakes_whole_block=False, ir_drop_mv=fine_ir),
        GranularityPoint("coarse (per block)", coarse_area_pct,
                         coarse_wake, wakes_whole_block=True,
                         ir_drop_mv=ir_budget * 1e3),
    ]
    return GranularityStudy(points=points, n_cells=n_cells)


def main(telemetry=None) -> Tuple[TopologyAblation, VtAblation]:
    tele = telemetry if telemetry is not None else default_telemetry()
    topo = run_topologies()
    rows = []
    for p in topo.points:
        rows.append([
            f"({p.topology.value})",
            f"{p.active_current * 1e6:.2f}",
            f"{p.sleep_current * 1e9:.3f}",
            "-" if p.wake_time is None else f"{p.wake_time * 1e9:.2f}",
            str(p.extra_transistors),
            p.note[:52],
        ])
    tele.progress("Fig. 2 topology ablation (buffer cell, 50 uA target)")
    print_table(rows, ["topo", "Ion[uA]", "Isleep[nA]", "wake[ns]",
                       "extra T", "wake path"], emit=tele.progress)
    tele.progress(f"(d) dominates: {topo.chosen_is_best()}")

    vt = run_vt_flavors()
    rows = [[p.name, f"{p.delay * 1e12:.2f}",
             f"{p.sleep_current * 1e9:.4f}",
             f"{p.active_current * 1e6:.2f}"] for p in vt.points]
    tele.progress("\nVt-flavour ablation (PG-MCML buffer)")
    print_table(rows, ["assignment", "delay[ps]", "Isleep[nA]", "Ion[uA]"],
                emit=tele.progress)

    gran = run_granularity()
    rows = [[p.name, f"{p.area_overhead_pct:.2f}",
             f"{p.wake_time * 1e9:.2f}",
             "yes" if p.wakes_whole_block else "no",
             f"{p.ir_drop_mv:.1f}"] for p in gran.points]
    tele.progress(f"\nGranularity study ({gran.n_cells}-cell block, §4)")
    print_table(rows, ["granularity", "area ovh [%]", "wake [ns]",
                       "all-or-nothing", "IR drop [mV]"],
                emit=tele.progress)

    temp = run_temperature()
    rows = [[f"{p.temp_k:.0f}", f"{p.sleep_current * 1e9:.3f}",
             f"{p.active_current * 1e6:.1f}",
             f"{p.on_off_ratio:,.0f}"] for p in temp.points]
    tele.progress("\nSleep leakage vs die temperature (PG-MCML buffer)")
    print_table(rows, ["T [K]", "Isleep [nA]", "Ion [uA]", "on/off"],
                emit=tele.progress)
    tele.progress(f"leakage grows {temp.leakage_growth():.0f}x over the "
                  f"range but the gate stays >10^3 off")
    return topo, vt


if __name__ == "__main__":
    main()
