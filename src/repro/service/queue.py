"""The job queue: submit / claim-under-lease / heartbeat / complete.

All queue state lives in the :class:`~repro.service.ledger.JobLedger`;
this class is the transaction layer on top — each public operation is
one locked read-modify-append against the ledger, so any number of
worker processes, one supervisor, and ``ledgerctl`` can share a queue
with no daemon in between.

Failure semantics (proven by the chaos suite):

* a claim grants a **lease** with a TTL; the worker heartbeats to renew
  it.  A worker that dies silently simply stops renewing, and
  :meth:`JobQueue.reap` requeues the chunk once the TTL passes;
* every grant counts as an **attempt**; failed/reaped chunks requeue
  under capped exponential backoff with deterministic jitter (hashed
  from the chunk coordinates — no RNG, so replays schedule
  identically);
* after ``max_attempts`` grants a chunk is **quarantined** (the poison
  chunk stops burning workers); :meth:`gather` then raises
  ``E_JOB_POISONED`` with the last error in context;
* completions and heartbeats from a lease that was reaped raise
  ``E_JOB_LEASE`` back at the worker, which discards its work —
  harmless, because the replacement worker produced the identical
  bytes into the same content address.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import JobError, JobLeaseError, JobPoisonedError
from ..obs import NULL_TELEMETRY
from .ledger import ChunkState, JobLedger, JobState
from .spec import CampaignJobSpec
from .store import ResultStore, chunk_key


@dataclass(frozen=True)
class Lease:
    """One granted chunk: everything a worker needs to run it."""

    job_id: str
    chunk: int
    worker: str
    attempt: int
    expires: float
    spec: CampaignJobSpec
    key: str  #: content address of this chunk's result

    @property
    def bounds(self) -> Tuple[int, int]:
        return self.spec.chunk_bounds(self.chunk)


class JobQueue:
    """Transactional queue operations over a shared ledger + store."""

    def __init__(self, ledger: JobLedger, store: ResultStore,
                 lease_ttl: float = 30.0, max_attempts: int = 4,
                 backoff_base: float = 0.5, backoff_cap: float = 30.0,
                 clock=time.time, telemetry=None):
        self.ledger = ledger
        self.store = store
        self.lease_ttl = float(lease_ttl)
        self.max_attempts = int(max_attempts)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.clock = clock
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY

    # -- scheduling arithmetic --------------------------------------------

    def backoff(self, job_id: str, chunk: int, attempt: int) -> float:
        """Capped exponential delay with deterministic jitter.

        The jitter is hashed from the chunk coordinates rather than
        drawn from an RNG: retries de-synchronise across chunks (no
        thundering herd after a mass lease expiry) while a replayed
        supervisor schedules the exact same instants.
        """
        delay = min(self.backoff_cap,
                    self.backoff_base * (2.0 ** max(0, attempt - 1)))
        jitter = zlib.crc32(f"{job_id}|{chunk}|{attempt}".encode()) \
            / 2.0 ** 32
        return delay + 0.5 * jitter * delay

    # -- operations --------------------------------------------------------

    def submit(self, spec: CampaignJobSpec) -> Tuple[str, bool]:
        """Register a job; returns ``(job_id, deduped)``.

        The job id is the fingerprint hash, so resubmitting an
        identical spec finds the existing job — its done chunks, its
        stored results — instead of queueing duplicate work.
        """
        job_id = spec.job_id
        with self.ledger.lock():
            state = self.ledger.refresh()
            if job_id in state.jobs:
                self.telemetry.event("service.submit", job=job_id,
                                     deduped=True)
                return job_id, True
            self.ledger.append({
                "kind": "job", "job": job_id, "spec": spec.to_dict(),
                "fingerprint": spec.fingerprint(),
                "n_chunks": spec.n_chunks, "t": float(self.clock()),
            })
        self.telemetry.event("service.submit", job=job_id, deduped=False,
                             n_chunks=spec.n_chunks)
        return job_id, False

    def claim(self, worker: str) -> Optional[Lease]:
        """Grant the next runnable chunk to ``worker``, or ``None``.

        Jobs are served in submission order, chunks in index order;
        chunks inside their backoff window are skipped.  The grant is
        one ``lease`` record, so a crash after claim is indistinguishable
        from a silent worker death: the TTL expires and the reaper
        requeues.
        """
        now = float(self.clock())
        with self.ledger.lock():
            state = self.ledger.refresh()
            for job in sorted(state.jobs.values(),
                              key=lambda j: (j.submitted, j.job_id)):
                for index in range(job.n_chunks):
                    chunk = job.chunks[index]
                    if chunk.state != "pending" or chunk.not_before > now:
                        continue
                    attempt = chunk.attempt + 1
                    expires = now + self.lease_ttl
                    self.ledger.append({
                        "kind": "lease", "job": job.job_id,
                        "chunk": index, "worker": worker,
                        "attempt": attempt, "expires": expires,
                    })
                    spec = CampaignJobSpec.from_dict(job.spec)
                    self.telemetry.event(
                        "service.claim", job=job.job_id, chunk=index,
                        worker=worker, attempt=attempt)
                    return Lease(job_id=job.job_id, chunk=index,
                                 worker=worker, attempt=attempt,
                                 expires=expires, spec=spec,
                                 key=chunk_key(job.fingerprint, index))
        return None

    def _held_chunk(self, lease: Lease, verb: str) -> ChunkState:
        state = self.ledger.refresh()
        job = state.jobs.get(lease.job_id)
        chunk = job.chunks.get(lease.chunk) if job else None
        if chunk is None or chunk.state != "leased" \
                or chunk.worker != lease.worker \
                or chunk.attempt != lease.attempt:
            raise JobLeaseError(
                f"cannot {verb} chunk {lease.chunk} of {lease.job_id}: "
                f"lease for worker {lease.worker!r} (attempt "
                f"{lease.attempt}) is no longer held",
                context={"job": lease.job_id, "chunk": lease.chunk,
                         "worker": lease.worker,
                         "attempt": lease.attempt,
                         "current": chunk.to_dict() if chunk else None})
        return chunk

    def heartbeat(self, lease: Lease) -> float:
        """Renew a lease; returns the new expiry.

        Raises ``E_JOB_LEASE`` if the lease was reaped — the worker
        should abandon the chunk (its eventual result is redundant).
        """
        now = float(self.clock())
        with self.ledger.lock():
            self._held_chunk(lease, "renew")
            expires = now + self.lease_ttl
            self.ledger.append({
                "kind": "renew", "job": lease.job_id,
                "chunk": lease.chunk, "worker": lease.worker,
                "expires": expires,
            })
        return expires

    def complete(self, lease: Lease, digest: str) -> None:
        """Commit a chunk: its result is in the store under ``digest``."""
        with self.ledger.lock():
            self._held_chunk(lease, "complete")
            self.ledger.append({
                "kind": "done", "job": lease.job_id,
                "chunk": lease.chunk, "worker": lease.worker,
                "digest": digest,
            })
        self.telemetry.event("service.complete", job=lease.job_id,
                             chunk=lease.chunk, worker=lease.worker)

    def fail(self, lease: Lease, error: Dict) -> str:
        """Record a failed attempt; returns ``"requeued"`` or
        ``"quarantined"``.

        ``error`` is a JSON-safe description (typically
        :meth:`~repro.errors.ReproError.to_dict`).  The chunk requeues
        under backoff until ``max_attempts`` grants have burned, then
        quarantines.
        """
        now = float(self.clock())
        with self.ledger.lock():
            self._held_chunk(lease, "fail")
            if lease.attempt >= self.max_attempts:
                self.ledger.append({
                    "kind": "quarantine", "job": lease.job_id,
                    "chunk": lease.chunk, "attempt": lease.attempt,
                    "error": error,
                })
                outcome = "quarantined"
            else:
                self.ledger.append({
                    "kind": "failed", "job": lease.job_id,
                    "chunk": lease.chunk, "attempt": lease.attempt,
                    "not_before": now + self.backoff(
                        lease.job_id, lease.chunk, lease.attempt),
                    "error": error,
                })
                outcome = "requeued"
        self.telemetry.event(f"service.{outcome}", job=lease.job_id,
                             chunk=lease.chunk, attempt=lease.attempt,
                             code=error.get("error_code"))
        return outcome

    def reap(self) -> List[Tuple[str, int, str]]:
        """Requeue (or quarantine) every expired lease.

        The supervisor calls this periodically.  Returns
        ``[(job, chunk, outcome), ...]`` for what changed.  An expiry
        consumes the attempt its lease was granted with, so a poison
        chunk that kills its worker every time still quarantines after
        ``max_attempts`` grants.
        """
        now = float(self.clock())
        reaped: List[Tuple[str, int, str]] = []
        with self.ledger.lock():
            state = self.ledger.refresh()
            for job in state.jobs.values():
                for index, chunk in job.chunks.items():
                    if chunk.state != "leased" or chunk.expires > now:
                        continue
                    error = {"error_code": "E_JOB_LEASE",
                             "message": "lease expired (worker dead or "
                                        "stalled)",
                             "worker": chunk.worker}
                    if chunk.attempt >= self.max_attempts:
                        self.ledger.append({
                            "kind": "quarantine", "job": job.job_id,
                            "chunk": index, "attempt": chunk.attempt,
                            "error": error,
                        })
                        outcome = "quarantined"
                    else:
                        self.ledger.append({
                            "kind": "requeue", "job": job.job_id,
                            "chunk": index, "attempt": chunk.attempt,
                            "not_before": now + self.backoff(
                                job.job_id, index, chunk.attempt),
                        })
                        outcome = "requeued"
                    reaped.append((job.job_id, index, outcome))
        for job_id, index, outcome in reaped:
            self.telemetry.event("service.reap", job=job_id, chunk=index,
                                 outcome=outcome)
        return reaped

    def requeue(self, job_id: str, chunk: int,
                force: bool = False) -> None:
        """Operator requeue (``ledgerctl``): reset a chunk to pending.

        Resets the attempt budget.  ``force`` also requeues a ``done``
        chunk (recompute-and-overwrite; safe, the bytes are identical).
        """
        with self.ledger.lock():
            state = self.ledger.refresh()
            job = state.jobs.get(job_id)
            if job is None:
                raise JobError(f"unknown job {job_id!r}")
            if chunk not in job.chunks:
                raise JobError(
                    f"job {job_id} has no chunk {chunk}",
                    context={"n_chunks": job.n_chunks})
            if job.chunks[chunk].state == "done" and not force:
                raise JobError(
                    f"chunk {chunk} of {job_id} is done; use force to "
                    f"recompute")
            self.ledger.append({
                "kind": "requeue", "job": job_id, "chunk": chunk,
                "attempt": 0, "not_before": 0.0, "force": bool(force),
            })

    # -- inspection --------------------------------------------------------

    def _job(self, job_id: str) -> JobState:
        state = self.ledger.refresh()
        job = state.jobs.get(job_id)
        if job is None:
            raise JobError(f"unknown job {job_id!r}",
                           context={"known": sorted(state.jobs)})
        return job

    def status(self, job_id: str) -> Dict:
        """One job's state, counts, and per-chunk detail."""
        with self.ledger.lock():
            job = self._job(job_id)
            return {
                "job": job.job_id,
                "state": job.state,
                "n_chunks": job.n_chunks,
                "counts": job.counts(),
                "spec": dict(job.spec),
                "chunks": {str(i): c.to_dict()
                           for i, c in job.chunks.items()},
            }

    def jobs(self) -> List[Dict]:
        """Summaries of every job, in submission order."""
        with self.ledger.lock():
            state = self.ledger.refresh()
            return [{"job": job.job_id, "state": job.state,
                     "n_chunks": job.n_chunks, "counts": job.counts(),
                     "submitted": job.submitted}
                    for job in sorted(state.jobs.values(),
                                      key=lambda j: (j.submitted,
                                                     j.job_id))]

    def gather(self, job_id: str) -> np.ndarray:
        """The job's full trace matrix, rows in campaign order.

        Raises ``E_JOB_POISONED`` if any chunk is quarantined (the last
        error rides in context) and ``E_JOB`` if the job is incomplete
        or a stored chunk fails its integrity check.
        """
        with self.ledger.lock():
            job = self._job(job_id)
            fingerprint = job.fingerprint
            chunks = {i: c.to_dict() for i, c in job.chunks.items()}
        poisoned = {i: c for i, c in chunks.items()
                    if c["state"] == "quarantined"}
        if poisoned:
            first = min(poisoned)
            raise JobPoisonedError(
                f"job {job_id}: {len(poisoned)} chunk(s) quarantined "
                f"after repeated failures (first: chunk {first})",
                context={"job": job_id,
                         "chunks": sorted(poisoned),
                         "error": poisoned[first]["error"]})
        undone = [i for i, c in chunks.items() if c["state"] != "done"]
        if undone:
            raise JobError(
                f"job {job_id} is not complete: {len(undone)} chunk(s) "
                f"outstanding", context={"job": job_id,
                                         "chunks": undone[:16]})
        blocks: List[np.ndarray] = []
        for index in sorted(chunks):
            rows = self.store.get(chunk_key(fingerprint, index))
            if rows is None:
                raise JobError(
                    f"job {job_id} chunk {index}: stored result missing "
                    f"or failed integrity check (requeue it)",
                    context={"job": job_id, "chunk": index,
                             "key": chunk_key(fingerprint, index)})
            blocks.append(rows)
        return np.vstack(blocks)
