"""The fault-tolerant campaign job service.

Campaigns used to be one CLI process on one machine: a host crash threw
away everything not yet in an NPZ checkpoint, and a million-trace TVLA
sweep had no way to shard across hosts.  This package turns the
simulator into a **stateless worker behind a durable queue**:

* :class:`~repro.service.spec.CampaignJobSpec` — a JSON-serialisable
  description of one traceset campaign (style, corner, noise, budget,
  schedule, die), chunked on the same index-addressed protocol the
  acquisition pool uses.  Every derived quantity (plaintexts, noise
  entropy, mismatch die) is a pure function of the spec, shared with
  :mod:`repro.sca.matrix`, so sharded work is byte-identical to a
  serial run.
* :class:`~repro.service.ledger.JobLedger` — a crash-durable, fsync'd,
  crc-guarded JSONL ledger of job and per-chunk state-machine records
  (``pending → leased → done/failed``), replayable after any kill.
* :class:`~repro.service.store.ResultStore` — a content-addressed NPZ
  store keyed by ``(campaign fingerprint, chunk index)``: duplicate,
  resubmitted, or crash-replayed work dedupes to a cache hit.
* :class:`~repro.service.queue.JobQueue` — submit / claim-under-lease /
  heartbeat / complete / fail, with a supervisor reaper that requeues
  expired leases under capped exponential backoff and quarantines
  poison chunks with ``E_JOB_*`` codes after a bounded attempt budget.
* :class:`~repro.service.worker.ServiceWorker` — the stateless worker
  loop (any process on any host with the ledger and store paths).
* :class:`~repro.service.api.JobService` — a stdlib-asyncio HTTP API:
  submit a spec, poll status, tail progress events from the obs JSONL.

CLI: ``repro serve`` / ``repro submit`` / ``repro jobs`` /
``repro worker`` (see :mod:`repro.service.cli`).
"""

from .ledger import ChunkState, JobLedger, LedgerState
from .queue import JobQueue, Lease
from .spec import CampaignJobSpec, expand_matrix
from .store import ResultStore
from .worker import ServiceWorker, worker_main
from .api import JobService

__all__ = [
    "CampaignJobSpec",
    "ChunkState",
    "JobLedger",
    "JobQueue",
    "JobService",
    "Lease",
    "LedgerState",
    "ResultStore",
    "ServiceWorker",
    "expand_matrix",
    "worker_main",
]
