"""Content-addressed result store for campaign chunks.

A chunk's traces are a pure function of ``(campaign fingerprint,
chunk index)`` — counter-based noise, deterministic mismatch — so those
logical coordinates *are* the content address.  Keys are

    sha256(canonical_json([fingerprint, chunk_index]))

and entries live at ``root/<digest[:2]>/<digest>.npz``.  Duplicate job
submissions, crash-replayed chunks, and requeued leases all hash to the
same key and dedupe to a cache hit instead of a recompute.

Writes use the checkpoint discipline (fsync'd temp → ``os.replace`` →
directory fsync) and are idempotent: a second put of the same key is a
no-op, and a half-written temp file can never shadow a committed entry.
Reads verify an embedded row digest and the key itself before trusting
an entry; anything torn or foreign reads as a miss.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import zipfile
from typing import Dict, List, Optional

import numpy as np

from ..experiments.runner import _fsync_directory
from .spec import canonical_json


def chunk_key(fingerprint: Dict, chunk_index: int) -> str:
    """The content address of one chunk of one campaign."""
    payload = canonical_json([fingerprint, int(chunk_index)])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _rows_digest(rows: np.ndarray) -> str:
    h = hashlib.sha256()
    h.update(str(rows.dtype).encode())
    h.update(str(rows.shape).encode())
    h.update(np.ascontiguousarray(rows).tobytes())
    return h.hexdigest()


class ResultStore:
    """Content-addressed NPZ store under one root directory.

    Safe for concurrent writers without any locking: every writer of a
    given key produces the same bytes (determinism), and the atomic
    rename means the last replace wins with an identical file.
    """

    def __init__(self, root):
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".npz")

    def has(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def put(self, key: str, rows: np.ndarray) -> str:
        """Durably store ``rows`` under ``key``; idempotent."""
        path = self._path(key)
        if os.path.exists(path):
            return path
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        rows = np.asarray(rows)
        fd, tmp = tempfile.mkstemp(suffix=".npz", dir=directory)
        try:
            with os.fdopen(fd, "wb") as handle:
                fd = None
                np.savez(handle, rows=rows,
                         key=np.array(key),
                         digest=np.array(_rows_digest(rows)))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            _fsync_directory(directory)
        except BaseException:
            if fd is not None:
                os.close(fd)
            if os.path.exists(tmp):
                os.remove(tmp)
            raise
        return path

    def get(self, key: str) -> Optional[np.ndarray]:
        """The rows stored under ``key``, or ``None``.

        Integrity-checked: a torn, truncated, or mislabeled entry reads
        as a miss (the caller recomputes — determinism makes that safe),
        never as wrong data.
        """
        path = self._path(key)
        if not os.path.exists(path):
            return None
        try:
            with np.load(path, allow_pickle=False) as archive:
                rows = np.array(archive["rows"])
                stored_key = str(archive["key"])
                digest = str(archive["digest"])
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            return None
        if stored_key != key or _rows_digest(rows) != digest:
            return None
        return rows

    def keys(self) -> List[str]:
        found: List[str] = []
        for sub in sorted(os.listdir(self.root)):
            subdir = os.path.join(self.root, sub)
            if not os.path.isdir(subdir):
                continue
            for name in sorted(os.listdir(subdir)):
                if name.endswith(".npz"):
                    found.append(name[:-len(".npz")])
        return found
