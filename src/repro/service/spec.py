"""Campaign job specs: the unit of work the service schedules.

A :class:`CampaignJobSpec` is a fully self-describing, JSON-round-
trippable recipe for one traceset campaign.  Workers are stateless —
every process that holds a spec (and the repo's code) reconstructs the
same netlist, the same measurement chain, the same plaintext schedule
and the same mismatch die, so a chunk computed on any host at any time
is byte-identical to the serial oracle.

The derivations are shared with :mod:`repro.sca.matrix`
(:func:`~repro.sca.matrix.derive_plaintexts` and friends), which is
what lets :func:`expand_matrix` shard a whole attack × countermeasure
grid's acquisitions across hosts while every cell still consumes the
exact bytes an in-process :func:`~repro.sca.matrix.run_matrix` would
have composed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import JobSpecError, ReproError
from ..power import MeasurementChain
from ..sca.matrix import (
    MatrixSpec,
    STYLE_BUILDERS,
    derive_chain_seed,
    derive_mismatch_seed,
    derive_plaintexts,
)
from ..tech import corner as lookup_corner

#: Plaintext disciplines a job may request (mirrors the matrix).
SCHEDULES = ("random", "tvla")

#: Fingerprint format version: bump when anything about how a spec maps
#: to trace bytes changes, so stale result-store entries can never be
#: mistaken for current ones.
FINGERPRINT_KIND = "campaign-traceset-v1"

#: Default traces per chunk (the lease/checkpoint granularity).
DEFAULT_CHUNK_SIZE = 32


def canonical_json(payload) -> str:
    """The one serialisation both job ids and store keys hash."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class CampaignJobSpec:
    """One traceset campaign, chunked for distribution.

    Parameters mirror one :class:`~repro.sca.matrix.MatrixCell`
    traceset coordinate plus the chunking discipline.  ``repeat`` is
    the die index: it selects the Pelgrom mismatch sample and the noise
    entropy, exactly as a grid repeat does.
    """

    style: str
    budget: int
    key: int = 0x3C
    noise: float = 5e-7
    corner: str = "tt"
    schedule: str = "random"
    repeat: int = 0
    base_seed: int = 1234
    chunk_size: int = DEFAULT_CHUNK_SIZE

    def __post_init__(self) -> None:
        if self.style not in STYLE_BUILDERS:
            known = ", ".join(sorted(STYLE_BUILDERS))
            raise JobSpecError(
                f"unknown style {self.style!r}; known: {known}")
        if self.schedule not in SCHEDULES:
            raise JobSpecError(
                f"unknown schedule {self.schedule!r}; "
                f"choose from {SCHEDULES}")
        try:
            lookup_corner(self.corner)
        except ReproError as exc:
            raise JobSpecError(f"unknown corner {self.corner!r}: {exc}")
        if not isinstance(self.budget, int) or self.budget < 8:
            raise JobSpecError(f"trace budget too small: {self.budget}")
        if self.schedule == "tvla" and self.budget % 2 != 0:
            raise JobSpecError(
                f"TVLA budget must be even; got {self.budget}")
        if not 0 <= self.key <= 0xFF:
            raise JobSpecError(f"key byte out of range: {self.key}")
        if self.noise < 0.0:
            raise JobSpecError("noise sigma must be non-negative")
        if self.repeat < 0:
            raise JobSpecError(f"repeat must be >= 0: {self.repeat}")
        if not isinstance(self.chunk_size, int) or self.chunk_size < 1:
            raise JobSpecError(f"chunk_size must be >= 1: {self.chunk_size}")

    # -- derivations (shared with the matrix grid) ------------------------

    def trace_key(self) -> Tuple:
        """The matrix dedupe coordinate this spec corresponds to."""
        return (self.style, self.corner, self.noise, self.budget,
                self.schedule, self.repeat)

    def plaintexts(self) -> List[int]:
        return derive_plaintexts(self.base_seed, self.style, self.corner,
                                 self.budget, self.schedule, self.repeat)

    def chain(self) -> MeasurementChain:
        return MeasurementChain(
            noise_sigma=self.noise,
            seed=derive_chain_seed(self.base_seed, self.trace_key()))

    def mismatch_seed(self) -> int:
        return derive_mismatch_seed(self.base_seed, self.style,
                                    self.corner, self.repeat)

    # -- chunking ---------------------------------------------------------

    @property
    def n_chunks(self) -> int:
        return -(-self.budget // self.chunk_size)

    def chunk_bounds(self, index: int) -> Tuple[int, int]:
        """Campaign-global ``[start, stop)`` trace indices of a chunk."""
        if not 0 <= index < self.n_chunks:
            raise JobSpecError(
                f"chunk index {index} out of range for {self.n_chunks} "
                f"chunks", context={"chunk": index,
                                    "n_chunks": self.n_chunks})
        start = index * self.chunk_size
        return start, min(start + self.chunk_size, self.budget)

    def chunk_plaintexts(self, index: int) -> List[int]:
        start, stop = self.chunk_bounds(index)
        return self.plaintexts()[start:stop]

    # -- identity ---------------------------------------------------------

    def fingerprint(self) -> Dict:
        """Everything that determines the trace bytes of every chunk.

        The content-addressed result store keys on
        ``(fingerprint, chunk index)``; two specs with equal
        fingerprints are the *same work*, which is what makes duplicate
        submission and crash replay dedupe to cache hits.
        """
        return {
            "kind": FINGERPRINT_KIND,
            "style": self.style,
            "corner": self.corner,
            "noise": float(self.noise),
            "budget": self.budget,
            "key": self.key,
            "schedule": self.schedule,
            "repeat": self.repeat,
            "base_seed": self.base_seed,
            "chunk_size": self.chunk_size,
            "noise_scheme": MeasurementChain.SCHEME,
        }

    @property
    def job_id(self) -> str:
        """Stable id derived from the fingerprint: resubmitting an
        identical spec addresses the same job (submission dedupe)."""
        digest = hashlib.sha256(
            canonical_json(self.fingerprint()).encode()).hexdigest()
        return f"job-{digest[:16]}"

    # -- worker-side construction ----------------------------------------

    def build_acquirer(self, telemetry=None):
        """The heavy part: library → netlist → acquirer.

        Runs on the worker (stateless: nothing but the spec crosses the
        process/host boundary).  Imported lazily so holding a spec —
        submitting, listing, gathering — never elaborates a netlist.
        """
        from ..cells import library_at_corner, preflight_library
        from ..spice.erc import erc_enabled
        from ..sca.acquisition import TraceAcquirer
        from ..sca.attack import build_reduced_aes

        base = STYLE_BUILDERS[self.style]()
        if erc_enabled():
            preflight_library(base, telemetry=telemetry)
        library = library_at_corner(base, lookup_corner(self.corner))
        netlist, _outputs = build_reduced_aes(library)
        return TraceAcquirer(netlist, self.key, chain=self.chain(),
                             mismatch_seed=self.mismatch_seed())

    # -- (de)serialisation ------------------------------------------------

    def to_dict(self) -> Dict:
        return {"style": self.style, "budget": self.budget,
                "key": self.key, "noise": self.noise,
                "corner": self.corner, "schedule": self.schedule,
                "repeat": self.repeat, "base_seed": self.base_seed,
                "chunk_size": self.chunk_size}

    @classmethod
    def from_dict(cls, data: Dict) -> "CampaignJobSpec":
        if not isinstance(data, dict):
            raise JobSpecError("job spec must be a JSON object")
        known = {"style", "budget", "key", "noise", "corner", "schedule",
                 "repeat", "base_seed", "chunk_size"}
        extra = set(data) - known
        if extra:
            raise JobSpecError(
                f"unknown job spec keys: {', '.join(sorted(extra))}")
        if "style" not in data or "budget" not in data:
            missing = {"style", "budget"} - set(data)
            raise JobSpecError(
                f"job spec missing keys: {', '.join(sorted(missing))}")
        try:
            return cls(**data)
        except TypeError as exc:
            raise JobSpecError(f"bad job spec: {exc}")

    @classmethod
    def from_json(cls, path: str) -> "CampaignJobSpec":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise JobSpecError(f"cannot load job spec {path!r}: {exc}")
        return cls.from_dict(data)


def expand_matrix(spec: MatrixSpec,
                  chunk_size: int = DEFAULT_CHUNK_SIZE
                  ) -> List[CampaignJobSpec]:
    """One campaign job per unique traceset of a grid.

    The expansion applies the same dedupe the in-process grid runner
    does — cells sharing ``(style, corner, noise, budget, schedule,
    repeat)`` share one acquisition — so an N-attack grid submits one
    job per physical trace set, not per cell.  Gathered job results are
    byte-identical to what :func:`~repro.sca.matrix.run_matrix` would
    have acquired for the same spec.
    """
    jobs: List[CampaignJobSpec] = []
    seen = set()
    for cell in spec.expand():
        for repeat in range(spec.repeats):
            key = cell.trace_key(repeat)
            if key in seen:
                continue
            seen.add(key)
            jobs.append(CampaignJobSpec(
                style=cell.style, budget=cell.budget, key=spec.key,
                noise=cell.noise, corner=cell.corner,
                schedule=cell.schedule, repeat=repeat,
                base_seed=spec.base_seed, chunk_size=chunk_size))
    return jobs
