"""The durable job ledger: fsync'd, crc-guarded, replayable JSONL.

Every mutation of the job queue is one appended line::

    {"crc": <crc32 of the canonical record json>, "rec": {...}}

and the whole queue state is a fold over those lines — there is no
other store.  The discipline mirrors the checkpoint writer
(:class:`repro.experiments.runner.CheckpointedRun`): each append is
flushed and fsync'd before the call returns, so a SIGKILL between any
two appends loses at most work-in-flight, never committed state.

Appends are serialised across *processes* with ``flock`` on the ledger
file itself (workers, the supervisor, and ``ledgerctl`` all mutate one
file), and a read-modify-append transaction (claiming a chunk) holds
the same lock across the whole decision.

Corruption policy — proven by the chaos suite:

* a **torn tail** (kill mid-append) is invisible: only complete lines
  are parsed, and the next append starts on a fresh line;
* a **corrupt chunk record** anywhere (bad json, crc mismatch) is
  skipped and counted; the replay's resulting state is *conservative* —
  a chunk whose ``done`` record was destroyed merely replays as
  ``leased``/``pending``, gets requeued, and the content-addressed
  result store turns the recompute into a cache hit.  Output bytes
  never change;
* a **corrupt or missing job record** is not recoverable (the spec is
  gone) and replay raises :class:`~repro.errors.JobLedgerError` naming
  the orphaned records.
"""

from __future__ import annotations

import io
import json
import os
import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from ..errors import JobLedgerError

#: Every record kind the replay understands.
RECORD_KINDS = ("job", "lease", "renew", "done", "failed", "requeue",
                "quarantine")

#: Chunk states of the per-chunk machine.
CHUNK_STATES = ("pending", "leased", "done", "quarantined")


def _canonical(record: Dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def encode_record(record: Dict) -> str:
    """One ledger line (no trailing newline) with its crc envelope."""
    payload = _canonical(record)
    return _canonical({"crc": zlib.crc32(payload.encode("utf-8")),
                       "rec": json.loads(payload)})


def decode_line(line: str) -> Optional[Dict]:
    """The record in one ledger line, or ``None`` if it is corrupt."""
    try:
        envelope = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(envelope, dict) or "rec" not in envelope:
        return None
    record = envelope.get("rec")
    if not isinstance(record, dict):
        return None
    if envelope.get("crc") != zlib.crc32(
            _canonical(record).encode("utf-8")):
        return None
    if record.get("kind") not in RECORD_KINDS:
        return None
    return record


@dataclass
class ChunkState:
    """One chunk's position in the ``pending → leased → done/failed``
    machine, as replayed from the ledger."""

    state: str = "pending"
    attempt: int = 0
    worker: Optional[str] = None
    expires: float = 0.0
    not_before: float = 0.0
    digest: Optional[str] = None
    error: Optional[Dict] = None

    def to_dict(self) -> Dict:
        return {"state": self.state, "attempt": self.attempt,
                "worker": self.worker, "expires": self.expires,
                "not_before": self.not_before, "digest": self.digest,
                "error": self.error}


@dataclass
class JobState:
    """One job: its spec plus the chunk machines."""

    job_id: str
    spec: Dict
    fingerprint: Dict
    n_chunks: int
    submitted: float
    chunks: Dict[int, ChunkState] = field(default_factory=dict)

    def counts(self) -> Dict[str, int]:
        out = {state: 0 for state in CHUNK_STATES}
        for chunk in self.chunks.values():
            out[chunk.state] += 1
        return out

    @property
    def state(self) -> str:
        counts = self.counts()
        if counts["quarantined"]:
            return "quarantined"
        if counts["done"] == self.n_chunks:
            return "done"
        if counts["leased"]:
            return "running"
        return "pending"


class LedgerState:
    """The fold of every valid ledger record seen so far."""

    def __init__(self) -> None:
        self.jobs: Dict[str, JobState] = {}
        self.corrupt_records = 0
        self.stale_records = 0

    # -- record application ----------------------------------------------

    def apply(self, record: Dict) -> None:
        kind = record["kind"]
        if kind == "job":
            job_id = record["job"]
            if job_id in self.jobs:  # duplicate submit: first one wins
                self.stale_records += 1
                return
            self.jobs[job_id] = JobState(
                job_id=job_id, spec=record["spec"],
                fingerprint=record["fingerprint"],
                n_chunks=int(record["n_chunks"]),
                submitted=float(record.get("t", 0.0)),
                chunks={i: ChunkState()
                        for i in range(int(record["n_chunks"]))})
            return
        job = self.jobs.get(record.get("job"))
        if job is None:
            raise JobLedgerError(
                f"ledger {kind} record references unknown job "
                f"{record.get('job')!r} (its job record is missing or "
                f"corrupt)", context={"record": record})
        chunk = job.chunks.get(int(record.get("chunk", -1)))
        if chunk is None:
            raise JobLedgerError(
                f"ledger {kind} record references chunk "
                f"{record.get('chunk')!r} outside job {job.job_id} "
                f"({job.n_chunks} chunks)", context={"record": record})
        getattr(self, f"_apply_{kind}")(chunk, record)

    def _apply_lease(self, chunk: ChunkState, record: Dict) -> None:
        if chunk.state == "done":  # stale: lease lost a race with done
            self.stale_records += 1
            return
        chunk.state = "leased"
        chunk.worker = record["worker"]
        chunk.attempt = int(record["attempt"])
        chunk.expires = float(record["expires"])

    def _apply_renew(self, chunk: ChunkState, record: Dict) -> None:
        if chunk.state != "leased" or chunk.worker != record["worker"]:
            self.stale_records += 1  # heartbeat from a reaped lease
            return
        chunk.expires = float(record["expires"])

    def _apply_done(self, chunk: ChunkState, record: Dict) -> None:
        chunk.state = "done"
        chunk.digest = record["digest"]
        chunk.worker = None
        chunk.error = None

    def _apply_failed(self, chunk: ChunkState, record: Dict) -> None:
        if chunk.state == "done":
            self.stale_records += 1
            return
        chunk.state = "pending"
        chunk.worker = None
        chunk.attempt = int(record["attempt"])
        chunk.not_before = float(record["not_before"])
        chunk.error = record.get("error")

    def _apply_requeue(self, chunk: ChunkState, record: Dict) -> None:
        if chunk.state == "done" and not record.get("force"):
            self.stale_records += 1
            return
        chunk.state = "pending"
        chunk.worker = None
        chunk.digest = None
        chunk.attempt = int(record["attempt"])
        chunk.not_before = float(record["not_before"])

    def _apply_quarantine(self, chunk: ChunkState, record: Dict) -> None:
        if chunk.state == "done":
            self.stale_records += 1
            return
        chunk.state = "quarantined"
        chunk.worker = None
        chunk.attempt = int(record["attempt"])
        chunk.error = record.get("error")


class JobLedger:
    """Append-only durable ledger with incremental replay.

    One instance per process; any number of processes may share the
    file.  Every public operation takes the inter-process ``flock``
    (and an in-process lock, so a worker's heartbeat thread cannot race
    its main loop), refreshes the in-memory fold from newly appended
    bytes, and — for mutations — appends one fsync'd line.
    """

    def __init__(self, path, fsync: bool = True):
        self.path = os.fspath(path)
        self.fsync = fsync
        self._state = LedgerState()
        self._offset = 0
        self._tlock = threading.RLock()
        self._lock_depth = 0
        # O_APPEND: every write lands at EOF even if another process
        # appended since we opened; flock serialises whole lines.
        self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT | os.O_APPEND,
                           0o644)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "JobLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- locking -----------------------------------------------------------

    @contextmanager
    def lock(self):
        """Exclusive inter-process + in-process critical section.

        Reentrant, so a transaction can call other ledger operations.
        """
        with self._tlock:
            if self._lock_depth == 0 and fcntl is not None:
                fcntl.flock(self._fd, fcntl.LOCK_EX)
            self._lock_depth += 1
            try:
                yield self
            finally:
                self._lock_depth -= 1
                if self._lock_depth == 0 and fcntl is not None:
                    fcntl.flock(self._fd, fcntl.LOCK_UN)

    # -- replay ------------------------------------------------------------

    def refresh(self) -> LedgerState:
        """Fold newly appended bytes into the in-memory state."""
        with self.lock():
            try:
                size = os.path.getsize(self.path)
            except OSError as exc:
                raise JobLedgerError(
                    f"ledger {self.path} unreadable: {exc}")
            if size > self._offset:
                with open(self.path, "rb") as fh:
                    fh.seek(self._offset)
                    data = fh.read(size - self._offset)
                # Only complete lines: a torn tail (kill mid-append, or
                # a concurrent writer between getsize and read) stays
                # unconsumed until its newline lands.
                end = data.rfind(b"\n")
                if end >= 0:
                    for raw in data[:end].split(b"\n"):
                        if not raw.strip():
                            continue
                        record = decode_line(raw.decode("utf-8",
                                                        "replace"))
                        if record is None:
                            self._state.corrupt_records += 1
                            continue
                        self._state.apply(record)
                    self._offset += end + 1
            return self._state

    def append(self, record: Dict) -> None:
        """Durably append one record and fold it into the state."""
        if record.get("kind") not in RECORD_KINDS:
            raise JobLedgerError(
                f"unknown ledger record kind {record.get('kind')!r}",
                context={"record": record})
        line = encode_record(record) + "\n"
        with self.lock():
            # Catch up first so the fold applies records in file order.
            self.refresh()
            os.write(self._fd, line.encode("utf-8"))
            if self.fsync:
                os.fsync(self._fd)
            self._state.apply(record)
            self._offset += len(line.encode("utf-8"))

    # -- convenience -------------------------------------------------------

    def records(self) -> Tuple[List[Dict], int]:
        """Full tolerant re-read: (valid records, corrupt count).

        For tools (``ledgerctl``) — the queue itself uses the
        incremental fold.
        """
        valid: List[Dict] = []
        corrupt = 0
        try:
            with open(self.path, "r", encoding="utf-8",
                      errors="replace") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    record = decode_line(line)
                    if record is None:
                        corrupt += 1
                    else:
                        valid.append(record)
        except OSError as exc:
            raise JobLedgerError(f"ledger {self.path} unreadable: {exc}")
        return valid, corrupt
