"""The stateless campaign worker.

A worker is any process, on any host, pointed at the shared ledger and
result store.  It carries no campaign state of its own: the spec inside
each lease reconstructs the netlist, the measurement chain, and the
plaintext schedule, and the counter-based noise makes the chunk's bytes
a pure function of its trace offsets.  Kill a worker at any instant and
nothing is lost — its lease expires, the chunk requeues, and the
replacement produces identical bytes into the same content address.

The loop per lease:

1. **cache check** — if the chunk's content address is already in the
   store (duplicate submit, crash replay), complete immediately;
2. **heartbeat thread** — renews the lease at a third of the TTL while
   the acquisition runs, and mirrors each renewal to the obs stream as
   a :meth:`~repro.obs.Telemetry.heartbeat` record;
3. **acquire** — simulate the chunk at its campaign-global trace
   offset;
4. **commit** — atomic store put, then the ``done`` ledger record.

A :class:`~repro.errors.ReproError` fails the attempt back to the queue
(backoff / quarantine); an ``E_JOB_LEASE`` rejection means the lease
was reaped while we worked — the result is discarded, harmlessly.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Optional

from ..errors import JobLeaseError, ReproError
from ..obs import JsonlSink, NULL_TELEMETRY, Telemetry
from .ledger import JobLedger
from .queue import JobQueue, Lease
from .store import ResultStore


class ServiceWorker:
    """One worker process's claim-acquire-commit loop."""

    def __init__(self, queue: JobQueue, worker_id: Optional[str] = None,
                 telemetry=None,
                 on_chunk: Optional[Callable[[Lease], None]] = None):
        self.queue = queue
        self.worker_id = worker_id or f"worker-{os.getpid()}"
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY
        #: Test/fault-injection hook: called with the lease right before
        #: acquisition (raise, stall, or SIGKILL yourself here).
        self.on_chunk = on_chunk
        self._acquirer_job: Optional[str] = None
        self._acquirer = None

    # -- heartbeats --------------------------------------------------------

    def _heartbeat_loop(self, lease: Lease, stop: threading.Event,
                        stale: threading.Event) -> None:
        interval = max(0.05, self.queue.lease_ttl / 3.0)
        while not stop.wait(interval):
            try:
                expires = self.queue.heartbeat(lease)
            except JobLeaseError:
                stale.set()
                return
            self.telemetry.heartbeat(self.worker_id, job=lease.job_id,
                                     chunk=lease.chunk,
                                     attempt=lease.attempt,
                                     expires=expires)

    # -- the loop body -----------------------------------------------------

    def _acquirer_for(self, lease: Lease):
        # One live acquirer (the netlist build is the expensive part);
        # consecutive chunks of the same job reuse it.
        if self._acquirer_job != lease.job_id:
            self._acquirer = lease.spec.build_acquirer(
                telemetry=self.telemetry)
            self._acquirer_job = lease.job_id
        return self._acquirer

    def run_once(self) -> str:
        """Claim and process one chunk.

        Returns one of ``"idle"`` (nothing claimable), ``"cache-hit"``,
        ``"done"``, ``"failed"`` (attempt recorded to the queue), or
        ``"stale"`` (lease reaped under us; work discarded).
        """
        lease = self.queue.claim(self.worker_id)
        if lease is None:
            return "idle"
        cached = self.queue.store.get(lease.key)
        if cached is not None:
            try:
                self.queue.complete(lease, lease.key)
            except JobLeaseError:
                return "stale"
            self.telemetry.event("service.cache_hit", job=lease.job_id,
                                 chunk=lease.chunk,
                                 worker=self.worker_id)
            return "cache-hit"
        stop = threading.Event()
        stale = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop, args=(lease, stop, stale),
            name=f"{self.worker_id}-heartbeat", daemon=True)
        beat.start()
        try:
            with self.telemetry.span("service.chunk", job=lease.job_id,
                                     chunk=lease.chunk,
                                     attempt=lease.attempt):
                if self.on_chunk is not None:
                    self.on_chunk(lease)
                start, _stop_idx = lease.bounds
                rows = self._acquirer_for(lease).acquire(
                    lease.spec.chunk_plaintexts(lease.chunk),
                    trace_offset=start)
        except ReproError as err:
            stop.set()
            beat.join()
            try:
                self.queue.fail(lease, err.to_dict())
            except JobLeaseError:
                return "stale"
            return "failed"
        finally:
            stop.set()
        beat.join()
        if stale.is_set():
            return "stale"
        self.queue.store.put(lease.key, rows)
        try:
            self.queue.complete(lease, lease.key)
        except JobLeaseError:
            return "stale"
        return "done"

    def run(self, drain: bool = True, poll: float = 0.05,
            stop: Optional[threading.Event] = None) -> None:
        """Process chunks until told to stop.

        ``drain=True`` exits once no chunk is pending or leased anywhere
        (every job done or quarantined); ``drain=False`` keeps polling
        forever (the ``repro worker`` daemon mode) until ``stop`` is
        set.
        """
        while stop is None or not stop.is_set():
            outcome = self.run_once()
            if outcome != "idle":
                continue
            if drain and not self._has_open_chunks():
                return
            time.sleep(poll)

    def _has_open_chunks(self) -> bool:
        for job in self.queue.jobs():
            counts = job["counts"]
            if counts["pending"] or counts["leased"]:
                return True
        return False


def worker_main(ledger_path: str, store_root: str, worker_id: str,
                events_path: Optional[str] = None,
                lease_ttl: float = 30.0, max_attempts: int = 4,
                drain: bool = True, poll: float = 0.05) -> None:
    """Entry point for a worker process (``repro worker`` and the
    ``multiprocessing.Process`` targets the chaos tests SIGKILL).

    Everything it needs crosses the boundary as three paths and a few
    scalars — the definition of stateless.  Each worker labels its obs
    records with its own ``src`` so any number of them can share one
    events file.
    """
    telemetry = NULL_TELEMETRY
    if events_path is not None:
        telemetry = Telemetry(
            sinks=[JsonlSink(events_path, flush_every=1)],
            progress=None, source=worker_id)
    with JobLedger(ledger_path) as ledger:
        queue = JobQueue(ledger, ResultStore(store_root),
                         lease_ttl=lease_ttl, max_attempts=max_attempts,
                         telemetry=telemetry)
        worker = ServiceWorker(queue, worker_id=worker_id,
                               telemetry=telemetry)
        try:
            worker.run(drain=drain, poll=poll)
        finally:
            telemetry.flush()
            telemetry.close()
