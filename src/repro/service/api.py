"""The job API: a stdlib-asyncio HTTP front door for the queue.

No web framework — one ``asyncio.start_server`` loop speaking just
enough HTTP/1.1 for four endpoints:

* ``POST /jobs`` — body is a :class:`~repro.service.spec.CampaignJobSpec`
  dict; responds ``{"job", "deduped", "n_chunks"}`` (dedupe means the
  fingerprint matched an existing job);
* ``GET  /jobs`` — summaries of every job;
* ``GET  /jobs/<id>`` — one job's state, counts, and chunk detail;
* ``GET  /jobs/<id>/events?after=<cursor>`` — tail of that job's
  progress from the shared obs JSONL stream (worker events, heartbeats)
  with a resume cursor, so a client polls its way through the stream
  without re-reading it.

The server also runs the **supervisor**: a background task that calls
:meth:`~repro.service.queue.JobQueue.reap` every ``reap_interval``
seconds, requeueing chunks whose workers died.  Queue operations are
short locked file appends, so handlers call them directly on the event
loop.
"""

from __future__ import annotations

import asyncio
import json
import re
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..errors import JobError, JobSpecError, ReproError
from ..obs import read_jsonl
from .queue import JobQueue
from .spec import CampaignJobSpec

_MAX_BODY = 1 << 20

_JOB_PATH = re.compile(r"^/jobs/([A-Za-z0-9_.-]+)$")
_EVENTS_PATH = re.compile(r"^/jobs/([A-Za-z0-9_.-]+)/events$")


def _record_job(record: Dict) -> Optional[str]:
    """Which job a telemetry record concerns, if any."""
    attrs = record.get("attrs")
    if isinstance(attrs, dict) and isinstance(attrs.get("job"), str):
        return attrs["job"]
    return None


class JobService:
    """The HTTP job API plus the lease-reaping supervisor."""

    def __init__(self, queue: JobQueue,
                 events_path: Optional[str] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 reap_interval: float = 1.0):
        self.queue = queue
        self.events_path = events_path
        self.host = host
        self.port = port  #: 0 = pick a free port; read back after start
        self.reap_interval = float(reap_interval)
        self._server: Optional[asyncio.AbstractServer] = None
        self._reaper: Optional[asyncio.Task] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._reaper = asyncio.ensure_future(self._reap_loop())

    async def stop(self) -> None:
        if self._reaper is not None:
            self._reaper.cancel()
            try:
                await self._reaper
            except asyncio.CancelledError:
                pass
            self._reaper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _reap_loop(self) -> None:
        while True:
            await asyncio.sleep(self.reap_interval)
            try:
                self.queue.reap()
            except ReproError:
                # Supervision must outlive a transiently sick ledger
                # (e.g. mid-recovery); the next tick retries.
                continue

    # -- HTTP plumbing -----------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            status, payload = await self._respond(reader)
        except ReproError as err:
            status, payload = 500, {"error": err.to_dict()}
        except (ValueError, asyncio.IncompleteReadError):
            status, payload = 400, {"error": {"message": "bad request"}}
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  409: "Conflict", 500: "Internal Server Error"}
        writer.write(
            f"HTTP/1.1 {status} {reason.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode("ascii") + body)
        try:
            await writer.drain()
        finally:
            writer.close()

    async def _respond(self, reader: asyncio.StreamReader
                       ) -> Tuple[int, Dict]:
        request = (await reader.readline()).decode("ascii",
                                                   "replace").strip()
        parts = request.split()
        if len(parts) != 3:
            return 400, {"error": {"message": f"bad request line "
                                              f"{request!r}"}}
        method, target, _version = parts
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("ascii", "replace").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        if length > _MAX_BODY:
            return 400, {"error": {"message": "body too large"}}
        body = await reader.readexactly(length) if length else b""
        url = urlsplit(target)
        return self._route(method, url.path, parse_qs(url.query), body)

    # -- routes ------------------------------------------------------------

    def _route(self, method: str, path: str, query: Dict,
               body: bytes) -> Tuple[int, Dict]:
        if method == "POST" and path == "/jobs":
            return self._submit(body)
        if method == "GET" and path == "/jobs":
            return 200, {"jobs": self.queue.jobs()}
        match = _JOB_PATH.match(path)
        if method == "GET" and match:
            return self._status(match.group(1))
        match = _EVENTS_PATH.match(path)
        if method == "GET" and match:
            return self._events(match.group(1), query)
        return 404, {"error": {"message": f"no route {method} {path}"}}

    def _submit(self, body: bytes) -> Tuple[int, Dict]:
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": {"message": f"body is not JSON: {exc}"}}
        try:
            spec = CampaignJobSpec.from_dict(data)
        except JobSpecError as err:
            return 400, {"error": err.to_dict()}
        job_id, deduped = self.queue.submit(spec)
        return 200, {"job": job_id, "deduped": deduped,
                     "n_chunks": spec.n_chunks}

    def _status(self, job_id: str) -> Tuple[int, Dict]:
        try:
            return 200, self.queue.status(job_id)
        except JobError as err:
            return 404, {"error": err.to_dict()}

    def _events(self, job_id: str, query: Dict) -> Tuple[int, Dict]:
        try:
            self.queue.status(job_id)
        except JobError as err:
            return 404, {"error": err.to_dict()}
        if self.events_path is None:
            return 200, {"events": [], "cursor": 0}
        try:
            after = int(query.get("after", ["0"])[0])
        except ValueError:
            return 400, {"error": {"message": "after must be an int"}}
        try:
            records = read_jsonl(self.events_path)
        except OSError:
            records = []
        matching = [r for r in records if _record_job(r) == job_id]
        return 200, {"events": matching[after:],
                     "cursor": len(matching)}
