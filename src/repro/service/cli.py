"""CLI verbs for the campaign job service.

Wired in ahead of the artefact targets by :mod:`repro.__main__`::

    repro serve  --dir runs/svc [--workers 2] [--once]
    repro submit --dir runs/svc --style pgmcml --budget 96 [...]
    repro submit --dir runs/svc --spec job.json
    repro jobs   --dir runs/svc [JOB_ID] [--gather out.npz]
    repro worker --dir runs/svc --id w1 [--once]

A service *directory* holds the whole deployment: ``ledger.jsonl``
(durable queue state), ``store/`` (content-addressed results), and
``events.jsonl`` (the shared obs stream every worker appends to with
its own ``src`` label).  ``submit`` and ``jobs`` talk HTTP when
``--url`` is given, else operate on the directory directly — the queue
is just files, so both views are always consistent.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import multiprocessing
import os
import sys
import urllib.error
import urllib.request
from typing import List, Optional

from ..errors import ReproError
from ..obs import JsonlSink, Telemetry

SERVICE_COMMANDS = ("serve", "submit", "jobs", "worker")

_SPEC_FIELDS = (
    ("--style", str, None, "logic style (required unless --spec)"),
    ("--budget", int, None, "trace budget (required unless --spec)"),
    ("--key", lambda s: int(s, 0), 0x3C, "key byte under attack"),
    ("--noise", float, 5e-7, "measurement noise sigma"),
    ("--corner", str, "tt", "process corner"),
    ("--schedule", str, "random", "plaintext schedule (random|tvla)"),
    ("--repeat", int, 0, "die index (mismatch + noise entropy)"),
    ("--base-seed", int, 1234, "campaign base seed"),
    ("--chunk-size", int, 32, "traces per chunk (lease granularity)"),
)


def _paths(directory: str):
    os.makedirs(directory, exist_ok=True)
    return (os.path.join(directory, "ledger.jsonl"),
            os.path.join(directory, "store"),
            os.path.join(directory, "events.jsonl"))


def _open_queue(directory: str, lease_ttl: float, max_attempts: int,
                telemetry=None):
    from .ledger import JobLedger
    from .queue import JobQueue
    from .store import ResultStore

    ledger_path, store_root, _events = _paths(directory)
    return JobQueue(JobLedger(ledger_path), ResultStore(store_root),
                    lease_ttl=lease_ttl, max_attempts=max_attempts,
                    telemetry=telemetry)


def _spec_from_args(args) -> "CampaignJobSpec":
    from .spec import CampaignJobSpec

    if args.spec:
        return CampaignJobSpec.from_json(args.spec)
    if args.style is None or args.budget is None:
        raise ReproError("submit needs --style and --budget "
                         "(or --spec FILE)")
    return CampaignJobSpec(
        style=args.style, budget=args.budget, key=args.key,
        noise=args.noise, corner=args.corner, schedule=args.schedule,
        repeat=args.repeat, base_seed=args.base_seed,
        chunk_size=args.chunk_size)


def _http_json(url: str, payload=None):
    data = None if payload is None \
        else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=data,
        headers={"Content-Type": "application/json"} if data else {})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        body = exc.read().decode("utf-8", "replace")
        raise ReproError(f"service returned {exc.code}: {body}")
    except urllib.error.URLError as exc:
        raise ReproError(f"cannot reach service at {url}: {exc.reason}")


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Campaign job service commands.")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--dir", required=True, metavar="DIR",
                       help="service directory (ledger + store + events)")
        p.add_argument("--lease-ttl", type=float, default=30.0,
                       help="seconds before an unrenewed lease is reaped")
        p.add_argument("--max-attempts", type=int, default=4,
                       help="lease grants before a chunk is quarantined")

    serve = sub.add_parser("serve", help="run the HTTP API + supervisor")
    common(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8631)
    serve.add_argument("--workers", type=int, default=0,
                       help="also fork N worker processes")
    serve.add_argument("--reap-interval", type=float, default=1.0)
    serve.add_argument("--once", action="store_true",
                       help="exit once every submitted job is terminal "
                            "(for scripted runs)")

    submit = sub.add_parser("submit", help="queue one campaign job")
    common(submit)
    submit.add_argument("--url", metavar="URL",
                        help="submit over HTTP instead of directly")
    submit.add_argument("--spec", metavar="PATH",
                        help="JSON file with the full job spec")
    for flag, typ, default, help_text in _SPEC_FIELDS:
        submit.add_argument(flag, type=typ, default=default,
                            help=help_text)

    jobs = sub.add_parser("jobs", help="list jobs / show one / gather")
    common(jobs)
    jobs.add_argument("job_id", nargs="?", default=None)
    jobs.add_argument("--url", metavar="URL",
                      help="query over HTTP instead of directly")
    jobs.add_argument("--gather", metavar="OUT.npz",
                      help="assemble a finished job's traces to an NPZ")

    worker = sub.add_parser("worker", help="run one worker process")
    common(worker)
    worker.add_argument("--id", dest="worker_id", default=None,
                        help="worker label (default: worker-<pid>)")
    worker.add_argument("--once", action="store_true",
                        help="exit when the queue drains instead of "
                             "polling forever")
    return parser


# -- verbs -----------------------------------------------------------------


def _cmd_submit(args) -> int:
    spec = _spec_from_args(args)
    if args.url:
        reply = _http_json(args.url.rstrip("/") + "/jobs", spec.to_dict())
    else:
        queue = _open_queue(args.dir, args.lease_ttl, args.max_attempts)
        job_id, deduped = queue.submit(spec)
        queue.ledger.close()
        reply = {"job": job_id, "deduped": deduped,
                 "n_chunks": spec.n_chunks}
    print(json.dumps(reply, sort_keys=True))
    return 0


def _cmd_jobs(args) -> int:
    if args.url:
        base = args.url.rstrip("/")
        if args.job_id:
            reply = _http_json(f"{base}/jobs/{args.job_id}")
        else:
            reply = _http_json(f"{base}/jobs")
        print(json.dumps(reply, sort_keys=True, indent=2))
        return 0
    queue = _open_queue(args.dir, args.lease_ttl, args.max_attempts)
    try:
        if args.gather:
            if not args.job_id:
                raise ReproError("--gather needs a JOB_ID")
            import numpy as np
            rows = queue.gather(args.job_id)
            np.savez(args.gather, rows=rows)
            print(f"wrote {rows.shape[0]} traces to {args.gather}")
            return 0
        reply = queue.status(args.job_id) if args.job_id \
            else {"jobs": queue.jobs()}
        print(json.dumps(reply, sort_keys=True, indent=2))
        return 0
    finally:
        queue.ledger.close()


def _cmd_worker(args) -> int:
    from .worker import worker_main

    ledger_path, store_root, events_path = _paths(args.dir)
    worker_main(ledger_path, store_root,
                args.worker_id or f"worker-{os.getpid()}",
                events_path=events_path, lease_ttl=args.lease_ttl,
                max_attempts=args.max_attempts, drain=args.once)
    return 0


def _spawn_workers(args, count: int) -> List[multiprocessing.Process]:
    from .worker import worker_main

    ledger_path, store_root, events_path = _paths(args.dir)
    context = multiprocessing.get_context("fork")
    workers = []
    for index in range(count):
        process = context.Process(
            target=worker_main,
            args=(ledger_path, store_root, f"worker-{index}"),
            kwargs={"events_path": events_path,
                    "lease_ttl": args.lease_ttl,
                    "max_attempts": args.max_attempts,
                    "drain": False},
            daemon=True, name=f"repro-worker-{index}")
        process.start()
        workers.append(process)
    return workers


def _cmd_serve(args) -> int:
    from .api import JobService

    _ledger, _store, events_path = _paths(args.dir)
    telemetry = Telemetry(sinks=[JsonlSink(events_path, flush_every=1)],
                          progress=None, source="service")
    queue = _open_queue(args.dir, args.lease_ttl, args.max_attempts,
                        telemetry=telemetry)
    service = JobService(queue, events_path=events_path, host=args.host,
                         port=args.port,
                         reap_interval=args.reap_interval)
    workers = _spawn_workers(args, args.workers) if args.workers else []

    async def run() -> None:
        await service.start()
        print(f"repro service on http://{service.host}:{service.port} "
              f"(dir {args.dir}, {len(workers)} worker(s))")
        try:
            while True:
                await asyncio.sleep(0.2)
                if args.once:
                    jobs = queue.jobs()
                    if jobs and all(j["state"] in ("done", "quarantined")
                                    for j in jobs):
                        return
        finally:
            await service.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    finally:
        for process in workers:
            process.terminate()
        for process in workers:
            process.join(timeout=5)
        telemetry.flush()
        telemetry.close()
        queue.ledger.close()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    handlers = {"serve": _cmd_serve, "submit": _cmd_submit,
                "jobs": _cmd_jobs, "worker": _cmd_worker}
    try:
        return handlers[args.command](args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
