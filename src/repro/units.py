"""Engineering-unit helpers.

All internal quantities are plain SI floats (volts, amperes, seconds,
square metres are the exceptions: layout areas are kept in µm² because
that is the universal standard-cell convention and the paper's unit).

This module provides:

* SI prefix constants (``NANO``, ``PICO``, ...) and convenience scale
  functions (``ns(1.2)`` -> seconds),
* :func:`parse_si` / :func:`format_si` for reading and printing values
  the way SPICE decks and datasheets write them (``"50u"``, ``"1.2n"``),
* small formatting helpers used by the experiment report printers.
"""

from __future__ import annotations

import math

from .errors import UnitsError

# ---------------------------------------------------------------------------
# SI prefixes
# ---------------------------------------------------------------------------

YOCTO = 1e-24
ZEPTO = 1e-21
ATTO = 1e-18
FEMTO = 1e-15
PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
ONE = 1.0
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

_PREFIXES = {
    "y": YOCTO,
    "z": ZEPTO,
    "a": ATTO,
    "f": FEMTO,
    "p": PICO,
    "n": NANO,
    "u": MICRO,
    "µ": MICRO,
    "m": MILLI,
    "": ONE,
    "k": KILO,
    "K": KILO,
    "x": MEGA,
    "M": MEGA,  # SPICE traditionally uses "meg"; we accept M as mega.
    "G": GIGA,
    "g": GIGA,
    "T": TERA,
    "t": TERA,
}

# Ordered large-to-small for format_si.
_FORMAT_STEPS = [
    (TERA, "T"),
    (GIGA, "G"),
    (MEGA, "M"),
    (KILO, "k"),
    (ONE, ""),
    (MILLI, "m"),
    (MICRO, "u"),
    (NANO, "n"),
    (PICO, "p"),
    (FEMTO, "f"),
    (ATTO, "a"),
]


def fs(value: float) -> float:
    """Femtoseconds to seconds."""
    return value * FEMTO


def ps(value: float) -> float:
    """Picoseconds to seconds."""
    return value * PICO


def ns(value: float) -> float:
    """Nanoseconds to seconds."""
    return value * NANO


def us(value: float) -> float:
    """Microseconds to seconds."""
    return value * MICRO


def ms(value: float) -> float:
    """Milliseconds to seconds."""
    return value * MILLI


def fF(value: float) -> float:
    """Femtofarads to farads."""
    return value * FEMTO


def pF(value: float) -> float:
    """Picofarads to farads."""
    return value * PICO


def nA(value: float) -> float:
    """Nanoamperes to amperes."""
    return value * NANO


def uA(value: float) -> float:
    """Microamperes to amperes."""
    return value * MICRO


def mA(value: float) -> float:
    """Milliamperes to amperes."""
    return value * MILLI


def mV(value: float) -> float:
    """Millivolts to volts."""
    return value * MILLI


def uW(value: float) -> float:
    """Microwatts to watts."""
    return value * MICRO


def mW(value: float) -> float:
    """Milliwatts to watts."""
    return value * MILLI


def um(value: float) -> float:
    """Micrometres to metres."""
    return value * MICRO


def nm(value: float) -> float:
    """Nanometres to metres."""
    return value * NANO


def MHz(value: float) -> float:
    """Megahertz to hertz."""
    return value * MEGA


def GHz(value: float) -> float:
    """Gigahertz to hertz."""
    return value * GIGA


def parse_si(text: str) -> float:
    """Parse a SPICE-style engineering value such as ``"50u"`` or ``"1.2n"``.

    Accepted forms: optional sign, decimal number, optional SI prefix
    letter, optional trailing unit letters which are ignored (``"50uA"``,
    ``"2.8GHz"``).  The special SPICE prefix ``meg`` is recognised.

    >>> parse_si("50u")
    5e-05
    >>> parse_si("1.2k")
    1200.0
    """
    if not isinstance(text, str):
        raise UnitsError(f"parse_si expects a string, got {type(text).__name__}")
    stripped = text.strip()
    if not stripped:
        raise UnitsError("empty value")
    # Split the leading numeric part.
    idx = 0
    seen_digit = False
    while idx < len(stripped):
        char = stripped[idx]
        if char.isdigit():
            seen_digit = True
            idx += 1
        elif char in "+-.":
            idx += 1
        elif char in "eE" and idx + 1 < len(stripped) and (
            stripped[idx + 1].isdigit() or stripped[idx + 1] in "+-"
        ):
            idx += 2
        else:
            break
    if not seen_digit:
        raise UnitsError(f"no numeric value in {text!r}")
    try:
        number = float(stripped[:idx])
    except ValueError as exc:
        raise UnitsError(f"bad numeric value in {text!r}") from exc
    suffix = stripped[idx:].strip()
    if not suffix:
        return number
    low = suffix.lower()
    if low.startswith("meg"):
        return number * MEGA
    first = suffix[0]
    if first in _PREFIXES:
        return number * _PREFIXES[first]
    # Unit letters with no prefix (e.g. "3V", "10Hz").
    if first.isalpha():
        return number
    raise UnitsError(f"unknown unit suffix {suffix!r} in {text!r}")


def format_si(value: float, unit: str = "", digits: int = 4) -> str:
    """Format ``value`` with an SI prefix: ``format_si(5e-5, "A") == "50uA"``.

    Values of exactly zero print without a prefix.  Non-finite values are
    printed via :func:`repr`.
    """
    if not math.isfinite(value):
        return f"{value!r}{unit}"
    if value == 0.0:
        return f"0{unit}"
    magnitude = abs(value)
    for scale, prefix in _FORMAT_STEPS:
        if magnitude >= scale:
            scaled = value / scale
            text = f"{scaled:.{digits}g}"
            return f"{text}{prefix}{unit}"
    scale, prefix = _FORMAT_STEPS[-1]
    scaled = value / scale
    return f"{scaled:.{digits}g}{prefix}{unit}"


def db20(ratio: float) -> float:
    """Amplitude ratio to decibels (20·log10)."""
    if ratio <= 0.0:
        raise UnitsError("dB of a non-positive ratio")
    return 20.0 * math.log10(ratio)


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` into ``[lo, hi]``."""
    if lo > hi:
        raise UnitsError(f"clamp bounds reversed: {lo} > {hi}")
    return min(max(value, lo), hi)
