"""Generic 90 nm CMOS technology models.

The paper designs its libraries in a commercial 90 nm process.  That PDK is
proprietary, so this package provides a self-contained, generic 90 nm-class
technology: square-law/EKV device parameters for low-Vt and high-Vt NMOS
and PMOS flavours, process corners, and Pelgrom-style Monte-Carlo mismatch.
Absolute values are textbook-typical for the node; every experiment in the
reproduction depends only on relative behaviour (Vt flavour leakage ratios,
current-vs-delay trade-offs), which these models capture.
"""

from .params import (
    MosParams,
    Technology,
    TECH90,
    NMOS_LVT,
    NMOS_HVT,
    PMOS_LVT,
    PMOS_HVT,
    flavor,
)
from .corners import Corner, CORNERS, corner, MismatchModel

__all__ = [
    "MosParams",
    "Technology",
    "TECH90",
    "NMOS_LVT",
    "NMOS_HVT",
    "PMOS_LVT",
    "PMOS_HVT",
    "flavor",
    "Corner",
    "CORNERS",
    "corner",
    "MismatchModel",
]
