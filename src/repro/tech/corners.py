"""Process corners and Monte-Carlo mismatch.

Two distinct kinds of variation matter for the paper's results:

* **Global (corner) variation** — all devices of a flavour shift together.
  The paper verifies power-gating functionality "in all the process
  corners" (§4); the body-bias topology (c) is rejected partly because of
  its corner sensitivity.  We provide the classic five corners.

* **Local (mismatch) variation** — each device deviates independently,
  following Pelgrom scaling ``sigma(Vt) = avt / sqrt(W·L)``.  Mismatch is
  what gives an otherwise perfectly symmetric MCML gate a small
  data-dependent current residue, so it is central to the side-channel
  experiments (Fig. 6): without mismatch, MCML traces would carry *zero*
  information and the attack comparison would be vacuous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import math

import numpy as np

from ..errors import DeviceError
from .params import MosParams, Technology, TECH90


@dataclass(frozen=True)
class Corner:
    """A global process corner.

    ``dvt_n``/``dvt_p`` shift the threshold magnitudes of NMOS/PMOS
    devices; ``kp_scale_*`` scale mobility.  Positive ``dvt`` means a
    slower device.
    """

    name: str
    dvt_n: float
    dvt_p: float
    kp_scale_n: float
    kp_scale_p: float

    def apply(self, params: MosParams) -> MosParams:
        """Return the flavour parameters shifted to this corner."""
        if params.is_nmos:
            return params.shifted(self.dvt_n, self.kp_scale_n,
                                  name=f"{params.name}@{self.name}")
        return params.shifted(self.dvt_p, self.kp_scale_p,
                              name=f"{params.name}@{self.name}")

    def technology(self, tech: Technology = TECH90) -> Technology:
        """Return a :class:`Technology` with every flavour at this corner."""
        flavors = {name: self.apply(p) for name, p in tech.flavors.items()}
        return Technology(
            name=f"{tech.name}@{self.name}",
            vdd=tech.vdd,
            temp_k=tech.temp_k,
            cell_height=tech.cell_height,
            site_width_mcml=tech.site_width_mcml,
            site_width_pgmcml=tech.site_width_pgmcml,
            site_width_cmos=tech.site_width_cmos,
            cwire=tech.cwire,
            swing=tech.swing,
            flavors=flavors,
        )


CORNERS: Dict[str, Corner] = {
    "tt": Corner("tt", 0.0, 0.0, 1.00, 1.00),
    "ff": Corner("ff", -0.040, -0.040, 1.10, 1.10),
    "ss": Corner("ss", +0.040, +0.040, 0.90, 0.90),
    "fs": Corner("fs", -0.040, +0.040, 1.10, 0.90),
    "sf": Corner("sf", +0.040, -0.040, 0.90, 1.10),
}


def corner(name: str) -> Corner:
    """Look up a process corner by name (``"tt"``, ``"ff"``, ...)."""
    try:
        return CORNERS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(CORNERS))
        raise DeviceError(f"unknown corner {name!r}; known: {known}") from None


class MismatchModel:
    """Pelgrom-style local variation generator.

    Parameters
    ----------
    avt:
        Threshold-mismatch coefficient in V·m (typical 90 nm value is
        ~3.5 mV·µm = 3.5e-9 V·m).
    akp:
        Relative transconductance-mismatch coefficient in m
        (``sigma(dkp/kp) = akp / sqrt(WL)``).
    seed:
        Seed for the private random generator; mismatch draws must be
        reproducible so that characterisation and attack runs agree.
    """

    def __init__(self, avt: float = 3.5e-9, akp: float = 1.0e-9,
                 seed: Optional[int] = 0):
        if avt < 0.0 or akp < 0.0:
            raise DeviceError("mismatch coefficients must be non-negative")
        self.avt = avt
        self.akp = akp
        self._rng = np.random.default_rng(seed)

    def sigma_vt(self, width: float, length: float) -> float:
        """Standard deviation of the threshold mismatch for a W×L device."""
        if width <= 0.0 or length <= 0.0:
            raise DeviceError("device geometry must be positive")
        return self.avt / math.sqrt(width * length)

    def sigma_kp(self, width: float, length: float) -> float:
        """Relative sigma of the transconductance mismatch for W×L."""
        if width <= 0.0 or length <= 0.0:
            raise DeviceError("device geometry must be positive")
        return self.akp / math.sqrt(width * length)

    def sample(self, params: MosParams, width: float, length: float) -> MosParams:
        """Draw one mismatched instance of ``params`` for a W×L device."""
        dvt = float(self._rng.normal(0.0, self.sigma_vt(width, length)))
        dkp = float(self._rng.normal(0.0, self.sigma_kp(width, length)))
        # Clamp so pathological draws cannot invert the device.
        dvt = max(dvt, -0.5 * params.vt0)
        kp_scale = max(1.0 + dkp, 0.5)
        return params.shifted(dvt, kp_scale, name=f"{params.name}~mc")

    def sample_resistor_ratio(self) -> float:
        """Relative load-resistance mismatch between the two branch loads.

        Active PMOS loads match to roughly a percent; the paper quotes
        20-30 % absolute tolerance for passive resistors but the
        *differential* matching of adjacent devices is what leaks.
        """
        return float(self._rng.normal(0.0, 0.01))
