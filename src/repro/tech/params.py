"""90 nm-class MOSFET model parameters.

The device model implemented in :mod:`repro.spice.mosfet` is an EKV-style
interpolation between subthreshold exponential and square-law strong
inversion.  The parameters here are representative of a generic 90 nm bulk
CMOS process (Vdd = 1.2 V, minimum drawn length 0.1 µm) with two threshold
flavours per polarity, as used by the paper:

* **high-Vt** devices for the MCML NMOS logic network, the tail current
  source and the sleep transistor (low leakage in sleep mode);
* **low-Vt** devices for the PMOS active loads (smallest area for a given
  load resistance).
"""

from __future__ import annotations

from dataclasses import dataclass, replace, field
from typing import Dict

from ..errors import DeviceError
from ..units import um, nm

#: Thermal voltage at 300 K, volts.
VT_THERMAL = 0.02585


@dataclass(frozen=True)
class MosParams:
    """Static model parameters for one MOSFET flavour.

    Attributes
    ----------
    name:
        Flavour name (``"nmos_hvt"``...).
    polarity:
        ``+1`` for NMOS, ``-1`` for PMOS.
    vt0:
        Zero-bias threshold voltage magnitude, volts (always positive;
        the polarity handles sign).
    kp:
        Transconductance parameter ``µ·Cox`` in A/V².
    lam:
        Channel-length modulation coefficient, 1/V.
    nsub:
        Subthreshold slope factor (dimensionless, ~1.3-1.5 at 90 nm).
    cox:
        Gate-oxide capacitance per area, F/m².
    cj:
        Junction capacitance per device width, F/m.
    cov:
        Gate overlap capacitance per device width, F/m.
    lmin:
        Minimum channel length, metres.
    wmin:
        Minimum channel width, metres.
    gamma_b:
        Body-effect coefficient, V^0.5 (used by the body-biased
        power-gating topology (c) study).
    """

    name: str
    polarity: int
    vt0: float
    kp: float
    lam: float
    nsub: float
    cox: float
    cj: float
    cov: float
    lmin: float
    wmin: float
    gamma_b: float = 0.35

    def __post_init__(self) -> None:
        if self.polarity not in (+1, -1):
            raise DeviceError(f"polarity must be +1 or -1, got {self.polarity}")
        if self.vt0 <= 0.0:
            raise DeviceError(f"vt0 must be a positive magnitude, got {self.vt0}")
        if self.kp <= 0.0:
            raise DeviceError(f"kp must be positive, got {self.kp}")
        if self.nsub < 1.0:
            raise DeviceError(f"subthreshold slope factor must be >= 1, got {self.nsub}")

    @property
    def is_nmos(self) -> bool:
        return self.polarity > 0

    @property
    def is_pmos(self) -> bool:
        return self.polarity < 0

    def shifted(self, dvt: float = 0.0, kp_scale: float = 1.0, name: str = "") -> "MosParams":
        """Return a copy with a threshold shift and/or mobility scaling.

        Used by corner and Monte-Carlo machinery; ``dvt`` adds to the Vt
        *magnitude* so the same sign convention works for both polarities.
        """
        new_vt = self.vt0 + dvt
        if new_vt <= 0.0:
            raise DeviceError(f"threshold shift {dvt} would make vt0 non-positive")
        return replace(self, vt0=new_vt, kp=self.kp * kp_scale, name=name or self.name)


# ---------------------------------------------------------------------------
# Nominal flavour definitions (typical corner, 300 K)
# ---------------------------------------------------------------------------

NMOS_LVT = MosParams(
    name="nmos_lvt",
    polarity=+1,
    vt0=0.22,
    kp=340e-6,
    lam=0.30,
    nsub=1.35,
    cox=11.0e-3,   # F/m^2  (~1.2 nm effective oxide)
    cj=0.9e-9,     # F/m of width
    cov=0.25e-9,   # F/m of width
    lmin=nm(100),
    wmin=nm(120),
)

NMOS_HVT = MosParams(
    name="nmos_hvt",
    polarity=+1,
    vt0=0.36,
    kp=300e-6,
    lam=0.22,
    nsub=1.40,
    cox=11.0e-3,
    cj=0.9e-9,
    cov=0.25e-9,
    lmin=nm(100),
    wmin=nm(120),
)

PMOS_LVT = MosParams(
    name="pmos_lvt",
    polarity=-1,
    vt0=0.24,
    kp=110e-6,
    lam=0.35,
    nsub=1.35,
    cox=11.0e-3,
    cj=1.0e-9,
    cov=0.25e-9,
    lmin=nm(100),
    wmin=nm(120),
)

PMOS_HVT = MosParams(
    name="pmos_hvt",
    polarity=-1,
    vt0=0.40,
    kp=95e-6,
    lam=0.25,
    nsub=1.40,
    cox=11.0e-3,
    cj=1.0e-9,
    cov=0.25e-9,
    lmin=nm(100),
    wmin=nm(120),
)

_FLAVORS: Dict[str, MosParams] = {
    p.name: p for p in (NMOS_LVT, NMOS_HVT, PMOS_LVT, PMOS_HVT)
}


def flavor(name: str) -> MosParams:
    """Look up a device flavour by name (``"nmos_hvt"`` ...)."""
    try:
        return _FLAVORS[name]
    except KeyError:
        known = ", ".join(sorted(_FLAVORS))
        raise DeviceError(f"unknown device flavour {name!r}; known: {known}") from None


@dataclass(frozen=True)
class Technology:
    """Process-level constants shared by all cells in a library.

    The layout constants reproduce the paper's standard-cell template:
    cells are placed in rows of fixed height and their width is an integer
    number of *placement sites*.  The MCML template needs a slightly wider
    site than the PG-MCML template does NOT: the sleep transistor shares
    the current-source diffusion (same channel width), which costs one
    extra poly pitch folded into the site width (+5.6 %, Table 1).
    """

    name: str = "generic90"
    vdd: float = 1.2
    temp_k: float = 300.0
    #: Standard-cell row height (both CMOS and MCML templates), metres.
    cell_height: float = um(2.8)
    #: MCML placement-site width, metres (buffer cell = 5 sites).
    site_width_mcml: float = um(0.504)
    #: PG-MCML placement-site width, metres (sleep device folded in).
    site_width_pgmcml: float = um(0.532)
    #: CMOS placement-site width for the reference library, metres.
    site_width_cmos: float = um(0.28)
    #: Metal wire capacitance per length, F/m (fat-wire differential pairs).
    cwire: float = 0.20e-9
    #: Nominal MCML voltage swing, volts.
    swing: float = 0.40
    flavors: Dict[str, MosParams] = field(default_factory=lambda: dict(_FLAVORS))

    @property
    def vt_thermal(self) -> float:
        """Thermal voltage kT/q at the technology temperature, volts."""
        return VT_THERMAL * (self.temp_k / 300.0)

    def flavor(self, name: str) -> MosParams:
        try:
            return self.flavors[name]
        except KeyError:
            known = ", ".join(sorted(self.flavors))
            raise DeviceError(f"unknown device flavour {name!r}; known: {known}") from None


#: The nominal technology used throughout the reproduction.
TECH90 = Technology()
