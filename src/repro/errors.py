"""Exception taxonomy for the PG-MCML reproduction.

Every package raises exceptions derived from :class:`ReproError` so that
callers can distinguish library failures from programming errors.  The
hierarchy mirrors the package structure: circuit-simulation problems,
cell-generation problems, synthesis problems, and so on.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class UnitsError(ReproError):
    """An engineering-unit string or value could not be interpreted."""


class CircuitError(ReproError):
    """A circuit netlist is malformed (unknown node, duplicate device...)."""


class ConvergenceError(CircuitError):
    """The nonlinear solver failed to converge on an operating point.

    ``diagnostics``, when present, is a
    :class:`repro.spice.recovery.SolverDiagnostics` describing every
    recovery strategy that was attempted before giving up.
    """

    def __init__(self, message: str, iterations: int = 0,
                 residual: float = float("nan"), diagnostics=None):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual
        self.diagnostics = diagnostics


class DeviceError(CircuitError):
    """A device was constructed with invalid parameters."""


class BDDError(ReproError):
    """Invalid BDD operation (unknown variable, ordering violation...)."""


class CellError(ReproError):
    """A standard cell definition or generation step is invalid."""


class CharacterizationError(CellError):
    """Cell characterisation failed (no switching observed, bad bias...)."""


class NetlistError(ReproError):
    """A gate-level netlist is malformed."""


class SimulationError(ReproError):
    """Event-driven logic simulation failed."""


class SynthesisError(ReproError):
    """Technology mapping or sleep-insertion failed."""


class AssemblerError(ReproError):
    """Assembly source could not be assembled."""


class CPUError(ReproError):
    """The processor simulator hit an illegal state."""


class TraceError(ReproError):
    """Power-trace generation or manipulation failed."""


class AttackError(ReproError):
    """A side-channel attack was configured inconsistently."""


class CheckpointError(ReproError):
    """A checkpointed experiment run could not be saved or resumed."""
