"""Exception taxonomy for the PG-MCML reproduction.

Every package raises exceptions derived from :class:`ReproError` so that
callers can distinguish library failures from programming errors.  The
hierarchy mirrors the package structure: circuit-simulation problems,
cell-generation problems, synthesis problems, and so on.

Every error carries a stable machine-readable ``error_code`` (one per
class, overridable per raise) and an optional ``context`` dict with the
structured facts of the failure — device names, node names, budget
counters, checkpoint paths.  :meth:`ReproError.to_dict` renders both as
a JSON-safe record, so a failed campaign can log its post-mortem to the
same JSONL stream as its telemetry (see ``DESIGN.md`` §10 for the error
code table).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional


def _json_safe(value: Any) -> Any:
    """Best-effort conversion of a context value to JSON-safe types."""
    if isinstance(value, float):
        # NaN/Inf serialize as bare literals that strict JSON parsers
        # reject; null is the convention (see ConvergenceError.residual).
        return value if math.isfinite(value) else None
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in value]
    # NumPy scalars (np.int64 trace indices, np.float64 residuals) and
    # arrays land in error contexts constantly; ``json.dumps`` refuses
    # both, which used to crash JSONL sinks mid-post-mortem.  Duck-typed
    # so this module stays import-light: ``item()`` is the NumPy scalar
    # unwrap, ``tolist()`` the array one.
    item = getattr(value, "item", None)
    if callable(item) and getattr(value, "shape", None) == ():
        try:
            return _json_safe(item())
        except (TypeError, ValueError):
            pass
    tolist = getattr(value, "tolist", None)
    if callable(tolist) and hasattr(value, "shape"):
        try:
            return _json_safe(tolist())
        except (TypeError, ValueError):
            pass
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        try:
            return _json_safe(to_dict())
        except Exception:
            pass
    return repr(value)


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library.

    Parameters
    ----------
    message:
        Human-readable description (the classic exception string).
    error_code:
        Stable machine-readable code; defaults to the class's
        ``default_error_code``.
    context:
        Structured facts of the failure (device/node names, counters).
        Values are made JSON-safe by :meth:`to_dict`.
    """

    #: Per-class stable code; subclasses override.
    default_error_code = "E_REPRO"

    def __init__(self, message: str = "", *args,
                 error_code: Optional[str] = None,
                 context: Optional[Dict[str, Any]] = None):
        super().__init__(message, *args)
        self.error_code = error_code if error_code is not None else \
            self.default_error_code
        self.context: Dict[str, Any] = dict(context) if context else {}

    @property
    def message(self) -> str:
        return str(self.args[0]) if self.args else ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe post-mortem record of this failure."""
        return {
            "error": type(self).__name__,
            "error_code": self.error_code,
            "message": self.message,
            "context": _json_safe(self.context),
        }


class UnitsError(ReproError):
    """An engineering-unit string or value could not be interpreted."""

    default_error_code = "E_UNITS"


class CircuitError(ReproError):
    """A circuit netlist is malformed (unknown node, duplicate device...)."""

    default_error_code = "E_CIRCUIT"


class ConvergenceError(CircuitError):
    """The nonlinear solver failed to converge on an operating point.

    ``diagnostics``, when present, is a
    :class:`repro.spice.recovery.SolverDiagnostics` describing every
    recovery strategy that was attempted before giving up.
    """

    default_error_code = "E_CONVERGENCE"

    def __init__(self, message: str, iterations: int = 0,
                 residual: float = float("nan"), diagnostics=None,
                 error_code: Optional[str] = None,
                 context: Optional[Dict[str, Any]] = None):
        super().__init__(message, error_code=error_code, context=context)
        self.iterations = iterations
        self.residual = residual
        self.diagnostics = diagnostics

    def to_dict(self) -> Dict[str, Any]:
        record = super().to_dict()
        record["iterations"] = self.iterations
        record["residual"] = self.residual if self.residual == self.residual \
            else None  # NaN is not JSON
        if self.diagnostics is not None:
            record["diagnostics"] = _json_safe(self.diagnostics)
        return record


class BudgetExhaustedError(ConvergenceError):
    """A solve exceeded its deterministic :class:`~repro.spice.SolveBudget`.

    Raised instead of spinning forever on a stiff circuit: the budget
    bounds Newton iterations, recovery-ladder rungs, and transient
    retries.  ``context`` names the limit that tripped and the counters
    at the moment of exhaustion; ``diagnostics`` (when the exhaustion
    happened inside a DC solve) carries the full attempt history.
    """

    default_error_code = "E_BUDGET_EXHAUSTED"


class ErcError(CircuitError):
    """Electrical-rule-check preflight rejected a circuit.

    ``report`` is the :class:`repro.spice.erc.ErcReport` with every
    structured finding; ``context`` summarises the violated rules so the
    error is JSONL-serializable on its own.
    """

    default_error_code = "E_ERC"

    def __init__(self, message: str, report=None,
                 error_code: Optional[str] = None,
                 context: Optional[Dict[str, Any]] = None):
        super().__init__(message, error_code=error_code, context=context)
        self.report = report

    def to_dict(self) -> Dict[str, Any]:
        record = super().to_dict()
        if self.report is not None:
            record["report"] = _json_safe(self.report)
        return record


class DeviceError(CircuitError):
    """A device was constructed with invalid parameters."""

    default_error_code = "E_DEVICE"


class BackendError(ReproError):
    """An external-simulator backend failed.

    Base of the backend sub-taxonomy (:mod:`repro.spice.backend`): the
    subprocess died with a non-zero status after its retry budget, the
    binary produced output we refuse to trust, or a backend was asked
    for something it cannot do.  ``context`` carries the facts needed
    for a post-mortem from the JSONL stream alone — argv, attempt
    counts, exit status, stderr tail.
    """

    default_error_code = "E_BACKEND"


class BackendUnavailableError(BackendError):
    """The requested simulator backend cannot run on this machine.

    Raised by :meth:`~repro.spice.backend.SimulatorBackend.probe` when
    the binary is missing or refuses to identify itself.  Callers that
    pass ``fallback=True`` degrade to the internal engine instead of
    propagating this (with a telemetry event marking the degradation).
    """

    default_error_code = "E_BACKEND_UNAVAILABLE"


class BackendTimeoutError(BackendError):
    """A supervised backend subprocess exceeded its wall-clock budget.

    The supervisor has already escalated SIGTERM → SIGKILL and reaped
    the process by the time this is raised; ``context`` records the
    timeout, the escalation path taken, and the captured output tails.
    """

    default_error_code = "E_BACKEND_TIMEOUT"


class BackendProtocolError(BackendError):
    """External simulator output failed validation.

    External output is never trusted: missing vectors, point-count
    mismatches, non-finite samples, or an unparsable rawfile raise this
    instead of propagating garbage into a :class:`Waveform`.
    """

    default_error_code = "E_BACKEND_PROTOCOL"


class BDDError(ReproError):
    """Invalid BDD operation (unknown variable, ordering violation...)."""

    default_error_code = "E_BDD"


class CellError(ReproError):
    """A standard cell definition or generation step is invalid."""

    default_error_code = "E_CELL"


class CharacterizationError(CellError):
    """Cell characterisation failed (no switching observed, bad bias...)."""

    default_error_code = "E_CHARACTERIZATION"


class NetlistError(ReproError):
    """A gate-level netlist is malformed."""

    default_error_code = "E_NETLIST"


class SimulationError(ReproError):
    """Event-driven logic simulation failed."""

    default_error_code = "E_SIMULATION"


class SynthesisError(ReproError):
    """Technology mapping or sleep-insertion failed."""

    default_error_code = "E_SYNTHESIS"


class AssemblerError(ReproError):
    """Assembly source could not be assembled."""

    default_error_code = "E_ASSEMBLER"


class CPUError(ReproError):
    """The processor simulator hit an illegal state."""

    default_error_code = "E_CPU"


class TraceError(ReproError):
    """Power-trace generation or manipulation failed."""

    default_error_code = "E_TRACE"


class AttackError(ReproError):
    """A side-channel attack was configured inconsistently."""

    default_error_code = "E_ATTACK"


class AcquisitionError(AttackError):
    """Parallel trace acquisition could not complete.

    Raised when the worker-pool recovery path itself fails (rebuild
    budget exhausted with no fallback left); transient worker deaths are
    recovered transparently and never surface as this.
    """

    default_error_code = "E_ACQUISITION"


class CheckpointError(ReproError):
    """A checkpointed experiment run could not be saved or resumed."""

    default_error_code = "E_CHECKPOINT"


class JobError(ReproError):
    """The campaign job service failed.

    Base of the job sub-taxonomy (:mod:`repro.service`): ledger
    corruption that cannot be recovered from, invalid job specs, lease
    protocol violations, and chunks that exhausted their attempt budget.
    ``context`` carries the job id / chunk index / attempt counters so a
    wedged queue can be diagnosed from the JSONL stream alone.
    """

    default_error_code = "E_JOB"


class JobSpecError(JobError):
    """A submitted campaign job spec failed validation.

    Raised before anything is written to the ledger: a rejected spec
    must leave no trace in the durable store.
    """

    default_error_code = "E_JOB_SPEC"


class JobLedgerError(JobError):
    """The durable job ledger is unusable.

    Individual corrupt records are *recovered from* (the replay skips
    them, conservatively demoting the affected chunk to ``pending`` so
    it is recomputed — the content-addressed result store turns the
    recompute into a cache hit).  This error is for damage replay cannot
    absorb: an unreadable file, or a chunk record naming a job the
    ledger never registered.
    """

    default_error_code = "E_JOB_LEDGER"


class JobLeaseError(JobError):
    """A lease operation was invalid.

    A worker heartbeating or completing a chunk it no longer holds
    (its lease expired and was requeued to another worker) raises this
    instead of silently double-writing; the job's durable state is
    owned by whoever holds the live lease.
    """

    default_error_code = "E_JOB_LEASE"


class JobPoisonedError(JobError):
    """A chunk failed on every attempt and was quarantined.

    Raised when gathering a job with quarantined chunks: the queue
    stopped retrying after ``max_attempts`` bounded-backoff attempts
    instead of looping forever, and the chunk needs operator attention
    (``tools/ledgerctl.py requeue``) or a fixed spec.  ``context``
    carries the per-chunk attempt histories and last errors.
    """

    default_error_code = "E_JOB_POISONED"
