"""The attack × countermeasure campaign matrix.

The paper's security argument is one column of a much bigger table:
CPA against CMOS vs. (PG-)MCML at one noise level, one corner, one
trace budget.  A modern evaluation (and the PoSyn-style comparisons in
:mod:`repro.experiments.related`) wants the whole grid — every library
style crossed with every attack, swept over measurement noise, process
corner and trace budget — condensed into one report with a
security-vs-overhead frontier.

:class:`MatrixSpec` is the declarative grid description (loadable from
JSON for the CLI); :func:`run_matrix` expands it into cells and runs
each on the existing acquisition/attack machinery with three
engineering properties this module exists for:

* **Acquisition dedupe** — every attack that consumes the same physical
  trace set (same style, corner, noise, budget, schedule and die) gets
  the *same* acquired traces, composed once.  A 4-attack × 3-budget
  grid acquires 3 trace sets per style, not 12.
* **Cell failure isolation** — a cell that raises a
  :class:`~repro.errors.ReproError` (odd TVLA budget, infeasible MLPA
  basis, ERC rejection) records its ``error_code`` in the report and
  the rest of the grid keeps running.
* **Tie-aware scoring** — guessing entropy and success rate use the
  midpoint-of-tie-class rank, so a protected style's flat score vector
  reports GE ≈ 127.5 instead of an artifact of the key byte value.

Repeats are *dies*: each repeat draws a fresh mismatch seed (a new
Pelgrom sample) and fresh measurement noise, which is what makes the
guessing-entropy average meaningful.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cells import (
    Library,
    build_cmos_library,
    build_mcml_library,
    build_pg_mcml_library,
    build_wddl_library,
    library_at_corner,
    preflight_library,
)
from ..errors import AttackError, ReproError
from ..obs import NULL_TELEMETRY
from ..power import BlockPowerModel, MeasurementChain
from ..power.preprocess import standardize
from ..spice.erc import erc_enabled
from ..tech import corner as lookup_corner
from ..units import MHz
from .acquisition import AcquisitionPool, TraceAcquirer
from .attack import build_reduced_aes
from .cpa import cpa_attack
from .dpa import multibit_dpa_attack
from .highorder import mlpa_attack, second_order_cpa
from .metrics import guessing_entropy, mtd, success_rate
from .ttest import TVLA_THRESHOLD, welch_t

STYLE_BUILDERS = {
    "cmos": build_cmos_library,
    "mcml": build_mcml_library,
    "pgmcml": build_pg_mcml_library,
    "wddl": build_wddl_library,
}

#: Attacks the matrix knows how to run.  ``cpa2`` is second-order CPA on
#: centered-product samples; ``mlpa`` the multi-linear regression attack.
KNOWN_ATTACKS = ("cpa", "dpa", "cpa2", "mlpa", "tvla")

#: Nominal operating point for the frontier's power column.
FRONTIER_CLOCK_HZ = MHz(100.0)
#: Average per-gate toggle activity of random-data CMOS logic.
CMOS_ACTIVITY = 0.1
#: PG-MCML awake fraction for the frontier (ISE-style duty guard band).
PGMCML_AWAKE_FRACTION = 0.25


def _derive_seed(*parts) -> int:
    """A stable 31-bit seed from heterogeneous grid coordinates."""
    text = "|".join(repr(p) for p in parts)
    return zlib.crc32(text.encode("utf-8")) & 0x7FFFFFFF


#: Error codes considered transient for grid-cell retry purposes: an
#: external backend that died or timed out, and acquisition-pool
#: failures (rebuild budget exhausted on a loaded host).  A resubmitted
#: grid with ``retry_failed=True`` re-attempts cells cached with one of
#: these instead of replaying the stale failure.
TRANSIENT_ERROR_PREFIXES = ("E_BACKEND", "E_ACQUISITION")


def is_transient_error_code(code: Optional[str]) -> bool:
    """Whether a cached cell failure is worth re-attempting."""
    return bool(code) and any(code.startswith(prefix)
                              for prefix in TRANSIENT_ERROR_PREFIXES)


@dataclass(frozen=True)
class MatrixCell:
    """One coordinate of the expanded grid."""

    style: str
    attack: str
    noise: float    # measurement-noise sigma, amperes
    corner: str
    budget: int     # trace count

    @property
    def schedule(self) -> str:
        """Plaintext discipline: TVLA interleaves fixed/random."""
        return "tvla" if self.attack == "tvla" else "random"

    def trace_key(self, repeat: int) -> Tuple:
        """Dedupe key: cells sharing it consume the same trace set."""
        return (self.style, self.corner, self.noise, self.budget,
                self.schedule, repeat)

    def label(self) -> str:
        return (f"{self.style}/{self.attack} @ {self.corner}, "
                f"noise={self.noise:.2e} A, n={self.budget}")


# -- traceset coordinate derivations ------------------------------------------
#
# Everything that determines a trace set — plaintexts, noise chain,
# mismatch die — is a pure function of (base_seed, trace-key
# coordinates).  These are module-level so the campaign job service
# (:mod:`repro.service`) can shard a grid's acquisitions across hosts
# and still produce trace sets byte-identical to an in-process
# :func:`run_matrix` of the same spec.

def derive_plaintexts(base_seed: int, style: str, corner: str, budget: int,
                      schedule: str, repeat: int) -> List[int]:
    """The plaintext schedule for one traceset coordinate.

    ``schedule="tvla"`` interleaves the fixed class (0x00) with fresh
    random bytes pairwise; anything else is uniform random bytes.
    """
    seed = _derive_seed(base_seed, "pts", style, corner, budget,
                        schedule, repeat)
    rng = np.random.default_rng(seed)
    if schedule == "tvla":
        if budget % 2 != 0:
            raise AttackError(
                f"TVLA budget must be even (fixed/random classes are "
                f"interleaved pairwise); got {budget}")
        half = budget // 2
        randoms = [int(x) for x in rng.integers(0, 256, size=half)]
        interleaved: List[int] = []
        for r in randoms:
            interleaved.extend((0x00, r))
        return interleaved
    return [int(x) for x in rng.integers(0, 256, size=budget)]


def derive_chain_seed(base_seed: int, trace_key: Tuple) -> int:
    """Measurement-chain entropy for one traceset coordinate."""
    return _derive_seed(base_seed, "chain", *trace_key)


def derive_mismatch_seed(base_seed: int, style: str, corner: str,
                         repeat: int) -> int:
    """The die: one Pelgrom mismatch sample per (style, corner, repeat)."""
    return _derive_seed(base_seed, "die", style, corner, repeat)


@dataclass
class MatrixSpec:
    """Declarative description of a campaign grid.

    The grid is the cartesian product styles × attacks × noises ×
    corners × budgets, each cell run ``repeats`` times on independent
    dies.  ``noises`` are measurement-chain sigma values in amperes.
    """

    styles: Tuple[str, ...]
    attacks: Tuple[str, ...]
    noises: Tuple[float, ...] = (5e-7,)
    corners: Tuple[str, ...] = ("tt",)
    budgets: Tuple[int, ...] = (128,)
    key: int = 0x3C
    repeats: int = 1
    base_seed: int = 1234

    def __post_init__(self) -> None:
        self.styles = tuple(self.styles)
        self.attacks = tuple(self.attacks)
        self.noises = tuple(float(n) for n in self.noises)
        self.corners = tuple(self.corners)
        self.budgets = tuple(int(b) for b in self.budgets)
        if not self.styles or not self.attacks:
            raise AttackError("grid needs at least one style and attack")
        for s in self.styles:
            if s not in STYLE_BUILDERS:
                known = ", ".join(sorted(STYLE_BUILDERS))
                raise AttackError(f"unknown style {s!r}; known: {known}")
        for a in self.attacks:
            if a not in KNOWN_ATTACKS:
                known = ", ".join(KNOWN_ATTACKS)
                raise AttackError(f"unknown attack {a!r}; known: {known}")
        for n in self.noises:
            if n < 0.0:
                raise AttackError("noise sigma must be non-negative")
        for c in self.corners:
            lookup_corner(c)  # raises DeviceError for unknown names
        for b in self.budgets:
            if b < 8:
                raise AttackError(f"trace budget too small: {b}")
        if not 0 <= self.key <= 0xFF:
            raise AttackError(f"key byte out of range: {self.key}")
        if self.repeats < 1:
            raise AttackError("repeats must be >= 1")

    def expand(self) -> List[MatrixCell]:
        """Cartesian-product the axes into cells, deterministic order."""
        return [MatrixCell(style=s, attack=a, noise=n, corner=c, budget=b)
                for s in self.styles
                for a in self.attacks
                for n in self.noises
                for c in self.corners
                for b in self.budgets]

    def to_dict(self) -> Dict:
        return {"styles": list(self.styles), "attacks": list(self.attacks),
                "noises": list(self.noises), "corners": list(self.corners),
                "budgets": list(self.budgets), "key": self.key,
                "repeats": self.repeats, "base_seed": self.base_seed}

    @classmethod
    def from_dict(cls, data: Dict) -> "MatrixSpec":
        if not isinstance(data, dict):
            raise AttackError("grid spec must be a JSON object")
        known = {"styles", "attacks", "noises", "corners", "budgets",
                 "key", "repeats", "base_seed"}
        extra = set(data) - known
        if extra:
            raise AttackError(
                f"unknown grid spec keys: {', '.join(sorted(extra))}")
        missing = {"styles", "attacks"} - set(data)
        if missing:
            raise AttackError(
                f"grid spec missing keys: {', '.join(sorted(missing))}")
        return cls(**data)

    @classmethod
    def from_json(cls, path: str) -> "MatrixSpec":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise AttackError(f"cannot load grid spec {path!r}: {exc}")
        return cls.from_dict(data)


@dataclass
class CellResult:
    """Outcome of one grid cell over all repeats."""

    cell: MatrixCell
    ok: bool
    # Rank-producing attacks (cpa/dpa/cpa2/mlpa):
    ranks: List[float] = field(default_factory=list)
    tie_widths: List[int] = field(default_factory=list)
    guessing_entropy: Optional[float] = None
    success_rate: Optional[float] = None
    mtd: Optional[int] = None
    mtd_evaluated: bool = False
    # TVLA:
    max_abs_t: Optional[float] = None
    leak_detected: Optional[bool] = None
    # Failure isolation:
    error_code: Optional[str] = None
    error: Optional[str] = None

    def to_dict(self) -> Dict:
        return {
            "style": self.cell.style, "attack": self.cell.attack,
            "noise": self.cell.noise, "corner": self.cell.corner,
            "budget": self.cell.budget, "ok": self.ok,
            "ranks": self.ranks, "tie_widths": self.tie_widths,
            "guessing_entropy": self.guessing_entropy,
            "success_rate": self.success_rate,
            "mtd": self.mtd, "mtd_evaluated": self.mtd_evaluated,
            "max_abs_t": self.max_abs_t,
            "leak_detected": self.leak_detected,
            "error_code": self.error_code, "error": self.error,
        }


@dataclass
class FrontierRow:
    """Security-vs-overhead summary for one (style, corner)."""

    style: str
    corner: str
    area_um2: float
    power_w: float
    area_overhead: Optional[float]   # × the CMOS row at the same corner
    power_overhead: Optional[float]
    best_mtd: Optional[int]          # smallest MTD over the style's cells
    min_guessing_entropy: Optional[float]
    broken: bool                     # any attack recovered the key

    def to_dict(self) -> Dict:
        return {"style": self.style, "corner": self.corner,
                "area_um2": self.area_um2, "power_w": self.power_w,
                "area_overhead": self.area_overhead,
                "power_overhead": self.power_overhead,
                "best_mtd": self.best_mtd,
                "min_guessing_entropy": self.min_guessing_entropy,
                "broken": self.broken}


@dataclass
class MatrixReport:
    """Everything one grid run produced."""

    spec: MatrixSpec
    cells: List[CellResult]
    frontier: List[FrontierRow]
    acquisitions: int        # trace sets actually composed
    acquisitions_reused: int  # cell×repeat consumers served from cache

    def to_dict(self) -> Dict:
        return {"spec": self.spec.to_dict(),
                "cells": [c.to_dict() for c in self.cells],
                "frontier": [f.to_dict() for f in self.frontier],
                "acquisitions": self.acquisitions,
                "acquisitions_reused": self.acquisitions_reused}

    def to_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=False)
            fh.write("\n")

    def format_table(self) -> str:
        """Human-readable comparison table plus the frontier."""
        lines = []
        header = (f"{'style':<8}{'attack':<7}{'corner':<7}{'noise[A]':>10}"
                  f"{'n':>6}  {'outcome':<44}")
        lines.append(header)
        lines.append("-" * len(header))
        for res in self.cells:
            c = res.cell
            if not res.ok:
                outcome = f"FAILED [{res.error_code}] {res.error}"
            elif c.attack == "tvla":
                verdict = ("LEAK" if res.leak_detected else "quiet")
                outcome = f"max|t|={res.max_abs_t:.1f} -> {verdict}"
            else:
                ge = res.guessing_entropy
                sr = res.success_rate
                mtd_txt = (str(res.mtd) if res.mtd is not None else
                           ("-" if not res.mtd_evaluated else ">n"))
                outcome = f"GE={ge:.1f} SR={sr:.2f} MTD={mtd_txt}"
                if max(res.tie_widths, default=1) > 1:
                    outcome += f" ties={max(res.tie_widths)}"
            lines.append(f"{c.style:<8}{c.attack:<7}{c.corner:<7}"
                         f"{c.noise:>10.2e}{c.budget:>6}  {outcome:<44}")
        lines.append("")
        lines.append("Security vs. overhead frontier "
                     f"(@{FRONTIER_CLOCK_HZ / 1e6:.0f} MHz):")
        fhdr = (f"{'style':<8}{'corner':<7}{'area[um2]':>11}{'power[W]':>11}"
                f"{'xA':>8}{'xP':>8}{'minGE':>8}{'bestMTD':>9}  verdict")
        lines.append(fhdr)
        lines.append("-" * len(fhdr))
        for row in self.frontier:
            xa = f"{row.area_overhead:.2f}" if row.area_overhead else "-"
            xp = f"{row.power_overhead:.2f}" if row.power_overhead else "-"
            ge = (f"{row.min_guessing_entropy:.1f}"
                  if row.min_guessing_entropy is not None else "-")
            bm = str(row.best_mtd) if row.best_mtd is not None else "none"
            verdict = "BROKEN" if row.broken else "holds"
            lines.append(f"{row.style:<8}{row.corner:<7}"
                         f"{row.area_um2:>11.1f}{row.power_w:>11.3e}"
                         f"{xa:>8}{xp:>8}{ge:>8}{bm:>9}  {verdict}")
        lines.append("")
        lines.append(f"trace sets composed: {self.acquisitions}, "
                     f"cell-repeats served from cache: "
                     f"{self.acquisitions_reused}")
        return "\n".join(lines)


class _GridRunner:
    """Shared state for one grid execution: caches + acquisition pool."""

    def __init__(self, spec: MatrixSpec, telemetry, workers: int,
                 backend: str, erc: Optional[bool],
                 retry_failed: bool = False):
        self.spec = spec
        self.tele = telemetry
        self.workers = workers
        self.backend = backend
        self.erc = erc if erc is not None else erc_enabled()
        self.retry_failed = retry_failed
        self._libraries: Dict[Tuple[str, str], Library] = {}
        self._netlists: Dict[Tuple[str, str], Tuple] = {}
        self._tracesets: Dict[Tuple, Tuple] = {}
        self._preflighted: set = set()
        self.acquired = 0
        self.reused = 0

    # -- shared builders ------------------------------------------------

    def library(self, style: str, corner_name: str) -> Library:
        key = (style, corner_name)
        if key not in self._libraries:
            base = STYLE_BUILDERS[style]()
            if self.erc and style not in self._preflighted:
                # Topology is corner-independent; one preflight per style
                # covers every corner-scaled variant of its templates.
                preflight_library(base, telemetry=self.tele)
                self._preflighted.add(style)
            self._libraries[key] = library_at_corner(
                base, lookup_corner(corner_name))
        return self._libraries[key]

    def netlist(self, style: str, corner_name: str):
        key = (style, corner_name)
        if key not in self._netlists:
            lib = self.library(style, corner_name)
            nl, _outputs = build_reduced_aes(lib)
            self._netlists[key] = nl
        return self._netlists[key]

    # -- acquisition with dedupe ----------------------------------------

    def traceset(self, cell: MatrixCell, repeat: int):
        """(plaintexts, traces) for a cell's coordinates, cached.

        Failures are cached too, so every cell sharing a broken trace
        set reports the same error without re-running the acquisition —
        unless ``retry_failed`` is set and the cached failure looks
        transient (an ``E_BACKEND_*`` subprocess death or an
        ``E_ACQUISITION`` pool collapse), in which case the acquisition
        is re-attempted once per :meth:`traceset` call instead of
        replaying a failure the environment may have recovered from.
        """
        key = cell.trace_key(repeat)
        if key in self._tracesets:
            kind, payload = self._tracesets[key]
            if kind == "err" and self.retry_failed \
                    and is_transient_error_code(payload.error_code):
                del self._tracesets[key]
                self.tele.event("sca.matrix.retry_failed",
                                style=cell.style, corner=cell.corner,
                                repeat=repeat,
                                error_code=payload.error_code)
            else:
                self.reused += 1
                if kind == "err":
                    raise payload
                return payload
        try:
            pts, traces = self._acquire(cell, repeat)
        except ReproError as exc:
            self._tracesets[key] = ("err", exc)
            raise
        self._tracesets[key] = ("ok", (pts, traces))
        self.acquired += 1
        return pts, traces

    def _acquire(self, cell: MatrixCell, repeat: int):
        spec = self.spec
        pts = self._plaintexts(cell, repeat)
        netlist = self.netlist(cell.style, cell.corner)
        chain = MeasurementChain(
            noise_sigma=cell.noise,
            seed=derive_chain_seed(spec.base_seed, cell.trace_key(repeat)))
        # A repeat is a fresh die: new Pelgrom mismatch sample, shared by
        # every attack and budget measured on that die at that corner.
        mismatch_seed = derive_mismatch_seed(spec.base_seed, cell.style,
                                             cell.corner, repeat)

        def factory() -> TraceAcquirer:
            return TraceAcquirer(netlist, spec.key, chain=chain,
                                 mismatch_seed=mismatch_seed)

        with self.tele.span("sca.matrix.acquire", style=cell.style,
                            corner=cell.corner, schedule=cell.schedule,
                            n_traces=len(pts), repeat=repeat):
            with AcquisitionPool(factory, workers=self.workers,
                                 backend=self.backend,
                                 telemetry=self.tele) as pool:
                traces = pool.acquire(pts)
        return pts, traces

    def _plaintexts(self, cell: MatrixCell, repeat: int) -> List[int]:
        return derive_plaintexts(self.spec.base_seed, cell.style,
                                 cell.corner, cell.budget, cell.schedule,
                                 repeat)

    # -- per-cell evaluation --------------------------------------------

    def run_cell(self, cell: MatrixCell) -> CellResult:
        with self.tele.span("sca.matrix.cell", style=cell.style,
                            attack=cell.attack, corner=cell.corner,
                            noise=cell.noise, budget=cell.budget) as span:
            try:
                result = self._evaluate(cell)
            except ReproError as exc:
                span.set("ok", False)
                span.set("error_code", exc.error_code)
                return CellResult(cell=cell, ok=False,
                                  error_code=exc.error_code,
                                  error=str(exc))
            span.set("ok", True)
            if result.guessing_entropy is not None:
                span.set("guessing_entropy", result.guessing_entropy)
            if result.max_abs_t is not None:
                span.set("max_abs_t", result.max_abs_t)
            return result

    def _evaluate(self, cell: MatrixCell) -> CellResult:
        if cell.attack == "tvla":
            return self._evaluate_tvla(cell)
        ranks: List[float] = []
        widths: List[int] = []
        mtd_value: Optional[int] = None
        mtd_done = False
        for repeat in range(self.spec.repeats):
            pts, traces = self.traceset(cell, repeat)
            result = self._run_attack(cell, traces, pts)
            ranks.append(float(result.rank_of_true_key()))
            widths.append(int(result.best_guess_tie_width()))
            if cell.attack == "cpa" and repeat == 0:
                # MTD on the first die only: the prefix re-runs dominate
                # the grid's cost, and one disclosure curve per cell is
                # what the comparison table needs.
                mtd_value = mtd(traces, pts, self.spec.key,
                                step=max(cell.budget // 8, 16),
                                stable_windows=2)
                mtd_done = True
        return CellResult(cell=cell, ok=True, ranks=ranks,
                          tie_widths=widths,
                          guessing_entropy=guessing_entropy(ranks),
                          success_rate=success_rate(ranks),
                          mtd=mtd_value, mtd_evaluated=mtd_done)

    def _run_attack(self, cell: MatrixCell, traces: np.ndarray,
                    pts: Sequence[int]):
        key = self.spec.key
        if cell.attack == "cpa":
            return cpa_attack(traces, pts, true_key=key)
        if cell.attack == "dpa":
            return multibit_dpa_attack(standardize(traces), pts,
                                       true_key=key)
        if cell.attack == "cpa2":
            return second_order_cpa(traces, pts, true_key=key)
        if cell.attack == "mlpa":
            return mlpa_attack(traces, pts, true_key=key)
        raise AttackError(f"unknown attack {cell.attack!r}")

    def _evaluate_tvla(self, cell: MatrixCell) -> CellResult:
        worst = 0.0
        for repeat in range(self.spec.repeats):
            pts, traces = self.traceset(cell, repeat)
            t = welch_t(traces[0::2], traces[1::2])
            worst = max(worst, float(np.abs(t).max()))
        return CellResult(cell=cell, ok=True, max_abs_t=worst,
                          leak_detected=worst > TVLA_THRESHOLD)

    # -- frontier -------------------------------------------------------

    def frontier(self, cells: List[CellResult]) -> List[FrontierRow]:
        rows: List[FrontierRow] = []
        pairs = []
        for style in self.spec.styles:
            for corner_name in self.spec.corners:
                if (style, corner_name) not in pairs:
                    pairs.append((style, corner_name))
        baselines: Dict[str, Tuple[float, float]] = {}
        for style, corner_name in pairs:
            nl = self.netlist(style, corner_name)
            lib = self.library(style, corner_name)
            model = BlockPowerModel(nl, tech=lib.tech, seed=0)
            if style == "wddl":
                # Precharge logic evaluates every gate every cycle —
                # constant (high) activity is the countermeasure.
                power = model.average_power(toggle_rate=FRONTIER_CLOCK_HZ)
            elif style == "cmos":
                power = model.average_power(
                    toggle_rate=FRONTIER_CLOCK_HZ * CMOS_ACTIVITY)
            elif style == "pgmcml":
                power = model.average_power(
                    awake_fraction=PGMCML_AWAKE_FRACTION,
                    toggle_rate=FRONTIER_CLOCK_HZ * CMOS_ACTIVITY)
            else:
                power = model.average_power()
            area = nl.total_area_um2()
            if style == "cmos":
                baselines[corner_name] = (area, power)
            mine = [c for c in cells if c.ok and c.cell.style == style
                    and c.cell.corner == corner_name]
            mtds = [c.mtd for c in mine if c.mtd is not None]
            ges = [c.guessing_entropy for c in mine
                   if c.guessing_entropy is not None]
            broken = any((c.success_rate or 0.0) > 0.0 for c in mine)
            rows.append(FrontierRow(
                style=style, corner=corner_name, area_um2=area,
                power_w=power, area_overhead=None, power_overhead=None,
                best_mtd=min(mtds) if mtds else None,
                min_guessing_entropy=min(ges) if ges else None,
                broken=broken))
        for row in rows:
            base = baselines.get(row.corner)
            if base is not None and base[0] > 0.0 and base[1] > 0.0:
                row.area_overhead = row.area_um2 / base[0]
                row.power_overhead = row.power_w / base[1]
        return rows


def run_matrix(spec: MatrixSpec, telemetry=None, workers: int = 1,
               backend: str = "auto", erc: Optional[bool] = None,
               retry_failed: bool = False) -> MatrixReport:
    """Expand ``spec`` and run every cell, returning one report.

    ``workers``/``backend`` configure each cell's acquisition pool;
    ``erc`` overrides the REPRO_ERC preflight gate.  ``retry_failed``
    re-attempts tracesets whose cached failure carries a transient
    error code (``E_BACKEND_*``/``E_ACQUISITION``) instead of replaying
    it into every consumer cell — the knob for resubmitting a grid
    after an environment hiccup.  Cell order (and every seed) is a pure
    function of the spec, so two runs of the same grid produce
    byte-identical trace sets.
    """
    tele = telemetry if telemetry is not None else NULL_TELEMETRY
    cells = spec.expand()
    runner = _GridRunner(spec, tele, workers, backend, erc,
                         retry_failed=retry_failed)
    with tele.span("sca.matrix", n_cells=len(cells),
                   styles=",".join(spec.styles),
                   attacks=",".join(spec.attacks),
                   repeats=spec.repeats) as span:
        results = [runner.run_cell(cell) for cell in cells]
        frontier = runner.frontier(results)
        span.set("acquisitions", runner.acquired)
        span.set("acquisitions_reused", runner.reused)
        span.set("failed_cells", sum(1 for r in results if not r.ok))
    return MatrixReport(spec=spec, cells=results, frontier=frontier,
                        acquisitions=runner.acquired,
                        acquisitions_reused=runner.reused)
