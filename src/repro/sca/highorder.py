"""Higher-order and multi-linear attacks.

Two attack families beyond first-order CPA/DPA, closing ROADMAP item 3's
attack axis:

* **Second-order CPA** — the classic countermeasure-bypass: combine
  pairs of time samples with the *centered product* (Chari et al.'s
  preprocessing as analysed by Prouff, Rivain & Bévan), then run plain
  CPA on the combined samples.  A leakage split across two samples
  (masking shares, or a dual-rail pair's two arrival instants) is
  invisible to first-order CPA but reappears in the product's mean.

* **MLPA** — multi-linear power analysis (Roche & Tavernier): instead
  of assuming one scalar leakage model (Hamming weight), regress each
  time sample on a per-guess *basis* of S-box output bit monomials.
  The right guess makes the predicted bits line up with the physical
  register bits, so the regression explains significantly more variance
  (R²) than any wrong guess — even when the per-bit weights are
  arbitrary, unequal, or of mixed sign (exactly the per-die residual
  pattern MCML mismatch and WDDL rail imbalance produce).

Both return result objects mirroring :class:`repro.sca.cpa.CPAResult`
(tie-aware ranking included), so campaign metrics treat every attack
uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from ..aes.sbox import SBOX
from ..errors import AttackError
from .cpa import CPAResult, cpa_attack
from .leakage import hw_model
from .ranking import tie_aware_rank, tie_width

#: Cap on samples entering the pairwise product (O(k^2) combined width).
DEFAULT_COMBINE_SAMPLES = 48


def centered_product(traces: np.ndarray,
                     max_samples: int = DEFAULT_COMBINE_SAMPLES,
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """Centered-product sample combination for second-order CPA.

    Selects the ``max_samples`` highest-variance time samples (the only
    ones that can carry leakage), centers each across traces, and forms
    every unordered pair product — ``k*(k+1)//2`` combined samples.
    Returns ``(combined, pairs)`` where ``pairs[j] = (s_a, s_b)`` maps
    combined column ``j`` back to the original sample indices.
    """
    traces = np.asarray(traces, dtype=float)
    if traces.ndim != 2:
        raise AttackError("traces must be 2-D (n_traces, n_samples)")
    if traces.shape[0] < 2:
        raise AttackError("need at least two traces to center")
    if max_samples < 1:
        raise AttackError("max_samples must be >= 1")
    variances = traces.var(axis=0)
    k = min(max_samples, traces.shape[1])
    keep = np.sort(np.argsort(-variances, kind="stable")[:k])
    centered = traces[:, keep] - traces[:, keep].mean(axis=0, keepdims=True)
    ia, ib = np.triu_indices(k)
    combined = centered[:, ia] * centered[:, ib]
    pairs = np.stack([keep[ia], keep[ib]], axis=1)
    return combined, pairs


def second_order_cpa(traces: np.ndarray, plaintexts: Sequence[int],
                     true_key: Optional[int] = None,
                     model: Callable = hw_model,
                     max_samples: int = DEFAULT_COMBINE_SAMPLES,
                     ) -> CPAResult:
    """CPA on centered-product combined samples.

    The returned :class:`CPAResult`'s ``rho`` is indexed by *combined*
    sample — use :func:`centered_product` directly if the winning pair's
    original time indices are needed.
    """
    combined, _ = centered_product(traces, max_samples=max_samples)
    return cpa_attack(combined, plaintexts, true_key=true_key, model=model)


@dataclass
class MlpaResult:
    """Outcome of one multi-linear regression attack."""

    r2: np.ndarray             # (256, n_samples) explained-variance ratio
    best_guess: int
    degree: int
    true_key: Optional[int] = None

    @property
    def peak_per_guess(self) -> np.ndarray:
        """max R² over time for each guess — the MLPA ranking."""
        return self.r2.max(axis=1)

    @property
    def succeeded(self) -> Optional[bool]:
        if self.true_key is None:
            return None
        return self.best_guess == self.true_key

    def rank_of_true_key(self) -> float:
        """Tie-aware rank (0.0 = unique best; flat R² ranks 127.5)."""
        if self.true_key is None:
            raise AttackError("true key unknown")
        return tie_aware_rank(self.peak_per_guess, self.true_key)

    def best_guess_tie_width(self) -> int:
        """Guesses sharing the winning R² (argmax ties)."""
        return tie_width(self.peak_per_guess)

    def __repr__(self) -> str:
        status = ""
        if self.true_key is not None:
            status = (", SUCCESS" if self.succeeded
                      else f", rank {self.rank_of_true_key()}")
        return (f"MlpaResult(best={self.best_guess:#04x}{status}, "
                f"deg={self.degree}, R2={self.peak_per_guess.max():.4f})")


def _mlpa_basis(pts: np.ndarray, guess: int, degree: int) -> np.ndarray:
    """Centered monomial basis of the predicted S-box output bits.

    Degree 1: the 8 output bits; degree 2 adds all pairwise products —
    the multi-linear combinations of register leakages the attack is
    named after.
    """
    sbox = np.asarray(SBOX, dtype=np.int64)
    hyp = sbox[pts ^ guess]
    bits = ((hyp[:, None] >> np.arange(8)[None, :]) & 1).astype(float)
    cols = [bits]
    if degree >= 2:
        ia, ib = np.triu_indices(8, k=1)
        cols.append(bits[:, ia] * bits[:, ib])
    basis = np.concatenate(cols, axis=1)
    return basis - basis.mean(axis=0, keepdims=True)


def mlpa_attack(traces: np.ndarray, plaintexts: Sequence[int],
                true_key: Optional[int] = None,
                degree: int = 2) -> MlpaResult:
    """Multi-linear power analysis over all 256 key guesses.

    Per guess, project the (centered) traces onto the orthonormalised
    bit-monomial basis and score each time sample by the explained
    variance ratio R²; the guess whose basis explains the most variance
    anywhere in time wins.  With too few traces to fit the degree-2
    basis the attack degrades to degree 1 rather than overfitting
    (36 regressors on 40 traces would "explain" pure noise).
    """
    traces = np.asarray(traces, dtype=float)
    pts = np.asarray(list(plaintexts), dtype=np.int64)
    if traces.ndim != 2:
        raise AttackError("traces must be 2-D (n_traces, n_samples)")
    if traces.shape[0] != pts.size:
        raise AttackError("trace/plaintext count mismatch")
    if degree not in (1, 2):
        raise AttackError(f"MLPA degree must be 1 or 2: {degree}")
    if np.any(pts < 0) or np.any(pts > 0xFF):
        raise AttackError("plaintext bytes out of range")
    n = traces.shape[0]
    width = {1: 8, 2: 8 + 28}[degree]
    while degree > 1 and n < 2 * width + 2:
        degree -= 1
        width = 8
    if n < 2 * width + 2:
        raise AttackError(
            f"MLPA needs at least {2 * width + 2} traces for a degree-"
            f"{degree} basis; got {n}")
    t_centered = traces - traces.mean(axis=0, keepdims=True)
    total = (t_centered ** 2).sum(axis=0)
    r2 = np.zeros((256, traces.shape[1]))
    safe_total = np.where(total > 0.0, total, 1.0)
    for guess in range(256):
        basis = _mlpa_basis(pts, guess, degree)
        # Orthonormal column space; rank-deficient bases (degenerate
        # plaintext sets) drop their null directions via the R diagonal.
        q, r = np.linalg.qr(basis)
        keep = np.abs(np.diag(r)) > 1e-9 * max(1.0, np.abs(r).max())
        q = q[:, keep]
        explained = ((q.T @ t_centered) ** 2).sum(axis=0)
        r2[guess] = np.where(total > 0.0, explained / safe_total, 0.0)
    best = int(r2.max(axis=1).argmax())
    return MlpaResult(r2=r2, best_guess=best, degree=degree,
                      true_key=true_key)
