"""Correlation power analysis (Brier, Clavier, Olivier — CHES 2004).

For every key guess, Pearson-correlate the hypothesis vector (one value
per trace) against every time sample of the trace matrix; the correct
key shows the largest |rho| at the samples where the predicted
intermediate is being computed.  Fig. 6 of the paper plots exactly these
per-guess correlation traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..errors import AttackError
from .leakage import hw_model
from .ranking import tie_aware_rank, tie_width


def correlation_matrix(traces: np.ndarray,
                       hypotheses: np.ndarray) -> np.ndarray:
    """Pearson correlation of each hypothesis row with each time sample.

    ``traces`` is (n_traces, n_samples); ``hypotheses`` is
    (n_guesses, n_traces).  Returns (n_guesses, n_samples).  Constant
    columns (zero variance) yield zero correlation rather than NaN —
    a quantised flat trace must read as "no information", not an error.
    """
    traces = np.asarray(traces, dtype=float)
    hypotheses = np.asarray(hypotheses, dtype=float)
    if traces.ndim != 2 or hypotheses.ndim != 2:
        raise AttackError("traces and hypotheses must be 2-D")
    if traces.shape[0] != hypotheses.shape[1]:
        raise AttackError(
            f"trace count mismatch: {traces.shape[0]} traces vs "
            f"{hypotheses.shape[1]} hypothesis entries")
    t_centered = traces - traces.mean(axis=0, keepdims=True)
    h_centered = hypotheses - hypotheses.mean(axis=1, keepdims=True)
    t_norm = np.sqrt((t_centered ** 2).sum(axis=0))
    h_norm = np.sqrt((h_centered ** 2).sum(axis=1))
    cov = h_centered @ t_centered  # (guesses, samples)
    denom = np.outer(h_norm, t_norm)
    with np.errstate(divide="ignore", invalid="ignore"):
        rho = np.where(denom > 0.0, cov / denom, 0.0)
    return rho


@dataclass
class CPAResult:
    """Outcome of one CPA attack."""

    rho: np.ndarray            # (256, n_samples)
    best_guess: int
    true_key: Optional[int] = None

    @property
    def peak_per_guess(self) -> np.ndarray:
        """max |rho| over time for each guess — the Fig. 6 ranking."""
        return np.abs(self.rho).max(axis=1)

    @property
    def succeeded(self) -> Optional[bool]:
        if self.true_key is None:
            return None
        return self.best_guess == self.true_key

    def rank_of_true_key(self) -> float:
        """0.0 = the true key uniquely has the highest peak.

        Tied peaks rank at the midpoint of the tie class: the flat
        protected-trace outcome (all 256 peaks equal) ranks 127.5 for
        any true key, instead of leaking the key byte back out through
        a stable argsort.
        """
        if self.true_key is None:
            raise AttackError("true key unknown")
        return tie_aware_rank(self.peak_per_guess, self.true_key)

    def best_guess_tie_width(self) -> int:
        """How many guesses share the winning peak.

        ``best_guess`` is an argmax; when this is > 1 that argmax was an
        arbitrary pick among equals (256 on a perfectly flat trace set)
        and "best" carries no information.
        """
        return tie_width(self.peak_per_guess)

    def distinguishability(self) -> float:
        """Peak margin of the true key over the best wrong guess.

        > 1 means the black line of Fig. 6 stands above the grey cloud;
        <= 1 means it is buried (the paper's MCML/PG-MCML picture).
        """
        if self.true_key is None:
            raise AttackError("true key unknown")
        peaks = self.peak_per_guess
        others = np.delete(peaks, self.true_key)
        best_other = float(others.max())
        if best_other == 0.0:
            return float("inf") if peaks[self.true_key] > 0 else 1.0
        return float(peaks[self.true_key] / best_other)

    def __repr__(self) -> str:
        status = ""
        if self.true_key is not None:
            status = (", SUCCESS" if self.succeeded
                      else f", rank {self.rank_of_true_key()}")
        return (f"CPAResult(best={self.best_guess:#04x}"
                f"{status}, peak={self.peak_per_guess.max():.4f})")


def cpa_attack(traces: np.ndarray, plaintexts: Sequence[int],
               true_key: Optional[int] = None,
               model: Callable = hw_model) -> CPAResult:
    """Run CPA over all 256 key guesses."""
    hypotheses = np.vstack([model(plaintexts, k) for k in range(256)])
    rho = correlation_matrix(traces, hypotheses)
    best = int(np.abs(rho).max(axis=1).argmax())
    return CPAResult(rho=rho, best_guess=best, true_key=true_key)
