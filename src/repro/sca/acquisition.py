"""Order-independent parallel trace acquisition.

The Fig. 6 / TVLA campaigns push thousands of event simulations through
the power models and the measurement chain — the repo's heaviest
workload.  This module is the worker-pool layer that spreads one
campaign's plaintexts over threads or processes while guaranteeing the
result is **byte-identical** to a serial run, regardless of worker
count, chunking, or execution order:

* noise is counter-based (:class:`repro.power.MeasurementChain` derives
  trace *i*'s generator from ``(campaign entropy, i)``), so no worker
  consumes stream state another worker needed;
* mismatch residuals are a pure function of ``(netlist, mismatch_seed)``
  — every worker's :class:`BlockPowerModel` draws the same die;
* chunks are reassembled by trace index, not completion order.

:class:`TraceAcquirer` owns the per-worker hoisted state (one power
model, one event simulator, the precomputed data-independent baseline
for differential styles), so none of it is rebuilt per chunk.
:func:`acquire_traces` is the one-shot entry point;
:class:`AcquisitionPool` keeps a pool alive across many acquisitions
(the checkpointed campaign path reuses one pool for every chunk).

The process backend relies on ``fork`` (Linux/macOS-with-fork): workers
inherit the acquirer through copy-on-write, which sidesteps pickling
the netlist's cell-function closures.  Where ``fork`` is unavailable
the pool falls back to threads.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue
import threading
import time
import weakref
from concurrent.futures import BrokenExecutor, Executor, \
    ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AcquisitionError, AttackError, ConvergenceError
from ..obs import NULL_TELEMETRY, MemorySink, Telemetry
from ..netlist import GateNetlist, LogicSimulator
from ..power import (
    BlockPowerModel,
    MeasurementChain,
    TraceGrid,
    activity_current,
    differential_baseline,
    wddl_baseline,
    wddl_current,
)
from ..spice.batch import batch_size_from_env
from ..units import ns, ps

#: Trace capture window (the reduced AES settles well within this).
DEFAULT_WINDOW = ns(2.0)
#: Current sampling step for attack traces.
DEFAULT_DT = ps(25.0)
#: Plaintexts handed to a worker at a time.
DEFAULT_CHUNK = 16

_BACKENDS = ("auto", "serial", "thread", "process")


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_backend(backend: str, workers: int) -> str:
    """Map (backend, workers) onto the backend actually used."""
    if backend not in _BACKENDS:
        raise AttackError(
            f"unknown acquisition backend {backend!r}; "
            f"choose from {_BACKENDS}")
    if workers < 1:
        raise AttackError(f"workers must be >= 1: {workers}")
    if workers == 1 or backend == "serial":
        return "serial"
    if backend == "auto":
        return "process" if _fork_available() else "thread"
    if backend == "process" and not _fork_available():
        return "thread"
    return backend


def validate_plaintexts(plaintexts: Sequence[int]) -> List[int]:
    """Whole-batch validation, before any trace is acquired.

    A bad byte in the middle of a campaign must not leave half the work
    done (and the noise counter advanced) before raising.
    """
    values: List[int] = []
    bad: List[object] = []
    for p in plaintexts:
        try:
            value = int(p)
        except (TypeError, ValueError):
            bad.append(p)
            continue
        if not 0 <= value <= 0xFF:
            bad.append(p)
        else:
            values.append(value)
    if bad:
        shown = ", ".join(repr(b) for b in bad[:8])
        more = "" if len(bad) <= 8 else f" (+{len(bad) - 8} more)"
        raise AttackError(f"plaintext bytes out of range: {shown}{more}")
    return values


class TraceAcquirer:
    """One worker's end of a campaign: simulate, compose, measure.

    Owns everything that is loop-invariant across the campaign's traces
    — the power model, the event simulator, the key stimulus, and (for
    differential styles) the pre-composed data-independent baseline —
    so per-chunk work is only the per-trace part.
    """

    def __init__(self, netlist: GateNetlist, key: int,
                 chain: Optional[MeasurementChain] = None,
                 grid: Optional[TraceGrid] = None,
                 mismatch_seed: int = 0, t_apply: float = 0.0,
                 batch: Optional[int] = None):
        if not 0 <= key <= 0xFF:
            raise AttackError(f"key byte out of range: {key}")
        if batch is None:
            batch = batch_size_from_env(default=1)
        batch = int(batch)
        if batch < 1:
            raise AttackError(f"batch must be >= 1: {batch}")
        self.batch = batch
        self.netlist = netlist
        self.key = key
        self.chain = chain if chain is not None else MeasurementChain()
        self.grid = grid if grid is not None else \
            TraceGrid(0.0, DEFAULT_WINDOW, DEFAULT_DT)
        if not t_apply < self.grid.t1:
            raise AttackError(
                f"t_apply={t_apply:g} must fall before the capture "
                f"window's end t1={self.grid.t1:g}")
        self.mismatch_seed = mismatch_seed
        self.t_apply = t_apply
        self.model = BlockPowerModel(netlist, seed=mismatch_seed)
        self.simulator = LogicSimulator(netlist)
        self._key_stimuli = [
            (t_apply, f"k{b}", bool((key >> (7 - b)) & 1))
            for b in range(8)]
        self._key_inputs = {f"k{b}": bool((key >> (7 - b)) & 1)
                            for b in range(8)}
        if self.model.style == "cmos":
            self._baseline = None
        elif self.model.style == "wddl":
            self._baseline = wddl_baseline(self.model, self.grid)
        else:
            self._baseline = differential_baseline(self.model, self.grid)

    def fingerprint(self) -> Dict[str, object]:
        """JSON-serialisable identity of this acquirer's trace function.

        Two acquirers with equal fingerprints produce byte-identical
        traces for equal ``(plaintexts, trace_offset)`` — the property
        the campaign job service's content-addressed result store and
        the checkpoint resume guard both key on.  Everything that
        shapes a trace is present: the netlist identity, the key, the
        mismatch die, the capture grid, and the measurement chain's own
        fingerprint (entropy + seeding scheme).
        """
        return {
            "netlist": self.netlist.name,
            "style": self.model.style,
            "key": self.key,
            "mismatch_seed": self.mismatch_seed,
            "t_apply": float(self.t_apply),
            "grid": {"t0": float(self.grid.t0), "t1": float(self.grid.t1),
                     "dt": float(self.grid.dt)},
            "noise": self.chain.fingerprint(),
        }

    def _wddl_samples(self, plaintext: int) -> np.ndarray:
        """One WDDL precharge/evaluate cycle.

        ``reset()`` is the precharge phase — the all-zero wave has
        discharged every rail pair (positive-monotonic gates propagate
        it combinationally).  ``initialize()`` is the evaluate phase:
        the settled single-rail values say which rail of each pair
        charged, and the waveform composes analytically from the static
        arrival profile — each gate evaluates exactly once per cycle,
        so there is no data-dependent transition stream to simulate.
        """
        sim = self.simulator
        sim.reset()
        inputs = dict(self._key_inputs)
        inputs.update({f"p{b}": bool((plaintext >> (7 - b)) & 1)
                       for b in range(8)})
        sim.initialize(inputs)
        values = {
            inst.name: sim.values[inst.pins[inst.cell.outputs[0]]]
            for inst in self.netlist.instances.values()
            if not inst.cell.pseudo}
        return wddl_current(self.model, values, self.grid,
                            baseline=self._baseline)

    def ideal_samples(self, plaintext: int) -> np.ndarray:
        """Pre-instrument current samples for one plaintext."""
        if self.model.style == "wddl":
            return self._wddl_samples(plaintext)
        self.simulator.reset()
        stimuli = list(self._key_stimuli)
        stimuli += [(self.t_apply, f"p{b}",
                     bool((plaintext >> (7 - b)) & 1)) for b in range(8)]
        trace = self.simulator.run(stimuli, duration=self.grid.t1)
        return activity_current(self.model, trace, self.grid,
                                baseline=self._baseline)

    def acquire(self, plaintexts: Sequence[int],
                trace_offset: int = 0,
                failures: Optional[List[dict]] = None) -> np.ndarray:
        """Measured traces, one row per plaintext.

        ``trace_offset`` is the campaign-global index of the first
        plaintext — it keys the noise, so a chunk produces the same
        bytes wherever and whenever it runs.

        With ``batch > 1`` the instrument arithmetic runs over blocks
        of that many traces through
        :meth:`~repro.power.MeasurementChain.measure_block`; the noise
        stays per-trace Philox, so the blocked path is byte-identical
        to the serial loop by construction.

        A :class:`ConvergenceError` on one trace does not fail the
        whole chunk outright: the failing trace is isolated and retried
        serially on its own (re-entering the solver's full recovery
        ladder where the power model is simulator-backed) while every
        other trace keeps its result.  A recovered isolation is
        appended to ``failures`` (trace index, plaintext, original
        error) so the pool can emit ``trace_failed`` telemetry; only a
        trace whose serial retry fails too raises.
        """
        pts = validate_plaintexts(plaintexts)
        rows = np.empty((len(pts), self.grid.n))
        if self.batch > 1:
            for begin in range(0, len(pts), self.batch):
                block = pts[begin:begin + self.batch]
                samples = np.zeros((len(block), self.grid.n))
                retry: List[Tuple[int, int, ConvergenceError]] = []
                for j, plaintext in enumerate(block):
                    try:
                        samples[j] = self.ideal_samples(plaintext)
                    except ConvergenceError as err:
                        retry.append((j, plaintext, err))
                rows[begin:begin + len(block)] = self.chain.measure_block(
                    samples, first_index=trace_offset + begin)
                for j, plaintext, err in retry:
                    rows[begin + j] = self._retry_trace(
                        plaintext, trace_offset + begin + j, err, failures)
        else:
            for i, plaintext in enumerate(pts):
                index = trace_offset + i
                try:
                    samples = self.ideal_samples(plaintext)
                except ConvergenceError as err:
                    rows[i] = self._retry_trace(plaintext, index, err,
                                                failures)
                else:
                    rows[i] = self.chain.measure(samples, trace_index=index)
        return rows

    def _retry_trace(self, plaintext: int, trace_index: int,
                     err: ConvergenceError,
                     failures: Optional[List[dict]]) -> np.ndarray:
        """Serial retry of one isolated trace.

        The retry re-runs the trace alone; a second failure is the
        trace's final outcome and raises with the full post-mortem
        context (which campaign trace, which input) so the JSONL trace
        alone locates it.
        """
        record = {"trace_index": trace_index, "plaintext": plaintext,
                  "key": self.key, "error": err.to_dict()}
        try:
            samples = self.ideal_samples(plaintext)
        except ConvergenceError as err2:
            err2.context.setdefault("trace_index", trace_index)
            err2.context.setdefault("plaintext", plaintext)
            err2.context.setdefault("key", self.key)
            raise
        if failures is not None:
            failures.append(record)
        return self.chain.measure(samples, trace_index=trace_index)


# -- worker-pool plumbing -----------------------------------------------------

#: Acquirers inherited by forked process workers, keyed by pool token.
#: Only ever *read* in workers; the parent owns the lifecycle.
_FORK_ACQUIRERS: Dict[int, TraceAcquirer] = {}
_POOL_TOKENS = itertools.count(1)


def _instrumented_chunk(acquirer: TraceAcquirer, chunk_index: int,
                        trace_offset: int, plaintexts: List[int],
                        observe: bool, t_submit: float):
    """Run one chunk, optionally under an isolated telemetry collector.

    Returns ``(rows, records, failures)`` where ``records`` is the
    collector's record list (to be :meth:`~repro.obs.Telemetry.adopt`-ed
    by the parent in chunk-index order) or ``None`` when telemetry is
    off, and ``failures`` lists the chunk's recovered per-trace
    isolations (see :meth:`TraceAcquirer.acquire`).  Everything is
    plain dicts, so the fork backend can pickle the results back
    across the process boundary.
    """
    failures: List[dict] = []
    if not observe:
        try:
            rows = acquirer.acquire(plaintexts, trace_offset=trace_offset,
                                    failures=failures)
        except ConvergenceError as err:
            err.context.setdefault("chunk", chunk_index)
            raise
        return rows, None, failures
    collector = Telemetry(sinks=[MemorySink()])
    t0 = time.monotonic()
    collector.histogram("sca.acquisition.queue_wait_seconds").observe(
        max(0.0, t0 - t_submit))
    try:
        with collector.span("sca.acquisition.chunk", chunk=chunk_index,
                            offset=trace_offset, n=len(plaintexts)):
            rows = acquirer.acquire(plaintexts, trace_offset=trace_offset,
                                    failures=failures)
    except ConvergenceError as err:
        err.context.setdefault("chunk", chunk_index)
        raise
    collector.histogram("sca.acquisition.chunk_seconds").observe(
        time.monotonic() - t0)
    collector.counter("sca.acquisition.traces").inc(len(plaintexts))
    collector.emit_metrics()
    return rows, collector.sinks[0].records, failures


def _process_chunk(token: int, chunk_index: int, trace_offset: int,
                   plaintexts: List[int], observe: bool, t_submit: float):
    acquirer = _FORK_ACQUIRERS.get(token)
    if acquirer is None:
        raise AttackError(
            "process worker has no inherited acquirer (fork-only backend "
            "ran under a spawn start method?)")
    return _instrumented_chunk(acquirer, chunk_index, trace_offset,
                               plaintexts, observe, t_submit)


class AcquisitionPool:
    """A reusable worker pool bound to one campaign's acquisition state.

    Usable as a context manager.  ``workers=1`` (or backend="serial")
    degenerates to an in-process acquirer with zero pool overhead, so
    callers can thread a ``workers`` argument through unconditionally.
    """

    def __init__(self, factory: Callable[[], TraceAcquirer],
                 workers: int = 1, backend: str = "auto",
                 chunk_size: int = DEFAULT_CHUNK, telemetry=None,
                 max_pool_rebuilds: int = 3, batch: Optional[int] = None):
        if chunk_size < 1:
            raise AttackError(f"chunk_size must be >= 1: {chunk_size}")
        if max_pool_rebuilds < 0:
            raise AttackError(
                f"max_pool_rebuilds must be >= 0: {max_pool_rebuilds}")
        if batch is not None and int(batch) < 1:
            raise AttackError(f"batch must be >= 1: {batch}")
        self.backend = resolve_backend(backend, workers)
        self.workers = 1 if self.backend == "serial" else workers
        self.chunk_size = chunk_size
        self.max_pool_rebuilds = max_pool_rebuilds
        self.batch = None if batch is None else int(batch)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        if batch is not None:
            # Override the acquirer's batch size without asking every
            # factory to grow a parameter: acquirers expose `batch` as
            # plain state, and every worker builds through this wrapper.
            base_factory, size = factory, self.batch

            def factory() -> TraceAcquirer:
                acquirer = base_factory()
                acquirer.batch = size
                return acquirer
        self._factory = factory
        self._executor: Optional[Executor] = None
        self._token: Optional[int] = None
        self._finalizer = None
        self._serial: Optional[TraceAcquirer] = None
        self._thread_acquirers: Optional["queue.SimpleQueue"] = None
        self._thread_local = threading.local()

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "AcquisitionPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown()
        self._release_token()

    def _release_token(self) -> None:
        """Drop this pool's fork-acquirer registry entry (idempotent)."""
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        if self._token is not None:
            _FORK_ACQUIRERS.pop(self._token, None)
            self._token = None

    def _ensure_started(self) -> None:
        if self.backend == "serial":
            if self._serial is None:
                self._serial = self._factory()
            return
        if self._executor is not None:
            return
        if self.backend == "process":
            # The acquirer must exist before the first submit: workers
            # fork lazily and inherit it copy-on-write.  The finalizer
            # reclaims the registry slot even when the pool is abandoned
            # without close() (e.g. a caller that crashed mid-campaign).
            token = next(_POOL_TOKENS)
            _FORK_ACQUIRERS[token] = self._factory()
            self._token = token
            self._finalizer = weakref.finalize(
                self, _FORK_ACQUIRERS.pop, token, None)
            try:
                self._executor = self._new_process_executor()
            except Exception:
                self._release_token()
                raise
        else:
            # One acquirer per thread, all built up front in this thread
            # (LogicSimulator construction touches shared netlist caches,
            # so it must not race).
            acquirers: "queue.SimpleQueue" = queue.SimpleQueue()
            for _ in range(self.workers):
                acquirers.put(self._factory())
            self._thread_acquirers = acquirers
            self._executor = ThreadPoolExecutor(max_workers=self.workers)

    def _new_process_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=multiprocessing.get_context("fork"))

    def _thread_chunk(self, chunk_index: int, trace_offset: int,
                      plaintexts: List[int], observe: bool,
                      t_submit: float):
        acquirer = getattr(self._thread_local, "acquirer", None)
        if acquirer is None:
            acquirer = self._thread_acquirers.get_nowait()
            self._thread_local.acquirer = acquirer
        return _instrumented_chunk(acquirer, chunk_index, trace_offset,
                                   plaintexts, observe, t_submit)

    # -- worker-crash recovery -----------------------------------------------

    def _run_thread_jobs(self, jobs, observe: bool) -> List:
        futures = [self._executor.submit(
            self._thread_chunk, index, offset, chunk, observe,
            time.monotonic() if observe else 0.0)
            for index, offset, chunk in jobs]
        return [f.result() for f in futures]

    def _run_process_jobs(self, jobs, observe: bool, tele) -> List:
        """Run chunks on the fork pool, surviving killed workers.

        A dead worker breaks the whole :class:`ProcessPoolExecutor`:
        every not-yet-finished future raises ``BrokenProcessPool``.
        Completed chunks keep their results, so only the unfinished
        chunks are requeued onto a rebuilt executor — and because each
        chunk is a pure function of ``(chunk_index, trace_offset,
        plaintexts)`` (counter-based noise, deterministic mismatch), the
        requeued rerun is byte-identical to what the dead worker would
        have produced.  After ``max_pool_rebuilds`` rebuilds the pool
        falls back to the thread backend rather than looping forever
        against a systematically dying fork environment.
        """
        results: Dict[int, Tuple] = {}
        pending = list(jobs)
        rebuilds = 0
        while pending:
            futures = []
            lost = []
            broken = False
            for job in pending:
                if broken:
                    lost.append(job)
                    continue
                try:
                    futures.append((self._executor.submit(
                        _process_chunk, self._token, job[0], job[1], job[2],
                        observe, time.monotonic() if observe else 0.0), job))
                except BrokenExecutor:
                    broken = True
                    lost.append(job)
            for future, job in futures:
                try:
                    results[job[0]] = future.result()
                except BrokenExecutor:
                    lost.append(job)
            if not lost:
                break
            pending = sorted(lost)
            tele.counter("sca.acquisition.workers_lost").inc()
            tele.event("sca.acquisition.worker_lost",
                       chunks=[j[0] for j in pending],
                       requeued=len(pending), rebuilds=rebuilds)
            if rebuilds >= self.max_pool_rebuilds:
                tele.counter("sca.acquisition.backend_fallbacks").inc()
                tele.event("sca.acquisition.backend_fallback",
                           from_backend="process", to_backend="thread",
                           rebuilds=rebuilds, remaining=len(pending))
                self._fallback_to_threads()
                finished = self._run_thread_jobs(pending, observe)
                for job, result in zip(pending, finished):
                    results[job[0]] = result
                break
            rebuilds += 1
            self._rebuild_process_executor()
            tele.counter("sca.acquisition.pool_rebuilds").inc()
            tele.event("sca.acquisition.pool_rebuilt", rebuild=rebuilds,
                       requeued=len(pending))
        missing = [index for index, _, _ in jobs if index not in results]
        if missing:  # pragma: no cover - defensive
            raise AcquisitionError(
                f"chunks never completed: {missing}",
                context={"chunks": missing, "rebuilds": rebuilds})
        return [results[index] for index, _, _ in jobs]

    def _rebuild_process_executor(self) -> None:
        """Replace a broken fork executor; the acquirer token survives."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False)
        self._executor = self._new_process_executor()

    def _fallback_to_threads(self) -> None:
        """Permanently demote this pool to the thread backend."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False)
        self._release_token()
        self.backend = "thread"
        self._ensure_started()

    # -- acquisition ---------------------------------------------------------

    def acquire(self, plaintexts: Sequence[int],
                trace_offset: int = 0) -> np.ndarray:
        """Measured traces for ``plaintexts``, rows in plaintext order.

        Chunks are submitted in order and reassembled by index, so the
        output is invariant to which worker finishes first.  Every
        backend — serial included — runs the same chunk wrapper, so the
        adopted span tree is identical for serial, thread, and fork
        runs of the same campaign slice.
        """
        pts = validate_plaintexts(plaintexts)
        self._ensure_started()
        tele = self.telemetry
        observe = tele.enabled
        if self.backend == "serial" and not pts:
            # Preserve the acquirer's own grid width for the empty case.
            return self._serial.acquire(pts, trace_offset=trace_offset)
        jobs: List[Tuple[int, int, List[int]]] = [
            (index, trace_offset + begin,
             pts[begin:begin + self.chunk_size])
            for index, begin in enumerate(
                range(0, len(pts), self.chunk_size))]
        with tele.span("sca.acquisition.acquire", backend=self.backend,
                       workers=self.workers, traces=len(pts),
                       chunks=len(jobs), chunk_size=self.chunk_size,
                       batch=self.batch):
            try:
                if self.backend == "serial":
                    results = [
                        _instrumented_chunk(
                            self._serial, index, offset, chunk, observe,
                            time.monotonic() if observe else 0.0)
                        for index, offset, chunk in jobs]
                elif self.backend == "process":
                    results = self._run_process_jobs(jobs, observe, tele)
                else:
                    results = self._run_thread_jobs(jobs, observe)
            except ConvergenceError as err:
                # The context carries trace_index/plaintext/chunk (set at
                # the point of failure), so this one event makes the
                # failure reproducible from the JSONL trace alone.
                tele.counter("sca.acquisition.trace_failures").inc()
                tele.event("sca.acquisition.trace_failed",
                           backend=self.backend, error=err.to_dict())
                raise
            blocks: List[np.ndarray] = []
            for rows, records, failures in results:
                if records is not None:
                    tele.adopt(records)
                for failure in failures:
                    # A trace that fell out of its chunk but recovered
                    # on the serial retry: the campaign goes on, the
                    # isolation is still a first-class event.
                    tele.counter("sca.acquisition.trace_failures").inc()
                    tele.event("sca.acquisition.trace_failed",
                               backend=self.backend, recovered=True,
                               **failure)
                blocks.append(rows)
        if not blocks:
            return np.zeros((0, TraceGrid(0.0, DEFAULT_WINDOW,
                                          DEFAULT_DT).n))
        return np.vstack(blocks)


def acquire_traces(netlist: GateNetlist, key: int,
                   plaintexts: Sequence[int],
                   chain: Optional[MeasurementChain] = None,
                   grid: Optional[TraceGrid] = None,
                   mismatch_seed: int = 0, t_apply: float = 0.0,
                   workers: int = 1, backend: str = "auto",
                   chunk_size: int = DEFAULT_CHUNK,
                   trace_offset: int = 0, telemetry=None,
                   batch: Optional[int] = None) -> np.ndarray:
    """One-shot parallel acquisition: simulate, compose, and measure
    ``plaintexts`` with ``workers`` workers.

    Byte-identical to a serial run for any ``workers``/``backend``/
    ``chunk_size`` — and for any ``telemetry`` or ``batch`` — see the
    module docstring for why.
    """
    pts = validate_plaintexts(plaintexts)

    def factory() -> TraceAcquirer:
        return TraceAcquirer(netlist, key, chain=chain, grid=grid,
                             mismatch_seed=mismatch_seed, t_apply=t_apply,
                             batch=batch)

    if not pts:
        return np.zeros((0, (grid if grid is not None else
                             TraceGrid(0.0, DEFAULT_WINDOW, DEFAULT_DT)).n))
    with AcquisitionPool(factory, workers=workers, backend=backend,
                         chunk_size=chunk_size, telemetry=telemetry) as pool:
        return pool.acquire(pts, trace_offset=trace_offset)
