"""Tie-aware key ranking.

The protected-logic regime produces *flat* score vectors: on an MCML or
PG-MCML target the quantised traces often carry no information at all,
every key guess peaks at exactly the same value (frequently 0.0), and a
stable argsort then "ranks" the true key at its own byte value — a rank
statistic that depends on the key, not on the attack.  Averaged into a
guessing entropy, that bias reports ``key`` instead of the ~127.5 a
no-information attack must score.

The standard correction (Standaert et al., the security-evaluation
framework literature) ranks a guess as the number of strictly better
guesses plus the midpoint of its tie class: a unique winner still ranks
0, and a 256-way tie ranks 127.5 regardless of which byte is the key.
Every ranking in :mod:`repro.sca` — CPA, DPA, MLPA, and the standalone
:func:`repro.sca.metrics.key_rank` — goes through this module, and the
tie width is surfaced so a "best guess" produced by an argmax over tied
peaks is recognisable as the coin toss it is.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..errors import AttackError


def tie_aware_rank(scores: Sequence[float], index: int) -> float:
    """Rank of ``scores[index]``, counting ties at their midpoint.

    ``rank = (# strictly greater scores) + (tie_width - 1) / 2`` where
    the tie class is every guess scoring exactly ``scores[index]``.  A
    unique maximum ranks 0.0; an all-equal vector ranks
    ``(len - 1) / 2`` for every index.
    """
    arr = np.asarray(scores, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise AttackError("scores must be a non-empty 1-D vector")
    if not 0 <= index < arr.size:
        raise AttackError(
            f"index {index} out of range for {arr.size} scores")
    value = arr[index]
    greater = int(np.count_nonzero(arr > value))
    ties = int(np.count_nonzero(arr == value))
    return float(greater + (ties - 1) / 2.0)


def tie_width(scores: Sequence[float], index: int = None) -> int:
    """Number of guesses sharing a score (default: the maximum).

    A ``tie_width > 1`` at the maximum means any argmax-derived "best
    guess" was an arbitrary pick among that many equals — the flat
    protected-trace outcome.
    """
    arr = np.asarray(scores, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise AttackError("scores must be a non-empty 1-D vector")
    value = arr.max() if index is None else arr[index]
    return int(np.count_nonzero(arr == value))


def rank_and_ties(scores: Sequence[float],
                  index: int) -> Tuple[float, int, int]:
    """``(tie-aware rank, tie width at index, tie width at max)``."""
    return (tie_aware_rank(scores, index), tie_width(scores, index),
            tie_width(scores))
