"""Classic difference-of-means DPA (Kocher, Jaffe, Jun — CRYPTO '99).

The attack the paper's title is named after: partition traces by one
predicted bit of the S-box output and subtract the partition means; the
correct key guess shows a bias spike where wrong guesses average out.
Kept alongside CPA because the two attacks have different statistical
power — the resistance claim should (and does) hold for both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..aes.sbox import SBOX
from ..errors import AttackError
from .ranking import tie_aware_rank, tie_width


@dataclass
class DPAResult:
    """Outcome of one difference-of-means attack."""

    differentials: np.ndarray   # (256, n_samples)
    best_guess: int
    target_bit: int
    true_key: Optional[int] = None

    @property
    def peak_per_guess(self) -> np.ndarray:
        return np.abs(self.differentials).max(axis=1)

    @property
    def succeeded(self) -> Optional[bool]:
        if self.true_key is None:
            return None
        return self.best_guess == self.true_key

    def rank_of_true_key(self) -> float:
        """Tie-aware rank: ties count at their midpoint, so a flat
        differential set ranks 127.5 regardless of the key byte."""
        if self.true_key is None:
            raise AttackError("true key unknown")
        return tie_aware_rank(self.peak_per_guess, self.true_key)

    def best_guess_tie_width(self) -> int:
        """Guesses sharing the winning differential peak (argmax ties)."""
        return tie_width(self.peak_per_guess)

    def __repr__(self) -> str:
        status = ""
        if self.true_key is not None:
            status = (", SUCCESS" if self.succeeded
                      else f", rank {self.rank_of_true_key()}")
        return f"DPAResult(best={self.best_guess:#04x}{status})"


def dpa_attack(traces: np.ndarray, plaintexts: Sequence[int],
               target_bit: int = 0,
               true_key: Optional[int] = None) -> DPAResult:
    """Single-bit difference-of-means over all 256 guesses."""
    if not 0 <= target_bit <= 7:
        raise AttackError(f"target bit out of range: {target_bit}")
    traces = np.asarray(traces, dtype=float)
    pts = np.asarray(plaintexts, dtype=np.int64)
    if traces.shape[0] != pts.size:
        raise AttackError("trace/plaintext count mismatch")
    sbox = np.asarray(SBOX, dtype=np.int64)
    n_samples = traces.shape[1]
    differentials = np.zeros((256, n_samples))
    for guess in range(256):
        bit = (sbox[pts ^ guess] >> target_bit) & 1
        ones = bit == 1
        zeros = ~ones
        if not ones.any() or not zeros.any():
            continue  # degenerate partition: no information from this guess
        differentials[guess] = traces[ones].mean(axis=0) - \
            traces[zeros].mean(axis=0)
    best = int(np.abs(differentials).max(axis=1).argmax())
    return DPAResult(differentials=differentials, best_guess=best,
                     target_bit=target_bit, true_key=true_key)


def multibit_dpa_attack(traces: np.ndarray, plaintexts: Sequence[int],
                        true_key: Optional[int] = None) -> DPAResult:
    """Generalised (all-bits) difference-of-means.

    Messerges' multi-bit DPA: run the single-bit partition for every
    S-box output bit and accumulate the *signed* differentials.  In a
    charge-per-one CMOS target every bit's differential points the same
    way at the leak sample, so the eight weak distinguishers add
    coherently while partition noise cancels — this is what lifts
    classic DoM from "marginal at 256 traces" to a clean break, while
    MCML/PG-MCML still give it nothing to vote on.
    """
    traces = np.asarray(traces, dtype=float)
    pts = np.asarray(plaintexts, dtype=np.int64)
    if traces.shape[0] != pts.size:
        raise AttackError("trace/plaintext count mismatch")
    sbox = np.asarray(SBOX, dtype=np.int64)
    accumulated = np.zeros((256, traces.shape[1]))
    for guess in range(256):
        hyp = sbox[pts ^ guess]
        for bit in range(8):
            mask = ((hyp >> bit) & 1) == 1
            if not mask.any() or mask.all():
                continue
            accumulated[guess] += (traces[mask].mean(axis=0)
                                   - traces[~mask].mean(axis=0))
    best = int(np.abs(accumulated).max(axis=1).argmax())
    return DPAResult(differentials=accumulated, best_guess=best,
                     target_bit=-1, true_key=true_key)
