"""End-to-end attack campaigns (the Fig. 6 pipeline).

One :class:`AttackCampaign` owns the full chain for one logic style:

1. synthesise the reduced AES (8 XOR2 key-addition gates feeding the
   S-box LUT) onto the style's library;
2. for each plaintext, reset the netlist to the discharged state, apply
   the key and plaintext bits, and event-simulate;
3. compose the supply-current trace for the style's power physics and
   push it through the measurement chain (noise + 1 µA quantisation);
4. run CPA (and optionally classic DPA) with the Hamming-weight-of-
   S-box-output model over all 256 guesses.

The paper's outcome to reproduce: **CMOS breaks, MCML and PG-MCML do
not** — the black line of Fig. 6 stays inside the grey cloud.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cells import Library
from ..errors import AttackError
from ..netlist import GateNetlist, LogicSimulator
from ..power import (
    BlockPowerModel,
    MeasurementChain,
    TraceGrid,
    activity_current,
)
from ..synth import map_lut, sbox_truth_tables
from ..synth.buffering import buffer_high_fanout
from ..units import ns, ps
from ..power.preprocess import standardize
from .cpa import CPAResult, cpa_attack
from .dpa import DPAResult, multibit_dpa_attack

#: Trace capture window (the reduced AES settles well within this).
DEFAULT_WINDOW = ns(2.0)
#: Current sampling step for attack traces.
DEFAULT_DT = ps(25.0)


def build_reduced_aes(library: Library,
                      share_outputs: Optional[bool] = None) -> Tuple[
                          GateNetlist, List[str]]:
    """Key addition + S-box on one byte, mapped onto ``library``.

    Inputs are ``p0..p7`` (plaintext, MSB first) and ``k0..k7`` (key);
    returns the netlist and the 8 output net names.
    """
    if share_outputs is None:
        share_outputs = library.style in ("mcml", "pgmcml")
    nl = GateNetlist(f"reduced_aes_{library.style}", library)
    xored: Dict[str, str] = {}
    for bit in range(8):
        p, k = f"p{bit}", f"k{bit}"
        nl.add_primary_input(p)
        nl.add_primary_input(k)
        out = nl.new_net(f"ark{bit}_")
        nl.add_instance("XOR2", {"A": p, "B": k, "Y": out.name},
                        name=f"uark{bit}")
        xored[f"x{bit}"] = out.name
    block = map_lut(library, sbox_truth_tables(),
                    [f"x{i}" for i in range(8)], netlist=nl,
                    input_nets=xored, share_outputs=share_outputs)
    outputs = [block.outputs[f"y{b}"] for b in range(8)]
    for net in outputs:
        nl.add_primary_output(net)
    buffer_high_fanout(nl, max_fanout=6)
    return nl, outputs


def collect_traces(netlist: GateNetlist, key: int,
                   plaintexts: Sequence[int],
                   chain: Optional[MeasurementChain] = None,
                   grid: Optional[TraceGrid] = None,
                   mismatch_seed: int = 0,
                   t_apply: float = 0.0) -> np.ndarray:
    """Simulated measured traces, one row per plaintext."""
    if not 0 <= key <= 0xFF:
        raise AttackError(f"key byte out of range: {key}")
    chain = chain if chain is not None else MeasurementChain()
    grid = grid if grid is not None else TraceGrid(0.0, DEFAULT_WINDOW,
                                                   DEFAULT_DT)
    model = BlockPowerModel(netlist, seed=mismatch_seed)
    simulator = LogicSimulator(netlist)
    rows: List[np.ndarray] = []
    key_bits = [(f"k{b}", bool((key >> (7 - b)) & 1)) for b in range(8)]
    for plaintext in plaintexts:
        if not 0 <= plaintext <= 0xFF:
            raise AttackError(f"plaintext byte out of range: {plaintext}")
        simulator.reset()
        stimuli = [(t_apply, net, value) for net, value in key_bits]
        stimuli += [(t_apply, f"p{b}", bool((plaintext >> (7 - b)) & 1))
                    for b in range(8)]
        trace = simulator.run(stimuli, duration=grid.t1)
        samples = activity_current(model, trace, grid)
        rows.append(chain.measure(samples))
    return np.vstack(rows)


@dataclass
class CampaignResult:
    """Everything one campaign produced."""

    style: str
    key: int
    plaintexts: List[int]
    traces: np.ndarray
    cpa: CPAResult
    dpa: Optional[DPAResult] = None

    @property
    def succeeded(self) -> bool:
        return bool(self.cpa.succeeded)

    @property
    def rank(self) -> int:
        return self.cpa.rank_of_true_key()

    def summary(self) -> str:
        outcome = "KEY RECOVERED" if self.succeeded else "attack failed"
        return (f"{self.style.upper()}: {outcome} "
                f"(true-key rank {self.rank}, "
                f"peak rho {self.cpa.peak_per_guess[self.key]:.4f}, "
                f"best wrong "
                f"{np.delete(self.cpa.peak_per_guess, self.key).max():.4f})")


class AttackCampaign:
    """A reusable attack pipeline for one library."""

    def __init__(self, library: Library, key: int,
                 chain: Optional[MeasurementChain] = None,
                 mismatch_seed: int = 0):
        if not 0 <= key <= 0xFF:
            raise AttackError(f"key byte out of range: {key}")
        self.library = library
        self.key = key
        self.chain = chain if chain is not None else MeasurementChain()
        self.mismatch_seed = mismatch_seed
        self.netlist, self.output_nets = build_reduced_aes(library)

    def run(self, plaintexts: Optional[Sequence[int]] = None,
            with_dpa: bool = False,
            grid: Optional[TraceGrid] = None) -> CampaignResult:
        """Collect traces and attack.

        Defaults to all 256 plaintexts — the exhaustive enumeration the
        paper uses.
        """
        pts = list(plaintexts) if plaintexts is not None else list(range(256))
        traces = collect_traces(self.netlist, self.key, pts,
                                chain=self.chain, grid=grid,
                                mismatch_seed=self.mismatch_seed)
        return self._attack(pts, traces, with_dpa)

    def run_checkpointed(self, runner, plaintexts: Optional[Sequence[int]] = None,
                         with_dpa: bool = False,
                         grid: Optional[TraceGrid] = None) -> CampaignResult:
        """Like :meth:`run`, but collect traces through a resumable runner.

        ``runner`` is a :class:`repro.experiments.runner.CheckpointedRun`
        (duck-typed to keep this layer free of experiment imports): trace
        acquisition proceeds in chunks with an atomic snapshot after each,
        and a killed campaign restarted with the same runner path resumes
        where it stopped.  The measurement chain's RNG state rides along
        in the checkpoint, so the final traces — and therefore the CPA
        correlations — are byte-identical to an uninterrupted run.
        """
        pts = list(plaintexts) if plaintexts is not None else list(range(256))

        def process(chunk: Sequence[int], start: int) -> np.ndarray:
            return collect_traces(self.netlist, self.key, chunk,
                                  chain=self.chain, grid=grid,
                                  mismatch_seed=self.mismatch_seed)

        traces = runner.run(
            pts, process,
            fingerprint={"experiment": "cpa-campaign",
                         "style": self.library.style, "key": self.key,
                         "mismatch_seed": self.mismatch_seed},
            get_state=self.chain.rng_state,
            set_state=self.chain.set_rng_state)
        return self._attack(pts, traces, with_dpa)

    def _attack(self, pts: List[int], traces: np.ndarray,
                with_dpa: bool) -> CampaignResult:
        cpa = cpa_attack(traces, pts, true_key=self.key)
        dpa = None
        if with_dpa:
            # Classic DoM needs per-sample standardisation on targets
            # with nonuniform switching variance; the multi-bit variant
            # is the strongest DoM form (see repro.sca.dpa).
            dpa = multibit_dpa_attack(standardize(traces), pts,
                                      true_key=self.key)
        return CampaignResult(style=self.library.style, key=self.key,
                              plaintexts=pts, traces=traces, cpa=cpa,
                              dpa=dpa)
