"""End-to-end attack campaigns (the Fig. 6 pipeline).

One :class:`AttackCampaign` owns the full chain for one logic style:

1. synthesise the reduced AES (8 XOR2 key-addition gates feeding the
   S-box LUT) onto the style's library;
2. for each plaintext, reset the netlist to the discharged state, apply
   the key and plaintext bits, and event-simulate;
3. compose the supply-current trace for the style's power physics and
   push it through the measurement chain (noise + 1 µA quantisation);
4. run CPA (and optionally classic DPA) with the Hamming-weight-of-
   S-box-output model over all 256 guesses.

Trace acquisition goes through :mod:`repro.sca.acquisition`: noise is
keyed by campaign-global trace index, so campaigns parallelise over
``workers`` and checkpoint/resume without changing a byte of the
result.

The paper's outcome to reproduce: **CMOS breaks, MCML and PG-MCML do
not** — the black line of Fig. 6 stays inside the grey cloud.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cells import Library, preflight_library
from ..errors import AttackError
from ..spice.erc import erc_enabled
from ..netlist import GateNetlist
from ..obs import NULL_TELEMETRY
from ..power import MeasurementChain, TraceGrid
from ..synth import map_lut, sbox_truth_tables
from ..synth.buffering import buffer_high_fanout
from ..power.preprocess import standardize
from .acquisition import (
    DEFAULT_CHUNK,
    DEFAULT_DT,
    DEFAULT_WINDOW,
    AcquisitionPool,
    TraceAcquirer,
    acquire_traces,
)
from .cpa import CPAResult, cpa_attack
from .dpa import DPAResult, multibit_dpa_attack


def build_reduced_aes(library: Library,
                      share_outputs: Optional[bool] = None) -> Tuple[
                          GateNetlist, List[str]]:
    """Key addition + S-box on one byte, mapped onto ``library``.

    Inputs are ``p0..p7`` (plaintext, MSB first) and ``k0..k7`` (key);
    returns the netlist and the 8 output net names.
    """
    if share_outputs is None:
        share_outputs = library.style in ("mcml", "pgmcml", "wddl")
    nl = GateNetlist(f"reduced_aes_{library.style}", library)
    xored: Dict[str, str] = {}
    for bit in range(8):
        p, k = f"p{bit}", f"k{bit}"
        nl.add_primary_input(p)
        nl.add_primary_input(k)
        out = nl.new_net(f"ark{bit}_")
        nl.add_instance("XOR2", {"A": p, "B": k, "Y": out.name},
                        name=f"uark{bit}")
        xored[f"x{bit}"] = out.name
    block = map_lut(library, sbox_truth_tables(),
                    [f"x{i}" for i in range(8)], netlist=nl,
                    input_nets=xored, share_outputs=share_outputs)
    outputs = [block.outputs[f"y{b}"] for b in range(8)]
    for net in outputs:
        nl.add_primary_output(net)
    buffer_high_fanout(nl, max_fanout=6)
    return nl, outputs


def collect_traces(netlist: GateNetlist, key: int,
                   plaintexts: Sequence[int],
                   chain: Optional[MeasurementChain] = None,
                   grid: Optional[TraceGrid] = None,
                   mismatch_seed: int = 0,
                   t_apply: float = 0.0,
                   trace_offset: int = 0,
                   workers: int = 1,
                   backend: str = "auto") -> np.ndarray:
    """Simulated measured traces, one row per plaintext.

    The whole batch is validated before any simulation runs, and trace
    ``i`` draws its noise from index ``trace_offset + i`` — the result
    is a pure function of the inputs, independent of worker count or
    chunk order.
    """
    return acquire_traces(netlist, key, plaintexts, chain=chain,
                          grid=grid, mismatch_seed=mismatch_seed,
                          t_apply=t_apply, trace_offset=trace_offset,
                          workers=workers, backend=backend)


@dataclass
class CampaignResult:
    """Everything one campaign produced."""

    style: str
    key: int
    plaintexts: List[int]
    traces: np.ndarray
    cpa: CPAResult
    dpa: Optional[DPAResult] = None

    @property
    def succeeded(self) -> bool:
        return bool(self.cpa.succeeded)

    @property
    def rank(self) -> float:
        return self.cpa.rank_of_true_key()

    def summary(self) -> str:
        outcome = "KEY RECOVERED" if self.succeeded else "attack failed"
        return (f"{self.style.upper()}: {outcome} "
                f"(true-key rank {self.rank}, "
                f"peak rho {self.cpa.peak_per_guess[self.key]:.4f}, "
                f"best wrong "
                f"{np.delete(self.cpa.peak_per_guess, self.key).max():.4f})")


class AttackCampaign:
    """A reusable attack pipeline for one library."""

    def __init__(self, library: Library, key: int,
                 chain: Optional[MeasurementChain] = None,
                 mismatch_seed: int = 0, telemetry=None,
                 erc: Optional[bool] = None):
        if not 0 <= key <= 0xFF:
            raise AttackError(f"key byte out of range: {key}")
        self.library = library
        self.key = key
        self.chain = chain if chain is not None else MeasurementChain()
        self.mismatch_seed = mismatch_seed
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        # ERC preflight of the library's transistor templates: reject a
        # mis-generated netlist in milliseconds, not hours into the
        # acquisition.  `erc=False` or REPRO_ERC=off opts out.
        if erc if erc is not None else erc_enabled():
            preflight_library(library, telemetry=self.telemetry)
        self.netlist, self.output_nets = build_reduced_aes(library)

    def fingerprint(self) -> Dict[str, object]:
        """JSON-serialisable identity of this campaign's trace function.

        Embedded in checkpoint snapshots (:meth:`run_checkpointed`) and
        used by the campaign job service to key its content-addressed
        result store: equal fingerprints guarantee byte-identical
        traces for equal plaintext slices.
        """
        return {"experiment": "cpa-campaign",
                "style": self.library.style,
                "key": self.key,
                "mismatch_seed": self.mismatch_seed,
                "noise": self.chain.fingerprint()}

    def _acquirer_factory(self, grid: Optional[TraceGrid],
                          batch: Optional[int] = None):
        def factory() -> TraceAcquirer:
            return TraceAcquirer(self.netlist, self.key, chain=self.chain,
                                 grid=grid,
                                 mismatch_seed=self.mismatch_seed,
                                 batch=batch)
        return factory

    def run(self, plaintexts: Optional[Sequence[int]] = None,
            with_dpa: bool = False,
            grid: Optional[TraceGrid] = None,
            workers: int = 1, backend: str = "auto",
            chunk_size: int = DEFAULT_CHUNK,
            batch: Optional[int] = None) -> CampaignResult:
        """Collect traces and attack.

        Defaults to all 256 plaintexts — the exhaustive enumeration the
        paper uses.  ``workers`` spreads the acquisition over a process
        (or thread) pool; ``batch`` sets the acquirer's lockstep block
        size (default: ``REPRO_SPICE_BATCH``); the traces are
        byte-identical for any combination.
        """
        pts = list(plaintexts) if plaintexts is not None else list(range(256))
        tele = self.telemetry
        with tele.span("sca.campaign", style=self.library.style,
                       key=self.key, n_traces=len(pts),
                       checkpointed=False):
            with AcquisitionPool(self._acquirer_factory(grid, batch),
                                 workers=workers, backend=backend,
                                 chunk_size=chunk_size,
                                 telemetry=tele) as pool:
                traces = pool.acquire(pts)
            return self._attack(pts, traces, with_dpa)

    def run_checkpointed(self, runner, plaintexts: Optional[Sequence[int]] = None,
                         with_dpa: bool = False,
                         grid: Optional[TraceGrid] = None,
                         workers: int = 1,
                         backend: str = "auto",
                         batch: Optional[int] = None) -> CampaignResult:
        """Like :meth:`run`, but collect traces through a resumable runner.

        ``runner`` is a :class:`repro.experiments.runner.CheckpointedRun`
        (duck-typed to keep this layer free of experiment imports): trace
        acquisition proceeds in chunks with an atomic snapshot after each,
        and a killed campaign restarted with the same runner path resumes
        where it stopped.  Noise is keyed by trace index, so resumed (and
        parallel) acquisition is byte-identical to an uninterrupted serial
        run with no RNG state riding along in the checkpoint; the seeding
        scheme is fingerprinted instead, so a snapshot from a different
        scheme or entropy refuses to resume.
        """
        pts = list(plaintexts) if plaintexts is not None else list(range(256))
        tele = self.telemetry
        with tele.span("sca.campaign", style=self.library.style,
                       key=self.key, n_traces=len(pts),
                       checkpointed=True):
            with AcquisitionPool(self._acquirer_factory(grid, batch),
                                 workers=workers, backend=backend,
                                 telemetry=tele) as pool:

                def process(chunk: Sequence[int], start: int) -> np.ndarray:
                    return pool.acquire(chunk, trace_offset=start)

                traces = runner.run(pts, process,
                                    fingerprint=self.fingerprint())
            return self._attack(pts, traces, with_dpa)

    def _attack(self, pts: List[int], traces: np.ndarray,
                with_dpa: bool) -> CampaignResult:
        with self.telemetry.span("sca.cpa", n_traces=len(pts),
                                 with_dpa=with_dpa) as span:
            cpa = cpa_attack(traces, pts, true_key=self.key)
            dpa = None
            if with_dpa:
                # Classic DoM needs per-sample standardisation on targets
                # with nonuniform switching variance; the multi-bit variant
                # is the strongest DoM form (see repro.sca.dpa).
                dpa = multibit_dpa_attack(standardize(traces), pts,
                                          true_key=self.key)
            span.set("succeeded", bool(cpa.succeeded))
            span.set("rank", float(cpa.rank_of_true_key()))
            span.set("tie_width", cpa.best_guess_tie_width())
        return CampaignResult(style=self.library.style, key=self.key,
                              plaintexts=pts, traces=traces, cpa=cpa,
                              dpa=dpa)
