"""CPA evolution: correlation vs trace count.

The classic convergence plot of a CPA campaign — how the true key's
correlation and the wrong-key envelope evolve as traces accumulate.  On
a leaky target the true key escapes the envelope (which shrinks as
``~4/sqrt(N)``); on a protected one it never does.  Complements Fig. 6
(which fixes N = 256 and plots over time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import AttackError
from .cpa import cpa_attack


@dataclass
class EvolutionPoint:
    n_traces: int
    true_peak: float
    wrong_envelope: float
    rank: int

    @property
    def escaped(self) -> bool:
        return self.true_peak > self.wrong_envelope


@dataclass
class CPAEvolution:
    points: List[EvolutionPoint]
    true_key: int

    def escape_count(self) -> Optional[int]:
        """Smallest N from which the true key stays outside the
        wrong-key envelope for the rest of the curve, or None."""
        escape = None
        for point in self.points:
            if point.escaped:
                if escape is None:
                    escape = point.n_traces
            else:
                escape = None
        return escape

    def final_rank(self) -> int:
        return self.points[-1].rank

    def series(self):
        """(n, true_peak, envelope) arrays for plotting/CSV."""
        n = np.array([p.n_traces for p in self.points], dtype=float)
        true = np.array([p.true_peak for p in self.points])
        env = np.array([p.wrong_envelope for p in self.points])
        return n, true, env


def cpa_evolution(traces: np.ndarray, plaintexts: Sequence[int],
                  true_key: int, step: int = 32) -> CPAEvolution:
    """Re-run CPA on growing prefixes of the campaign."""
    traces = np.asarray(traces, dtype=float)
    pts = list(plaintexts)
    if traces.shape[0] != len(pts):
        raise AttackError("trace/plaintext count mismatch")
    if step < 2:
        raise AttackError("step must be at least 2")
    counts = list(range(step, traces.shape[0] + 1, step))
    if not counts or counts[-1] != traces.shape[0]:
        counts.append(traces.shape[0])
    points: List[EvolutionPoint] = []
    for n in counts:
        result = cpa_attack(traces[:n], pts[:n], true_key=true_key)
        peaks = result.peak_per_guess
        wrong = float(np.delete(peaks, true_key).max())
        points.append(EvolutionPoint(
            n_traces=n, true_peak=float(peaks[true_key]),
            wrong_envelope=wrong, rank=result.rank_of_true_key()))
    return CPAEvolution(points=points, true_key=true_key)
