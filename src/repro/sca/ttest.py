"""TVLA: Welch's t-test leakage assessment.

The now-standard *non-specific* leakage test (Goodwill et al., the
"Test Vector Leakage Assessment" methodology): split traces into a
fixed-plaintext class and a random-plaintext class, compute Welch's t
statistic per time sample, and flag leakage wherever |t| exceeds 4.5.
Unlike CPA this needs no key hypothesis — it detects *any* first-order
data dependence, making it the stronger referee for a claim like
"MCML's power consumption is independent of the processed data".

The paper predates TVLA (2011 vs. its adoption around 2011-2013), so
this is an extension: the reproduction's libraries are evaluated with
the tool a modern reviewer would reach for first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import AttackError

#: The community-standard TVLA detection threshold.
TVLA_THRESHOLD = 4.5


def welch_t(group_a: np.ndarray, group_b: np.ndarray) -> np.ndarray:
    """Welch's t statistic per column of two (n_traces, n_samples) sets.

    Zero-variance columns in both groups yield t = 0 (no evidence), not
    NaN — quantised flat traces are the expected MCML picture.
    """
    a = np.asarray(group_a, dtype=float)
    b = np.asarray(group_b, dtype=float)
    if a.ndim != 2 or b.ndim != 2:
        raise AttackError("trace groups must be 2-D")
    if a.shape[1] != b.shape[1]:
        raise AttackError("sample-count mismatch between groups")
    if a.shape[0] < 2 or b.shape[0] < 2:
        raise AttackError("each group needs at least two traces")
    mean_a, mean_b = a.mean(axis=0), b.mean(axis=0)
    var_a = a.var(axis=0, ddof=1) / a.shape[0]
    var_b = b.var(axis=0, ddof=1) / b.shape[0]
    denom = np.sqrt(var_a + var_b)
    with np.errstate(divide="ignore", invalid="ignore"):
        t = np.where(denom > 0.0, (mean_a - mean_b) / denom, 0.0)
    return t


@dataclass
class TVLAResult:
    """Outcome of a fixed-vs-random campaign.

    ``t_values`` answers "is there statistically detectable leakage?";
    ``mean_deltas`` (the raw class-mean difference per sample, amperes)
    answers "how *big* is it?".  The two rank styles differently: MCML's
    deterministic mismatch residual separates cleanly (large t, tiny
    amplitude) while CMOS leaks hugely but over a noisy algorithmic
    background (large amplitude, diluted t).  Exploitability tracks the
    amplitude, which is why Fig. 6's CPA breaks only CMOS.
    """

    t_values: np.ndarray
    n_fixed: int
    n_random: int
    threshold: float = TVLA_THRESHOLD
    mean_deltas: Optional[np.ndarray] = None

    @property
    def max_abs_t(self) -> float:
        return float(np.abs(self.t_values).max())

    @property
    def max_abs_delta(self) -> float:
        """Largest class-mean difference, amperes (leakage amplitude)."""
        if self.mean_deltas is None:
            raise AttackError("campaign did not record mean deltas")
        return float(np.abs(self.mean_deltas).max())

    @property
    def leaks(self) -> bool:
        return self.max_abs_t > self.threshold

    def leaking_samples(self) -> List[int]:
        return [int(i) for i in
                np.flatnonzero(np.abs(self.t_values) > self.threshold)]

    def __repr__(self) -> str:
        verdict = "LEAKS" if self.leaks else "passes"
        return (f"TVLAResult(max |t| = {self.max_abs_t:.2f} over "
                f"{self.t_values.size} samples -> {verdict})")


def fixed_vs_random_tvla(netlist, key: int, n_traces: int = 128,
                         fixed_plaintext: int = 0x00,
                         chain=None, grid=None, mismatch_seed: int = 0,
                         seed: int = 99, runner=None,
                         workers: int = 1,
                         backend: str = "auto",
                         telemetry=None) -> TVLAResult:
    """Run a fixed-vs-random TVLA campaign against a reduced-AES netlist.

    Interleaves fixed and random plaintexts (the standard acquisition
    discipline) and compares the two trace populations.  ``runner``, when
    given, is a :class:`repro.experiments.runner.CheckpointedRun`: the
    acquisition proceeds in resumable chunks, and a killed campaign
    restarted with the same runner path produces byte-identical traces.
    ``workers`` spreads the acquisition over a worker pool; noise is
    keyed by trace index, so any worker count (with or without a
    runner) yields the same bytes.
    """
    from ..obs import NULL_TELEMETRY
    from ..power import MeasurementChain
    from .acquisition import AcquisitionPool, TraceAcquirer

    tele = telemetry if telemetry is not None else NULL_TELEMETRY
    if n_traces < 4:
        raise AttackError("need at least 4 traces (2 per class)")
    if n_traces % 2 != 0:
        # An odd count would silently acquire n_traces - 1 while the
        # checkpoint fingerprint records the requested count — reject it
        # up front instead of fingerprinting traces that don't exist.
        raise AttackError(
            f"n_traces must be even (fixed/random classes are "
            f"interleaved pairwise); got {n_traces}")
    rng = np.random.default_rng(seed)
    half = n_traces // 2
    fixed_pts = [fixed_plaintext] * half
    random_pts = [int(x) for x in rng.integers(0, 256, size=half)]
    # One interleaved acquisition so both classes see identical
    # instrument state.
    interleaved: List[int] = []
    for f, r in zip(fixed_pts, random_pts):
        interleaved.extend((f, r))
    chain = chain if chain is not None else MeasurementChain()

    def factory():
        return TraceAcquirer(netlist, key, chain=chain, grid=grid,
                             mismatch_seed=mismatch_seed)

    with tele.span("sca.tvla", key=key, n_traces=n_traces,
                   fixed_plaintext=fixed_plaintext,
                   checkpointed=runner is not None) as span:
        with AcquisitionPool(factory, workers=workers, backend=backend,
                             telemetry=tele) as pool:
            if runner is None:
                traces = pool.acquire(interleaved)
            else:
                def process(chunk, start):
                    return pool.acquire(chunk, trace_offset=start)

                traces = runner.run(
                    interleaved, process,
                    fingerprint={"experiment": "tvla", "key": key,
                                 "n_traces": n_traces,
                                 "fixed_plaintext": fixed_plaintext,
                                 "mismatch_seed": mismatch_seed,
                                 "seed": seed,
                                 "noise": chain.fingerprint()})
        fixed_traces = traces[0::2]
        random_traces = traces[1::2]
        t = welch_t(fixed_traces, random_traces)
        deltas = fixed_traces.mean(axis=0) - random_traces.mean(axis=0)
        span.set("max_abs_t", float(np.abs(t).max()))
    return TVLAResult(t_values=t, n_fixed=half, n_random=half,
                      mean_deltas=deltas)
