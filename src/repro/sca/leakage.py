"""Leakage models.

The attacker's hypothesis function: given a plaintext byte and a key
guess, predict a number proportional to the power the device should
draw.  §6 uses "the Hamming weight of the S-box output" (after Brier et
al.); the Hamming-distance variant is provided for register-based
targets and for the ablation studies.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..aes.sbox import SBOX
from ..errors import AttackError

_HW_TABLE = np.array([bin(x).count("1") for x in range(256)], dtype=np.int64)


def hamming_weight(value: int) -> int:
    """Number of set bits of a byte (or any non-negative int)."""
    if value < 0:
        raise AttackError("Hamming weight of a negative value")
    return int(bin(value).count("1"))


def hamming_distance(a: int, b: int) -> int:
    """Bits that differ between two values."""
    return hamming_weight(a ^ b)


def hw_model(plaintexts: Sequence[int], key_guess: int) -> np.ndarray:
    """HW(SBOX[p ^ k]) for every plaintext — the paper's power model."""
    if not 0 <= key_guess <= 0xFF:
        raise AttackError(f"key guess out of range: {key_guess}")
    pts = np.asarray(plaintexts, dtype=np.int64)
    if pts.size == 0:
        raise AttackError("no plaintexts")
    if pts.min() < 0 or pts.max() > 0xFF:
        raise AttackError("plaintext bytes out of range")
    sbox = np.asarray(SBOX, dtype=np.int64)
    return _HW_TABLE[sbox[pts ^ key_guess]].astype(float)


def hd_model(plaintexts: Sequence[int], key_guess: int,
             reference: int = 0x00) -> np.ndarray:
    """HD(SBOX[p ^ k], reference) — register-overwrite leakage."""
    if not 0 <= reference <= 0xFF:
        raise AttackError(f"reference byte out of range: {reference}")
    pts = np.asarray(plaintexts, dtype=np.int64)
    sbox = np.asarray(SBOX, dtype=np.int64)
    return _HW_TABLE[sbox[pts ^ key_guess] ^ reference].astype(float)


def all_guess_hypotheses(plaintexts: Sequence[int],
                         model=hw_model) -> np.ndarray:
    """(256, n_traces) hypothesis matrix over every key guess."""
    return np.vstack([model(plaintexts, k) for k in range(256)])
