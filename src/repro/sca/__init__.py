"""Side-channel analysis: leakage models, CPA/DPA, metrics, harness.

Implements the attack methodology of §6 / Fig. 6: correlation power
analysis (Brier et al., CHES 2004) using the Hamming weight of the S-box
output as the power model, plus the original difference-of-means DPA
(Kocher et al.) and the usual evaluation metrics (key rank, guessing
entropy, measurements-to-disclosure).

:mod:`repro.sca.attack` is the end-to-end harness: synthesise the
reduced AES target in a given logic style, collect simulated current
traces through the measurement chain, attack, and score.
"""

from .leakage import hamming_weight, hamming_distance, hw_model, hd_model
from .cpa import cpa_attack, correlation_matrix, CPAResult
from .dpa import dpa_attack, multibit_dpa_attack, DPAResult
from .ranking import tie_aware_rank, tie_width, rank_and_ties
from .metrics import key_rank, guessing_entropy, success_rate, mtd
from .highorder import (
    MlpaResult,
    centered_product,
    mlpa_attack,
    second_order_cpa,
)
from .ttest import TVLAResult, fixed_vs_random_tvla, welch_t, TVLA_THRESHOLD
from .evolution import CPAEvolution, EvolutionPoint, cpa_evolution
from .acquisition import (
    AcquisitionPool,
    TraceAcquirer,
    acquire_traces,
    resolve_backend,
    validate_plaintexts,
)
from .attack import AttackCampaign, CampaignResult, collect_traces
from .matrix import (
    MatrixCell,
    MatrixReport,
    MatrixSpec,
    run_matrix,
)

__all__ = [
    "hamming_weight",
    "hamming_distance",
    "hw_model",
    "hd_model",
    "cpa_attack",
    "correlation_matrix",
    "CPAResult",
    "dpa_attack",
    "multibit_dpa_attack",
    "DPAResult",
    "tie_aware_rank",
    "tie_width",
    "rank_and_ties",
    "key_rank",
    "guessing_entropy",
    "success_rate",
    "mtd",
    "MlpaResult",
    "centered_product",
    "mlpa_attack",
    "second_order_cpa",
    "TVLAResult",
    "fixed_vs_random_tvla",
    "welch_t",
    "TVLA_THRESHOLD",
    "CPAEvolution",
    "EvolutionPoint",
    "cpa_evolution",
    "AcquisitionPool",
    "TraceAcquirer",
    "acquire_traces",
    "resolve_backend",
    "validate_plaintexts",
    "AttackCampaign",
    "CampaignResult",
    "collect_traces",
    "MatrixCell",
    "MatrixReport",
    "MatrixSpec",
    "run_matrix",
]
