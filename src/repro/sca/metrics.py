"""Attack-evaluation metrics.

The community-standard quantities for comparing countermeasures: key
rank after N traces, guessing entropy (average rank over campaigns),
success rate, and measurements-to-disclosure (MTD) — the smallest trace
count at which the attack stabilises on the correct key.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..errors import AttackError
from .cpa import cpa_attack
from .ranking import tie_aware_rank


def key_rank(peaks: Sequence[float], true_key: int) -> float:
    """Rank of the true key in a per-guess score vector (0.0 = best).

    Tied scores rank at the midpoint of their tie class, so the flat
    all-equal vector a protected library produces ranks every guess —
    including the true key — at 127.5 instead of at its own byte value
    (a stable argsort would report ``true_key`` itself there, biasing
    guessing entropy by the key).
    """
    scores = np.asarray(peaks, dtype=float)
    if scores.size != 256:
        raise AttackError("expected one score per key guess (256)")
    if not 0 <= true_key <= 0xFF:
        raise AttackError("true key out of range")
    return tie_aware_rank(scores, true_key)


def guessing_entropy(ranks: Sequence[float]) -> float:
    """Average rank over repeated attack campaigns."""
    ranks_arr = np.asarray(ranks, dtype=float)
    if ranks_arr.size == 0:
        raise AttackError("no ranks supplied")
    return float(ranks_arr.mean())


def success_rate(ranks: Sequence[float], order: int = 1) -> float:
    """Fraction of campaigns where the true key ranks within ``order``."""
    ranks_arr = np.asarray(ranks, dtype=float)
    if ranks_arr.size == 0:
        raise AttackError("no ranks supplied")
    if order < 1:
        raise AttackError("order must be >= 1")
    return float((ranks_arr < order).mean())


def mtd(traces: np.ndarray, plaintexts: Sequence[int], true_key: int,
        step: int = 16, stable_windows: int = 3,
        model: Optional[Callable] = None) -> Optional[int]:
    """Measurements to disclosure.

    Re-runs CPA on growing prefixes of the trace set (every ``step``
    traces) and returns the smallest count from which the true key stays
    rank 0 for ``stable_windows`` consecutive evaluations — or ``None``
    if the attack never stabilises within the available traces (the
    protected-logic outcome).
    """
    traces = np.asarray(traces, dtype=float)
    pts = list(plaintexts)
    if traces.shape[0] != len(pts):
        raise AttackError("trace/plaintext count mismatch")
    if step < 1:
        raise AttackError("step must be positive")
    counts = list(range(step, traces.shape[0] + 1, step))
    if not counts or counts[-1] != traces.shape[0]:
        # Always evaluate the full trace set: fewer traces than one step
        # must still run CPA once, not silently report "never disclosed".
        counts.append(traces.shape[0])
    streak = 0
    candidate: Optional[int] = None
    for n in counts:
        kwargs = {"model": model} if model is not None else {}
        result = cpa_attack(traces[:n], pts[:n], true_key=true_key, **kwargs)
        if result.best_guess == true_key:
            if streak == 0:
                candidate = n
            streak += 1
            if streak >= stable_windows:
                return candidate
        else:
            streak = 0
            candidate = None
    return None
