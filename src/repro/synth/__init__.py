"""Synthesis: LUT decomposition, technology mapping, sleep insertion.

Replaces the Synopsys Design Compiler / Cadence Encounter steps of the
paper's flow:

* :mod:`repro.synth.mapping` — BDD-based decomposition of look-up tables
  and logic functions onto a target :class:`~repro.cells.Library`.
  Differential (MCML/PG-MCML) mapping exploits free inversion — a
  complemented signal is just a rail swap — while the CMOS mapping must
  materialise inverters, which is why the CMOS S-box ISE uses *more*
  cells than the MCML one in Table 3;
* :mod:`repro.synth.sleep` — the paper's future-work item implemented:
  automatic sleep-signal insertion with a balanced, CMOS-buffered
  distribution tree synthesised like a clock tree (§5), with its ~1 ns
  insertion delay;
* :mod:`repro.synth.sbox_unit` — the S-box instruction-set-extension
  macro (four 8×8 LUT S-boxes plus registers and converters) in any of
  the three styles;
* :mod:`repro.synth.elaborate` — gate-level to transistor-level
  elaboration: one flat SPICE circuit for a whole mapped block, the
  input the sparse MNA assembly exists to solve;
* :mod:`repro.synth.report` — Table 3-style area/delay/cell reports.
"""

from .mapping import TechnologyMapper, MappedBlock, map_lut
from .sleep import SleepTree, insert_sleep_tree, SLEEP_ROOT_NET
from .sbox_unit import build_sbox_ise, SBoxISE, simulate_sbox_word, sbox_truth_tables
from .aes_core import AESCore, build_aes_core, encrypt_with_core
from .elaborate import (
    ElaboratedNetlist,
    attach_core_testbench,
    elaborate_netlist,
    initial_point,
)
from .report import BlockReport, report_block, format_table
from .buffering import buffer_high_fanout
from .cleanup import sweep_dangling
from .placement import Placement, PlacedCell, place, wirelength_hpwl

__all__ = [
    "TechnologyMapper",
    "MappedBlock",
    "map_lut",
    "SleepTree",
    "insert_sleep_tree",
    "SLEEP_ROOT_NET",
    "build_sbox_ise",
    "SBoxISE",
    "simulate_sbox_word",
    "sbox_truth_tables",
    "AESCore",
    "build_aes_core",
    "encrypt_with_core",
    "ElaboratedNetlist",
    "attach_core_testbench",
    "elaborate_netlist",
    "initial_point",
    "BlockReport",
    "report_block",
    "format_table",
    "buffer_high_fanout",
    "sweep_dangling",
    "Placement",
    "PlacedCell",
    "place",
    "wirelength_hpwl",
]
