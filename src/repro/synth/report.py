"""Synthesis reports: the rows of Table 3.

:func:`report_block` condenses a mapped netlist into the quantities the
paper tabulates — cell count, placed area, critical-path delay — plus
the cell histogram for deeper inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..netlist import GateNetlist, static_timing

#: Placement utilisation by style.  Differential standard cells are
#: routed with the fat-wire methodology (both rails of every signal side
#: by side on doubled pitch), which roughly halves achievable row
#: utilisation — this is what reconciles the paper's Table 2 per-cell
#: area ratio (~1.6x) with its Table 3 block ratio (~2.5x).
UTILIZATION = {"cmos": 0.75, "mcml": 0.36, "pgmcml": 0.36}


@dataclass
class BlockReport:
    """One implementation row of a Table 3-style comparison."""

    name: str
    style: str
    cells: int
    area_um2: float
    delay: float
    histogram: Dict[str, int] = field(default_factory=dict)

    @property
    def delay_ns(self) -> float:
        return self.delay * 1e9

    @property
    def core_area_um2(self) -> float:
        """Placed-and-routed block area (cell area over utilisation)."""
        return self.area_um2 / UTILIZATION[self.style]

    def row(self) -> List[str]:
        return [self.style.upper(), str(self.cells),
                f"{self.core_area_um2:,.2f}", f"{self.delay_ns:.3f}"]

    def __repr__(self) -> str:
        return (f"BlockReport({self.name}/{self.style}: {self.cells} cells, "
                f"{self.area_um2:,.1f} um2, {self.delay_ns:.3f} ns)")


def report_block(netlist: GateNetlist, name: Optional[str] = None,
                 extra_delay: float = 0.0) -> BlockReport:
    """Summarise a mapped netlist.

    ``extra_delay`` folds in path segments outside the gate netlist
    (e.g. the macro-boundary routing the paper's P&R adds).
    """
    timing = static_timing(netlist)
    return BlockReport(
        name=name or netlist.name,
        style=netlist.library.style,
        cells=netlist.total_cells(),
        area_um2=netlist.total_area_um2(),
        delay=timing.critical_delay + extra_delay,
        histogram=netlist.cell_histogram(),
    )


def format_table(rows: List[BlockReport],
                 headers: Optional[List[str]] = None) -> str:
    """Fixed-width text table of several block reports."""
    headers = headers or ["Style", "Cells", "Area [um2]", "Delay [ns]"]
    table = [headers] + [r.row() for r in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(table):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
