"""Gate-level to transistor-level elaboration.

The synthesis flow ends at a :class:`~repro.netlist.graph.GateNetlist`;
the paper's evaluation, however, is electrical — supply-current traces
of whole blocks.  This module closes that gap: it walks a mapped
netlist and instantiates each cell's transistor netlist (via the
style's cell generator) into one flat :class:`~repro.spice.Circuit`,
wiring logical nets to the cells' pin nets.

Differential styles (MCML / PG-MCML) map every logical net onto a rail
pair ``n_<net>_p`` / ``n_<net>_n``.  Pseudo cells never emit devices:

* ``RAILSWAP`` aliases its output rails onto the *swapped* input rails
  (inversion is free in differential logic);
* ``TIEH`` / ``TIEL`` alias their output rails onto the constant-level
  rails — logic high is the ``vdd`` rail, logic low the dedicated
  ``vlo`` rail (Vdd - swing), which the testbench drives.

PG-MCML sleep distribution stays CMOS single-ended: ``SLEEPBUF``
instances elaborate as static CMOS buffers, and each gated cell's
``sleep`` net is wired to its leaf of the
:class:`~repro.synth.sleep.SleepTree` (or to one global ``sleep`` net
when the netlist has no tree).

Static CMOS has transistor templates only for INV/BUF/NAND/NOR/MUX2;
larger cells elaborate as the classic compositions (AND = NAND + INV,
XOR2 = four NAND2, DFF = the 6-NAND edge-triggered flip-flop, tie
cells = a resistor to the rail).

The elaborated circuit is deliberately testbench-free; use
:func:`attach_core_testbench` to drive rails and primary inputs, and
:func:`initial_point` to seed a transient from settled logic values
(skipping a full-core DC solve).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..cells.cmos import CmosCellGenerator, CmosSizing
from ..cells.mcml import McmlCellGenerator, McmlSizing
from ..cells.pgmcml import PgMcmlCellGenerator
from ..errors import SynthesisError
from ..netlist.graph import GateNetlist, Instance
from ..spice import Circuit, DC, OperatingPoint
from ..spice.stimulus import Stimulus
from ..tech import Technology, TECH90
from .sleep import SleepTree

#: Resistance of a tie-cell output resistor, ohms (a hard short would
#: trip the ERC short-circuit rule; well below any signal impedance).
TIE_RESISTANCE = 1.0

#: Cells whose differential elaboration is pure rail bookkeeping.
_ALIAS_CELLS = ("RAILSWAP", "TIEH", "TIEL")


@dataclass
class ElaboratedNetlist:
    """A flat transistor-level circuit plus its net bindings."""

    circuit: Circuit
    netlist: GateNetlist
    style: str
    vdd_net: str
    #: differential styles only (bias rails / constant-low rail)
    vn_net: Optional[str] = None
    vp_net: Optional[str] = None
    vlo_net: Optional[str] = None
    #: single-ended CMOS-level sleep root (PG-MCML)
    sleep_net: Optional[str] = None
    #: logic levels of a driven net: (high, low) volts
    logic_levels: Tuple[float, float] = (0.0, 0.0)
    #: logical net -> physical rail name(s); differential nets map to a
    #: (p, n) tuple, single-ended nets to their one rail
    net_rails: Dict[str, Union[str, Tuple[str, str]]] = field(
        default_factory=dict)
    device_count: int = 0

    @property
    def differential(self) -> bool:
        return self.style in ("mcml", "pgmcml")

    def rails(self, net: str) -> Union[str, Tuple[str, str]]:
        """Physical rail name(s) of logical net ``net``."""
        try:
            return self.net_rails[net]
        except KeyError:
            raise SynthesisError(
                f"{net!r} is not a net of netlist "
                f"{self.netlist.name!r}") from None


class _Elaborator:
    def __init__(self, netlist: GateNetlist,
                 sleep_tree: Optional[SleepTree],
                 tech: Technology,
                 mcml_sizing: Optional[McmlSizing],
                 cmos_sizing: Optional[CmosSizing],
                 name: Optional[str]):
        self.nl = netlist
        self.style = netlist.library.style
        self.tree = sleep_tree
        self.tech = tech
        self.differential = self.style in ("mcml", "pgmcml")
        self.ckt = Circuit(name or f"{netlist.name}_xtor")
        self.cmos_gen = CmosCellGenerator(tech, cmos_sizing)
        if self.style == "pgmcml":
            self.mcml_gen: Optional[McmlCellGenerator] = \
                PgMcmlCellGenerator(tech, mcml_sizing)
        elif self.style == "mcml":
            self.mcml_gen = McmlCellGenerator(tech, mcml_sizing)
        else:
            self.mcml_gen = None
        self.vdd = "vdd"
        self.vlo = "vlo"
        # Rail aliasing (RAILSWAP / tie cells): child rail -> parent rail.
        self._alias: Dict[str, str] = {}
        # Nets of the CMOS-level sleep distribution (single-ended even
        # inside a differential netlist).
        self._se_nets = set()
        if self.differential:
            for inst in netlist.instances.values():
                if inst.cell.name == "SLEEPBUF":
                    self._se_nets.update(inst.pins.values())

    # -- rail naming / aliasing ----------------------------------------------

    def _find(self, rail: str) -> str:
        seen = []
        while rail in self._alias:
            seen.append(rail)
            rail = self._alias[rail]
        for s in seen:  # path compression
            self._alias[s] = rail
        return rail

    def _rail(self, net: str, pol: str) -> str:
        return self._find(f"n_{net}_{pol}")

    def _se(self, net: str) -> str:
        return f"n_{net}"

    def rails_of(self, net: str) -> Union[str, Tuple[str, str]]:
        if not self.differential or net in self._se_nets:
            return self._se(net)
        return (self._rail(net, "p"), self._rail(net, "n"))

    def _collect_aliases(self) -> None:
        """Resolve pseudo cells before any devices are emitted.

        Output rails are fresh names (single driver per net), so the
        alias graph is a forest; chains of RAILSWAPs terminate at a real
        driver's rails or at the constant rails.
        """
        for inst in self.nl.instances.values():
            cell = inst.cell.name
            if cell not in _ALIAS_CELLS:
                continue
            y = inst.pins["Y"]
            if cell == "RAILSWAP":
                a = inst.pins["A"]
                self._alias[f"n_{y}_p"] = f"n_{a}_n"
                self._alias[f"n_{y}_n"] = f"n_{a}_p"
            elif cell == "TIEH":
                self._alias[f"n_{y}_p"] = self.vdd
                self._alias[f"n_{y}_n"] = self.vlo
            else:  # TIEL
                self._alias[f"n_{y}_p"] = self.vlo
                self._alias[f"n_{y}_n"] = self.vdd

    # -- emission helpers ----------------------------------------------------

    def _rewrite(self, n0: int, mapping: Dict[str, str]) -> None:
        for dev in self.ckt.devices[n0:]:
            dev.terminals = tuple(mapping.get(t, t) for t in dev.terminals)

    def _emit_cmos(self, cell_name: str, prefix: str,
                   conns: Dict[str, str]) -> None:
        """One primitive CMOS gate with pins rewired onto ``conns``."""
        n0 = len(self.ckt.devices)
        cc = self.cmos_gen.build(cell_name, circuit=self.ckt, prefix=prefix)
        mapping = {cc.vdd_net: self.vdd}
        for pin, local in cc.input_nets.items():
            mapping[local] = conns[pin]
        for pin, local in cc.output_nets.items():
            mapping[local] = conns[pin]
        self._rewrite(n0, mapping)

    def _sleep_net_for(self, inst_name: str) -> str:
        if self.tree is not None:
            try:
                return self._se(self.tree.leaf_of[inst_name])
            except KeyError:
                raise SynthesisError(
                    f"instance {inst_name!r} is power-gated but has no "
                    f"sleep-tree leaf") from None
        return "sleep"

    # -- per-style instance elaboration --------------------------------------

    def _emit_differential(self, inst: Instance) -> None:
        gen = self.mcml_gen
        assert gen is not None
        n0 = len(self.ckt.devices)
        cc = gen.build(inst.cell.function, circuit=self.ckt,
                       prefix=f"{inst.name}_")
        mapping = {cc.vdd_net: self.vdd, cc.vn_net: "vn", cc.vp_net: "vp"}
        for pin, (lp, ln) in {**cc.input_nets, **cc.output_nets}.items():
            gp, gn = self.rails_of(inst.pins[pin])
            mapping[lp] = gp
            mapping[ln] = gn
        if cc.sleep_net is not None:
            mapping[cc.sleep_net] = self._sleep_net_for(inst.name)
        self._rewrite(n0, mapping)

    def _emit_sleepbuf(self, inst: Instance) -> None:
        self._emit_cmos("BUF", f"{inst.name}_",
                        {"A": self._se(inst.pins["A"]),
                         "Y": self._se(inst.pins["Y"])})

    def _emit_cmos_instance(self, inst: Instance) -> None:
        cell = inst.cell.name
        pins = {pin: self._se(net) for pin, net in inst.pins.items()}
        tag = inst.name

        if cell in ("INV", "BUF", "NAND2", "NAND3", "NAND4", "NOR2",
                    "NOR3", "MUX2"):
            self._emit_cmos(cell, f"{tag}_", pins)
        elif cell in ("BUFX4", "SLEEPBUF"):
            self._emit_cmos("BUF", f"{tag}_", pins)
        elif cell in ("AND2", "AND3", "AND4", "OR2", "OR3"):
            inner = ("NAND" if cell.startswith("AND") else "NOR") + cell[-1]
            mid = f"{tag}_x"
            self._emit_cmos(inner, f"{tag}_g1_",
                            {**{p: pins[p] for p in inst.cell.inputs},
                             "Y": mid})
            self._emit_cmos("INV", f"{tag}_g2_", {"A": mid, "Y": pins["Y"]})
        elif cell in ("XOR2", "XNOR2"):
            self._emit_xor(tag, pins, invert=cell == "XNOR2")
        elif cell == "DFF":
            self._emit_dff(tag, pins)
        elif cell in ("TIEH", "TIEL"):
            rail = self.vdd if cell == "TIEH" else "0"
            self.ckt.resistor(f"{tag}_rtie", pins["Y"], rail,
                              TIE_RESISTANCE)
            # A sink-less constant output would otherwise be a
            # single-connection node (validate() rejects those).
            self.ckt.capacitor(f"{tag}_ctie", pins["Y"], "0", 0.1e-15)
        else:
            raise SynthesisError(
                f"no transistor-level CMOS elaboration for cell "
                f"{cell!r} (instance {inst.name!r})")

    def _emit_xor(self, tag: str, pins: Dict[str, str],
                  invert: bool) -> None:
        """The four-NAND XOR (plus an output inverter for XNOR)."""
        a, b = pins["A"], pins["B"]
        m = f"{tag}_m"
        y = f"{tag}_x" if invert else pins["Y"]
        self._emit_cmos("NAND2", f"{tag}_g1_", {"A": a, "B": b, "Y": m})
        self._emit_cmos("NAND2", f"{tag}_g2_",
                        {"A": a, "B": m, "Y": f"{tag}_u"})
        self._emit_cmos("NAND2", f"{tag}_g3_",
                        {"A": m, "B": b, "Y": f"{tag}_v"})
        self._emit_cmos("NAND2", f"{tag}_g4_",
                        {"A": f"{tag}_u", "B": f"{tag}_v", "Y": y})
        if invert:
            self._emit_cmos("INV", f"{tag}_g5_", {"A": y, "Y": pins["Y"]})

    def _emit_dff(self, tag: str, pins: Dict[str, str]) -> None:
        """The classic 6-NAND positive-edge D flip-flop (74x74 core).

        Every internal node is statically driven, so the flat circuit
        stays DC-solvable (no charge-storage latches).
        """
        d, ck, q = pins["D"], pins["CK"], pins["Q"]
        n1, n2, n3, n4 = (f"{tag}_n{i}" for i in range(1, 5))
        qb = f"{tag}_qb"
        self._emit_cmos("NAND2", f"{tag}_g1_", {"A": n4, "B": n2, "Y": n1})
        self._emit_cmos("NAND2", f"{tag}_g2_", {"A": n1, "B": ck, "Y": n2})
        self._emit_cmos("NAND3", f"{tag}_g3_",
                        {"A": n2, "B": ck, "C": n4, "Y": n3})
        self._emit_cmos("NAND2", f"{tag}_g4_", {"A": n3, "B": d, "Y": n4})
        self._emit_cmos("NAND2", f"{tag}_g5_", {"A": n2, "B": qb, "Y": q})
        self._emit_cmos("NAND2", f"{tag}_g6_", {"A": q, "B": n3, "Y": qb})

    # -- top level -----------------------------------------------------------

    def run(self, load_caps: bool) -> ElaboratedNetlist:
        self.nl.validate()
        if self.differential:
            self._collect_aliases()
        for inst in self.nl.instances.values():
            if self.differential:
                if inst.cell.name in _ALIAS_CELLS:
                    continue
                if inst.cell.name == "SLEEPBUF":
                    self._emit_sleepbuf(inst)
                else:
                    self._emit_differential(inst)
            else:
                self._emit_cmos_instance(inst)

        if load_caps:
            for net_name in self.nl.nets:
                cap = self.nl.load_cap(net_name)
                if cap <= 0.0:
                    continue
                rails = self.rails_of(net_name)
                if isinstance(rails, tuple):
                    self.ckt.capacitor(f"cl_{net_name}_p", rails[0], "0",
                                       cap)
                    self.ckt.capacitor(f"cl_{net_name}_n", rails[1], "0",
                                       cap)
                else:
                    self.ckt.capacitor(f"cl_{net_name}", rails, "0", cap)

        sizing = self.mcml_gen.sizing if self.mcml_gen is not None else None
        if self.differential:
            levels = (sizing.input_high(self.tech),
                      sizing.input_low(self.tech))
        else:
            levels = (self.tech.vdd, 0.0)
        sleep_net = None
        if self.style == "pgmcml":
            sleep_net = (self._se(self.tree.root_net)
                         if self.tree is not None else "sleep")
        return ElaboratedNetlist(
            circuit=self.ckt, netlist=self.nl, style=self.style,
            vdd_net=self.vdd,
            vn_net="vn" if self.differential else None,
            vp_net="vp" if self.differential else None,
            vlo_net=self.vlo if self.differential else None,
            sleep_net=sleep_net,
            logic_levels=levels,
            net_rails={n: self.rails_of(n) for n in self.nl.nets},
            device_count=len(self.ckt.devices))


def elaborate_netlist(netlist: GateNetlist,
                      sleep_tree: Optional[SleepTree] = None,
                      tech: Optional[Technology] = None,
                      mcml_sizing: Optional[McmlSizing] = None,
                      cmos_sizing: Optional[CmosSizing] = None,
                      name: Optional[str] = None,
                      load_caps: bool = True) -> ElaboratedNetlist:
    """Flatten ``netlist`` into one transistor-level circuit.

    ``sleep_tree`` (PG-MCML) wires each gated cell's sleep net to its
    tree leaf; without it every cell shares one global ``sleep`` net.
    ``load_caps`` attaches each logical net's
    :meth:`~repro.netlist.graph.GateNetlist.load_cap` to its rail(s).
    """
    return _Elaborator(netlist, sleep_tree, tech or netlist.library.tech,
                       mcml_sizing, cmos_sizing,
                       name).run(load_caps)


def attach_core_testbench(elab: ElaboratedNetlist,
                          inputs: Dict[str, Union[bool, Stimulus,
                                                  Tuple[Stimulus,
                                                        Stimulus]]],
                          sleep: Union[bool, Stimulus] = True,
                          tech: Optional[Technology] = None,
                          mcml_sizing: Optional[McmlSizing] = None) -> None:
    """Drive rails and primary inputs of an elaborated core in place.

    ``inputs`` maps primary-input net names to a logic constant, a
    single-ended stimulus (CMOS / replicated differentially), or an
    explicit ``(p, n)`` stimulus pair.  ``sleep`` drives the PG-MCML
    sleep root (``True`` = awake).  Every primary input must be given —
    a floating differential pair would make the solve singular.
    """
    tech = tech or elab.netlist.library.tech
    sizing = mcml_sizing or McmlSizing()
    ckt = elab.circuit
    hi, lo = ((sizing.input_high(tech), sizing.input_low(tech))
              if elab.differential else (tech.vdd, 0.0))

    ckt.v("vdd", elab.vdd_net, tech.vdd)
    if elab.differential:
        ckt.v("vvn", elab.vn_net, sizing.vn)
        ckt.v("vvp", elab.vp_net, sizing.vp)
        ckt.v("vvlo", elab.vlo_net, lo)
    if elab.sleep_net is not None:
        if isinstance(sleep, bool):
            stim: Stimulus = DC(tech.vdd if sleep else 0.0)
        else:
            stim = sleep
        ckt.v("vsleep", elab.sleep_net, stim)

    # The sleep root may be a netlist primary input (insert_sleep_tree
    # registers it); the ``sleep`` parameter is its one driver.
    sleep_root = None
    if elab.sleep_net is not None and elab.style == "pgmcml":
        for pi in elab.netlist.primary_inputs:
            if elab.rails(pi) == elab.sleep_net:
                sleep_root = pi
    missing = [n for n in elab.netlist.primary_inputs
               if n not in inputs and n != sleep_root]
    if missing:
        raise SynthesisError(f"undriven primary inputs: {sorted(missing)}")
    for net, value in inputs.items():
        if net == sleep_root:
            continue
        rails = elab.rails(net)
        tag = f"v_{net}"
        if isinstance(rails, tuple):
            if isinstance(value, bool):
                sp: Stimulus = DC(hi if value else lo)
                sn: Stimulus = DC(lo if value else hi)
            elif isinstance(value, tuple):
                sp, sn = value
            else:
                raise SynthesisError(
                    f"differential input {net!r} needs a bool or a "
                    f"(p, n) stimulus pair, got {value!r}")
            ckt.v(f"{tag}_p", rails[0], sp)
            ckt.v(f"{tag}_n", rails[1], sn)
        else:
            if isinstance(value, bool):
                se: Stimulus = DC(tech.vdd if value else 0.0)
            elif isinstance(value, tuple):
                raise SynthesisError(
                    f"single-ended input {net!r} cannot take a "
                    f"stimulus pair")
            else:
                se = value
            ckt.v(tag, rails, se)


def initial_point(elab: ElaboratedNetlist,
                  values: Dict[str, bool]) -> OperatingPoint:
    """An approximate operating point from settled logic values.

    ``values`` is a full net -> bool map (e.g.
    :attr:`~repro.netlist.logicsim.LogicSimulator.values` after
    ``initialize``).  Logical rails get their logic levels; cell-internal
    nodes default to the inter-level midpoint.  Intended as the ``ic=``
    seed of a transient on a core too large for a cold DC solve — the
    first timesteps relax the interior nodes while the load capacitors
    hold the seeded rails.
    """
    hi, lo = elab.logic_levels
    mid = (hi + lo) / 2.0
    voltages = {node: mid for node in elab.circuit.all_nodes()}
    voltages["0"] = 0.0
    for net, value in values.items():
        rails = elab.net_rails.get(net)
        if rails is None:
            continue
        if isinstance(rails, tuple):
            voltages[rails[0]] = hi if value else lo
            voltages[rails[1]] = lo if value else hi
        else:
            # CMOS / sleep-distribution nets swing rail to rail.
            voltages[rails] = (elab.netlist.library.tech.vdd
                               if value else 0.0)
    if not elab.differential:
        # The composed 6-NAND DFF stores state in cross-coupled pairs on
        # circuit-internal nodes; left at the midpoint they relax to the
        # metastable fixed point instead of the simulated state.  Their
        # logic values follow from the pins, so seed them too.
        vdd = elab.netlist.library.tech.vdd
        for inst in elab.netlist.instances.values():
            if inst.cell.name != "DFF":
                continue
            d = values.get(inst.pins["D"])
            ck = values.get(inst.pins["CK"])
            q = values.get(inst.pins["Q"])
            if d is None or ck is None or q is None:
                continue
            n1 = n2 = n3 = n4 = True
            for _ in range(6):
                n2 = not (n1 and ck)
                n3 = not (n2 and ck and n4)
                n4 = not (n3 and d)
                n1 = not (n4 and n2)
            tag = inst.name
            for node, bit in ((f"{tag}_n1", n1), (f"{tag}_n2", n2),
                              (f"{tag}_n3", n3), (f"{tag}_n4", n4),
                              (f"{tag}_qb", not q)):
                voltages[node] = vdd if bit else 0.0
    for node, volt in elab.circuit.fixed_nodes(0.0).items():
        voltages[node] = volt
    return OperatingPoint(voltages, {})
