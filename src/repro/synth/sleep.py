"""Automatic sleep-signal insertion (the paper's future-work item).

§5: the sleep signal "is routed and buffered as a balanced tree" using
"single ended clock buffers ... with the same height as the PG-MCML
cells", synthesised by the place-and-route tool's CTS engine, and §6
measures its insertion delay at ~1 ns for the S-box ISE cluster.

:func:`insert_sleep_tree` reproduces that step: every power-gated cell
of the netlist is assigned to a leaf cluster, buffers (``SLEEPBUF``
cells) are added level by level until a single root remains, and the
insertion delay is the accumulated buffer-plus-stage-wire delay.  The
sleep pins are not part of the cells' logical pin lists (exactly as the
paper's tools could not see them), so leaf membership is carried as
side-band data used by the power model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from ..errors import SynthesisError
from ..netlist import GateNetlist
from ..units import fF, ps

SLEEP_ROOT_NET = "sleep_root"

#: Gate capacitance of one cell's sleep input, farads.
SLEEP_PIN_CAP = fF(1.0)

#: Extra RC delay of the routed stage wiring per tree level, seconds.
#: Dominates the buffer delay for large clusters; calibrated so the
#: ~3000-cell S-box ISE lands near the paper's ~1 ns insertion delay.
WIRE_STAGE_DELAY = ps(250.0)


@dataclass
class SleepTree:
    """The synthesised sleep distribution network."""

    root_net: str
    levels: int
    buffer_instances: List[str]
    #: gated instance name -> leaf buffer output net
    leaf_of: Dict[str, str]
    insertion_delay: float
    fanout_limit: int

    @property
    def n_buffers(self) -> int:
        return len(self.buffer_instances)

    @property
    def n_gated_cells(self) -> int:
        return len(self.leaf_of)

    def __repr__(self) -> str:
        return (f"SleepTree({self.n_gated_cells} gated cells, "
                f"{self.n_buffers} buffers, {self.levels} levels, "
                f"t_ins={self.insertion_delay * 1e9:.3g} ns)")


def insert_sleep_tree(netlist: GateNetlist, root_net: str = SLEEP_ROOT_NET,
                      fanout_limit: int = 18,
                      wire_stage_delay: float = WIRE_STAGE_DELAY) -> SleepTree:
    """Build the buffered sleep tree over every power-gated cell.

    Adds ``SLEEPBUF`` instances to the netlist (they count toward area
    and cell totals, reproducing the MCML->PG-MCML deltas of Table 3) and
    returns the tree structure.
    """
    library = netlist.library
    if library.style != "pgmcml":
        raise SynthesisError(
            f"sleep insertion requires a PG-MCML netlist, got style "
            f"{library.style!r}")
    if "SLEEPBUF" not in library:
        raise SynthesisError("library has no SLEEPBUF cell")
    if fanout_limit < 2:
        raise SynthesisError("fanout limit must be at least 2")

    gated = [inst.name for inst in netlist.instances.values()
             if inst.cell.power.has_sleep and not inst.cell.pseudo]
    if not gated:
        raise SynthesisError("netlist has no power-gated cells")

    netlist.add_primary_input(root_net)

    buffer_names: List[str] = []
    leaf_of: Dict[str, str] = {}

    # Level 0: leaf buffers, one per cluster of gated cells.
    n_leaves = math.ceil(len(gated) / fanout_limit)
    leaf_nets: List[str] = []
    for i in range(n_leaves):
        out = netlist.new_net("sleep_l0_")
        leaf_nets.append(out.name)
        for inst_name in gated[i * fanout_limit:(i + 1) * fanout_limit]:
            leaf_of[inst_name] = out.name

    # Build upward until one driver remains; the top is driven by root.
    levels = 1
    current: List[str] = leaf_nets
    level_loads: List[float] = [min(fanout_limit, len(gated)) * SLEEP_PIN_CAP]
    sleepbuf = library.cell("SLEEPBUF")
    while True:
        n_parents = math.ceil(len(current) / fanout_limit)
        if n_parents == 1:
            parent_nets = [root_net]
        else:
            parent_nets = [netlist.new_net(f"sleep_l{levels}_").name
                           for _ in range(n_parents)]
        for i, child_net in enumerate(current):
            parent = parent_nets[i // fanout_limit]
            name = f"usleep_{levels - 1}_{i}"
            netlist.add_instance("SLEEPBUF", {"A": parent, "Y": child_net},
                                 name=name)
            buffer_names.append(name)
        if n_parents == 1:
            break
        level_loads.append(
            min(fanout_limit, len(current)) * sleepbuf.input_cap)
        current = parent_nets
        levels += 1

    # Insertion delay: per level, buffer delay into its worst load plus
    # the routed stage wire.
    insertion = 0.0
    for load in level_loads:
        insertion += sleepbuf.delay_model.delay(load) + wire_stage_delay

    return SleepTree(
        root_net=root_net,
        levels=levels,
        buffer_instances=buffer_names,
        leaf_of=leaf_of,
        insertion_delay=insertion,
        fanout_limit=fanout_limit,
    )
