"""Fanout buffering.

MCML drive is fixed by the tail current: the output sees R = swing/Iss
(8 kΩ at 50 µA), so a net fanning out to dozens of MUX selects would be
hopelessly slow.  Synthesis therefore keeps fanout bounded by inserting
buffer trees — the paper's library ships drive-strength-4 buffers (Fig. 4
shows X1 and X4) for exactly this purpose.  The same pass improves the
CMOS reference, matching what Design Compiler does with its own buffers.
"""

from __future__ import annotations

from typing import Optional

from ..errors import SynthesisError
from ..netlist import GateNetlist


def buffer_high_fanout(netlist: GateNetlist, max_fanout: int = 8,
                       buf_cell: Optional[str] = None) -> int:
    """Split every net with more than ``max_fanout`` sinks via buffers.

    Returns the number of buffer instances inserted.  Re-runs until no
    net exceeds the limit, so very wide nets receive a balanced tree
    (each pass groups sinks under new buffers whose inputs then load the
    original net).
    """
    if max_fanout < 2:
        raise SynthesisError("max_fanout must be at least 2")
    if buf_cell is None:
        buf_cell = "BUFX4" if "BUFX4" in netlist.library else "BUF"
    if buf_cell not in netlist.library:
        raise SynthesisError(
            f"library {netlist.library.name!r} has no {buf_cell!r} cell")

    inserted = 0
    for _pass in range(32):  # depth bound; a 8^32-sink net does not exist
        over = [name for name, net in netlist.nets.items()
                if net.fanout > max_fanout]
        if not over:
            return inserted
        for net_name in over:
            sinks = list(netlist.nets[net_name].sinks)
            if len(sinks) <= max_fanout:
                continue  # may have shrunk during this pass
            groups = [sinks[i:i + max_fanout]
                      for i in range(0, len(sinks), max_fanout)]
            for group in groups:
                out = netlist.new_net("fbuf_")
                netlist.add_instance(buf_cell,
                                     {"A": net_name, "Y": out.name})
                inserted += 1
                for sink in group:
                    netlist.move_sink(net_name, sink, out.name)
    raise SynthesisError("fanout buffering did not converge in 32 passes")
