"""The S-box instruction-set-extension macro (§6).

The custom functional unit contains four identical AES S-boxes, each an
8×8 look-up table, matching the OpenRISC word size.  Differential
implementations are connected to the CMOS processor "by means of
converters": single-to-differential cells on the 32 operand bits in,
differential-to-single cells on the 32 result bits out.  The PG-MCML
variant additionally receives the automatically inserted sleep tree.

``share_outputs`` controls BDD sharing across the eight output bits of a
S-box.  Differential synthesis maps naturally onto shared MUX trees; the
CMOS reference flow is run without cross-output sharing, approximating
the flatter netlists commercial synthesis produced for the paper (and
reproducing the Table 3 cell-count ordering: CMOS > PG-MCML > MCML).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..aes import SBOX
from ..cells import Library, preflight_library
from ..errors import SynthesisError
from ..spice.erc import erc_enabled
from ..netlist import GateNetlist
from .buffering import buffer_high_fanout
from .mapping import map_lut
from .sleep import SleepTree, insert_sleep_tree

WORD_BITS = 32
SBOX_BITS = 8


def sbox_truth_tables(prefix: str = "y") -> Dict[str, List[int]]:
    """The eight output-bit truth tables of the AES S-box (MSB first)."""
    return {
        f"{prefix}{bit}": [(SBOX[x] >> (SBOX_BITS - 1 - bit)) & 1
                           for x in range(256)]
        for bit in range(SBOX_BITS)
    }


@dataclass
class SBoxISE:
    """The mapped custom functional unit."""

    netlist: GateNetlist
    style: str
    #: operand bit nets entering the S-box logic (after converters)
    core_inputs: List[str]
    #: result bit nets leaving the S-box logic (before converters)
    core_outputs: List[str]
    #: block-boundary nets (processor side)
    inputs: List[str]
    outputs: List[str]
    sleep_tree: Optional[SleepTree] = None
    n_sboxes: int = 4

    def cells(self) -> int:
        return self.netlist.total_cells()

    def area_um2(self) -> float:
        return self.netlist.total_area_um2()


def build_sbox_ise(library: Library, n_sboxes: int = 4,
                   share_outputs: Optional[bool] = None,
                   with_sleep_tree: bool = True,
                   name: Optional[str] = None,
                   erc: Optional[bool] = None) -> SBoxISE:
    """Synthesise the S-box ISE macro onto ``library``.

    Synthesis starts with an ERC preflight of the target library's
    transistor templates (``erc=False`` or ``REPRO_ERC=off`` opts out):
    mapping onto a mis-generated library would propagate the wiring
    fault into every instance.
    """
    if n_sboxes < 1:
        raise SynthesisError("need at least one S-box")
    if erc if erc is not None else erc_enabled():
        preflight_library(library)
    differential = library.style in ("mcml", "pgmcml")
    if share_outputs is None:
        share_outputs = differential
    nl = GateNetlist(name or f"sbox_ise_{library.style}", library)

    word = n_sboxes * SBOX_BITS
    boundary_in = [f"op{i}" for i in range(word)]
    for net in boundary_in:
        nl.add_primary_input(net)

    # Input converters (differential only).
    core_in: List[str] = []
    if differential:
        for i, net in enumerate(boundary_in):
            out = nl.new_net(f"d_in{i}_")
            nl.add_instance("SINGLE2DIFF", {"A": net, "Y": out.name},
                            name=f"us2d_{i}")
            core_in.append(out.name)
    else:
        core_in = list(boundary_in)

    # Four S-boxes.
    tables = sbox_truth_tables()
    input_names = [f"x{i}" for i in range(SBOX_BITS)]
    core_out: List[str] = []
    for s in range(n_sboxes):
        bindings = {
            input_names[b]: core_in[s * SBOX_BITS + b]
            for b in range(SBOX_BITS)
        }
        block = map_lut(library, tables, input_names,
                        name=f"sbox{s}", netlist=nl, input_nets=bindings,
                        share_outputs=share_outputs)
        for b in range(SBOX_BITS):
            core_out.append(block.outputs[f"y{b}"])

    # Output converters.
    boundary_out: List[str] = []
    if differential:
        for i, net in enumerate(core_out):
            out = nl.new_net(f"s_out{i}_")
            nl.add_instance("DIFF2SINGLE", {"A": net, "Y": out.name},
                            name=f"ud2s_{i}")
            boundary_out.append(out.name)
    else:
        boundary_out = list(core_out)
    for net in boundary_out:
        nl.add_primary_output(net)

    # Bound net fanout with buffer trees (MCML drive is tail-current
    # limited; commercial synthesis does the same for the CMOS flow).
    buffer_high_fanout(nl, max_fanout=6)

    tree: Optional[SleepTree] = None
    if library.style == "pgmcml" and with_sleep_tree:
        tree = insert_sleep_tree(nl)

    return SBoxISE(
        netlist=nl, style=library.style, core_inputs=core_in,
        core_outputs=core_out, inputs=boundary_in, outputs=boundary_out,
        sleep_tree=tree, n_sboxes=n_sboxes)


def simulate_sbox_word(ise: SBoxISE, simulator, word: int) -> int:
    """Drive a 32-bit operand through a settled ISE and read the result.

    ``simulator`` is a :class:`~repro.netlist.LogicSimulator` bound to
    ``ise.netlist``; bit 0 of ``word`` is ``op0`` (the MSB of S-box 0's
    input, matching the LUT's MSB-first convention).
    """
    n_bits = ise.n_sboxes * SBOX_BITS
    values = {f"op{i}": bool((word >> (n_bits - 1 - i)) & 1)
              for i in range(n_bits)}
    if ise.sleep_tree is not None:
        values[ise.sleep_tree.root_net] = True  # awake
    simulator.initialize(values)
    result = 0
    for i, net in enumerate(ise.outputs):
        result |= int(simulator.values[net]) << (n_bits - 1 - i)
    return result
