"""Netlist cleanup: sweep logic that drives nothing.

Mapping, buffering, and manual edits can leave instances whose outputs
reach neither a primary output nor a sequential element — silicon that
synthesis would sweep away.  :func:`sweep_dangling` removes them
iteratively (removing one dead cell can orphan its fan-in) and reports
what was deleted.
"""

from __future__ import annotations

from typing import List, Set

from ..errors import SynthesisError
from ..netlist import GateNetlist


def sweep_dangling(netlist: GateNetlist,
                   keep: Set[str] = frozenset()) -> List[str]:
    """Remove combinational instances with no observable fanout.

    ``keep`` names instances to preserve regardless (e.g. sleep-tree
    buffers whose loads are side-band).  Returns the removed instance
    names.  Primary outputs and all sequential elements are observation
    points.
    """
    protected = set(keep)
    removed: List[str] = []
    for _ in range(len(netlist.instances) + 1):
        observable = set(netlist.primary_outputs)
        dead = []
        for inst in netlist.instances.values():
            if inst.name in protected or inst.cell.is_sequential:
                continue
            if all(netlist.nets[inst.pins[pin]].fanout == 0
                   and inst.pins[pin] not in observable
                   for pin in inst.cell.outputs):
                dead.append(inst.name)
        if not dead:
            return removed
        for name in dead:
            inst = netlist.instances.pop(name)
            for pin in inst.cell.inputs:
                net = netlist.nets[inst.pins[pin]]
                if (name, pin) in net.sinks:
                    net.sinks.remove((name, pin))
            for pin in inst.cell.outputs:
                net_name = inst.pins[pin]
                net = netlist.nets[net_name]
                net.driver = None
                if net.fanout == 0 and not net.is_primary_input and \
                        net_name not in netlist.primary_outputs:
                    del netlist.nets[net_name]
            removed.append(name)
    raise SynthesisError("dangling sweep did not converge")  # pragma: no cover
