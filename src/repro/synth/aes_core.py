"""A complete round-based AES-128 hardware core.

The paper protects only the S-box functional unit, citing the ISE-style
approach as the way to "minimize the area and the cost overhead due to
MCML gates" (§2).  The natural follow-up — what would protecting the
*whole* cipher cost? — needs a full AES core in each library.  This
generator builds one:

* 128-bit state and key registers (DFF cells),
* SubBytes as 16 mapped S-box LUT blocks,
* ShiftRows as wiring, MixColumns as XOR2 trees derived from the
  bit-linear map (:mod:`repro.aes.linear`),
* on-the-fly key schedule (SubWord through 4 more S-box blocks, Rcon
  from a counter-indexed LUT, the word-chaining XORs),
* a 4-bit round counter with an increment ripple and a ``round == 10``
  comparator that bypasses MixColumns in the last round,
* a ``load`` control input: one rising clock edge with ``load`` high
  captures plaintext XOR key (the initial AddRoundKey) and clears the
  counter; ten more edges complete the encryption.

Interface: plaintext bits ``pt0..pt127`` and key bits ``key0..key127``
(MSB-first per byte, FIPS byte order), ``clk``, ``load``; the ciphertext
appears on the state register outputs after the tenth round edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..aes.aes import RCON
from ..aes.linear import (
    STATE_BITS,
    bits_to_state,
    mix_columns_bit_map,
    shift_rows_bit_map,
)
from ..cells import Library
from ..errors import SynthesisError
from ..netlist import GateNetlist, LogicSimulator
from .buffering import buffer_high_fanout
from .mapping import map_lut
from .sbox_unit import sbox_truth_tables
from .sleep import SleepTree, insert_sleep_tree

CLOCK_NET = "clk"
LOAD_NET = "load"


@dataclass
class AESCore:
    """The generated core plus its pin bindings."""

    netlist: GateNetlist
    style: str
    pt_nets: List[str]
    key_nets: List[str]
    ct_nets: List[str]       # state register outputs
    counter_nets: List[str]  # LSB first
    sleep_tree: Optional[SleepTree] = None

    def cells(self) -> int:
        return self.netlist.total_cells()

    def area_um2(self) -> float:
        return self.netlist.total_area_um2()


class _CoreBuilder:
    """Structural emission helpers over one netlist."""

    def __init__(self, library: Library, name: str):
        self.lib = library
        self.nl = GateNetlist(name, library)
        self.differential = library.style in ("mcml", "pgmcml")
        self._inv_cache: Dict[str, str] = {}

    def inv(self, net: str) -> str:
        cached = self._inv_cache.get(net)
        if cached is not None:
            return cached
        out = self.nl.new_net("inv_").name
        cell = "RAILSWAP" if self.differential else "INV"
        self.nl.add_instance(cell, {"A": net, "Y": out})
        self._inv_cache[net] = out
        return out

    def gate2(self, cell: str, a: str, b: str) -> str:
        out = self.nl.new_net(f"{cell.lower()}_").name
        self.nl.add_instance(cell, {"A": a, "B": b, "Y": out})
        return out

    def xor2(self, a: str, b: str) -> str:
        return self.gate2("XOR2", a, b)

    def and2(self, a: str, b: str) -> str:
        return self.gate2("AND2", a, b)

    def and4(self, a: str, b: str, c: str, d: str) -> str:
        out = self.nl.new_net("and4_").name
        self.nl.add_instance("AND4", {"A": a, "B": b, "C": c, "D": d,
                                      "Y": out})
        return out

    def mux2(self, sel: str, d0: str, d1: str) -> str:
        out = self.nl.new_net("mux_").name
        self.nl.add_instance("MUX2", {"S": sel, "D0": d0, "D1": d1,
                                      "Y": out})
        return out

    def dff(self, d: str, q: str, name: str) -> None:
        self.nl.add_instance("DFF", {"D": d, "CK": CLOCK_NET, "Q": q},
                             name=name)

    def tie(self, value: bool, any_input: str) -> str:
        cell = "TIEH" if value else "TIEL"
        if cell not in self.lib:
            raise SynthesisError(f"library lacks {cell}")
        out = self.nl.new_net("const_").name
        self.nl.add_instance(cell, {"A": any_input, "Y": out})
        return out

    def xor_tree(self, nets: Sequence[str]) -> str:
        if not nets:
            raise SynthesisError("empty XOR tree")
        level = list(nets)
        while len(level) > 1:
            nxt = [self.xor2(level[i], level[i + 1])
                   for i in range(0, len(level) - 1, 2)]
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def sbox_block(self, in_bits: Sequence[str], tag: str) -> List[str]:
        tables = sbox_truth_tables()
        names = [f"x{i}" for i in range(8)]
        block = map_lut(self.lib, tables, names, name=tag,
                        netlist=self.nl,
                        input_nets=dict(zip(names, in_bits)),
                        share_outputs=self.differential)
        return [block.outputs[f"y{b}"] for b in range(8)]


def _rcon_tables() -> Dict[str, List[int]]:
    """Rcon byte as 8 output-bit tables over the 4 counter bits.

    The counter value c (0..9) selects Rcon[c] — the constant for the
    round being computed; other codes return 0.
    """
    tables: Dict[str, List[int]] = {f"r{b}": [] for b in range(8)}
    for code in range(16):
        value = RCON[code] if code < len(RCON) else 0
        for b in range(8):
            tables[f"r{b}"].append((value >> (7 - b)) & 1)
    return tables


def build_aes_core(library: Library, with_sleep_tree: bool = True,
                   name: Optional[str] = None) -> AESCore:
    """Build the round-based AES-128 encryption core on ``library``."""
    b = _CoreBuilder(library, name or f"aes_core_{library.style}")
    nl = b.nl

    pt = [f"pt{i}" for i in range(STATE_BITS)]
    key = [f"key{i}" for i in range(STATE_BITS)]
    for net in (*pt, *key, CLOCK_NET, LOAD_NET):
        nl.add_primary_input(net)

    state_q = [f"state_q{i}" for i in range(STATE_BITS)]
    key_q = [f"key_q{i}" for i in range(STATE_BITS)]
    cnt_q = [f"cnt_q{i}" for i in range(4)]  # LSB first

    # ---- round counter ------------------------------------------------------
    inc_bits: List[str] = []
    carry: Optional[str] = None
    for i, q in enumerate(cnt_q):
        if i == 0:
            inc_bits.append(b.inv(q))
            carry = q
        else:
            inc_bits.append(b.xor2(q, carry))
            carry = b.and2(q, carry)
    zero = b.tie(False, LOAD_NET)
    for i, inc in enumerate(inc_bits):
        d = b.mux2(LOAD_NET, inc, zero)
        b.dff(d, cnt_q[i], name=f"ucnt{i}")
    # last round while counter == 9 (0b1001, LSB first: c0=1 c3=1).
    last = b.and4(cnt_q[0], b.inv(cnt_q[1]), b.inv(cnt_q[2]), cnt_q[3])

    # ---- round datapath -------------------------------------------------------
    sub_bits: List[str] = []
    for byte in range(16):
        sub_bits.extend(b.sbox_block(state_q[8 * byte:8 * byte + 8],
                                     tag=f"sb{byte}"))
    sr_map = shift_rows_bit_map()
    sr_bits = [sub_bits[sr_map[i]] for i in range(STATE_BITS)]
    mc_rows = mix_columns_bit_map()
    mc_bits = [b.xor_tree([sr_bits[i] for i in row]) for row in mc_rows]
    pre_ark = [b.mux2(last, mc_bits[i], sr_bits[i])
               for i in range(STATE_BITS)]

    # ---- on-the-fly key schedule ------------------------------------------------
    # Words are 32-bit slices of the key register, w0..w3.
    w = [key_q[32 * k:32 * k + 32] for k in range(4)]
    # RotWord(w3): byte rotate left.
    rot = w[3][8:] + w[3][:8]
    subword: List[str] = []
    for byte in range(4):
        subword.extend(b.sbox_block(rot[8 * byte:8 * byte + 8],
                                    tag=f"ks{byte}"))
    rcon_block = map_lut(library, _rcon_tables(),
                         [f"c{i}" for i in range(4)], name="rcon",
                         netlist=nl,
                         input_nets={  # MSB-first variable order
                             "c0": cnt_q[3], "c1": cnt_q[2],
                             "c2": cnt_q[1], "c3": cnt_q[0]},
                         share_outputs=b.differential)
    rcon_bits = [rcon_block.outputs[f"r{i}"] for i in range(8)]
    temp = [b.xor2(subword[i], rcon_bits[i]) if i < 8 else subword[i]
            for i in range(32)]
    next_w: List[List[str]] = []
    prev = temp
    for k in range(4):
        word = [b.xor2(w[k][i], prev[i]) for i in range(32)]
        next_w.append(word)
        prev = word
    next_key = [bit for word in next_w for bit in word]

    # ---- AddRoundKey + register inputs -------------------------------------------
    round_out = [b.xor2(pre_ark[i], next_key[i])
                 for i in range(STATE_BITS)]
    ark0 = [b.xor2(pt[i], key[i]) for i in range(STATE_BITS)]
    for i in range(STATE_BITS):
        d_state = b.mux2(LOAD_NET, round_out[i], ark0[i])
        b.dff(d_state, state_q[i], name=f"ust{i}")
        d_key = b.mux2(LOAD_NET, next_key[i], key[i])
        b.dff(d_key, key_q[i], name=f"ukey{i}")

    for q in state_q:
        nl.add_primary_output(q)

    buffer_high_fanout(nl, max_fanout=6)
    tree: Optional[SleepTree] = None
    if library.style == "pgmcml" and with_sleep_tree:
        tree = insert_sleep_tree(nl)

    return AESCore(netlist=nl, style=library.style, pt_nets=pt,
                   key_nets=key, ct_nets=state_q, counter_nets=cnt_q,
                   sleep_tree=tree)


def encrypt_with_core(core: AESCore, simulator: LogicSimulator,
                      plaintext: bytes, key: bytes,
                      period: float = 5e-9) -> bytes:
    """Drive one encryption through the core and read the ciphertext.

    ``simulator`` must be bound to ``core.netlist``; state carries over
    between calls exactly as in silicon.
    """
    from ..aes.linear import state_to_bits

    if len(plaintext) != 16 or len(key) != 16:
        raise SynthesisError("plaintext and key must be 16 bytes")
    pt_bits = state_to_bits(plaintext)
    key_bits = state_to_bits(key)
    values = {net: bool(bit) for net, bit in zip(core.pt_nets, pt_bits)}
    values.update({net: bool(bit)
                   for net, bit in zip(core.key_nets, key_bits)})
    values[LOAD_NET] = True
    values[CLOCK_NET] = False
    if core.sleep_tree is not None:
        values[core.sleep_tree.root_net] = True
    simulator.initialize(values)

    stimuli: List[Tuple[float, str, bool]] = []
    t = period
    # Load edge.
    stimuli.append((t, CLOCK_NET, True))
    stimuli.append((t + period / 2, CLOCK_NET, False))
    stimuli.append((t + period / 2, LOAD_NET, False))
    t += period
    for _ in range(10):
        stimuli.append((t, CLOCK_NET, True))
        stimuli.append((t + period / 2, CLOCK_NET, False))
        t += period
    trace = simulator.run(stimuli, duration=t + period)
    bits = [int(simulator.values[q]) for q in core.ct_nets]
    return bits_to_state(bits)
