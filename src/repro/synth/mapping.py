"""BDD-driven technology mapping.

Each look-up table output is decomposed through a (optionally shared)
ROBDD; every BDD node then becomes at most one library cell:

====================  =========================================
BDD node pattern      emitted cell
====================  =========================================
children (0, 1)       the select signal itself (no cell)
children (1, 0)       inverted select (free in differential)
low = 0               AND2(sel, high)
low = 1               OR2(NOT sel, high)
high = 0              AND2(NOT sel, low)
high = 1              OR2(sel, low)
low = NOT high        XOR2(sel, low)
otherwise             MUX2(sel, low, high)
====================  =========================================

Signals travel through the mapper as ``(net, inverted)`` pairs.  When a
cell needs the positive polarity of an inverted signal, the mapper
materialises it once per net:

* **differential libraries** (MCML/PG-MCML) emit a ``RAILSWAP`` pseudo
  cell — swapping the two rails of a differential pair costs no area, no
  delay, and no transistor, but the explicit instance keeps the mapped
  netlist logically exact for simulation;
* **static CMOS** emits a real ``INV`` cell.

This polarity asymmetry is why the paper's CMOS S-box ISE needs ~30 %
more cells than the MCML one (Table 3: 3865 vs 2911).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..bdd import BDD, Manager, ONE_INDEX, ZERO_INDEX
from ..cells import Library
from ..errors import SynthesisError
from ..netlist import GateNetlist

#: A mapped signal: net name plus polarity flag.
Signal = Tuple[str, bool]


@dataclass
class MappedBlock:
    """Result of mapping one logic block."""

    netlist: GateNetlist
    #: external output name -> net carrying the positive polarity
    outputs: Dict[str, str]
    #: number of real inverter cells materialised (CMOS polarity cost)
    inverters: int = 0
    #: number of free rail swaps (differential polarity "cost")
    rail_swaps: int = 0


class TechnologyMapper:
    """Maps BDDs onto one target library."""

    def __init__(self, library: Library):
        self.library = library
        # WDDL counts as differential: inversion is a free rail swap on
        # the complementary pair, exactly as in MCML.
        self.differential = library.style in ("mcml", "pgmcml", "wddl")
        self._inv_cache: Dict[str, str] = {}
        self.inverter_count = 0
        self.rail_swap_count = 0

    # -- polarity handling ------------------------------------------------------

    def positive(self, netlist: GateNetlist, signal: Signal) -> str:
        """A net carrying the positive polarity of ``signal``."""
        net, inverted = signal
        if not inverted:
            return net
        cached = self._inv_cache.get(net)
        if cached is not None:
            return cached
        out = netlist.new_net("inv_")
        if self.differential:
            netlist.add_instance("RAILSWAP", {"A": net, "Y": out.name})
            self.rail_swap_count += 1
        else:
            netlist.add_instance("INV", {"A": net, "Y": out.name})
            self.inverter_count += 1
        self._inv_cache[net] = out.name
        return out.name

    # -- cell emission -------------------------------------------------------------

    def _emit2(self, netlist: GateNetlist, cell: str, a: Signal,
               b: Signal) -> Signal:
        """Emit a 2-input cell on positive nets; returns a positive signal."""
        if (cell == "XOR2" and (a[1] != b[1]) and not self.differential
                and "XNOR2" in self.library):
            # One inverted operand: fold the inversion into an XNOR cell.
            out = netlist.new_net("xnor_")
            netlist.add_instance("XNOR2", {"A": a[0], "B": b[0],
                                           "Y": out.name})
            return (out.name, False)
        if cell == "XOR2" and (a[1] != b[1]) and self.differential:
            # XOR with one rail-swapped input is the same cell; account
            # the inversion on the output instead (still free).
            out = netlist.new_net("xor_")
            netlist.add_instance("XOR2", {"A": a[0], "B": b[0],
                                          "Y": out.name})
            return (out.name, True)
        net_a = self.positive(netlist, a)
        net_b = self.positive(netlist, b)
        out = netlist.new_net(f"{cell.lower()}_")
        netlist.add_instance(cell, {"A": net_a, "B": net_b, "Y": out.name})
        return (out.name, False)

    def _emit_mux(self, netlist: GateNetlist, sel: Signal, d0: Signal,
                  d1: Signal) -> Signal:
        if sel[1]:
            d0, d1 = d1, d0
            sel = (sel[0], False)
        if d0[1] and d1[1]:
            # Both data inputs inverted: push the inversion to the output.
            d0, d1 = (d0[0], False), (d1[0], False)
            inverted_out = True
        else:
            inverted_out = False
        out = netlist.new_net("mux_")
        netlist.add_instance("MUX2", {
            "S": sel[0],
            "D0": self.positive(netlist, d0),
            "D1": self.positive(netlist, d1),
            "Y": out.name,
        })
        return (out.name, inverted_out)

    # -- main recursion ---------------------------------------------------------------

    def map_roots(self, netlist: GateNetlist, manager: Manager,
                  roots: Dict[str, BDD],
                  input_nets: Dict[str, str]) -> Dict[str, str]:
        """Map shared-BDD roots; returns positive output nets."""
        signal_of: Dict[int, Signal] = {}

        def var_net(level: int) -> str:
            name = manager.var_name(level)
            try:
                return input_nets[name]
            except KeyError:
                raise SynthesisError(
                    f"no input net bound for variable {name!r}") from None

        order = manager.reachable([b.index for b in roots.values()])
        for index in order:
            level, low, high = manager.node(index)
            sel: Signal = (var_net(level), False)

            if low == ZERO_INDEX and high == ONE_INDEX:
                signal_of[index] = sel
            elif low == ONE_INDEX and high == ZERO_INDEX:
                signal_of[index] = (sel[0], True)
            elif low == ZERO_INDEX:
                signal_of[index] = self._emit2(netlist, "AND2", sel,
                                               signal_of[high])
            elif low == ONE_INDEX:
                signal_of[index] = self._emit2(netlist, "OR2",
                                               (sel[0], True),
                                               signal_of[high])
            elif high == ZERO_INDEX:
                signal_of[index] = self._emit2(netlist, "AND2",
                                               (sel[0], True),
                                               signal_of[low])
            elif high == ONE_INDEX:
                signal_of[index] = self._emit2(netlist, "OR2", sel,
                                               signal_of[low])
            elif self._complementary(signal_of, low, high):
                signal_of[index] = self._emit2(netlist, "XOR2", sel,
                                               signal_of[low])
            else:
                signal_of[index] = self._emit_mux(netlist, sel,
                                                  signal_of[low],
                                                  signal_of[high])

        outputs: Dict[str, str] = {}
        for name, root in roots.items():
            if manager.is_terminal(root.index):
                outputs[name] = self._constant_net(
                    netlist, root.index == ONE_INDEX, input_nets)
            else:
                outputs[name] = self.positive(netlist, signal_of[root.index])
        return outputs

    def _constant_net(self, netlist: GateNetlist, value: bool,
                      input_nets: Dict[str, str]) -> str:
        cell = "TIEH" if value else "TIEL"
        if cell not in self.library:
            raise SynthesisError(
                f"constant output needed but library {self.library.name!r} "
                f"has no {cell} cell")
        any_in = next(iter(input_nets.values()))
        out = netlist.new_net("const_")
        netlist.add_instance(cell, {"A": any_in, "Y": out.name})
        return out.name

    @staticmethod
    def _complementary(signal_of: Dict[int, Signal], low: int,
                       high: int) -> bool:
        lo = signal_of.get(low)
        hi = signal_of.get(high)
        if lo is None or hi is None:
            return False
        return lo[0] == hi[0] and lo[1] != hi[1]


def map_lut(library: Library, tables: Dict[str, Sequence[int]],
            input_names: Sequence[str], name: str = "lut",
            netlist: Optional[GateNetlist] = None,
            input_nets: Optional[Dict[str, str]] = None,
            share_outputs: bool = True) -> MappedBlock:
    """Map a multi-output truth table onto ``library``.

    ``tables`` maps output names to truth tables (MSB-first in
    ``input_names``).  With ``share_outputs`` all outputs share one BDD
    manager (full logic sharing); without it, each output is decomposed
    independently — approximating a weaker commercial synthesis run.
    When ``netlist`` is given, the block is emitted into it using
    ``input_nets`` as variable bindings (for hierarchical assembly).
    """
    n = len(input_names)
    for out, bits in tables.items():
        if len(bits) != (1 << n):
            raise SynthesisError(
                f"output {out!r}: table has {len(bits)} entries, "
                f"expected {1 << n}")
    own = netlist is None
    nl = netlist or GateNetlist(name, library)
    nets = dict(input_nets or {})
    for pin in input_names:
        if pin not in nets:
            nl.add_primary_input(pin)
            nets[pin] = pin

    mapper = TechnologyMapper(library)
    outputs: Dict[str, str] = {}
    if share_outputs:
        manager = Manager(list(input_names))
        roots = {out: manager.from_truth_table(bits, list(input_names))
                 for out, bits in tables.items()}
        outputs = mapper.map_roots(nl, manager, roots, nets)
    else:
        for out, bits in tables.items():
            manager = Manager(list(input_names))
            root = manager.from_truth_table(bits, list(input_names))
            outputs[out] = mapper.map_roots(nl, manager, {out: root},
                                            nets)[out]

    if own:
        for out_name in tables:
            nl.add_primary_output(outputs[out_name])
    return MappedBlock(netlist=nl, outputs=outputs,
                       inverters=mapper.inverter_count,
                       rail_swaps=mapper.rail_swap_count)
