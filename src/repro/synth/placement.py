"""Row-based standard-cell placement.

The paper places both libraries with Cadence Encounter; the differential
flavours use the *fat-wire* methodology of Badel et al. (both rails of a
signal routed side by side on doubled pitch), which costs routing tracks
and therefore placement utilisation.  This module provides the
corresponding abstraction: a greedy row placer that packs cells into
fixed-height rows at the style's achievable utilisation, yielding the
die floorplan behind Table 3's area column and a half-perimeter
wirelength estimate for the routing story.

This is deliberately a *model*, not an optimiser: cell order within rows
follows netlist order (which map_lut emits roughly topologically), and
the quantity downstream consumers use is the die area and the wirelength
scale, not individual coordinates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import SynthesisError
from ..netlist import GateNetlist
from .report import UTILIZATION


@dataclass(frozen=True)
class PlacedCell:
    """One placed instance: lower-left corner plus extent, metres."""

    name: str
    x: float
    y: float
    width: float
    height: float

    @property
    def center(self) -> Tuple[float, float]:
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)


@dataclass
class Placement:
    """A placed netlist."""

    netlist_name: str
    style: str
    cells: Dict[str, PlacedCell]
    die_width: float
    die_height: float
    rows: int
    utilization_target: float

    @property
    def die_area_um2(self) -> float:
        return self.die_width * self.die_height * 1e12

    @property
    def cell_area_um2(self) -> float:
        return sum(c.width * c.height for c in self.cells.values()) * 1e12

    @property
    def utilization_achieved(self) -> float:
        return self.cell_area_um2 / self.die_area_um2

    def location(self, instance_name: str) -> PlacedCell:
        try:
            return self.cells[instance_name]
        except KeyError:
            raise SynthesisError(
                f"instance {instance_name!r} was not placed") from None

    def __repr__(self) -> str:
        return (f"Placement({self.netlist_name}: {len(self.cells)} cells in "
                f"{self.rows} rows, die {self.die_width * 1e6:.1f} x "
                f"{self.die_height * 1e6:.1f} um, "
                f"util {self.utilization_achieved:.2f})")


def place(netlist: GateNetlist, aspect_ratio: float = 1.0,
          utilization: Optional[float] = None) -> Placement:
    """Greedy row placement of ``netlist``.

    ``aspect_ratio`` is die width / height; ``utilization`` defaults to
    the style's fat-wire-aware value (see
    :data:`repro.synth.report.UTILIZATION`).
    """
    if aspect_ratio <= 0.0:
        raise SynthesisError("aspect ratio must be positive")
    library = netlist.library
    style = library.style
    util = utilization if utilization is not None else UTILIZATION[style]
    if not 0.0 < util <= 1.0:
        raise SynthesisError("utilization must be in (0, 1]")

    tech = library.tech
    height = tech.cell_height
    site = {"cmos": tech.site_width_cmos,
            "mcml": tech.site_width_mcml,
            "pgmcml": tech.site_width_pgmcml}[style]

    physical = [inst for inst in netlist.instances.values()
                if not inst.cell.pseudo]
    if not physical:
        raise SynthesisError(f"{netlist.name}: nothing to place")
    widths = {inst.name: inst.cell.sites * site for inst in physical}
    total_cell_area = sum(w * height for w in widths.values())

    die_area = total_cell_area / util
    die_width = math.sqrt(die_area * aspect_ratio)
    n_rows = max(1, math.ceil((die_area / die_width) / height))
    die_height = n_rows * height
    die_width = die_area / die_height

    # Widest cell must fit in a row.
    widest = max(widths.values())
    if widest > die_width:
        die_width = widest
        die_height = die_area / die_width
        n_rows = max(1, math.ceil(die_height / height))
        die_height = n_rows * height

    placed: Dict[str, PlacedCell] = {}
    row, cursor = 0, 0.0
    for inst in physical:
        width = widths[inst.name]
        if cursor + width > die_width + 1e-12:
            row += 1
            cursor = 0.0
            if row >= n_rows:
                # Utilisation target was optimistic for this mix; grow.
                n_rows += 1
                die_height = n_rows * height
        placed[inst.name] = PlacedCell(
            name=inst.name, x=cursor, y=row * height, width=width,
            height=height)
        cursor += width

    return Placement(
        netlist_name=netlist.name, style=style, cells=placed,
        die_width=die_width, die_height=die_height, rows=n_rows,
        utilization_target=util)


def wirelength_hpwl(netlist: GateNetlist, placement: Placement) -> float:
    """Total half-perimeter wirelength, metres.

    Differential styles count each logical net twice (the fat-wire pair
    routes both rails side by side).
    """
    factor = 2.0 if placement.style in ("mcml", "pgmcml", "wddl") else 1.0
    total = 0.0
    for net in netlist.nets.values():
        points: List[Tuple[float, float]] = []
        if net.driver is not None:
            cell = placement.cells.get(net.driver[0])
            if cell is not None:
                points.append(cell.center)
        for inst_name, _pin in net.sinks:
            cell = placement.cells.get(inst_name)
            if cell is not None:
                points.append(cell.center)
        if len(points) < 2:
            continue
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        total += (max(xs) - min(xs)) + (max(ys) - min(ys))
    return total * factor
