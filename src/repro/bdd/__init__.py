"""Reduced Ordered Binary Decision Diagrams.

The paper uses BDDs in two places, and so do we:

* §3: "The logic function is realized by a NMOS network that implements
  the corresponding binary decision diagram" — the MCML cell generator
  (:mod:`repro.cells.mcml`) turns a function's BDD directly into a stack
  of source-coupled differential pairs.
* §6: the S-box ISE is an 8×8 look-up table; the synthesis flow
  (:mod:`repro.synth`) decomposes each LUT output through a shared BDD
  and maps every node onto a MUX2 standard cell.
"""

from .bdd import BDD, Manager, ZERO_INDEX, ONE_INDEX

__all__ = ["BDD", "Manager", "ZERO_INDEX", "ONE_INDEX"]
