"""A hash-consed ROBDD implementation.

Nodes live in a :class:`Manager` as ``(level, low, high)`` triples,
identified by integer indices.  Index 0 is the FALSE terminal and index 1
the TRUE terminal.  Reduction invariants (no node with ``low == high``,
full sharing via the unique table) hold by construction, so two
equivalent functions under the same manager always have the same index —
which is what makes the LUT decomposition share logic across the eight
S-box output bits.

The recursive ``ite`` depth is bounded by the variable count (at most 8
for the S-box, and tiny for cell functions), so plain recursion is safe.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import BDDError

ZERO_INDEX = 0
ONE_INDEX = 1

_TERMINAL_LEVEL = sys.maxsize


class Manager:
    """Owns the node store, unique table, and operation caches."""

    def __init__(self, variables: Optional[Sequence[str]] = None):
        # Parallel arrays: level / low / high per node index.
        self._level: List[int] = [_TERMINAL_LEVEL, _TERMINAL_LEVEL]
        self._low: List[int] = [ZERO_INDEX, ONE_INDEX]
        self._high: List[int] = [ZERO_INDEX, ONE_INDEX]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self.variables: List[str] = []
        self._var_index: Dict[str, int] = {}
        for name in variables or ():
            self.add_variable(name)

    # -- variables -----------------------------------------------------------

    def add_variable(self, name: str) -> "BDD":
        """Register a new variable at the bottom of the current order."""
        if name in self._var_index:
            raise BDDError(f"variable {name!r} already declared")
        self._var_index[name] = len(self.variables)
        self.variables.append(name)
        return self.var(name)

    def var(self, name: str) -> "BDD":
        """The projection function of an existing variable."""
        try:
            level = self._var_index[name]
        except KeyError:
            raise BDDError(f"unknown variable {name!r}; declared: "
                           f"{self.variables}") from None
        return BDD(self, self._mk(level, ZERO_INDEX, ONE_INDEX))

    def var_name(self, level: int) -> str:
        if not 0 <= level < len(self.variables):
            raise BDDError(f"no variable at level {level}")
        return self.variables[level]

    @property
    def false(self) -> "BDD":
        return BDD(self, ZERO_INDEX)

    @property
    def true(self) -> "BDD":
        return BDD(self, ONE_INDEX)

    def constant(self, value: bool) -> "BDD":
        return self.true if value else self.false

    # -- node store ----------------------------------------------------------

    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        index = len(self._level)
        self._level.append(level)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = index
        return index

    def node(self, index: int) -> Tuple[int, int, int]:
        """The ``(level, low, high)`` triple of a node index."""
        return self._level[index], self._low[index], self._high[index]

    def is_terminal(self, index: int) -> bool:
        return index in (ZERO_INDEX, ONE_INDEX)

    def __len__(self) -> int:
        return len(self._level)

    # -- core algorithm --------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: the one operator every Boolean op reduces to."""
        if f == ONE_INDEX:
            return g
        if f == ZERO_INDEX:
            return h
        if g == h:
            return g
        if g == ONE_INDEX and h == ZERO_INDEX:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        top = min(self._level[f], self._level[g], self._level[h])
        f0, f1 = self._cofactors(f, top)
        g0, g1 = self._cofactors(g, top)
        h0, h1 = self._cofactors(h, top)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._mk(top, low, high)
        self._ite_cache[key] = result
        return result

    def _cofactors(self, index: int, level: int) -> Tuple[int, int]:
        if self._level[index] == level:
            return self._low[index], self._high[index]
        return index, index

    # -- traversal -------------------------------------------------------------

    def reachable(self, roots: Iterable[int]) -> List[int]:
        """Non-terminal nodes reachable from ``roots``, children first."""
        order: List[int] = []
        seen: Set[int] = set()

        def visit(index: int) -> None:
            if index in seen or self.is_terminal(index):
                return
            seen.add(index)
            visit(self._low[index])
            visit(self._high[index])
            order.append(index)

        for root in roots:
            visit(root)
        return order

    # -- construction helpers ----------------------------------------------------

    def from_truth_table(self, bits: Sequence[int],
                         var_names: Sequence[str]) -> "BDD":
        """Build the function whose truth table is ``bits``.

        ``bits[i]`` is the output for the input assignment whose binary
        encoding is ``i``, with ``var_names[0]`` as the *most significant*
        bit.  Missing variables are declared in order.
        """
        n = len(var_names)
        if len(bits) != (1 << n):
            raise BDDError(
                f"truth table of {len(bits)} entries does not match "
                f"{n} variables (need {1 << n})")
        for name in var_names:
            if name not in self._var_index:
                self.add_variable(name)
        levels = [self._var_index[name] for name in var_names]
        if levels != sorted(levels):
            raise BDDError("var_names must respect the manager ordering")
        memo: Dict[Tuple[int, ...], int] = {}

        def build(segment: Tuple[int, ...], depth: int) -> int:
            if depth == n:
                return ONE_INDEX if segment[0] else ZERO_INDEX
            cached = memo.get(segment)
            if cached is not None:
                return cached
            half = len(segment) // 2
            # MSB-first: table index i has var_names[depth] = 1 exactly when
            # i falls in the upper half of the current segment.
            low = build(segment[:half], depth + 1)
            high = build(segment[half:], depth + 1)
            result = self._mk(levels[depth], low, high)
            memo[segment] = result
            return result

        return BDD(self, build(tuple(int(b) & 1 for b in bits), 0))


class BDD:
    """A function handle: a manager plus a node index."""

    __slots__ = ("manager", "index")

    def __init__(self, manager: Manager, index: int):
        self.manager = manager
        self.index = index

    # -- structure ----------------------------------------------------------

    @property
    def is_terminal(self) -> bool:
        return self.manager.is_terminal(self.index)

    @property
    def is_true(self) -> bool:
        return self.index == ONE_INDEX

    @property
    def is_false(self) -> bool:
        return self.index == ZERO_INDEX

    @property
    def var(self) -> str:
        """Top variable name (terminal nodes have no variable)."""
        if self.is_terminal:
            raise BDDError("terminal node has no variable")
        level, _, _ = self.manager.node(self.index)
        return self.manager.var_name(level)

    @property
    def low(self) -> "BDD":
        if self.is_terminal:
            raise BDDError("terminal node has no cofactors")
        _, low, _ = self.manager.node(self.index)
        return BDD(self.manager, low)

    @property
    def high(self) -> "BDD":
        if self.is_terminal:
            raise BDDError("terminal node has no cofactors")
        _, _, high = self.manager.node(self.index)
        return BDD(self.manager, high)

    def _coerce(self, other) -> "BDD":
        if isinstance(other, BDD):
            if other.manager is not self.manager:
                raise BDDError("cannot combine BDDs from different managers")
            return other
        if isinstance(other, (bool, int)):
            return self.manager.constant(bool(other))
        raise BDDError(f"cannot combine BDD with {type(other).__name__}")

    # -- operators ------------------------------------------------------------

    def __and__(self, other) -> "BDD":
        o = self._coerce(other)
        return BDD(self.manager, self.manager.ite(self.index, o.index, ZERO_INDEX))

    def __or__(self, other) -> "BDD":
        o = self._coerce(other)
        return BDD(self.manager, self.manager.ite(self.index, ONE_INDEX, o.index))

    def __xor__(self, other) -> "BDD":
        o = self._coerce(other)
        not_o = self.manager.ite(o.index, ZERO_INDEX, ONE_INDEX)
        return BDD(self.manager, self.manager.ite(self.index, not_o, o.index))

    def __invert__(self) -> "BDD":
        return BDD(self.manager, self.manager.ite(self.index, ZERO_INDEX, ONE_INDEX))

    __rand__ = __and__
    __ror__ = __or__
    __rxor__ = __xor__

    def ite(self, then_f, else_f) -> "BDD":
        """``self ? then_f : else_f``."""
        t = self._coerce(then_f)
        e = self._coerce(else_f)
        return BDD(self.manager, self.manager.ite(self.index, t.index, e.index))

    def equiv(self, other) -> bool:
        """Structural (= semantic, thanks to canonicity) equality."""
        return self._coerce(other).index == self.index

    def __eq__(self, other) -> bool:  # type: ignore[override]
        if isinstance(other, BDD):
            return self.manager is other.manager and self.index == other.index
        return NotImplemented

    def __hash__(self) -> int:
        return hash((id(self.manager), self.index))

    # -- queries ----------------------------------------------------------------

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        """Evaluate under a (complete for the support) assignment."""
        manager = self.manager
        index = self.index
        while not manager.is_terminal(index):
            level, low, high = manager.node(index)
            name = manager.var_name(level)
            try:
                value = assignment[name]
            except KeyError:
                raise BDDError(f"assignment missing variable {name!r}") from None
            index = high if value else low
        return index == ONE_INDEX

    def support(self) -> Set[str]:
        """Variables the function actually depends on."""
        names: Set[str] = set()
        for idx in self.manager.reachable([self.index]):
            level, _, _ = self.manager.node(idx)
            names.add(self.manager.var_name(level))
        return names

    def node_count(self) -> int:
        """Number of internal (non-terminal) nodes."""
        return len(self.manager.reachable([self.index]))

    def sat_count(self, n_vars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``n_vars`` variables."""
        manager = self.manager
        total_vars = n_vars if n_vars is not None else len(manager.variables)
        if total_vars < len(manager.variables):
            raise BDDError("n_vars smaller than the number of declared variables")
        memo: Dict[Tuple[int, int], int] = {}

        def count(index: int, level: int) -> int:
            """Satisfying assignments of the subfunction, over the
            remaining ``total_vars - level`` variables."""
            if index == ZERO_INDEX:
                return 0
            if index == ONE_INDEX:
                return 1 << (total_vars - level)
            key = (index, level)
            cached = memo.get(key)
            if cached is not None:
                return cached
            node_level, low, high = manager.node(index)
            skip = node_level - level
            below = count(low, node_level + 1) + count(high, node_level + 1)
            result = below << skip
            memo[key] = result
            return result

        return count(self.index, 0)

    def truth_table(self, var_names: Sequence[str]) -> List[int]:
        """Exhaustive evaluation, MSB-first over ``var_names``."""
        n = len(var_names)
        table: List[int] = []
        for i in range(1 << n):
            assignment = {
                name: bool((i >> (n - 1 - k)) & 1)
                for k, name in enumerate(var_names)
            }
            table.append(int(self.evaluate(assignment)))
        return table

    def __repr__(self) -> str:
        if self.is_false:
            return "BDD(FALSE)"
        if self.is_true:
            return "BDD(TRUE)"
        return f"BDD({self.var!r}@{self.index}, {self.node_count()} nodes)"


def build_function(manager: Manager, expr: Callable[..., "BDD"],
                   var_names: Sequence[str]) -> "BDD":
    """Apply ``expr`` to the projection functions of ``var_names``."""
    for name in var_names:
        if name not in manager._var_index:
            manager.add_variable(name)
    args = [manager.var(name) for name in var_names]
    return expr(*args)
