"""repro — a full-stack reproduction of PG-MCML (DAC 2011).

Cevrero et al., *Power-Gated MOS Current Mode Logic (PG-MCML): a Power
Aware DPA-Resistant Standard Cell Library*, DAC 2011.

The package rebuilds, in pure Python, every layer the paper's evaluation
rests on — from an EKV-based circuit simulator to a CPA attack harness:

=====================  ====================================================
``repro.spice``        SPICE-class analog simulator (DC + transient)
``repro.faultinject``  deterministic device-fault injection harness
``repro.tech``         generic 90 nm device models, corners, mismatch
``repro.bdd``          ROBDD engine (MCML networks, LUT synthesis)
``repro.cells``        CMOS / MCML / PG-MCML cell generators + libraries
``repro.netlist``      gate-level netlists, event-driven sim, STA, VCD/SDF
``repro.synth``        LUT mapping, fanout buffering, sleep-tree insertion
``repro.aes``          AES-128 + the reduced side-channel target
``repro.cpu``          OpenRISC-flavoured core with the ``l.sbox`` ISE
``repro.power``        block current models, gating schedules, probes
``repro.sca``          CPA / DPA attacks and evaluation metrics
``repro.experiments``  drivers for every table and figure of the paper
=====================  ====================================================

Quick start::

    from repro.cells import build_pg_mcml_library
    from repro.sca import AttackCampaign

    library = build_pg_mcml_library()
    campaign = AttackCampaign(library, key=0x2B)
    print(campaign.run().summary())     # -> "PGMCML: attack failed ..."
"""

__version__ = "1.0.0"

from . import errors, units

__all__ = ["errors", "units", "__version__"]
