"""Library serialisation: a JSON stand-in for Liberty/LEF.

Real flows exchange cell libraries as Liberty (timing/power) plus LEF
(geometry).  This module round-trips a :class:`Library` through a plain
JSON document carrying the same information — datasheet values, pin
lists resolved by function name, geometry, and power models — so
characterised libraries can be saved, diffed, versioned, and reloaded
without re-running SPICE.
"""

from __future__ import annotations

import json
from typing import Any, Dict, TextIO, Union

from ..errors import CellError
from ..tech import Technology, TECH90
from .cell import Cell, DelayModel, PowerModel
from .functions import function
from .library import Library

FORMAT_VERSION = 1


def cell_to_dict(cell: Cell) -> Dict[str, Any]:
    """One cell datasheet as plain data."""
    return {
        "name": cell.name,
        "function": cell.function.name,
        "style": cell.style,
        "sites": cell.sites,
        "area_um2": cell.area_um2,
        "input_cap": cell.input_cap,
        "drive": cell.drive,
        "source": cell.source,
        "pseudo": cell.pseudo,
        "delay": {
            "intrinsic": cell.delay_model.intrinsic,
            "drive_res": cell.delay_model.drive_res,
        },
        "power": {
            "style": cell.power.style,
            "leak": cell.power.leak,
            "energy_toggle": cell.power.energy_toggle,
            "iss": cell.power.iss,
            "residual_sigma": cell.power.residual_sigma,
            "sleep_leak": cell.power.sleep_leak,
            "wake_time": cell.power.wake_time,
        },
    }


def cell_from_dict(data: Dict[str, Any]) -> Cell:
    """Rebuild a cell datasheet; raises :class:`CellError` on bad data."""
    try:
        delay = DelayModel(intrinsic=float(data["delay"]["intrinsic"]),
                           drive_res=float(data["delay"]["drive_res"]))
        p = data["power"]
        power = PowerModel(
            style=p["style"], leak=float(p["leak"]),
            energy_toggle=float(p["energy_toggle"]), iss=float(p["iss"]),
            residual_sigma=float(p["residual_sigma"]),
            sleep_leak=float(p["sleep_leak"]),
            wake_time=float(p["wake_time"]))
        return Cell(
            name=data["name"], function=function(data["function"]),
            style=data["style"], sites=int(data["sites"]),
            area_um2=float(data["area_um2"]),
            input_cap=float(data["input_cap"]),
            delay_model=delay, power=power,
            drive=float(data.get("drive", 1.0)),
            source=data.get("source", "loaded"),
            pseudo=bool(data.get("pseudo", False)))
    except KeyError as exc:
        raise CellError(f"cell record missing field {exc}") from None


def library_to_dict(library: Library) -> Dict[str, Any]:
    """The whole library as plain data."""
    return {
        "format_version": FORMAT_VERSION,
        "name": library.name,
        "style": library.style,
        "technology": library.tech.name,
        "vdd": library.tech.vdd,
        "cells": [cell_to_dict(c)
                  for c in sorted(library.cells.values(),
                                  key=lambda c: c.name)],
    }


def library_from_dict(data: Dict[str, Any],
                      tech: Technology = TECH90) -> Library:
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise CellError(
            f"unsupported library format version {version!r} "
            f"(expected {FORMAT_VERSION})")
    cells = {}
    for record in data["cells"]:
        cell = cell_from_dict(record)
        if cell.name in cells:
            raise CellError(f"duplicate cell {cell.name!r} in library file")
        cells[cell.name] = cell
    return Library(name=data["name"], style=data["style"], cells=cells,
                   tech=tech)


def save_library(stream_or_path: Union[str, TextIO],
                 library: Library) -> None:
    """Write a library as JSON (path or open text stream)."""
    data = library_to_dict(library)
    if isinstance(stream_or_path, str):
        with open(stream_or_path, "w", encoding="utf-8") as stream:
            json.dump(data, stream, indent=2, sort_keys=True)
    else:
        json.dump(data, stream_or_path, indent=2, sort_keys=True)


def load_library(stream_or_path: Union[str, TextIO],
                 tech: Technology = TECH90) -> Library:
    """Read a library previously written by :func:`save_library`."""
    if isinstance(stream_or_path, str):
        with open(stream_or_path, "r", encoding="utf-8") as stream:
            data = json.load(stream)
    else:
        data = json.load(stream_or_path)
    return library_from_dict(data, tech)
