"""Bias-point solving for MCML cells.

§3: "Vp, Vn, and sizing are the design parameters which determine the
performances of MCML circuits."  Given a target tail current and output
swing, this module finds the Vn bias voltage and the PMOS load width by
bisection against DC solves of a replica buffer cell — the software
equivalent of the bias-generation loop an MCML chip carries on-die.

Solutions are cached per (Iss, swing, technology, gated) so repeated
characterisation runs pay the cost once.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from ..errors import CharacterizationError
from ..spice import Circuit, solve_dc
from ..tech import Technology, TECH90
from .functions import function
from .mcml import McmlCellGenerator, McmlSizing
from .pgmcml import PgMcmlCellGenerator


@dataclass(frozen=True)
class BiasPoint:
    """A solved MCML bias point."""

    sizing: McmlSizing
    iss_target: float
    swing_target: float
    iss_measured: float
    swing_measured: float
    gated: bool

    @property
    def load_resistance(self) -> float:
        """Effective load resistance at the solved point."""
        return self.swing_measured / max(self.iss_measured, 1e-12)


_CACHE: Dict[Tuple[float, float, str, bool], BiasPoint] = {}


def _replica(sizing: McmlSizing, tech: Technology, gated: bool) -> Tuple[
        Circuit, str, str]:
    """A steered buffer replica: inp high, inn low; returns (ckt, outp, outn)."""
    gen_cls = PgMcmlCellGenerator if gated else McmlCellGenerator
    gen = gen_cls(tech, sizing)
    cell = gen.build(function("BUF"))
    ckt = cell.circuit
    ckt.v("vdd", cell.vdd_net, tech.vdd)
    ckt.v("vvn", cell.vn_net, sizing.vn)
    ckt.v("vvp", cell.vp_net, sizing.vp)
    inp, inn = cell.input_nets["A"]
    ckt.v("vinp", inp, sizing.input_high(tech))
    ckt.v("vinn", inn, sizing.input_low(tech))
    if gated:
        ckt.v("vsleep", cell.sleep_net, tech.vdd)  # active
    out_p, out_n = cell.output_nets["Y"]
    return ckt, out_p, out_n


def _measure(sizing: McmlSizing, tech: Technology, gated: bool) -> Tuple[
        float, float]:
    """(supply current, output swing) of the replica at DC."""
    ckt, out_p, out_n = _replica(sizing, tech, gated)
    op = solve_dc(ckt)
    iss = op.current("vdd")
    swing = abs(op[out_p] - op[out_n])
    return iss, swing


def _scan_bisect(candidates, err, tol: float) -> float:
    """Find a zero of ``err`` along a 1-D sweep that may be non-monotonic.

    Evaluates the candidates in order, bisects inside the first
    sign-change bracket; falls back to the candidate with the smallest
    |error| when no bracket exists.
    """
    values = list(candidates)
    errors = [err(v) for v in values]
    for (v0, e0), (v1, e1) in zip(zip(values, errors),
                                  zip(values[1:], errors[1:])):
        if e0 == 0.0:
            return v0
        if e0 * e1 <= 0.0:
            return _bisect(v0, v1, err, tol)
    best = min(range(len(values)), key=lambda i: abs(errors[i]))
    return values[best]


def _bisect(lo: float, hi: float, err, tol: float, iters: int = 28) -> float:
    """Find a zero of the monotonic function ``err`` on [lo, hi]."""
    f_lo = err(lo)
    f_hi = err(hi)
    if f_lo == 0.0:
        return lo
    if f_hi == 0.0:
        return hi
    if f_lo * f_hi > 0.0:
        # No bracket: return the endpoint with the smaller error.
        return lo if abs(f_lo) < abs(f_hi) else hi
    for _ in range(iters):
        mid = 0.5 * (lo + hi)
        f_mid = err(mid)
        if abs(f_mid) < tol:
            return mid
        if f_lo * f_mid <= 0.0:
            hi, f_hi = mid, f_mid
        else:
            lo, f_lo = mid, f_mid
    return 0.5 * (lo + hi)


def solve_bias(iss: float, swing: float = 0.40, tech: Technology = TECH90,
               gated: bool = False, outer_iterations: int = 3) -> BiasPoint:
    """Solve Vn and load width for a target (Iss, swing).

    Alternates two bisections: Vn against the measured supply current
    (tail in saturation -> monotonic) and the load width against the
    measured swing (wider load -> lower resistance -> smaller swing).
    """
    if iss <= 0.0:
        raise CharacterizationError("target tail current must be positive")
    if not 0.0 < swing < tech.vdd:
        raise CharacterizationError("target swing must be within the supply")
    key = (round(iss, 12), round(swing, 6), tech.name, gated)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached

    sizing = McmlSizing.for_current(iss, swing, tech)
    tail = tech.flavor(sizing.tail_flavor)
    vn_lo, vn_hi = tail.vt0 + 0.02, min(tech.vdd, tail.vt0 + 0.75)
    w_lo = tech.flavor(sizing.load_flavor).wmin
    w_hi = max(sizing.w_load * 20.0, w_lo * 40.0)

    for _ in range(outer_iterations):
        def current_error(vn: float) -> float:
            test = replace(sizing, vn=vn)
            measured, _ = _measure(test, tech, gated)
            return measured - iss

        vn = _bisect(vn_lo, vn_hi, current_error, tol=iss * 1e-3)
        sizing = replace(sizing, vn=vn)

        # Swing vs load strength is non-monotonic: a too-resistive load
        # lets even the quiet rail collapse, so a plain bisection can
        # miss its bracket.  Scan from the widest (stiffest) load toward
        # the narrowest and bisect inside the first sign change.
        def swing_error(w_load: float) -> float:
            test = replace(sizing, w_load=w_load)
            _, measured = _measure(test, tech, gated)
            # Narrower load -> larger swing; scanning wide->narrow makes
            # the error start positive and fall through zero.
            return swing - measured

        n_scan = 17
        widths = [w_hi * (w_lo / w_hi) ** (k / (n_scan - 1))
                  for k in range(n_scan)]
        w_load = _scan_bisect(widths, swing_error, tol=swing * 1e-3)
        sizing = replace(sizing, w_load=w_load)

        # At small tail currents even the minimum-width load is too
        # conductive: weaken it by raising the load gate bias Vp (the
        # second MCML design knob of §3) instead.
        _, swing_now = _measure(sizing, tech, gated)
        if swing_now < 0.9 * swing and w_load <= w_lo * 1.01:
            def swing_error_vp(vp: float) -> float:
                test = replace(sizing, vp=vp)
                _, measured = _measure(test, tech, gated)
                return swing - measured

            vp = _scan_bisect([0.1 * k for k in range(9)], swing_error_vp,
                              tol=swing * 1e-3)
            sizing = replace(sizing, vp=vp)

    iss_measured, swing_measured = _measure(sizing, tech, gated)
    if abs(iss_measured - iss) > 0.15 * iss:
        raise CharacterizationError(
            f"bias solve missed the current target: wanted {iss:.3g} A, "
            f"got {iss_measured:.3g} A")
    if abs(swing_measured - swing) > 0.15 * swing:
        raise CharacterizationError(
            f"bias solve missed the swing target: wanted {swing:.3g} V, "
            f"got {swing_measured:.3g} V")
    point = BiasPoint(sizing=sizing, iss_target=iss, swing_target=swing,
                      iss_measured=iss_measured,
                      swing_measured=swing_measured, gated=gated)
    _CACHE[key] = point
    return point
