"""Static CMOS reference gates at transistor level.

The paper's baseline is a commercial 90 nm CMOS library.  For the
comparisons that need real electrical behaviour (delay cross-checks,
leakage, and the data-dependent supply current that makes CMOS attackable
in Fig. 6) we generate the classic complementary topologies: INV, NAND,
NOR, and a transmission-gate MUX2.  Everything larger is composed from
these during synthesis, exactly as a commercial library's compound cells
would be.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import CellError
from ..spice import Circuit
from ..spice.erc import erc_enabled, erc_preflight
from ..tech import Technology, TECH90
from ..units import um
from .functions import CellFunction, function


@dataclass(frozen=True)
class CmosSizing:
    """Unit device sizes (drive 1); PMOS widened for mobility."""

    wn: float = um(0.30)
    wp: float = um(0.60)
    l: float = um(0.10)
    nmos_flavor: str = "nmos_lvt"
    pmos_flavor: str = "pmos_lvt"

    def scaled(self, drive: float) -> "CmosSizing":
        if drive <= 0:
            raise CellError("drive strength must be positive")
        return CmosSizing(self.wn * drive, self.wp * drive, self.l,
                          self.nmos_flavor, self.pmos_flavor)


@dataclass
class CmosCellCircuit:
    """A generated CMOS cell netlist plus pin bindings."""

    circuit: Circuit
    function: CellFunction
    input_nets: Dict[str, str]
    output_nets: Dict[str, str]
    vdd_net: str


class CmosCellGenerator:
    """Generates static CMOS gate netlists."""

    style = "cmos"

    def __init__(self, tech: Technology = TECH90,
                 sizing: Optional[CmosSizing] = None):
        self.tech = tech
        self.sizing = sizing or CmosSizing()

    def build(self, fn_name: str, circuit: Optional[Circuit] = None,
              prefix: str = "", load_cap: float = 0.0,
              erc: Optional[bool] = None) -> CmosCellCircuit:
        fn = function(fn_name)
        own = circuit is None
        ckt = circuit or Circuit(f"cmos_{fn_name.lower()}")
        p = "" if own and not prefix else f"{prefix}{fn_name.lower()}_"
        vdd = "vdd" if own else f"{p}vdd"

        builders = {
            "INV": self._inv,
            "BUF": self._buf,
            "NAND2": self._nand,
            "NAND3": self._nand,
            "NAND4": self._nand,
            "NOR2": self._nor,
            "NOR3": self._nor,
            "MUX2": self._mux2,
        }
        try:
            builder = builders[fn_name]
        except KeyError:
            raise CellError(
                f"no transistor-level CMOS template for {fn_name!r}; "
                f"compose it from INV/NAND/NOR/MUX2") from None
        input_nets, output_nets = builder(ckt, fn, p, vdd)

        if load_cap > 0.0:
            for out, net in output_nets.items():
                ckt.capacitor(f"{p}cl_{out.lower()}", net, "0", load_cap)
        cell = CmosCellCircuit(ckt, fn, input_nets, output_nets, vdd)
        if own and (erc if erc is not None else erc_enabled()):
            self.erc_check(cell)
        return cell

    def erc_check(self, cell: CmosCellCircuit, telemetry=None):
        """ERC-preflight ``cell`` (raises :class:`ErcError` on violations)."""
        return erc_preflight(cell.circuit, rails=[cell.vdd_net],
                             style=self.style,
                             ports=list(cell.input_nets.values())
                             + list(cell.output_nets.values()),
                             telemetry=telemetry)

    # -- device helpers --------------------------------------------------------

    def _nmos(self, ckt: Circuit, name: str, d: str, g: str, s: str,
              width_scale: float = 1.0) -> None:
        sz = self.sizing
        ckt.mosfet(name, d, g, s, "0", self.tech.flavor(sz.nmos_flavor),
                   w=sz.wn * width_scale, l=sz.l,
                   temp_vt=self.tech.vt_thermal)

    def _pmos(self, ckt: Circuit, name: str, d: str, g: str, s: str,
              vdd: str, width_scale: float = 1.0) -> None:
        sz = self.sizing
        ckt.mosfet(name, d, g, s, vdd, self.tech.flavor(sz.pmos_flavor),
                   w=sz.wp * width_scale, l=sz.l,
                   temp_vt=self.tech.vt_thermal)

    # -- topologies --------------------------------------------------------------

    def _inv(self, ckt: Circuit, fn: CellFunction, p: str, vdd: str):
        a, y = f"{p}a", f"{p}y"
        self._nmos(ckt, f"{p}mn", y, a, "0")
        self._pmos(ckt, f"{p}mp", y, a, vdd, vdd)
        return {"A": a}, {"Y": y}

    def _buf(self, ckt: Circuit, fn: CellFunction, p: str, vdd: str):
        a, mid, y = f"{p}a", f"{p}mid", f"{p}y"
        self._nmos(ckt, f"{p}mn1", mid, a, "0")
        self._pmos(ckt, f"{p}mp1", mid, a, vdd, vdd)
        self._nmos(ckt, f"{p}mn2", y, mid, "0", 2.0)
        self._pmos(ckt, f"{p}mp2", y, mid, vdd, vdd, 2.0)
        return {"A": a}, {"Y": y}

    def _nand(self, ckt: Circuit, fn: CellFunction, p: str, vdd: str):
        n = len(fn.inputs)
        nets = {pin: f"{p}{pin.lower()}" for pin in fn.inputs}
        y = f"{p}y"
        # Series NMOS stack, widened to compensate the stack.
        node = "0"
        for i, pin in enumerate(reversed(fn.inputs)):
            drain = y if i == n - 1 else f"{p}sn{i}"
            self._nmos(ckt, f"{p}mn{i}", drain, nets[pin], node, float(n))
            node = drain
        for i, pin in enumerate(fn.inputs):
            self._pmos(ckt, f"{p}mp{i}", y, nets[pin], vdd, vdd)
        return nets, {"Y": y}

    def _nor(self, ckt: Circuit, fn: CellFunction, p: str, vdd: str):
        n = len(fn.inputs)
        nets = {pin: f"{p}{pin.lower()}" for pin in fn.inputs}
        y = f"{p}y"
        node = vdd
        for i, pin in enumerate(fn.inputs):
            drain = y if i == n - 1 else f"{p}sp{i}"
            self._pmos(ckt, f"{p}mp{i}", drain, nets[pin], node, vdd, float(n))
            node = drain
        for i, pin in enumerate(fn.inputs):
            self._nmos(ckt, f"{p}mn{i}", y, nets[pin], "0")
        return nets, {"Y": y}

    def _mux2(self, ckt: Circuit, fn: CellFunction, p: str, vdd: str):
        s, d0, d1, y = f"{p}s", f"{p}d0", f"{p}d1", f"{p}y"
        sb = f"{p}sb"
        # Select inverter.
        self._nmos(ckt, f"{p}mni", sb, s, "0")
        self._pmos(ckt, f"{p}mpi", sb, s, vdd, vdd)
        # Transmission gates onto an internal node, then output inverter
        # pair to restore drive (commercial MUX cells buffer the output).
        mid = f"{p}mid"
        self._nmos(ckt, f"{p}mn0", mid, sb, d0)
        self._pmos(ckt, f"{p}mp0", mid, s, d0, vdd)
        self._nmos(ckt, f"{p}mn1", mid, s, d1)
        self._pmos(ckt, f"{p}mp1", mid, sb, d1, vdd)
        inv1 = f"{p}yb"
        self._nmos(ckt, f"{p}mn2", inv1, mid, "0")
        self._pmos(ckt, f"{p}mp2", inv1, mid, vdd, vdd)
        self._nmos(ckt, f"{p}mn3", y, inv1, "0", 2.0)
        self._pmos(ckt, f"{p}mp3", y, inv1, vdd, vdd, 2.0)
        return {"S": s, "D0": d0, "D1": d1}, {"Y": y}

    # -- electrical estimates -------------------------------------------------------

    def input_capacitance(self) -> float:
        """Gate capacitance of one unit inverter input."""
        sz = self.sizing
        n = self.tech.flavor(sz.nmos_flavor)
        pm = self.tech.flavor(sz.pmos_flavor)
        cap_n = n.cox * sz.wn * sz.l + 2 * n.cov * sz.wn
        cap_p = pm.cox * sz.wp * sz.l + 2 * pm.cov * sz.wp
        return cap_n + cap_p
