"""Cell characterisation by transistor-level simulation.

Reproduces what the authors did with HSPICE on every library cell:
stimulate one input with a differential pulse while holding the others at
sensitising values, simulate the transient, and measure the differential
propagation delay, output swing, and supply current — plus DC leakage in
active and sleep modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import CharacterizationError
from ..spice import (
    DC,
    Pulse,
    differential_delay,
)
# Characterisation goes through the backend seam: the dispatch pair
# resolves to the internal engine by default (byte-identical call) and
# to an external simulator under REPRO_SPICE_BACKEND / --backend.
from ..spice.backend.dispatch import run_transient, solve_dc
from ..tech import Technology, TECH90
from ..units import ns, ps
from .functions import CellFunction
from .mcml import McmlCellGenerator


@dataclass(frozen=True)
class CellMeasurement:
    """What one characterisation run produced."""

    cell_name: str
    delay: float
    swing: float
    iss: float
    toggled_pin: str
    sleep_leak: Optional[float] = None

    def __repr__(self) -> str:
        base = (f"CellMeasurement({self.cell_name}: d={self.delay * 1e12:.4g}ps, "
                f"swing={self.swing:.3g}V, iss={self.iss * 1e6:.4g}uA")
        if self.sleep_leak is not None:
            base += f", sleep={self.sleep_leak * 1e9:.3g}nA"
        return base + ")"


def sensitising_assignment(fn: CellFunction) -> Tuple[str, Dict[str, bool], str]:
    """Find a pin and side-input assignment that toggles an output.

    Returns ``(pin, side_values, output)`` such that flipping ``pin``
    under ``side_values`` flips ``output`` — the boolean-difference
    condition every delay measurement needs.
    """
    if fn.sequential:
        raise CharacterizationError(
            f"{fn.name}: use latch-specific stimuli for sequential cells")
    others_of = {pin: [x for x in fn.inputs if x != pin] for pin in fn.inputs}
    for pin in fn.inputs:
        others = others_of[pin]
        for code in range(1 << len(others)):
            side = {
                other: bool((code >> k) & 1)
                for k, other in enumerate(others)
            }
            low = fn.evaluate({**side, pin: False})
            high = fn.evaluate({**side, pin: True})
            for out in fn.outputs:
                if low[out] != high[out]:
                    return pin, side, out
    raise CharacterizationError(
        f"{fn.name}: no input toggles any output (constant function?)")


#: Routing capacitance per output rail: a stub plus one fat-wire branch
#: per fanout destination.  Unlike the destination gate capacitance this
#: does NOT scale with the cell's own bias current, which is what makes
#: the Fig. 3 delay saturate at high Iss.
WIRE_CAP_BASE = 0.8e-15
WIRE_CAP_PER_FANOUT = 0.7e-15


def characterize_mcml_cell(fn: CellFunction, generator: McmlCellGenerator,
                           fanout: int = 1, tech: Technology = TECH90,
                           dt: float = ps(0.5),
                           window: float = ns(0.8)) -> CellMeasurement:
    """Measure delay/swing/current of a generated MCML or PG-MCML cell.

    The toggling input gets a differential pulse; each output rail is
    loaded with ``fanout`` buffer inputs plus the routing capacitance.
    """
    pin, side, out = sensitising_assignment(fn)
    sizing = generator.sizing
    load = (fanout * generator.input_capacitance()
            + WIRE_CAP_BASE + WIRE_CAP_PER_FANOUT * fanout)
    cell = generator.build(fn, load_cap=load)
    ckt = cell.circuit

    vhi, vlo = sizing.input_high(tech), sizing.input_low(tech)
    ckt.v("vdd", cell.vdd_net, tech.vdd)
    ckt.v("vvn", cell.vn_net, sizing.vn)
    ckt.v("vvp", cell.vp_net, sizing.vp)
    if cell.has_sleep:
        ckt.v("vsleep", cell.sleep_net, tech.vdd)

    edge = ps(10)
    half = window / 2
    in_p, in_n = cell.input_nets[pin]
    ckt.v("vstim_p", in_p, Pulse(vlo, vhi, half, edge, edge, window, 0.0))
    ckt.v("vstim_n", in_n, Pulse(vhi, vlo, half, edge, edge, window, 0.0))
    for other, value in side.items():
        o_p, o_n = cell.input_nets[other]
        ckt.v(f"vside_{other.lower()}_p", o_p, DC(vhi if value else vlo))
        ckt.v(f"vside_{other.lower()}_n", o_n, DC(vlo if value else vhi))

    result = run_transient(ckt, tstop=window, dt=dt,
                           record=[in_p, in_n, *cell.output_nets[out],
                                   cell.vdd_net])
    out_p, out_n = cell.output_nets[out]
    delay = differential_delay(result, in_p, in_n, out_p, out_n,
                               after=half * 0.9)
    diff = result.differential(out_p, out_n)
    swing = diff.settle_value(0.1)
    iss = result.current("vdd").average(t0=window * 0.75)
    return CellMeasurement(cell_name=fn.name, delay=delay, swing=abs(swing),
                           iss=iss, toggled_pin=pin)


def characterize_mcml_dff(generator: McmlCellGenerator,
                          tech: Technology = TECH90, dt: float = ps(0.5),
                          window: float = ns(1.6)) -> CellMeasurement:
    """Clock-to-Q measurement of the master-slave CML flip-flop.

    D is held high throughout; CK rises mid-window; the measurement is
    the differential CK crossing to the differential Q crossing.
    """
    from .functions import function  # local import avoids a cycle

    fn = function("DFF")
    sizing = generator.sizing
    load = generator.input_capacitance()
    cell = generator.build(fn, load_cap=load)
    ckt = cell.circuit

    vhi, vlo = sizing.input_high(tech), sizing.input_low(tech)
    ckt.v("vdd", cell.vdd_net, tech.vdd)
    ckt.v("vvn", cell.vn_net, sizing.vn)
    ckt.v("vvp", cell.vp_net, sizing.vp)
    if cell.has_sleep:
        ckt.v("vsleep", cell.sleep_net, tech.vdd)

    d_p, d_n = cell.input_nets["D"]
    ckt.v("vd_p", d_p, DC(vhi))
    ckt.v("vd_n", d_n, DC(vlo))
    edge = ps(10)
    half = window / 2
    ck_p, ck_n = cell.input_nets["CK"]
    ckt.v("vck_p", ck_p, Pulse(vlo, vhi, half, edge, edge, window, 0.0))
    ckt.v("vck_n", ck_n, Pulse(vhi, vlo, half, edge, edge, window, 0.0))

    q_p, q_n = cell.output_nets["Q"]
    result = run_transient(ckt, tstop=window, dt=dt,
                           record=[ck_p, ck_n, q_p, q_n, cell.vdd_net])
    delay = differential_delay(result, ck_p, ck_n, q_p, q_n,
                               after=half * 0.9)
    swing = abs(result.differential(q_p, q_n).settle_value(0.1))
    iss = result.current("vdd").average(t0=window * 0.75)
    return CellMeasurement(cell_name="DFF", delay=delay, swing=swing,
                           iss=iss, toggled_pin="CK")


def measure_leakage(fn: CellFunction, generator: McmlCellGenerator,
                    asleep: bool, tech: Technology = TECH90) -> float:
    """DC supply current with static inputs, optionally in sleep mode."""
    sizing = generator.sizing
    cell = generator.build(fn)
    ckt = cell.circuit
    ckt.v("vdd", cell.vdd_net, tech.vdd)
    ckt.v("vvn", cell.vn_net, sizing.vn)
    ckt.v("vvp", cell.vp_net, sizing.vp)
    if cell.has_sleep:
        ckt.v("vsleep", cell.sleep_net, 0.0 if asleep else tech.vdd)
    elif asleep:
        raise CharacterizationError(
            f"{fn.name}: conventional MCML has no sleep mode")
    vhi, vlo = sizing.input_high(tech), sizing.input_low(tech)
    for pin in fn.inputs:
        in_p, in_n = cell.input_nets[pin]
        ckt.v(f"vin_{pin.lower()}_p", in_p, DC(vhi))
        ckt.v(f"vin_{pin.lower()}_n", in_n, DC(vlo))
    op = solve_dc(ckt)
    return op.current("vdd")
