"""WDDL: wave dynamic differential logic (Tiri & Verbauwhede, DATE'04).

The fourth library style under comparison — the *other* classic
DPA-countermeasure family.  Where MCML flattens the supply current with
a constant tail, WDDL flattens the *switching count*: every signal is a
complementary rail pair ``(s_t, s_f)`` built from positive-monotonic
static CMOS gates.  Each clock cycle has two phases:

* **precharge** — all primary rails are driven to 0; because every gate
  is positive monotonic, the all-zero wave propagates and discharges
  every internal rail (this is the :meth:`LogicSimulator.reset` state);
* **evaluate** — the true inputs are launched on one rail of each pair;
  exactly one rail of every pair in the circuit charges, whatever the
  data, so the number of 0->1 transitions per cycle is constant.

What remains as a side channel is *which* rail of each pair charges:
the true and false rails never have perfectly equal load capacitance
(routing mismatch), so the evaluation charge carries a small
data-dependent imbalance.  That imbalance — not a toggle count — is
WDDL's residual leakage, and it is what places WDDL between plain CMOS
and MCML on the attack-resistance frontier the campaign matrix maps.

Transistor level, a WDDL cell is two complementary CMOS networks (e.g.
AND2 = NAND+INV on the true rails, NOR+INV on the false rails), so the
generator here composes device primitives from
:class:`~repro.cells.cmos.CmosCellGenerator` and the ERC preflight runs
under the plain CMOS rules.  Inversion is a free rail swap, exactly as
in MCML — the mapper's RAILSWAP pseudo cell applies unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import CellError
from ..spice import Circuit
from ..spice.erc import erc_enabled, erc_preflight
from ..tech import Technology, TECH90
from ..units import ps
from .cell import Cell, DelayModel, PowerModel
from .cmos import CmosCellGenerator, CmosSizing
from .functions import CellFunction, function
from .layout import LayoutModel, SITE_COUNTS_WDDL
from .library import (
    CMOS_DRIVE_RES,
    CMOS_ENERGY_BASE_CAP,
    CMOS_ENERGY_SITE_CAP,
    CMOS_INPUT_CAP,
    CMOS_LEAK_PER_SITE,
    Library,
    _railswap_cell,
    _tie_cell,
)

#: Per-cell delays (seconds): compound gate + output inverter per rail,
#: both rails in parallel, on the CMOS reference device sizes.
WDDL_DELAYS: Dict[str, float] = {
    "BUF": ps(24.0),
    "AND2": ps(28.0),
    "OR2": ps(30.0),
    "XOR2": ps(34.0),
    "MUX2": ps(36.0),
}

#: Sigma of the true/false rail load-capacitance mismatch as a fraction
#: of the mean evaluation charge — the entire first-order leakage a
#: WDDL gate has left.  0.1 % models the "fat wire" matched-pair
#: routing discipline; it places WDDL where the literature found it:
#: measurably harder than CMOS for first-order CPA (roughly 2-3x the
#: MTD on the reduced-AES target, sub-quantisation per-gate amplitude)
#: but still detectable by TVLA and still broken with budget — while
#: MCML/PG-MCML stay unbroken.
WDDL_IMBALANCE_FRACTION = 0.001

#: The functionally complete WDDL cell set (AND/OR/XOR/MUX + buffer;
#: inversion is a free rail swap).
WDDL_CELL_NAMES: Tuple[str, ...] = ("BUF", "AND2", "OR2", "XOR2", "MUX2")


@dataclass
class WddlCellCircuit:
    """A generated dual-rail cell netlist plus per-rail pin bindings."""

    circuit: Circuit
    function: CellFunction
    #: logical pin -> (true-rail net, false-rail net)
    input_rails: Dict[str, Tuple[str, str]]
    output_rails: Dict[str, Tuple[str, str]]
    vdd_net: str


class WddlCellGenerator:
    """Generates dual-rail WDDL gate netlists from CMOS primitives."""

    style = "wddl"

    def __init__(self, tech: Technology = TECH90,
                 sizing: Optional[CmosSizing] = None):
        self.tech = tech
        self.cmos = CmosCellGenerator(tech, sizing)

    def build(self, fn_name: str, circuit: Optional[Circuit] = None,
              prefix: str = "", erc: Optional[bool] = None
              ) -> WddlCellCircuit:
        fn = function(fn_name)
        own = circuit is None
        ckt = circuit or Circuit(f"wddl_{fn_name.lower()}")
        p = "" if own and not prefix else f"{prefix}{fn_name.lower()}_"
        vdd = "vdd" if own else f"{p}vdd"

        builders = {
            "BUF": self._buf,
            "AND2": self._and2,
            "OR2": self._or2,
            "XOR2": self._xor2,
            "MUX2": self._mux2,
        }
        try:
            builder = builders[fn_name]
        except KeyError:
            raise CellError(
                f"no WDDL template for {fn_name!r}; the dual-rail set is "
                f"{sorted(builders)} (inversion is a free rail swap)"
            ) from None
        rails = {pin: (f"{p}{pin.lower()}_t", f"{p}{pin.lower()}_f")
                 for pin in fn.inputs}
        out_rails = builder(ckt, rails, p, vdd)
        cell = WddlCellCircuit(ckt, fn, rails, out_rails, vdd)
        if own and (erc if erc is not None else erc_enabled()):
            self.erc_check(cell)
        return cell

    def erc_check(self, cell: WddlCellCircuit, telemetry=None):
        """ERC-preflight under the CMOS rules (that is what WDDL is)."""
        ports = [net for pair in cell.input_rails.values() for net in pair]
        ports += [net for pair in cell.output_rails.values() for net in pair]
        return erc_preflight(cell.circuit, rails=[cell.vdd_net],
                             style="cmos", ports=ports,
                             telemetry=telemetry)

    # -- gate-level helpers (device emission via the CMOS generator) ----------

    def _inv(self, ckt, p: str, tag: str, a: str, y: str, vdd: str,
             scale: float = 1.0) -> None:
        self.cmos._nmos(ckt, f"{p}mn_{tag}", y, a, "0", scale)
        self.cmos._pmos(ckt, f"{p}mp_{tag}", y, a, vdd, vdd, scale)

    def _nand2(self, ckt, p: str, tag: str, a: str, b: str, y: str,
               vdd: str) -> None:
        mid = f"{p}s_{tag}"
        self.cmos._nmos(ckt, f"{p}mn0_{tag}", mid, b, "0", 2.0)
        self.cmos._nmos(ckt, f"{p}mn1_{tag}", y, a, mid, 2.0)
        self.cmos._pmos(ckt, f"{p}mp0_{tag}", y, a, vdd, vdd)
        self.cmos._pmos(ckt, f"{p}mp1_{tag}", y, b, vdd, vdd)

    def _nor2(self, ckt, p: str, tag: str, a: str, b: str, y: str,
              vdd: str) -> None:
        mid = f"{p}s_{tag}"
        self.cmos._pmos(ckt, f"{p}mp0_{tag}", mid, a, vdd, vdd, 2.0)
        self.cmos._pmos(ckt, f"{p}mp1_{tag}", y, b, mid, vdd, 2.0)
        self.cmos._nmos(ckt, f"{p}mn0_{tag}", y, a, "0")
        self.cmos._nmos(ckt, f"{p}mn1_{tag}", y, b, "0")

    def _aoi22(self, ckt, p: str, tag: str, a: str, b: str, c: str,
               d: str, y: str, vdd: str) -> None:
        """y = NOT(a AND b OR c AND d) — one complex gate per rail."""
        s1, s2 = f"{p}s1_{tag}", f"{p}s2_{tag}"
        self.cmos._nmos(ckt, f"{p}mn0_{tag}", s1, b, "0", 2.0)
        self.cmos._nmos(ckt, f"{p}mn1_{tag}", y, a, s1, 2.0)
        self.cmos._nmos(ckt, f"{p}mn2_{tag}", s2, d, "0", 2.0)
        self.cmos._nmos(ckt, f"{p}mn3_{tag}", y, c, s2, 2.0)
        t = f"{p}t_{tag}"
        self.cmos._pmos(ckt, f"{p}mp0_{tag}", t, a, vdd, vdd, 2.0)
        self.cmos._pmos(ckt, f"{p}mp1_{tag}", t, b, vdd, vdd, 2.0)
        self.cmos._pmos(ckt, f"{p}mp2_{tag}", y, c, t, vdd, 2.0)
        self.cmos._pmos(ckt, f"{p}mp3_{tag}", y, d, t, vdd, 2.0)

    # -- dual-rail topologies -------------------------------------------------

    def _buf(self, ckt, rails, p: str, vdd: str):
        (a_t, a_f) = rails["A"]
        y_t, y_f = f"{p}y_t", f"{p}y_f"
        for tag, a, y in (("t", a_t, y_t), ("f", a_f, y_f)):
            mid = f"{p}m_{tag}"
            self._inv(ckt, p, f"{tag}0", a, mid, vdd)
            self._inv(ckt, p, f"{tag}1", mid, y, vdd, 2.0)
        return {"Y": (y_t, y_f)}

    def _and2(self, ckt, rails, p: str, vdd: str):
        (a_t, a_f), (b_t, b_f) = rails["A"], rails["B"]
        y_t, y_f = f"{p}y_t", f"{p}y_f"
        nt, nf = f"{p}n_t", f"{p}n_f"
        self._nand2(ckt, p, "t", a_t, b_t, nt, vdd)   # true: AND(at, bt)
        self._inv(ckt, p, "t", nt, y_t, vdd, 2.0)
        self._nor2(ckt, p, "f", a_f, b_f, nf, vdd)    # false: OR(af, bf)
        self._inv(ckt, p, "f", nf, y_f, vdd, 2.0)
        return {"Y": (y_t, y_f)}

    def _or2(self, ckt, rails, p: str, vdd: str):
        (a_t, a_f), (b_t, b_f) = rails["A"], rails["B"]
        y_t, y_f = f"{p}y_t", f"{p}y_f"
        nt, nf = f"{p}n_t", f"{p}n_f"
        self._nor2(ckt, p, "t", a_t, b_t, nt, vdd)    # true: OR(at, bt)
        self._inv(ckt, p, "t", nt, y_t, vdd, 2.0)
        self._nand2(ckt, p, "f", a_f, b_f, nf, vdd)   # false: AND(af, bf)
        self._inv(ckt, p, "f", nf, y_f, vdd, 2.0)
        return {"Y": (y_t, y_f)}

    def _xor2(self, ckt, rails, p: str, vdd: str):
        (a_t, a_f), (b_t, b_f) = rails["A"], rails["B"]
        y_t, y_f = f"{p}y_t", f"{p}y_f"
        nt, nf = f"{p}n_t", f"{p}n_f"
        # true: (at AND bf) OR (af AND bt); false: (at AND bt) OR (af AND bf)
        self._aoi22(ckt, p, "t", a_t, b_f, a_f, b_t, nt, vdd)
        self._inv(ckt, p, "t", nt, y_t, vdd, 2.0)
        self._aoi22(ckt, p, "f", a_t, b_t, a_f, b_f, nf, vdd)
        self._inv(ckt, p, "f", nf, y_f, vdd, 2.0)
        return {"Y": (y_t, y_f)}

    def _mux2(self, ckt, rails, p: str, vdd: str):
        (s_t, s_f) = rails["S"]
        (d0_t, d0_f), (d1_t, d1_f) = rails["D0"], rails["D1"]
        y_t, y_f = f"{p}y_t", f"{p}y_f"
        nt, nf = f"{p}n_t", f"{p}n_f"
        # true: (sf AND d0t) OR (st AND d1t); false rail mirrors on d*f.
        self._aoi22(ckt, p, "t", s_f, d0_t, s_t, d1_t, nt, vdd)
        self._inv(ckt, p, "t", nt, y_t, vdd, 2.0)
        self._aoi22(ckt, p, "f", s_f, d0_f, s_t, d1_f, nf, vdd)
        self._inv(ckt, p, "f", nf, y_f, vdd, 2.0)
        return {"Y": (y_t, y_f)}


def build_wddl_library(tech: Technology = TECH90) -> Library:
    """The WDDL dual-rail library on the CMOS reference process.

    Datasheet arithmetic mirrors :func:`build_cmos_library` with the
    dual-rail site counts: leakage and evaluation energy scale with the
    (roughly doubled) cell footprint, the pair input presents both
    rails' gate capacitance, and ``residual_sigma`` carries the rail
    imbalance *charge* sigma the power model draws per die.
    """
    layout = LayoutModel("wddl", tech)
    cells: Dict[str, Cell] = {}
    for name in WDDL_CELL_NAMES:
        fn = function(name)
        sites = layout.sites_for(name)
        energy_cap = CMOS_ENERGY_BASE_CAP + CMOS_ENERGY_SITE_CAP * sites
        # One rail (half the footprint) charges per evaluate phase.
        eval_charge = 0.5 * energy_cap * tech.vdd
        power = PowerModel(
            style="wddl",
            leak=CMOS_LEAK_PER_SITE * sites,
            energy_toggle=eval_charge * tech.vdd,
            residual_sigma=WDDL_IMBALANCE_FRACTION * eval_charge,
        )
        delay = WDDL_DELAYS[name]
        input_cap = 2.0 * CMOS_INPUT_CAP
        intrinsic = max(delay - CMOS_DRIVE_RES * input_cap, ps(0.5))
        cells[name] = Cell(
            name=name, function=fn, style="wddl", sites=sites,
            area_um2=layout.area_um2(name), input_cap=input_cap,
            delay_model=DelayModel(intrinsic, CMOS_DRIVE_RES),
            power=power)
    cells["RAILSWAP"] = _railswap_cell("wddl")
    cells["TIEH"] = _tie_cell("wddl", "TIEH")
    cells["TIEL"] = _tie_cell("wddl", "TIEL")
    return Library(name="wddl_90nm", style="wddl", cells=cells, tech=tech)
