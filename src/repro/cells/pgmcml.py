"""PG-MCML: power-gated MCML cell generation.

Implements the four candidate power-gating topologies of Fig. 2 so the
paper's §4 design-space argument can be replayed quantitatively
(``benchmarks/bench_ablation.py``):

* **(a) bias pulldown** — an NMOS discharges the (resistively
  distributed) Vn bias line during sleep.  Cheap, but waking requires
  recharging the whole bias line through its source resistance: slow
  without a wide-bandwidth source follower.
* **(b) bias switch + pulldown** — adds a series PMOS in the bias path;
  faster off, but two extra transistors per cell.
* **(c) body bias** — the tail gate is driven by an ON signal and the
  tail *bulk* is tied to the bias line; sleep raises the threshold via
  the body effect.  Needs a bias range impractical on chip and a
  separate well (area).
* **(d) series sleep transistor** — the adopted solution: a high-Vt
  NMOS stacked *on top of* the current source.  During power-down the
  off sleep device takes the whole stack voltage and the cell current
  collapses to its subthreshold leakage; when the Vn bias line is gated
  off together with the cluster, the intermediate node floats up and
  the sleep device additionally gains a negative VGS (the stacking
  effect the paper highlights in §4).

Topology (d) is what :func:`build` emits for every library cell; the
others are available through ``PowerGateTopology`` for the ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..errors import CellError
from ..spice import Circuit
from ..tech import Technology, TECH90
from ..units import um
from .functions import CellFunction
from .mcml import McmlCellCircuit, McmlCellGenerator, McmlSizing


class PowerGateTopology(Enum):
    """The four candidate topologies of Fig. 2."""

    BIAS_PULLDOWN = "a"
    BIAS_SWITCH = "b"
    BODY_BIAS = "c"
    SERIES_SLEEP = "d"


#: Effective source resistance of the Vn bias distribution network seen
#: by one cell, ohms (topologies (a)/(b)); what makes them slow to wake.
BIAS_SOURCE_RESISTANCE = 200e3

#: Decoupling capacitance on the local bias node, farads.
BIAS_NODE_CAP = 20e-15


class PgMcmlCellGenerator(McmlCellGenerator):
    """Generates power-gated MCML cells (topology (d) by default).

    The ``sleep`` net carries a full-swing CMOS-level control: **high =
    active**, **low = sleep** (it is the buffered output of the sleep
    signal tree built by :mod:`repro.synth.sleep`).
    """

    style = "pgmcml"

    def __init__(self, tech: Technology = TECH90,
                 sizing: Optional[McmlSizing] = None,
                 topology: PowerGateTopology = PowerGateTopology.SERIES_SLEEP,
                 mismatch=None):
        super().__init__(tech, sizing, mismatch=mismatch)
        self.topology = topology

    def build(self, fn: CellFunction, circuit: Optional[Circuit] = None,
              prefix: str = "", load_cap: float = 0.0,
              erc: Optional[bool] = None) -> McmlCellCircuit:
        # ERC must see the finished (gated) netlist, so the intermediate
        # MCML build is never checked: erc=False here, preflight below.
        cell = super().build(fn, circuit, prefix, load_cap, erc=False)
        p = self._net_prefix(fn, prefix, circuit is None)
        sleep_net = "sleep" if circuit is None else f"{p}sleep"
        self._insert_power_gate(cell, sleep_net, p)
        cell.sleep_net = sleep_net
        return self._erc_finish(cell, circuit is None, erc)

    def erc_style(self) -> str:
        # Only the series-sleep topology (d) has per-tail sleep devices;
        # the bias-gating ablations are legal MCML as far as ERC goes.
        if self.topology is PowerGateTopology.SERIES_SLEEP:
            return "pgmcml"
        return "mcml"

    def _net_prefix(self, fn: CellFunction, prefix: str, own: bool) -> str:
        if own and not prefix:
            return ""
        # Must mirror the naming in build/_build_latch/_build_dff: each
        # uses fn.name.lower() ("dlatch"/"dff" for the sequential cells).
        # Mapping every sequential fn to "dlatch" here used to leave
        # composite-build DFFs without their sleep devices — the tail
        # filter in _tail_devices never matched the "dff_" device names.
        return f"{prefix}{fn.name.lower()}_"

    # -- topology implementations ------------------------------------------------

    def _insert_power_gate(self, cell: McmlCellCircuit, sleep_net: str,
                           p: str) -> None:
        topo = self.topology
        if topo is PowerGateTopology.SERIES_SLEEP:
            self._series_sleep(cell, sleep_net, p)
        elif topo is PowerGateTopology.BIAS_PULLDOWN:
            self._bias_pulldown(cell, sleep_net, p, with_switch=False)
        elif topo is PowerGateTopology.BIAS_SWITCH:
            self._bias_pulldown(cell, sleep_net, p, with_switch=True)
        elif topo is PowerGateTopology.BODY_BIAS:
            self._body_bias(cell, sleep_net, p)
        else:  # pragma: no cover - exhaustive enum
            raise CellError(f"unknown topology {topo!r}")

    def _tail_devices(self, cell: McmlCellCircuit, p: str = ""):
        """Tail current sources of *this* cell (``p`` is its name prefix).

        The prefix filter matters when several cells share one circuit
        (``build(..., circuit=ckt, prefix=...)``): without it a later
        build would re-gate every earlier cell's tails and collide on
        the generated ``*_sleep`` device names.
        """
        return [d for d in cell.circuit.devices
                if "mtail" in d.name and d.name.startswith(p)
                and not d.name.endswith(("_sleep", "_pg"))]

    def _series_sleep(self, cell: McmlCellCircuit, sleep_net: str,
                      p: str) -> None:
        """Topology (d): re-wire each tail under a series sleep device.

        The sleep transistor sits between the differential network bottom
        (``cs`` node) and the tail drain, i.e. *on top of* the current
        source, giving it a negative VGS when gated off.
        """
        s = self.sizing
        ckt = cell.circuit
        for tail in self._tail_devices(cell, p):
            cs_top = tail.terminals[0]
            mid = f"{tail.name}_pg"
            tail.terminals = (mid,) + tail.terminals[1:]
            ckt.mosfet(f"{tail.name}_sleep", cs_top, sleep_net, mid, "0",
                       self._params(s.sleep_flavor, s.w_sleep, s.l_sleep),
                       w=s.w_sleep, l=s.l_sleep,
                       temp_vt=self.tech.vt_thermal)

    def _bias_pulldown(self, cell: McmlCellCircuit, sleep_net: str, p: str,
                       with_switch: bool) -> None:
        """Topologies (a)/(b): gate the local Vn bias node.

        The cell's tails are re-pointed at a local bias node ``vn_loc``
        fed from the global Vn line through the distribution resistance;
        an NMOS discharges ``vn_loc`` when the cell sleeps.  The control
        sense is inverted relative to (d) — the pulldown must conduct
        *during* sleep — so the generated cell exposes the same
        active-high ``sleep`` net and derives the pulldown gate from an
        on-cell inverter modelled behaviourally as ``sleep_b``.
        """
        s = self.sizing
        ckt = cell.circuit
        vn_loc = f"{p}vn_loc"
        sleep_b = f"{p}sleep_b"  # complement rail, driven by the testbench
        ckt.resistor(f"{p}rbias", cell.vn_net, vn_loc, BIAS_SOURCE_RESISTANCE)
        ckt.capacitor(f"{p}cbias", vn_loc, "0", BIAS_NODE_CAP)
        pulldown = self.tech.flavor("nmos_hvt")
        ckt.mosfet(f"{p}mpd", vn_loc, sleep_b, "0", "0", pulldown,
                   w=um(0.3), l=um(0.1), temp_vt=self.tech.vt_thermal)
        if with_switch:
            pswitch = self.tech.flavor("pmos_lvt")
            vn_sw = f"{p}vn_sw"
            # Series PMOS in the bias path, on when sleep_b is low (active).
            for dev in list(ckt.devices):
                if dev.name == f"{p}rbias":
                    dev.terminals = (cell.vn_net, vn_sw)
            ckt.mosfet(f"{p}msw", vn_loc, sleep_b, vn_sw, cell.vdd_net,
                       pswitch, w=um(0.3), l=um(0.1),
                       temp_vt=self.tech.vt_thermal)
        for tail in self._tail_devices(cell, p):
            # Re-point the tail gate at the gated local bias.
            d, _, src, b = tail.terminals
            tail.terminals = (d, vn_loc, src, b)

    def _body_bias(self, cell: McmlCellCircuit, sleep_net: str,
                   p: str) -> None:
        """Topology (c): ON signal on the tail gate, bulk tied to Vn.

        The tail gate is driven directly by the (CMOS-level) sleep/ON
        net and the tail bulk by the bias line, which therefore must
        range widely (the paper quotes -0.5 V..1 V) to keep the current
        constant across corners — the reason the option was rejected.
        """
        for tail in self._tail_devices(cell, p):
            d, _, src, _ = tail.terminals
            tail.terminals = (d, sleep_net, src, cell.vn_net)


@dataclass(frozen=True)
class SleepTransistorReport:
    """Static summary of what power gating added to a cell."""

    topology: PowerGateTopology
    extra_transistors: int
    extra_sites: int
    wake_path: str


def gating_overhead(topology: PowerGateTopology) -> SleepTransistorReport:
    """The §4 qualitative comparison, as data."""
    table = {
        PowerGateTopology.BIAS_PULLDOWN: SleepTransistorReport(
            topology, 1, 1,
            "recharge Vn line through bias source resistance (slow; needs "
            "a wide-band source follower to settle in one cycle)"),
        PowerGateTopology.BIAS_SWITCH: SleepTransistorReport(
            topology, 2, 2,
            "local bias node recharges through series switch (two devices "
            "per cell)"),
        PowerGateTopology.BODY_BIAS: SleepTransistorReport(
            topology, 0, 3,
            "threshold modulation via bulk; needs -0.5 V..1 V bias range "
            "and a separate well per current source"),
        PowerGateTopology.SERIES_SLEEP: SleepTransistorReport(
            topology, 1, 1,
            "series high-Vt device on top of the tail; negative VGS in "
            "sleep, turn-on in a fraction of a clock cycle"),
    }
    return table[topology]
