"""Logic functions implemented by the standard cells.

A :class:`CellFunction` describes *what* a cell computes, independently of
the logic style that implements it.  It provides:

* pin lists (inputs, outputs; sequential cells also name their state),
* a Python evaluator used by the gate-level logic simulator,
* a BDD builder used by the MCML netlist generator and the synthesiser.

The registry covers the paper's 16-cell PG-MCML library (Table 2) plus
the static-CMOS-only helpers (INV, NAND/NOR) needed by the reference
flow.  In fully differential logic inversion is free (swap the rails), so
the MCML library needs no INV cell — the paper's Table 2 indeed has none.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..bdd import BDD, Manager
from ..errors import CellError

Assignment = Dict[str, bool]
Evaluator = Callable[[Assignment], Dict[str, bool]]


@dataclass(frozen=True)
class CellFunction:
    """A named logic function with pins and evaluators.

    ``evaluate`` maps an input assignment to output values.  Sequential
    functions also define ``next_state``: given inputs and the current
    state, return the new state; their outputs may depend on the state
    (passed in the assignment under the state name).
    """

    name: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    evaluate: Evaluator
    sequential: bool = False
    state_pins: Tuple[str, ...] = ()
    next_state: Optional[Callable[[Assignment, Dict[str, bool]], Dict[str, bool]]] = None
    clock_pin: Optional[str] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.inputs and not self.sequential:
            raise CellError(f"{self.name}: combinational cell needs inputs")
        if not self.outputs:
            raise CellError(f"{self.name}: cell needs at least one output")
        if self.sequential and self.next_state is None:
            raise CellError(f"{self.name}: sequential cell needs next_state")

    def bdds(self, manager: Manager,
             pin_map: Optional[Dict[str, str]] = None) -> Dict[str, BDD]:
        """Build one BDD per output over the cell's input variables.

        Only valid for combinational functions.  ``pin_map`` renames pins
        to external net names before variables are declared.
        """
        if self.sequential:
            raise CellError(f"{self.name}: sequential cells have no static BDD")
        rename = pin_map or {}
        var_of: Dict[str, BDD] = {}
        for pin in self.inputs:
            var_name = rename.get(pin, pin)
            if var_name not in manager.variables:
                manager.add_variable(var_name)
            var_of[pin] = manager.var(var_name)
        results: Dict[str, BDD] = {}
        for out in self.outputs:
            acc = manager.false
            n = len(self.inputs)
            for code in range(1 << n):
                assignment = {
                    pin: bool((code >> (n - 1 - k)) & 1)
                    for k, pin in enumerate(self.inputs)
                }
                if self.evaluate(assignment)[out]:
                    term = manager.true
                    for pin in self.inputs:
                        term = term & (var_of[pin] if assignment[pin]
                                       else ~var_of[pin])
                    acc = acc | term
            results[out] = acc
        return results

    def truth_table(self, output: str) -> List[int]:
        """Exhaustive table of one output, inputs MSB-first."""
        if output not in self.outputs:
            raise CellError(f"{self.name}: no output {output!r}")
        n = len(self.inputs)
        table = []
        for code in range(1 << n):
            assignment = {
                pin: bool((code >> (n - 1 - k)) & 1)
                for k, pin in enumerate(self.inputs)
            }
            table.append(int(self.evaluate(assignment)[output]))
        return table


def _comb(name: str, inputs: Sequence[str], out_expr: Dict[str, Callable],
          description: str = "") -> CellFunction:
    def evaluate(assignment: Assignment) -> Dict[str, bool]:
        return {out: bool(fn(assignment)) for out, fn in out_expr.items()}

    return CellFunction(
        name=name,
        inputs=tuple(inputs),
        outputs=tuple(out_expr),
        evaluate=evaluate,
        description=description,
    )


def _majority3(a: bool, b: bool, c: bool) -> bool:
    return (a and b) or (a and c) or (b and c)


FUNCTIONS: Dict[str, CellFunction] = {}


def _register(fn: CellFunction) -> CellFunction:
    if fn.name in FUNCTIONS:
        raise CellError(f"duplicate function {fn.name!r}")
    FUNCTIONS[fn.name] = fn
    return fn


def function(name: str) -> CellFunction:
    """Look up a registered cell function by name."""
    try:
        return FUNCTIONS[name]
    except KeyError:
        known = ", ".join(sorted(FUNCTIONS))
        raise CellError(f"unknown cell function {name!r}; known: {known}") from None


# -- combinational -----------------------------------------------------------

_register(_comb("BUF", ["A"], {"Y": lambda s: s["A"]},
                "Buffer (MCML buffer/inverter: inversion is a rail swap)"))
_register(_comb("INV", ["A"], {"Y": lambda s: not s["A"]},
                "Static CMOS inverter"))
_register(_comb("DIFF2SINGLE", ["A"], {"Y": lambda s: s["A"]},
                "Differential-to-single-ended converter (MCML boundary cell)"))
_register(_comb("SINGLE2DIFF", ["A"], {"Y": lambda s: s["A"]},
                "Single-ended-to-differential converter (MCML boundary cell)"))

for _n in (2, 3, 4):
    _names = ["A", "B", "C", "D"][:_n]
    _register(_comb(f"AND{_n}", _names,
                    {"Y": lambda s, ns=tuple(_names): all(s[x] for x in ns)}))
    _register(_comb(f"NAND{_n}", _names,
                    {"Y": lambda s, ns=tuple(_names): not all(s[x] for x in ns)}))
    _register(_comb(f"OR{_n}", _names,
                    {"Y": lambda s, ns=tuple(_names): any(s[x] for x in ns)}))
    _register(_comb(f"NOR{_n}", _names,
                    {"Y": lambda s, ns=tuple(_names): not any(s[x] for x in ns)}))
    _register(_comb(
        f"XOR{_n}", _names,
        {"Y": lambda s, ns=tuple(_names): bool(sum(s[x] for x in ns) % 2)}))

_register(_comb("XNOR2", ["A", "B"],
                {"Y": lambda s: s["A"] == s["B"]}))

_register(_comb("MUX2", ["S", "D0", "D1"],
                {"Y": lambda s: s["D1"] if s["S"] else s["D0"]},
                "2:1 multiplexer"))

_register(_comb(
    "MUX4", ["S0", "S1", "D0", "D1", "D2", "D3"],
    {"Y": lambda s: s[f"D{(2 if s['S1'] else 0) + (1 if s['S0'] else 0)}"]},
    "4:1 multiplexer, S1 is the MSB select"))

_register(_comb("MAJ32", ["A", "B", "C"],
                {"Y": lambda s: _majority3(s["A"], s["B"], s["C"])},
                "3-input majority (carry) gate"))

_register(_comb(
    "FA", ["A", "B", "CI"],
    {
        "S": lambda s: bool((s["A"] + s["B"] + s["CI"]) % 2),
        "CO": lambda s: _majority3(s["A"], s["B"], s["CI"]),
    },
    "Full adder"))

_register(_comb("TIEH", ["A"], {"Y": lambda s: True}, "Constant one"))
_register(_comb("TIEL", ["A"], {"Y": lambda s: False}, "Constant zero"))
_register(_comb("RAILSWAP", ["A"], {"Y": lambda s: not s["A"]},
                "Differential rail swap: logical inversion at zero cost"))
_register(_comb("SLEEPBUF", ["A"], {"Y": lambda s: s["A"]},
                "CMOS single-ended buffer at MCML row height, used by the "
                "sleep-signal distribution tree (§5)"))


# -- sequential ---------------------------------------------------------------

def _make_dlatch() -> CellFunction:
    def evaluate(assignment: Assignment) -> Dict[str, bool]:
        # Transparent when EN is high.
        if assignment["EN"]:
            return {"Q": assignment["D"]}
        return {"Q": assignment.get("Q_state", False)}

    def next_state(assignment: Assignment, state: Dict[str, bool]):
        if assignment["EN"]:
            return {"Q_state": assignment["D"]}
        return dict(state)

    return CellFunction(
        name="DLATCH", inputs=("D", "EN"), outputs=("Q",),
        evaluate=evaluate, sequential=True, state_pins=("Q_state",),
        next_state=next_state, clock_pin="EN",
        description="Level-sensitive D latch (transparent high)")


def _make_dff(with_reset: bool, with_enable: bool, name: str,
              description: str) -> CellFunction:
    inputs: List[str] = ["D", "CK"]
    if with_reset:
        inputs.append("RN")
    if with_enable:
        inputs.append("E")

    def evaluate(assignment: Assignment) -> Dict[str, bool]:
        if with_reset and not assignment["RN"]:
            return {"Q": False}
        return {"Q": assignment.get("Q_state", False)}

    def next_state(assignment: Assignment, state: Dict[str, bool]):
        # Called by the simulator on the active (rising) clock edge.
        if with_reset and not assignment["RN"]:
            return {"Q_state": False}
        if with_enable and not assignment["E"]:
            return dict(state)
        return {"Q_state": assignment["D"]}

    return CellFunction(
        name=name, inputs=tuple(inputs), outputs=("Q",),
        evaluate=evaluate, sequential=True, state_pins=("Q_state",),
        next_state=next_state, clock_pin="CK", description=description)


_register(_make_dlatch())
_register(_make_dff(False, False, "DFF", "Rising-edge D flip-flop"))
_register(_make_dff(True, False, "DFFR",
                    "Rising-edge D flip-flop with async active-low reset"))
_register(_make_dff(False, True, "EDFF",
                    "Rising-edge D flip-flop with clock enable"))
