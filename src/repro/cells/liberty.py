"""Liberty (.lib) export.

Writes a cell library in the Synopsys Liberty text format — the lingua
franca every synthesis and timing tool reads — so the PG-MCML datasheets
can be inspected with standard tooling or fed to an external flow.  The
writer emits the scalar (non-table) subset: pin directions and
functions, capacitances, linear delay as ``intrinsic_rise/fall`` plus
``rise/fall_resistance``, leakage power, and the cell footprint.  The
sleep behaviour is recorded via the ``switch_cell_type`` /
``dont_touch`` attributes real power-gating libraries use.

Writer only: the JSON format of :mod:`repro.cells.io` is the
round-tripping representation; Liberty is for interchange with the
world outside this package.
"""

from __future__ import annotations

from typing import Dict, List, TextIO

from ..errors import CellError
from .cell import Cell
from .functions import CellFunction
from .library import Library

#: Liberty unit declarations matching our internal SI conventions.
_HEADER_UNITS = """\
  time_unit : "1ns";
  voltage_unit : "1V";
  current_unit : "1uA";
  pulling_resistance_unit : "1kohm";
  leakage_power_unit : "1nW";
  capacitive_load_unit (1, ff);
"""

def _pin_function(fn: CellFunction, output: str) -> str:
    """A Liberty boolean expression for simple functions.

    Arbitrary functions fall back to a sum-of-products over the truth
    table; the common cells get their idiomatic short forms.
    """
    idioms: Dict[str, str] = {
        "BUF": "A", "SLEEPBUF": "A", "DIFF2SINGLE": "A",
        "SINGLE2DIFF": "A",
        "INV": "(!A)", "RAILSWAP": "(!A)",
        "AND2": "(A & B)", "AND3": "(A & B & C)",
        "AND4": "(A & B & C & D)",
        "NAND2": "(!(A & B))", "NAND3": "(!(A & B & C))",
        "NAND4": "(!(A & B & C & D))",
        "OR2": "(A | B)", "OR3": "(A | B | C)", "OR4": "(A | B | C | D)",
        "NOR2": "(!(A | B))", "NOR3": "(!(A | B | C))",
        "XOR2": "(A ^ B)", "XOR3": "(A ^ B ^ C)",
        "XOR4": "(A ^ B ^ C ^ D)", "XNOR2": "(!(A ^ B))",
        "MUX2": "((!S & D0) | (S & D1))",
        "MAJ32": "((A & B) | (A & C) | (B & C))",
        "TIEH": "1", "TIEL": "0",
    }
    if fn.name in idioms and output == fn.outputs[0]:
        return idioms[fn.name]
    # Sum of products from the truth table.
    n = len(fn.inputs)
    terms: List[str] = []
    for code in range(1 << n):
        env = {pin: bool((code >> (n - 1 - k)) & 1)
               for k, pin in enumerate(fn.inputs)}
        if fn.evaluate(env)[output]:
            literals = [pin if env[pin] else f"!{pin}" for pin in fn.inputs]
            terms.append("(" + " & ".join(literals) + ")")
    return "(" + " | ".join(terms) + ")" if terms else "0"


def _write_cell(stream: TextIO, cell: Cell) -> None:
    fn = cell.function
    stream.write(f"  cell ({cell.name}) {{\n")
    stream.write(f"    area : {cell.area_um2:.6g};\n")
    if cell.pseudo:
        stream.write("    dont_use : true;\n")
        stream.write("    dont_touch : true;\n")
    if cell.power.has_sleep:
        stream.write("    switch_cell_type : fine_grain;\n")
    leak_nw = cell.power.static_current(
        asleep=False) * 1.2 * 1e9 if cell.style != "cmos" else \
        cell.power.leak * 1.2 * 1e9
    stream.write(f"    cell_leakage_power : {leak_nw:.6g};\n")
    cap_ff = cell.input_cap * 1e15
    for pin in fn.inputs:
        stream.write(f"    pin ({pin}) {{\n")
        stream.write("      direction : input;\n")
        stream.write(f"      capacitance : {cap_ff:.6g};\n")
        if fn.sequential and pin == fn.clock_pin:
            stream.write("      clock : true;\n")
        stream.write("    }\n")
    intrinsic_ns = cell.delay_model.intrinsic * 1e9
    res_kohm = cell.delay_model.drive_res / 1e3
    for out in fn.outputs:
        stream.write(f"    pin ({out}) {{\n")
        stream.write("      direction : output;\n")
        if not fn.sequential:
            stream.write(f'      function : "{_pin_function(fn, out)}";\n')
        for edge in ("rise", "fall"):
            stream.write(f"      intrinsic_{edge} : {intrinsic_ns:.6g};\n")
            stream.write(f"      {edge}_resistance : {res_kohm:.6g};\n")
        stream.write("    }\n")
    if fn.sequential:
        state = fn.state_pins[0] if fn.state_pins else "IQ"
        stream.write(f'    ff ({state}, {state}N) {{\n')
        stream.write(f'      clocked_on : "{fn.clock_pin}";\n')
        stream.write('      next_state : "D";\n')
        stream.write("    }\n")
    stream.write("  }\n")


def write_liberty(stream: TextIO, library: Library) -> None:
    """Serialise ``library`` as a Liberty document."""
    if not len(library):
        raise CellError("cannot export an empty library")
    stream.write(f"library ({library.name}) {{\n")
    stream.write('  delay_model : "generic_cmos";\n')
    stream.write(_HEADER_UNITS)
    stream.write(f"  nom_voltage : {library.tech.vdd:g};\n")
    stream.write(f"  nom_temperature : {library.tech.temp_k - 273.15:g};\n")
    stream.write(f'  comment : "style={library.style}; generated by the '
                 f'PG-MCML reproduction";\n\n')
    for cell in sorted(library.cells.values(), key=lambda c: c.name):
        _write_cell(stream, cell)
    stream.write("}\n")
