"""Cell datasheets: the library view of one standard cell.

A :class:`Cell` bundles what downstream tools need to know: pins and
function (from :mod:`repro.cells.functions`), layout area, a linear delay
model, and a style-specific power model.  This mirrors what a Liberty
file provides to synthesis and what the power simulator needs per
instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..errors import CellError
from .functions import CellFunction

STYLES = ("cmos", "mcml", "pgmcml", "wddl")


@dataclass(frozen=True)
class DelayModel:
    """Linear delay model ``d(Cload) = intrinsic + drive_res * Cload``.

    ``intrinsic`` covers the unloaded (parasitic) delay; ``drive_res`` is
    the effective output resistance.  For MCML, ``drive_res`` is the load
    resistance R = swing / Iss — the RC at the output is what limits the
    cell, and a higher tail current buys speed linearly (Fig. 3).
    """

    intrinsic: float
    drive_res: float

    def __post_init__(self) -> None:
        if self.intrinsic < 0.0 or self.drive_res < 0.0:
            raise CellError("delay model parameters must be non-negative")

    def delay(self, cload: float) -> float:
        if cload < 0.0:
            raise CellError("load capacitance must be non-negative")
        return self.intrinsic + self.drive_res * cload


@dataclass(frozen=True)
class PowerModel:
    """Style-specific power characteristics.

    CMOS cells dissipate ``energy_toggle`` per output transition plus a
    static ``leak`` current.  MCML cells draw a constant ``iss`` whenever
    powered; their data dependence is reduced to a residual of standard
    deviation ``residual_sigma`` (device mismatch — see
    :class:`repro.tech.MismatchModel`).  PG-MCML adds a sleep mode with
    leakage ``sleep_leak`` and a wake time constant.

    WDDL cells are CMOS underneath (static ``leak``) but evaluate
    exactly one of their two rails every precharge/evaluate cycle:
    ``energy_toggle`` is the (data-independent) mean evaluation energy,
    and ``residual_sigma`` is the standard deviation of the *charge*
    imbalance between the true and false rails — the load-capacitance
    mismatch that is WDDL's residual leakage channel.
    """

    style: str
    leak: float = 0.0
    energy_toggle: float = 0.0
    iss: float = 0.0
    residual_sigma: float = 0.0
    sleep_leak: float = 0.0
    wake_time: float = 0.0

    def __post_init__(self) -> None:
        if self.style not in STYLES:
            raise CellError(f"unknown style {self.style!r}; known: {STYLES}")
        for name in ("leak", "energy_toggle", "iss", "residual_sigma",
                     "sleep_leak", "wake_time"):
            if getattr(self, name) < 0.0:
                raise CellError(f"power model field {name} must be >= 0")
        if self.style in ("mcml", "pgmcml") and self.iss <= 0.0:
            raise CellError(f"{self.style} cells need a positive tail current")
        if self.style == "pgmcml" and self.sleep_leak >= self.iss:
            raise CellError("sleep leakage must be below the tail current")

    @property
    def has_sleep(self) -> bool:
        return self.style == "pgmcml"

    def static_current(self, asleep: bool = False) -> float:
        """Quiescent supply current in the given mode."""
        if self.style in ("cmos", "wddl"):
            return self.leak
        if asleep:
            if not self.has_sleep:
                raise CellError(f"{self.style} cells have no sleep mode")
            return self.sleep_leak
        return self.iss


@dataclass(frozen=True)
class Cell:
    """One library cell datasheet."""

    name: str
    function: CellFunction
    style: str
    sites: int
    area_um2: float
    input_cap: float
    delay_model: DelayModel
    power: PowerModel
    drive: float = 1.0
    source: str = "paper"
    #: Pseudo cells (differential rail swaps) occupy no silicon: they are
    #: excluded from cell counts, area, and power, but participate in
    #: logic simulation so mapped netlists stay logically exact.
    pseudo: bool = False

    def __post_init__(self) -> None:
        if self.style not in STYLES:
            raise CellError(f"unknown style {self.style!r}")
        if self.power.style != self.style and not self.pseudo:
            raise CellError(
                f"{self.name}: power model style {self.power.style!r} does "
                f"not match cell style {self.style!r}")
        if self.sites <= 0 or self.area_um2 <= 0.0:
            raise CellError(f"{self.name}: geometry must be positive")
        if self.input_cap <= 0.0:
            raise CellError(f"{self.name}: input capacitance must be positive")
        if self.drive <= 0.0:
            raise CellError(f"{self.name}: drive strength must be positive")

    @property
    def is_sequential(self) -> bool:
        return self.function.sequential

    @property
    def inputs(self):
        return self.function.inputs

    @property
    def outputs(self):
        return self.function.outputs

    def delay(self, cload: Optional[float] = None) -> float:
        """Propagation delay driving ``cload`` (default: one own input)."""
        load = self.input_cap if cload is None else cload
        return self.delay_model.delay(load)

    def fo4_delay(self) -> float:
        """Delay driving four copies of the cell's own input."""
        return self.delay_model.delay(4.0 * self.input_cap)

    def with_measurement(self, delay_model: DelayModel,
                         power: PowerModel) -> "Cell":
        """Datasheet updated from a characterisation run."""
        return replace(self, delay_model=delay_model, power=power,
                       source="characterized")

    def __repr__(self) -> str:
        return (f"Cell({self.name}/{self.style}, {self.area_um2:.4g} um2, "
                f"d0={self.delay_model.intrinsic * 1e12:.3g}ps)")
