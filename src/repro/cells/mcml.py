"""MCML transistor-level cell generation.

An MCML gate (§3, Fig. 1) is generated structurally from the function's
BDD:

* one *differential pair* per BDD node — the pair's common source is the
  node's circuit net, its two drains climb to the nets of the node's
  high/low children (or to an output rail for terminals), and its gates
  are the true/complement rails of the node's variable;
* the TRUE terminal maps to the **negative** output rail: when the
  function evaluates to 1, the selected path steers the tail current
  through the ``out_n`` load, dropping it by ``Iss·R`` while ``out_p``
  stays at Vdd;
* a PMOS *active load* (low-Vt, biased in triode by Vp) per output rail;
* a high-Vt NMOS *tail source* (biased by Vn) per output tree.

Multi-output functions (the full adder) get one tree per output; BDD
nodes are deliberately not shared across trees because each tree carries
its own tail current.

Sizing follows §5: high-Vt for the NMOS network and tail (leakage),
low-Vt for the PMOS loads (area/speed), device widths scaled with the
target tail current, and the exact Vn/load width refined by
:mod:`repro.cells.bias`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..bdd import Manager, ONE_INDEX, ZERO_INDEX
from ..errors import CellError
from ..spice import Circuit
from ..spice.erc import erc_enabled, erc_preflight
from ..tech import Technology, TECH90
from ..units import um
from .functions import CellFunction

#: Maximum differential-pair stack depth the 1.2 V supply can support.
MAX_STACK_DEPTH = 4


@dataclass(frozen=True)
class McmlSizing:
    """Device sizes and bias voltages for one tail-current target.

    The defaults implement the first-order hand sizing described in the
    module docstring for ``iss``; :func:`repro.cells.bias.solve_bias`
    produces refined values (exact Vn, load width for the target swing).
    """

    iss: float = 50e-6
    swing: float = 0.40
    vn: float = 0.70
    vp: float = 0.0
    w_pair: float = um(0.75)
    l_pair: float = um(0.10)
    w_tail: float = um(0.81)
    l_tail: float = um(0.20)
    w_load: float = um(0.17)
    l_load: float = um(0.10)
    w_sleep: float = um(0.81)   # same channel width as the tail (§5)
    l_sleep: float = um(0.10)
    pair_flavor: str = "nmos_hvt"
    tail_flavor: str = "nmos_hvt"
    sleep_flavor: str = "nmos_hvt"
    load_flavor: str = "pmos_lvt"

    def __post_init__(self) -> None:
        if self.iss <= 0.0:
            raise CellError("tail current must be positive")
        if not 0.0 < self.swing < 1.2:
            raise CellError("swing must be in (0, Vdd)")

    @staticmethod
    def for_current(iss: float, swing: float = 0.40,
                    tech: Technology = TECH90) -> "McmlSizing":
        """First-order sizing for a target tail current.

        Pair and tail widths scale linearly with the current; the load
        width scales so the triode resistance keeps ``R = swing / iss``.
        """
        if iss <= 0.0:
            raise CellError("tail current must be positive")
        scale = iss / 50e-6
        wmin = tech.flavor("nmos_hvt").wmin
        w_pair = max(um(0.75) * scale, wmin)
        w_tail = max(um(0.81) * scale, wmin)
        w_load = max(um(0.17) * scale * (0.40 / swing), tech.flavor("pmos_lvt").wmin)
        return McmlSizing(iss=iss, swing=swing, w_pair=w_pair, w_tail=w_tail,
                          w_load=w_load, w_sleep=w_tail)

    def input_high(self, tech: Technology = TECH90) -> float:
        """Logic-high input level (Vdd)."""
        return tech.vdd

    def input_low(self, tech: Technology = TECH90) -> float:
        """Logic-low input level (Vdd - swing)."""
        return tech.vdd - self.swing


@dataclass
class McmlCellCircuit:
    """A generated cell netlist plus its pin bindings."""

    circuit: Circuit
    function: CellFunction
    sizing: McmlSizing
    #: pin -> (positive net, negative net)
    input_nets: Dict[str, Tuple[str, str]]
    output_nets: Dict[str, Tuple[str, str]]
    vdd_net: str
    vn_net: str
    vp_net: str
    sleep_net: Optional[str] = None
    #: number of stacked pair levels (for headroom checks)
    depth: int = 0
    n_pairs: int = 0

    @property
    def has_sleep(self) -> bool:
        return self.sleep_net is not None


class McmlCellGenerator:
    """Generates conventional (non-gated) MCML cell netlists.

    When a :class:`~repro.tech.MismatchModel` is supplied, every
    generated transistor draws its own Pelgrom-distributed parameters —
    one Monte-Carlo instance of the cell — which is how the library's
    residual data-dependent current is derived from physics
    (:mod:`repro.cells.montecarlo`).
    """

    style = "mcml"

    def __init__(self, tech: Technology = TECH90,
                 sizing: Optional[McmlSizing] = None,
                 mismatch=None):
        self.tech = tech
        self.sizing = sizing or McmlSizing()
        self.mismatch = mismatch

    def _params(self, flavor_name: str, w: float, l: float):
        params = self.tech.flavor(flavor_name)
        if self.mismatch is not None:
            params = self.mismatch.sample(params, w, l)
        return params

    # -- public API -----------------------------------------------------------

    def build(self, fn: CellFunction, circuit: Optional[Circuit] = None,
              prefix: str = "", load_cap: float = 0.0,
              erc: Optional[bool] = None) -> McmlCellCircuit:
        """Generate the transistor netlist of ``fn``.

        When ``circuit`` is given the devices are added to it (with
        ``prefix`` namespacing every net and device); otherwise a fresh
        circuit is created.  ``load_cap`` attaches an identical capacitor
        to each output rail.

        Standalone builds (no ``circuit``) run the ERC preflight on the
        finished netlist; ``erc=False`` (or ``REPRO_ERC=off``) skips it.
        Composite builds are the caller's responsibility to check once
        the shared circuit is complete.
        """
        if fn.sequential:
            return self._erc_finish(
                self._build_latch(fn, circuit, prefix, load_cap),
                circuit is None, erc)
        own = circuit is None
        ckt = circuit or Circuit(f"{self.style}_{fn.name.lower()}")
        p = f"{prefix}{fn.name.lower()}_" if prefix or not own else ""

        manager = Manager()
        roots = fn.bdds(manager)

        input_nets = {pin: (f"{p}{pin.lower()}_p", f"{p}{pin.lower()}_n")
                      for pin in fn.inputs}
        output_nets = {out: (f"{p}{out.lower()}_p", f"{p}{out.lower()}_n")
                       for out in fn.outputs}
        vdd, vn, vp = f"{p}vdd", f"{p}vn", f"{p}vp"
        if own:
            vdd, vn, vp = "vdd", "vn", "vp"

        max_depth = 0
        total_pairs = 0
        for out in fn.outputs:
            depth, pairs = self._build_tree(
                ckt, manager, roots[out].index, out, input_nets,
                output_nets[out], vdd, vn, vp, p, tail_bottom="0")
            max_depth = max(max_depth, depth)
            total_pairs += pairs

        if load_cap > 0.0:
            for out, (net_p, net_n) in output_nets.items():
                ckt.capacitor(f"{p}cl_{out.lower()}_p", net_p, "0", load_cap)
                ckt.capacitor(f"{p}cl_{out.lower()}_n", net_n, "0", load_cap)

        return self._erc_finish(
            McmlCellCircuit(
                circuit=ckt, function=fn, sizing=self.sizing,
                input_nets=input_nets, output_nets=output_nets,
                vdd_net=vdd, vn_net=vn, vp_net=vp, depth=max_depth,
                n_pairs=total_pairs),
            own, erc)

    # -- ERC preflight ---------------------------------------------------------

    def erc_style(self) -> str:
        """The rule family :func:`repro.spice.erc.check_circuit` applies."""
        return self.style

    def _erc_ports(self, cell: McmlCellCircuit) -> list:
        """Every externally-driven net of a standalone cell."""
        ports = []
        for nets in cell.input_nets.values():
            ports.extend(nets if isinstance(nets, tuple) else (nets,))
        for nets in cell.output_nets.values():
            ports.extend(nets if isinstance(nets, tuple) else (nets,))
        for net in (getattr(cell, "vn_net", None),
                    getattr(cell, "vp_net", None),
                    getattr(cell, "sleep_net", None)):
            if net:
                ports.append(net)
        return ports

    def erc_check(self, cell: McmlCellCircuit, telemetry=None):
        """ERC-preflight ``cell`` (raises :class:`ErcError` on violations)."""
        return erc_preflight(cell.circuit, rails=[cell.vdd_net],
                             style=self.erc_style(),
                             ports=self._erc_ports(cell),
                             telemetry=telemetry)

    def _erc_finish(self, cell: McmlCellCircuit, own: bool,
                    erc: Optional[bool]) -> McmlCellCircuit:
        if own and (erc if erc is not None else erc_enabled()):
            self.erc_check(cell)
        return cell

    # -- internals -------------------------------------------------------------

    def _add_tail(self, ckt: Circuit, name: str, top: str, bottom: str,
                  vn: str) -> None:
        s = self.sizing
        ckt.mosfet(name, top, vn, bottom, "0",
                   self._params(s.tail_flavor, s.w_tail, s.l_tail),
                   w=s.w_tail, l=s.l_tail, temp_vt=self.tech.vt_thermal)

    def _add_load(self, ckt: Circuit, name: str, out: str, vdd: str,
                  vp: str) -> None:
        s = self.sizing
        ckt.mosfet(name, out, vp, vdd, vdd,
                   self._params(s.load_flavor, s.w_load, s.l_load),
                   w=s.w_load, l=s.l_load, temp_vt=self.tech.vt_thermal)

    def _build_tree(self, ckt: Circuit, manager: Manager, root: int,
                    out: str, input_nets: Dict[str, Tuple[str, str]],
                    out_nets: Tuple[str, str], vdd: str, vn: str, vp: str,
                    p: str, tail_bottom: str) -> Tuple[int, int]:
        """One output tree: loads, BDD pair network, tail. Returns depth/pairs."""
        out_p, out_n = out_nets
        o = out.lower()
        self._add_load(ckt, f"{p}mload_{o}_p", out_p, vdd, vp)
        self._add_load(ckt, f"{p}mload_{o}_n", out_n, vdd, vp)
        cs_top = f"{p}cs_{o}"

        if manager.is_terminal(root):
            # Constant function: the tail current permanently loads one rail.
            target = out_n if root == ONE_INDEX else out_p
            ckt.resistor(f"{p}rtie_{o}", target, cs_top, 1.0)
        else:
            nodes = manager.reachable([root])
            net_of: Dict[int, str] = {root: cs_top}
            for idx in nodes:
                if idx not in net_of:
                    net_of[idx] = f"{p}n{o}_{idx}"

            def drain_net(idx: int) -> str:
                if idx == ONE_INDEX:
                    return out_n
                if idx == ZERO_INDEX:
                    return out_p
                return net_of[idx]

            s = self.sizing
            for idx in nodes:
                level, low, high = manager.node(idx)
                var = manager.var_name(level)
                in_p, in_n = input_nets[var]
                src = net_of[idx]
                ckt.mosfet(f"{p}m{o}_{idx}h", drain_net(high), in_p, src, "0",
                           self._params(s.pair_flavor, s.w_pair, s.l_pair),
                           w=s.w_pair, l=s.l_pair,
                           temp_vt=self.tech.vt_thermal)
                ckt.mosfet(f"{p}m{o}_{idx}l", drain_net(low), in_n, src, "0",
                           self._params(s.pair_flavor, s.w_pair, s.l_pair),
                           w=s.w_pair, l=s.l_pair,
                           temp_vt=self.tech.vt_thermal)

        self._add_tail(ckt, f"{p}mtail_{o}", cs_top, tail_bottom, vn)

        depth = self._tree_depth(manager, root)
        if depth > MAX_STACK_DEPTH:
            raise CellError(
                f"{out}: BDD stack depth {depth} exceeds the "
                f"{MAX_STACK_DEPTH}-level headroom of a 1.2 V supply; "
                f"decompose the function instead")
        pairs = 0 if manager.is_terminal(root) else len(manager.reachable([root]))
        return depth, pairs

    @staticmethod
    def _tree_depth(manager: Manager, root: int) -> int:
        memo: Dict[int, int] = {}

        def depth(idx: int) -> int:
            if manager.is_terminal(idx):
                return 0
            if idx in memo:
                return memo[idx]
            _, low, high = manager.node(idx)
            result = 1 + max(depth(low), depth(high))
            memo[idx] = result
            return result

        return depth(root)

    # -- sequential ------------------------------------------------------------

    def _build_latch(self, fn: CellFunction, circuit: Optional[Circuit],
                     prefix: str, load_cap: float) -> McmlCellCircuit:
        """MCML D-latch: clocked pair steering between a track pair and a
        cross-coupled hold pair (the textbook CML latch)."""
        if fn.name == "DFF":
            return self._build_dff(fn, circuit, prefix, load_cap)
        if fn.name != "DLATCH":
            raise CellError(
                f"transistor-level generation implemented for DLATCH and "
                f"DFF; {fn.name} is characterised from its latch "
                f"composition")
        own = circuit is None
        ckt = circuit or Circuit(f"{self.style}_dlatch")
        p = f"{prefix}dlatch_" if prefix or not own else ""
        vdd, vn, vp = ("vdd", "vn", "vp") if own else (
            f"{p}vdd", f"{p}vn", f"{p}vp")

        input_nets = {"D": (f"{p}d_p", f"{p}d_n"),
                      "EN": (f"{p}en_p", f"{p}en_n")}
        output_nets = {"Q": (f"{p}q_p", f"{p}q_n")}
        self._latch_stage(ckt, p, "q", input_nets["D"], input_nets["EN"],
                          output_nets["Q"], vdd, vn, vp)
        q_p, q_n = output_nets["Q"]
        if load_cap > 0.0:
            ckt.capacitor(f"{p}cl_q_p", q_p, "0", load_cap)
            ckt.capacitor(f"{p}cl_q_n", q_n, "0", load_cap)

        return McmlCellCircuit(
            circuit=ckt, function=fn, sizing=self.sizing,
            input_nets=input_nets, output_nets=output_nets,
            vdd_net=vdd, vn_net=vn, vp_net=vp, depth=2, n_pairs=3)

    def _latch_stage(self, ckt: Circuit, p: str, tag: str,
                     d_nets: Tuple[str, str], en_nets: Tuple[str, str],
                     out_nets: Tuple[str, str], vdd: str, vn: str,
                     vp: str) -> None:
        """One CML latch: loads, clocked track/hold pairs, tail.

        Transparent (tracking) while the ``en_nets`` differential input
        is high; regenerating (holding) while it is low.
        """
        s = self.sizing
        out_p, out_n = out_nets
        self._add_load(ckt, f"{p}mload_{tag}_p", out_p, vdd, vp)
        self._add_load(ckt, f"{p}mload_{tag}_n", out_n, vdd, vp)
        cs = f"{p}cs_{tag}"
        trk, hld = f"{p}track_{tag}", f"{p}hold_{tag}"
        # Clock pair: EN high selects the track pair, EN low the hold pair.
        ckt.mosfet(f"{p}mck_{tag}_h", trk, en_nets[0], cs, "0",
                   self._params(s.pair_flavor, s.w_pair, s.l_pair),
                   w=s.w_pair, l=s.l_pair, temp_vt=self.tech.vt_thermal)
        ckt.mosfet(f"{p}mck_{tag}_l", hld, en_nets[1], cs, "0",
                   self._params(s.pair_flavor, s.w_pair, s.l_pair),
                   w=s.w_pair, l=s.l_pair, temp_vt=self.tech.vt_thermal)
        # Track pair: steers by D; D=1 pulls out_n low (Q=1).
        ckt.mosfet(f"{p}mtrk_{tag}_h", out_n, d_nets[0], trk, "0",
                   self._params(s.pair_flavor, s.w_pair, s.l_pair),
                   w=s.w_pair, l=s.l_pair, temp_vt=self.tech.vt_thermal)
        ckt.mosfet(f"{p}mtrk_{tag}_l", out_p, d_nets[1], trk, "0",
                   self._params(s.pair_flavor, s.w_pair, s.l_pair),
                   w=s.w_pair, l=s.l_pair, temp_vt=self.tech.vt_thermal)
        # Hold pair: cross-coupled regeneration.
        ckt.mosfet(f"{p}mhld_{tag}_h", out_n, out_p, hld, "0",
                   self._params(s.pair_flavor, s.w_pair, s.l_pair),
                   w=s.w_pair, l=s.l_pair, temp_vt=self.tech.vt_thermal)
        ckt.mosfet(f"{p}mhld_{tag}_l", out_p, out_n, hld, "0",
                   self._params(s.pair_flavor, s.w_pair, s.l_pair),
                   w=s.w_pair, l=s.l_pair, temp_vt=self.tech.vt_thermal)
        self._add_tail(ckt, f"{p}mtail_{tag}", cs, "0", vn)

    def _build_dff(self, fn: CellFunction, circuit: Optional[Circuit],
                   prefix: str, load_cap: float) -> McmlCellCircuit:
        """Master-slave CML flip-flop: two latches on opposite clock
        phases (swap the differential clock rails — inversion is free).

        The master is transparent while CK is low and the slave while CK
        is high, so Q updates on the rising edge; two tail currents, as
        the library datasheet (TAILS_PER_CELL) records.
        """
        own = circuit is None
        ckt = circuit or Circuit(f"{self.style}_dff")
        p = f"{prefix}dff_" if prefix or not own else ""
        vdd, vn, vp = ("vdd", "vn", "vp") if own else (
            f"{p}vdd", f"{p}vn", f"{p}vp")

        input_nets = {"D": (f"{p}d_p", f"{p}d_n"),
                      "CK": (f"{p}ck_p", f"{p}ck_n")}
        output_nets = {"Q": (f"{p}q_p", f"{p}q_n")}
        ck_p, ck_n = input_nets["CK"]
        master = (f"{p}m_p", f"{p}m_n")
        # Master: transparent on CK low -> enable rails swapped.
        self._latch_stage(ckt, p, "m", input_nets["D"], (ck_n, ck_p),
                          master, vdd, vn, vp)
        # Slave: transparent on CK high.
        self._latch_stage(ckt, p, "s", master, (ck_p, ck_n),
                          output_nets["Q"], vdd, vn, vp)

        q_p, q_n = output_nets["Q"]
        if load_cap > 0.0:
            ckt.capacitor(f"{p}cl_q_p", q_p, "0", load_cap)
            ckt.capacitor(f"{p}cl_q_n", q_n, "0", load_cap)

        return McmlCellCircuit(
            circuit=ckt, function=fn, sizing=self.sizing,
            input_nets=input_nets, output_nets=output_nets,
            vdd_net=vdd, vn_net=vn, vp_net=vp, depth=2, n_pairs=6)

    # -- electrical estimates ----------------------------------------------------

    def input_capacitance(self) -> float:
        """Gate capacitance presented by one differential input rail."""
        s = self.sizing
        params = self.tech.flavor(s.pair_flavor)
        return params.cox * s.w_pair * s.l_pair + 2.0 * params.cov * s.w_pair

    def load_resistance(self) -> float:
        """Target output load resistance R = swing / Iss."""
        return self.sizing.swing / self.sizing.iss
