"""Library construction: the three cell families under comparison.

The datasheet numbers encode the published library (Tables 1 and 2 of the
paper) plus the derived quantities the paper states in prose:

* PG-MCML delays are Table 2's column; conventional MCML is ~2.7 % faster
  (the Table 3 block delays: 0.698 ns vs 0.717 ns) because removing the
  sleep device recovers a little tail headroom;
* the CMOS reference is ~12 % faster at block level (0.630 ns vs
  0.717 ns), and its per-cell areas follow the paper's MCML/CMOS area
  ratio column;
* every MCML/PG-MCML cell draws one 50 µA tail per output tree (the Fig. 3
  area-delay optimum); two-phase sequential cells draw two;
* PG-MCML sleep leakage reflects the stacked high-Vt sleep transistor
  with negative VGS (§4), simulated at ~100 pA/tail by
  :func:`repro.cells.characterize.measure_leakage`;
* CMOS static leakage is the 90 nm low-Vt reality that makes the paper's
  Table 3 CMOS number leakage-dominated (~5 nA per placement site).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..errors import CellError
from ..tech import Technology, TECH90
from ..units import fF, nA, ps, uA
from .cell import Cell, DelayModel, PowerModel
from .characterize import characterize_mcml_cell, measure_leakage
from .functions import function
from .layout import LayoutModel
from .mcml import McmlCellGenerator, McmlSizing
from .pgmcml import PgMcmlCellGenerator

#: Table 2: PG-MCML cell delays (seconds) at the 50 µA bias point.
PAPER_PG_DELAYS: Dict[str, float] = {
    "BUF": ps(23.97),
    "DIFF2SINGLE": ps(80.41),
    "AND2": ps(41.34),
    "AND3": ps(68.74),
    "AND4": ps(99.96),
    "MUX2": ps(43.58),
    "MUX4": ps(87.11),
    "MAJ32": ps(82.32),
    "XOR2": ps(44.26),
    "XOR3": ps(84.37),
    "XOR4": ps(109.68),
    "DLATCH": ps(36.32),
    "DFF": ps(53.4),
    "DFFR": ps(69.33),
    "EDFF": ps(63.53),
    "FA": ps(84.49),
}

#: Table 2: MCML-area / CMOS-area ratios the paper reports.
PAPER_AREA_RATIOS: Dict[str, float] = {
    "BUF": 2.4,
    "AND2": 1.9,
    "AND3": 2.1,
    "AND4": 2.8,
    "MUX2": 1.2,
    "MUX4": 1.2,
    "XOR2": 1.1,
    "XOR3": 1.1,
    "XOR4": 1.1,
    "DLATCH": 1.3,
    "DFF": 1.3,
    "DFFR": 1.8,
    "FA": 1.4,
}

#: The 16 cells of the paper's PG-MCML library (Table 2 order).
PG_MCML_CELL_NAMES: Tuple[str, ...] = (
    "BUF", "DIFF2SINGLE", "AND2", "AND3", "AND4", "MUX2", "MUX4",
    "MAJ32", "XOR2", "XOR3", "XOR4", "DLATCH", "DFF", "DFFR", "EDFF", "FA",
)

#: Extra cells our flow also uses (boundary + sleep-tree support).
MCML_SUPPORT_CELLS: Tuple[str, ...] = ("SINGLE2DIFF", "BUFX4")

CMOS_CELL_NAMES: Tuple[str, ...] = (
    "INV", "BUF", "BUFX4", "NAND2", "NAND3", "NAND4", "NOR2", "NOR3",
    "AND2", "AND3", "AND4", "OR2", "MUX2", "MUX4", "MAJ32", "XOR2", "XOR3",
    "XOR4", "XNOR2", "DLATCH", "DFF", "DFFR", "EDFF", "FA", "TIEH", "TIEL",
)

#: Slowdown of PG-MCML vs conventional MCML (Table 3: 0.717/0.698).
PG_VS_MCML_DELAY = 0.717 / 0.698
#: Speedup of the CMOS reference vs PG-MCML (Table 3: 0.630/0.717).
CMOS_VS_PG_DELAY = 0.630 / 0.717

#: Tail trees per cell (one 50 µA tail each).
TAILS_PER_CELL: Dict[str, int] = {
    "DFF": 2, "DFFR": 2, "EDFF": 2, "FA": 2,
}

#: Nominal per-tail current at the Fig. 3 optimum.
NOMINAL_ISS = uA(50)
#: Simulated sleep-mode leakage per tail (stacked high-Vt, negative VGS).
SLEEP_LEAK_PER_TAIL = nA(0.1)
#: Residual data-dependent current sigma per tail — the only
#: data-dependent DC term a balanced MCML gate has left.  Derived from
#: Monte-Carlo transistor-level simulation of Pelgrom-mismatched buffers
#: (:func:`repro.cells.montecarlo.mc_buffer_residual`: ~0.1 uA RMS at
#: Avt = 3.5 mV.um), and consistent with the hand estimate of load
#: mismatch acting through the tail's output conductance.
RESIDUAL_SIGMA_PER_TAIL = nA(100)
#: CMOS static leakage per placement site (low-Vt subthreshold + gate).
CMOS_LEAK_PER_SITE = nA(5)
#: CMOS switching energy: effective 2 fF + 0.6 fF/site at Vdd.
CMOS_ENERGY_BASE_CAP = fF(2.0)
CMOS_ENERGY_SITE_CAP = fF(0.6)

#: Differential input capacitance of an MCML pair input.
MCML_INPUT_CAP = fF(1.2)
#: Input capacitance of a CMOS unit gate input.
CMOS_INPUT_CAP = fF(1.6)
#: Effective CMOS drive resistance (unit drive).
CMOS_DRIVE_RES = 2.5e3
#: Sleep wake time constant of a PG-MCML cell (fraction of a clock).
PG_WAKE_TIME = ps(300)

#: Delays for CMOS-only helper cells (not present in Table 2), seconds.
CMOS_EXTRA_DELAYS: Dict[str, float] = {
    "INV": ps(12.0),
    "BUFX4": ps(24.0),
    "NAND2": ps(16.0),
    "NAND3": ps(22.0),
    "NAND4": ps(28.0),
    "NOR2": ps(18.0),
    "NOR3": ps(26.0),
    "OR2": ps(30.0),
    "XNOR2": ps(38.9),
    "TIEH": ps(1.0),
    "TIEL": ps(1.0),
}

#: Delays for MCML support cells, seconds.
MCML_EXTRA_DELAYS: Dict[str, float] = {
    "SINGLE2DIFF": ps(60.0),
    "BUFX4": ps(30.0),
    "OR2": ps(41.34),   # differential: OR2 == AND2 with swapped rails
}


@dataclass
class Library:
    """A named collection of cell datasheets of one style."""

    name: str
    style: str
    cells: Dict[str, Cell]
    tech: Technology = TECH90

    def cell(self, name: str) -> Cell:
        try:
            return self.cells[name]
        except KeyError:
            known = ", ".join(sorted(self.cells))
            raise CellError(
                f"library {self.name!r} has no cell {name!r}; "
                f"available: {known}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def __iter__(self):
        return iter(self.cells.values())

    def __len__(self) -> int:
        return len(self.cells)

    def names(self) -> List[str]:
        return sorted(self.cells)

    def total_area_um2(self, histogram: Dict[str, int]) -> float:
        """Placed area of an instance-count histogram, µm²."""
        return sum(self.cell(name).area_um2 * count
                   for name, count in histogram.items())

    def datasheet_rows(self) -> List[Tuple[str, float, float]]:
        """(name, area µm², delay ps) rows, Table 2 style."""
        return [(c.name, c.area_um2, c.delay_model.delay(c.input_cap) * 1e12)
                for c in sorted(self.cells.values(), key=lambda c: c.name)]


def _mcml_cell(name: str, style: str, layout: LayoutModel,
               iss_per_tail: float, delay: float) -> Cell:
    fn = function(name if name != "BUFX4" else "BUF")
    tails = TAILS_PER_CELL.get(name, 1)
    iss = iss_per_tail * tails
    drive = 4.0 if name.endswith("X4") else 1.0
    drive_res = 0.40 / (iss_per_tail * drive)
    intrinsic = max(delay - drive_res * MCML_INPUT_CAP, ps(1.0))
    power = PowerModel(
        style=style,
        iss=iss,
        residual_sigma=RESIDUAL_SIGMA_PER_TAIL * (tails ** 0.5),
        sleep_leak=SLEEP_LEAK_PER_TAIL * tails if style == "pgmcml" else 0.0,
        wake_time=PG_WAKE_TIME if style == "pgmcml" else 0.0,
        leak=0.0,
    )
    return Cell(
        name=name, function=fn, style=style,
        sites=layout.sites_for(name), area_um2=layout.area_um2(name),
        input_cap=MCML_INPUT_CAP, drive=drive,
        delay_model=DelayModel(intrinsic, drive_res), power=power)


def _railswap_cell(style: str) -> Cell:
    """The zero-cost differential inversion pseudo cell."""
    return Cell(
        name="RAILSWAP", function=function("RAILSWAP"), style=style,
        sites=1, area_um2=1e-9, input_cap=1e-18,
        delay_model=DelayModel(0.0, 0.0),
        power=PowerModel(style="cmos", leak=0.0, energy_toggle=0.0),
        pseudo=True, source="derived")


def _tie_cell(style: str, name: str) -> Cell:
    """Differential constant: a wire pair tied to the output rails.

    Unlike CMOS tie cells these need no transistors (the constant levels
    Vdd and Vdd-swing exist as rails), so they are pseudo cells.
    """
    return Cell(
        name=name, function=function(name), style=style,
        sites=1, area_um2=1e-9, input_cap=1e-18,
        delay_model=DelayModel(0.0, 0.0),
        power=PowerModel(style="cmos", leak=0.0, energy_toggle=0.0),
        pseudo=True, source="derived")


def _sleepbuf_cell(tech: Technology) -> Cell:
    """CMOS buffer at MCML row height for the sleep distribution tree.

    Sized so that the ~165 tree buffers of the S-box ISE account for the
    ~1000 µm² area delta between the MCML and PG-MCML blocks in Table 3.
    """
    sites = 4
    area = sites * tech.site_width_pgmcml * tech.cell_height * 1e12
    return Cell(
        name="SLEEPBUF", function=function("SLEEPBUF"), style="cmos",
        sites=sites, area_um2=area, input_cap=CMOS_INPUT_CAP, drive=4.0,
        delay_model=DelayModel(ps(20.0), CMOS_DRIVE_RES / 4.0),
        power=PowerModel(
            style="cmos",
            leak=CMOS_LEAK_PER_SITE * sites,
            energy_toggle=(CMOS_ENERGY_BASE_CAP
                           + CMOS_ENERGY_SITE_CAP * sites) * tech.vdd ** 2),
        source="derived")


def build_pg_mcml_library(tech: Technology = TECH90,
                          iss: float = NOMINAL_ISS,
                          include_support: bool = True) -> Library:
    """The paper's 16-cell PG-MCML library (plus flow-support cells)."""
    layout = LayoutModel("pgmcml", tech)
    cells: Dict[str, Cell] = {}
    if iss <= 0.0:
        raise CellError("library tail current must be positive")
    for name in PG_MCML_CELL_NAMES:
        # Delay scales inversely with the tail current (R = swing / Iss).
        delay = PAPER_PG_DELAYS[name] * (NOMINAL_ISS / iss)
        cells[name] = _mcml_cell(name, "pgmcml", layout, iss, delay)
    if include_support:
        for name in MCML_SUPPORT_CELLS + ("OR2",):
            delay = MCML_EXTRA_DELAYS[name] * (NOMINAL_ISS / iss)
            cells[name] = _mcml_cell(name, "pgmcml", layout, iss, delay)
        cells["RAILSWAP"] = _railswap_cell("pgmcml")
        cells["SLEEPBUF"] = _sleepbuf_cell(tech)
        cells["TIEH"] = _tie_cell("pgmcml", "TIEH")
        cells["TIEL"] = _tie_cell("pgmcml", "TIEL")
    return Library(name="pg_mcml_90nm", style="pgmcml", cells=cells,
                   tech=tech)


def build_mcml_library(tech: Technology = TECH90,
                       iss: float = NOMINAL_ISS,
                       include_support: bool = True) -> Library:
    """Conventional (non-gated) MCML: Badel-style, same site counts on
    the narrower MCML site, slightly faster, no sleep mode."""
    layout = LayoutModel("mcml", tech)
    cells: Dict[str, Cell] = {}
    names = PG_MCML_CELL_NAMES + (
        MCML_SUPPORT_CELLS + ("OR2",) if include_support else ())
    for name in names:
        pg_delay = PAPER_PG_DELAYS.get(name, MCML_EXTRA_DELAYS.get(name))
        delay = pg_delay / PG_VS_MCML_DELAY * (NOMINAL_ISS / iss)
        cells[name] = _mcml_cell(name, "mcml", layout, iss, delay)
    if include_support:
        cells["RAILSWAP"] = _railswap_cell("mcml")
        cells["TIEH"] = _tie_cell("mcml", "TIEH")
        cells["TIEL"] = _tie_cell("mcml", "TIEL")
    return Library(name="mcml_90nm", style="mcml", cells=cells, tech=tech)


def build_cmos_library(tech: Technology = TECH90) -> Library:
    """The commercial-style 90 nm static CMOS reference library."""
    layout = LayoutModel("cmos", tech)
    cells: Dict[str, Cell] = {}
    for name in CMOS_CELL_NAMES:
        fn = function(name if name != "BUFX4" else "BUF")
        if name in PAPER_PG_DELAYS:
            delay = PAPER_PG_DELAYS[name] * CMOS_VS_PG_DELAY
        else:
            delay = CMOS_EXTRA_DELAYS[name]
        drive = 4.0 if name.endswith("X4") else 1.0
        drive_res = CMOS_DRIVE_RES / drive
        intrinsic = max(delay - drive_res * CMOS_INPUT_CAP, ps(0.5))
        sites = layout.sites_for(name)
        energy_cap = CMOS_ENERGY_BASE_CAP + CMOS_ENERGY_SITE_CAP * sites
        power = PowerModel(
            style="cmos",
            leak=CMOS_LEAK_PER_SITE * sites,
            energy_toggle=energy_cap * tech.vdd ** 2,
        )
        cells[name] = Cell(
            name=name, function=fn, style="cmos", sites=sites,
            area_um2=layout.area_um2(name), input_cap=CMOS_INPUT_CAP,
            drive=drive, delay_model=DelayModel(intrinsic, drive_res),
            power=power)
    return Library(name="cmos_90nm_ref", style="cmos", cells=cells, tech=tech)


def characterize_library_cell(library: Library, cell_name: str,
                              fanout: int = 1,
                              sizing: Optional[McmlSizing] = None) -> Cell:
    """Re-derive one MCML/PG-MCML cell's datasheet by SPICE simulation.

    Returns an updated :class:`Cell` (the library is not mutated); used
    by the Table 2 benchmark to compare paper-vs-simulated values.
    """
    cell = library.cell(cell_name)
    if library.style == "cmos":
        raise CellError("characterize_library_cell supports MCML styles; "
                        "CMOS gates are characterised via repro.cells.cmos")
    gen_cls = (PgMcmlCellGenerator if library.style == "pgmcml"
               else McmlCellGenerator)
    generator = gen_cls(library.tech, sizing or McmlSizing())
    fn = cell.function
    meas = characterize_mcml_cell(fn, generator, fanout=fanout,
                                  tech=library.tech)
    n_tails = TAILS_PER_CELL.get(cell_name, 1)
    drive_res = meas.swing / max(meas.iss / n_tails, 1e-9)
    intrinsic = max(meas.delay - drive_res * cell.input_cap, 0.0)
    sleep = None
    if library.style == "pgmcml":
        sleep = measure_leakage(fn, generator, asleep=True, tech=library.tech)
    power = PowerModel(
        style=library.style,
        iss=meas.iss,
        residual_sigma=cell.power.residual_sigma,
        sleep_leak=max(sleep, 0.0) if sleep is not None else 0.0,
        wake_time=cell.power.wake_time,
    )
    return cell.with_measurement(DelayModel(intrinsic, drive_res), power)


#: Subthreshold slope used to translate a corner's Vt shift into a
#: leakage ratio (~80 mV/decade at 90 nm).
SUBTHRESHOLD_SLOPE_V = 0.080


def library_at_corner(library: Library, corner) -> Library:
    """Datasheets shifted to a global process corner.

    ``corner`` is a :class:`repro.tech.corners.Corner`.  Delay scales
    inversely with the corner's mobility factor; CMOS and WDDL leakage
    scales exponentially with the threshold shift (subthreshold
    conduction); MCML/PG-MCML tail currents are pinned by the bias
    network, so ``iss`` — and with it the style's static signature — is
    corner-insensitive, which is exactly the §4 robustness claim the
    campaign matrix's corner axis probes.  Pseudo cells (rail swaps,
    ties) pass through unchanged.
    """
    mean_kp = 0.5 * (corner.kp_scale_n + corner.kp_scale_p)
    mean_dvt = 0.5 * (corner.dvt_n + corner.dvt_p)
    if mean_kp <= 0.0:
        raise CellError(f"corner {corner.name!r} has non-positive mobility")
    delay_scale = 1.0 / mean_kp
    leak_scale = 10.0 ** (-mean_dvt / SUBTHRESHOLD_SLOPE_V)
    cells: Dict[str, Cell] = {}
    for name, cell in library.cells.items():
        if cell.pseudo:
            cells[name] = cell
            continue
        dm = DelayModel(cell.delay_model.intrinsic * delay_scale,
                        cell.delay_model.drive_res * delay_scale)
        power = cell.power
        if power.style in ("cmos", "wddl"):
            power = replace(power, leak=power.leak * leak_scale)
        elif power.sleep_leak > 0.0:
            power = replace(power, sleep_leak=min(
                power.sleep_leak * leak_scale, 0.5 * power.iss))
        cells[name] = replace(cell, delay_model=dm, power=power,
                              source="derived")
    return Library(name=f"{library.name}@{corner.name}",
                   style=library.style, cells=cells,
                   tech=corner.technology(library.tech))


#: Style-representative functions the library preflight elaborates: a
#: combinational cell, a stacked cell, and a sequential cell cover every
#: distinct transistor template the generators emit.
_PREFLIGHT_MCML = ("BUF", "NAND2", "DLATCH")
_PREFLIGHT_CMOS = ("INV", "NAND2", "MUX2")
#: WDDL templates: the buffer, a NAND/NOR pair (AND2), and the AOI22
#: compound (XOR2) cover every device pattern the generator emits.
_PREFLIGHT_WDDL = ("BUF", "AND2", "XOR2")


def preflight_library(library: Library, telemetry=None) -> List:
    """ERC the library's transistor templates before a long flow starts.

    Builds style-representative cells with ``library``'s generator and
    runs the :mod:`repro.spice.erc` preflight on each, raising
    :class:`~repro.errors.ErcError` on the first violation.  Called at
    synthesis and campaign start (both have ``erc`` opt-outs) so a
    mis-generated template is caught in milliseconds instead of hours
    into an acquisition run.
    """
    from .cmos import CmosCellGenerator

    reports = []
    if library.style == "cmos":
        generator = CmosCellGenerator(library.tech)
        for name in _PREFLIGHT_CMOS:
            cell = generator.build(name, erc=False)
            reports.append(generator.erc_check(cell, telemetry=telemetry))
    elif library.style == "wddl":
        from .wddl import WddlCellGenerator

        generator = WddlCellGenerator(library.tech)
        for name in _PREFLIGHT_WDDL:
            cell = generator.build(name, erc=False)
            reports.append(generator.erc_check(cell, telemetry=telemetry))
    else:
        gen_cls = (PgMcmlCellGenerator if library.style == "pgmcml"
                   else McmlCellGenerator)
        generator = gen_cls(library.tech)
        for name in _PREFLIGHT_MCML:
            cell = generator.build(function(name), erc=False)
            reports.append(generator.erc_check(cell, telemetry=telemetry))
    return reports
