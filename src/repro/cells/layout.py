"""Standard-cell layout area model.

Both libraries use the row-based template of Badel et al.: fixed cell
height (2.8 µm in our 90 nm technology), width quantised to *placement
sites*.  The PG-MCML site is 5.6 % wider than the MCML site because the
sleep transistor is folded next to the tail current source, sharing its
diffusion (§4/§5 of the paper; Table 1 measures the resulting overhead).

The per-cell site counts below reproduce the published layout areas of
Tables 1 and 2 exactly — they play the role of the library's LEF
abstract.  :func:`estimate_sites` is an independent first-order estimator
(diffusion-shared column packing) used to sanity-check the published
numbers and to extrapolate cells the paper does not list.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..errors import CellError
from ..tech import Technology, TECH90
from .functions import CellFunction, function

#: MCML / PG-MCML cell widths in placement sites (same counts for both
#: families; the families differ in site *width*).  Buffer = 5 sites.
SITE_COUNTS_MCML: Dict[str, int] = {
    "BUF": 5,
    "BUFX4": 9,
    "DIFF2SINGLE": 6,
    "SINGLE2DIFF": 6,
    "AND2": 6,
    "AND3": 9,
    "AND4": 12,
    "OR2": 6,
    "MUX2": 6,
    "MUX4": 14,
    "MAJ32": 12,
    "XOR2": 6,
    "XOR3": 12,
    "XOR4": 14,
    "DLATCH": 6,
    "DFF": 12,
    "DFFR": 18,
    "EDFF": 16,
    "FA": 24,
}

#: Reference static CMOS cell widths in (narrower) CMOS sites.
SITE_COUNTS_CMOS: Dict[str, int] = {
    "INV": 3,
    "BUF": 4,
    "BUFX4": 6,
    "NAND2": 4,
    "NAND3": 5,
    "NAND4": 6,
    "NOR2": 4,
    "NOR3": 5,
    "AND2": 6,
    "AND3": 8,
    "AND4": 8,
    "OR2": 6,
    "MUX2": 9,
    "MUX4": 22,
    "MAJ32": 10,
    "XOR2": 10,
    "XOR3": 20,
    "XOR4": 24,
    "XNOR2": 10,
    "DLATCH": 9,
    "DFF": 18,
    "DFFR": 19,
    "EDFF": 22,
    "FA": 32,
    "TIEH": 2,
    "TIEL": 2,
}

#: WDDL dual-rail cell widths in CMOS sites.  Each cell carries two
#: complementary positive-monotonic CMOS networks (Tiri & Verbauwhede's
#: secure design flow), so the widths run roughly 2x the positive CMOS
#: gate plus a little shared-well overhead.
SITE_COUNTS_WDDL: Dict[str, int] = {
    "BUF": 8,
    "AND2": 12,
    "OR2": 12,
    "XOR2": 16,
    "MUX2": 18,
    "TIEH": 2,
    "TIEL": 2,
}


@dataclass(frozen=True)
class LayoutModel:
    """Area arithmetic for one cell family."""

    style: str
    tech: Technology = TECH90

    def site_width(self) -> float:
        """Placement-site width in metres."""
        if self.style == "mcml":
            return self.tech.site_width_mcml
        if self.style == "pgmcml":
            return self.tech.site_width_pgmcml
        if self.style in ("cmos", "wddl"):
            # WDDL rows are plain CMOS rows: the dual-rail pair lives in
            # two adjacent column groups on the standard site grid.
            return self.tech.site_width_cmos
        raise CellError(f"unknown cell style {self.style!r}")

    def site_counts(self) -> Dict[str, int]:
        if self.style in ("mcml", "pgmcml"):
            return SITE_COUNTS_MCML
        if self.style == "wddl":
            return SITE_COUNTS_WDDL
        return SITE_COUNTS_CMOS

    def sites_for(self, cell_name: str) -> int:
        counts = self.site_counts()
        try:
            return counts[cell_name]
        except KeyError:
            raise CellError(
                f"no layout data for cell {cell_name!r} in style "
                f"{self.style!r}") from None

    def area_um2(self, cell_name: str) -> float:
        """Layout area in µm² (the paper's unit)."""
        sites = self.sites_for(cell_name)
        width_m = sites * self.site_width()
        return width_m * self.tech.cell_height * 1e12

    def width_um(self, cell_name: str) -> float:
        return self.sites_for(cell_name) * self.site_width() * 1e6


def mcml_transistor_count(fn: CellFunction, with_sleep: bool) -> int:
    """Transistors in a generated MCML cell.

    2 per differential pair (one pair per BDD node over all outputs),
    2 PMOS loads per output, one tail source, plus the sleep device.
    """
    from ..bdd import Manager  # local import to avoid a cycle at import time

    if fn.sequential:
        # Latch: clock pair + track pair + cross-coupled hold pair; a DFF
        # is two latches; reset/enable add one more pair each.
        base = {"DLATCH": 3, "DFF": 6, "DFFR": 8, "EDFF": 8}.get(fn.name)
        if base is None:
            raise CellError(f"no MCML topology for sequential {fn.name!r}")
        pairs = base
        loads = 2
    else:
        manager = Manager()
        roots = fn.bdds(manager)
        pairs = len(manager.reachable([b.index for b in roots.values()]))
        loads = 2 * len(fn.outputs)
    count = 2 * pairs + loads + 1
    if with_sleep:
        count += 1
    return count


def estimate_sites(fn: CellFunction, style: str) -> int:
    """First-order width estimate from column packing.

    Each transistor pair occupies roughly 1.1 sites after diffusion
    sharing, plus a fixed tail/load/routing overhead of ~3.5 sites.  The
    estimator tracks the published layouts within about ±40 % — good
    enough to extrapolate new cells, while the library itself uses the
    published counts.
    """
    if style in ("mcml", "pgmcml"):
        transistors = mcml_transistor_count(fn, style == "pgmcml")
        pairs = (transistors - 3) // 2
        return max(4, math.ceil(3.5 + 1.1 * pairs))
    if style == "cmos":
        # Static CMOS: ~2 transistors per literal; half a site per device.
        n_inputs = len(fn.inputs)
        return max(2, math.ceil(1.0 + 1.4 * n_inputs))
    if style == "wddl":
        # Two complementary CMOS networks sharing the well ties.
        n_inputs = len(fn.inputs)
        return max(4, math.ceil(2.0 * (1.0 + 1.4 * n_inputs)))
    raise CellError(f"unknown cell style {style!r}")


def library_area_um2(cell_names: Dict[str, int], style: str,
                     tech: Technology = TECH90) -> float:
    """Total placed area of a cell-name -> instance-count histogram."""
    model = LayoutModel(style, tech)
    total = 0.0
    for name, count in cell_names.items():
        if count < 0:
            raise CellError(f"negative instance count for {name!r}")
        total += model.area_um2(name) * count
    return total


def _check_registry() -> None:
    for name in (list(SITE_COUNTS_MCML) + list(SITE_COUNTS_CMOS)
                 + list(SITE_COUNTS_WDDL)):
        if name in ("BUFX4",):
            continue
        function(name)  # raises CellError on unknown function names


_check_registry()
