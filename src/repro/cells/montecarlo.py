"""Monte-Carlo analysis of MCML cells under device mismatch.

Closes the loop between the technology's Pelgrom model and the library
datasheet: the residual data-dependent supply current that powers the
Fig. 6 side-channel study
(:data:`repro.cells.library.RESIDUAL_SIGMA_PER_TAIL`) is not a free
parameter — it is what transistor-level simulation of mismatch-sampled
cells produces.

For each Monte-Carlo instance of a buffer we solve the DC operating
point with the output steered each way and record the *difference* in
supply current — the data-dependent term an attacker could hope to see.
A perfectly matched cell has exactly zero difference; mismatch in the
loads, the pair, and the tail leaves tens of nanoamps.  The module also
measures the input-referred offset (the classic differential-pair
metric) and the delay spread.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..errors import CharacterizationError
from ..spice import DC, solve_dc
from ..tech import MismatchModel, Technology, TECH90
from .functions import function
from .mcml import McmlCellGenerator, McmlSizing


@dataclass
class McmlMonteCarloResult:
    """Distributions over Monte-Carlo instances of one cell."""

    n_samples: int
    #: per-instance |I(out=1) - I(out=0)| supply-current difference, A
    residual_currents: List[float]
    #: per-instance mean supply current, A
    mean_currents: List[float]

    @property
    def residual_sigma(self) -> float:
        """RMS data-dependent current over the population, amperes."""
        n = len(self.residual_currents)
        return math.sqrt(sum(r * r for r in self.residual_currents) / n)

    @property
    def residual_max(self) -> float:
        return max(abs(r) for r in self.residual_currents)

    @property
    def iss_sigma(self) -> float:
        """Absolute tail-current spread across instances, amperes."""
        n = len(self.mean_currents)
        mean = sum(self.mean_currents) / n
        var = sum((i - mean) ** 2 for i in self.mean_currents) / n
        return math.sqrt(var)

    def __repr__(self) -> str:
        return (f"McmlMonteCarloResult(n={self.n_samples}, "
                f"residual sigma {self.residual_sigma * 1e9:.3g} nA, "
                f"Iss sigma {self.iss_sigma * 1e6:.3g} uA)")


def mc_buffer_residual(n_samples: int = 16,
                       sizing: Optional[McmlSizing] = None,
                       tech: Technology = TECH90,
                       avt: float = 3.5e-9, akp: float = 1.0e-9,
                       seed: int = 0) -> McmlMonteCarloResult:
    """Monte-Carlo residual-current analysis of the MCML buffer.

    For each sample: draw one mismatched buffer, solve DC with the input
    high and with the input low (same devices!), and record the supply
    current difference.
    """
    if n_samples < 2:
        raise CharacterizationError("need at least two Monte-Carlo samples")
    sizing = sizing or McmlSizing()
    fn = function("BUF")
    residuals: List[float] = []
    means: List[float] = []
    for k in range(n_samples):
        mismatch = MismatchModel(avt=avt, akp=akp, seed=seed + 1000 * k)
        generator = McmlCellGenerator(tech, sizing, mismatch=mismatch)
        cell = generator.build(fn)
        ckt = cell.circuit
        ckt.v("vdd", cell.vdd_net, tech.vdd)
        ckt.v("vvn", cell.vn_net, sizing.vn)
        ckt.v("vvp", cell.vp_net, sizing.vp)
        hi, lo = sizing.input_high(tech), sizing.input_low(tech)
        # Drive with time-selectable levels: t=0 -> input 1, t=1 -> input 0.
        from ..spice import PWL
        in_p, in_n = cell.input_nets["A"]
        ckt.v("vin_p", in_p, PWL([(0.0, hi), (1.0, lo)]))
        ckt.v("vin_n", in_n, PWL([(0.0, lo), (1.0, hi)]))
        i_one = solve_dc(ckt, t=0.0).current("vdd")
        i_zero = solve_dc(ckt, t=1.0).current("vdd")
        residuals.append(i_one - i_zero)
        means.append(0.5 * (i_one + i_zero))
    return McmlMonteCarloResult(n_samples=n_samples,
                                residual_currents=residuals,
                                mean_currents=means)


def mc_input_offset(n_samples: int = 12,
                    sizing: Optional[McmlSizing] = None,
                    tech: Technology = TECH90, avt: float = 3.5e-9,
                    akp: float = 1.0e-9, seed: int = 0) -> List[float]:
    """Input-referred offset of mismatch-sampled buffers, volts.

    Bisects the differential input voltage at which the differential
    output crosses zero; matched cells cross at exactly 0 V.
    """
    sizing = sizing or McmlSizing()
    fn = function("BUF")
    offsets: List[float] = []
    for k in range(n_samples):
        mismatch = MismatchModel(avt=avt, akp=akp, seed=seed + 1000 * k)
        generator = McmlCellGenerator(tech, sizing, mismatch=mismatch)
        cell = generator.build(fn)
        ckt = cell.circuit
        ckt.v("vdd", cell.vdd_net, tech.vdd)
        ckt.v("vvn", cell.vn_net, sizing.vn)
        ckt.v("vvp", cell.vp_net, sizing.vp)
        common = tech.vdd - sizing.swing / 2.0
        from ..spice import PWL
        # Parameterise the differential drive by time: vd = t - 0.05 V.
        span = 0.05
        in_p, in_n = cell.input_nets["A"]
        ckt.v("vin_p", in_p, PWL([(0.0, common - span),
                                  (2 * span, common + span)]))
        ckt.v("vin_n", in_n, PWL([(0.0, common + span),
                                  (2 * span, common - span)]))
        out_p, out_n = cell.output_nets["Y"]

        def diff_at(t: float) -> float:
            op = solve_dc(ckt, t=t)
            return op[out_p] - op[out_n]

        lo_t, hi_t = 0.0, 2 * span
        d_lo = diff_at(lo_t)
        for _ in range(24):
            mid = 0.5 * (lo_t + hi_t)
            d_mid = diff_at(mid)
            if d_lo * d_mid <= 0.0:
                hi_t = mid
            else:
                lo_t, d_lo = mid, d_mid
        crossing_t = 0.5 * (lo_t + hi_t)
        vd_at_crossing = 2.0 * (crossing_t - span)  # input diff voltage
        offsets.append(-vd_at_crossing)
    return offsets
