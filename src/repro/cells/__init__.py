"""Standard cells: functions, generators, layout, characterisation, libraries.

This package is the heart of the reproduction.  It models the three cell
families the paper compares:

* **static CMOS** — the commercial 90 nm reference library;
* **MCML** — Badel-style differential current-mode cells (constant tail
  current, BDD-structured NMOS network, triode PMOS loads);
* **PG-MCML** — the paper's contribution: MCML plus a fine-grain sleep
  transistor stacked on the tail current source (topology (d) of Fig. 2).

Cell *datasheets* (area, delay, current, leakage) are held by
:class:`~repro.cells.library.Library`.  Datasheet geometry reproduces the
published layouts (Tables 1 and 2); electrical values can either be taken
from the paper (``source="paper"``) or re-derived by simulating the
generated transistor netlists with :mod:`repro.spice`
(:mod:`repro.cells.characterize`).
"""

from .functions import CellFunction, FUNCTIONS, function
from .cell import Cell, DelayModel, PowerModel
from .layout import (
    LayoutModel,
    SITE_COUNTS_MCML,
    SITE_COUNTS_CMOS,
    SITE_COUNTS_WDDL,
)
from .mcml import McmlCellGenerator, McmlSizing
from .pgmcml import PgMcmlCellGenerator, PowerGateTopology
from .cmos import CmosCellGenerator
from .bias import BiasPoint, solve_bias
from .characterize import (
    CellMeasurement,
    characterize_mcml_cell,
    characterize_mcml_dff,
    measure_leakage,
)
from .montecarlo import (
    McmlMonteCarloResult,
    mc_buffer_residual,
    mc_input_offset,
)
from .library import (
    Library,
    build_cmos_library,
    build_mcml_library,
    build_pg_mcml_library,
    library_at_corner,
    preflight_library,
)
from .wddl import WddlCellGenerator, build_wddl_library
from .io import load_library, save_library, library_to_dict, library_from_dict
from .liberty import write_liberty

__all__ = [
    "CellFunction",
    "FUNCTIONS",
    "function",
    "Cell",
    "DelayModel",
    "PowerModel",
    "LayoutModel",
    "SITE_COUNTS_MCML",
    "SITE_COUNTS_CMOS",
    "SITE_COUNTS_WDDL",
    "McmlCellGenerator",
    "McmlSizing",
    "PgMcmlCellGenerator",
    "PowerGateTopology",
    "CmosCellGenerator",
    "BiasPoint",
    "solve_bias",
    "CellMeasurement",
    "characterize_mcml_cell",
    "characterize_mcml_dff",
    "measure_leakage",
    "McmlMonteCarloResult",
    "mc_buffer_residual",
    "mc_input_offset",
    "Library",
    "build_cmos_library",
    "build_mcml_library",
    "build_pg_mcml_library",
    "build_wddl_library",
    "WddlCellGenerator",
    "library_at_corner",
    "preflight_library",
    "load_library",
    "save_library",
    "library_to_dict",
    "library_from_dict",
    "write_liberty",
]
