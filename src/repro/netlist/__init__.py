"""Gate-level netlists, event-driven simulation, timing, VCD and SDF.

This package replaces the gate-level half of the paper's flow: the
post-synthesis netlist (Design Compiler output), the ModelSim logic
simulation that produced the VCD stimuli, the SDF back-annotation, and
the static timing numbers reported in Table 3.
"""

from .graph import GateNetlist, Instance, Net
from .logicsim import LogicSimulator, Transition, SimulationTrace
from .timing import static_timing, TimingReport, wire_delay
from .vcd import write_vcd, read_vcd
from .sdf import annotate_delays, write_sdf, read_sdf
from .verilog import write_verilog, read_verilog
from .equivalence import (
    check_equivalence,
    netlist_to_bdds,
    verify_against_tables,
)

__all__ = [
    "GateNetlist",
    "Instance",
    "Net",
    "LogicSimulator",
    "Transition",
    "SimulationTrace",
    "static_timing",
    "TimingReport",
    "wire_delay",
    "write_vcd",
    "read_vcd",
    "annotate_delays",
    "write_sdf",
    "read_sdf",
    "write_verilog",
    "read_verilog",
    "check_equivalence",
    "netlist_to_bdds",
    "verify_against_tables",
]
