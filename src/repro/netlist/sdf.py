"""SDF-style delay annotation.

The paper back-annotates the post-P&R netlist with SDF delays before the
ModelSim run.  This module computes per-instance IOPATH delays (datasheet
delay into the routed load) and reads/writes them in a minimal SDF 2.1
dialect, so a netlist simulated on one machine can be re-simulated with
identical timing elsewhere.
"""

from __future__ import annotations

import re
from typing import Dict, TextIO

from ..errors import NetlistError
from .graph import GateNetlist

DelayMap = Dict[str, float]  # instance name -> output delay, seconds


def annotate_delays(netlist: GateNetlist) -> DelayMap:
    """IOPATH delay per instance from datasheet + actual net loads."""
    return {
        inst.name: netlist.instance_delay(inst)
        for inst in netlist.instances.values()
    }


def write_sdf(stream: TextIO, netlist: GateNetlist,
              delays: DelayMap = None) -> None:
    """Write a minimal SDF file for ``netlist``."""
    delays = delays if delays is not None else annotate_delays(netlist)
    stream.write('(DELAYFILE\n')
    stream.write(f'  (DESIGN "{netlist.name}")\n')
    stream.write('  (TIMESCALE 1ps)\n')
    for name, delay in sorted(delays.items()):
        inst = netlist.instances.get(name)
        if inst is None:
            raise NetlistError(f"SDF delay for unknown instance {name!r}")
        ps_value = delay * 1e12
        stream.write(
            f'  (CELL (CELLTYPE "{inst.cell.name}") (INSTANCE {name})\n'
            f'    (DELAY (ABSOLUTE (IOPATH * * ({ps_value:.3f}))))\n'
            f'  )\n')
    stream.write(')\n')


_CELL_RE = re.compile(
    r'\(CELL \(CELLTYPE "(?P<cell>[^"]+)"\) \(INSTANCE (?P<inst>\S+)\)')
_IOPATH_RE = re.compile(r'\(IOPATH \* \* \((?P<ps>[-0-9.eE]+)\)\)')


def read_sdf(stream: TextIO) -> DelayMap:
    """Parse the dialect written by :func:`write_sdf`."""
    delays: DelayMap = {}
    current: str = ""
    for line in stream:
        cell_match = _CELL_RE.search(line)
        if cell_match:
            current = cell_match.group("inst")
            continue
        path_match = _IOPATH_RE.search(line)
        if path_match:
            if not current:
                raise NetlistError("IOPATH before any CELL in SDF")
            delays[current] = float(path_match.group("ps")) * 1e-12
            current = ""
    return delays


def apply_delays(simulator, delays: DelayMap) -> None:
    """Override a :class:`LogicSimulator`'s per-instance delays."""
    unknown = [n for n in delays if n not in simulator.netlist.instances]
    if unknown:
        raise NetlistError(f"SDF names not in netlist: {unknown[:5]}")
    simulator._delays.update(delays)
