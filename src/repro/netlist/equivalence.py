"""Formal combinational equivalence checking.

Builds ROBDDs for a netlist's outputs by symbolic evaluation in
topological order — every cell's function applied to its input BDDs —
and compares canonical forms.  Because ROBDDs are canonical, two
equivalent netlists produce literally the same node index: equivalence
checking is pointer comparison, and a mismatch yields a concrete
counterexample assignment.

This is the LEC step of a real flow (Formality/Conformal): the mapped,
buffered, rail-swapped netlist is verified against its specification
truth table without simulating 2^n patterns.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..bdd import BDD, Manager
from ..errors import NetlistError
from .graph import GateNetlist


def netlist_to_bdds(netlist: GateNetlist, manager: Optional[Manager] = None,
                    input_order: Optional[Sequence[str]] = None
                    ) -> Tuple[Manager, Dict[str, BDD]]:
    """Symbolically evaluate a combinational netlist.

    Returns the manager and one BDD per net (inputs included).
    Sequential cells are rejected — equivalence here is combinational.
    """
    if netlist.sequential_instances():
        raise NetlistError(
            f"{netlist.name}: combinational equivalence only; netlist "
            f"has sequential cells")
    manager = manager or Manager()
    order = list(input_order) if input_order is not None else \
        list(netlist.primary_inputs)
    missing = set(netlist.primary_inputs) - set(order)
    if missing:
        raise NetlistError(f"input_order missing {sorted(missing)}")

    values: Dict[str, BDD] = {}
    for name in order:
        if name not in manager.variables:
            manager.add_variable(name)
        values[name] = manager.var(name)

    for inst in netlist.levelize():
        assignment = {pin: values[inst.pins[pin]]
                      for pin in inst.cell.inputs}
        outputs = _apply_function(manager, inst.cell.function, assignment)
        for pin, bdd in outputs.items():
            values[inst.pins[pin]] = bdd
    return manager, values


def _apply_function(manager: Manager, fn, assignment: Dict[str, BDD]
                    ) -> Dict[str, BDD]:
    """Shannon-expand a cell function over BDD-valued inputs.

    Builds each output as the disjunction over satisfying rows of the
    cell's truth table — cells have at most 6 inputs, so this is cheap
    and completely generic.
    """
    pins = list(fn.inputs)
    n = len(pins)
    results: Dict[str, BDD] = {out: manager.false for out in fn.outputs}
    for code in range(1 << n):
        env = {pin: bool((code >> (n - 1 - k)) & 1)
               for k, pin in enumerate(pins)}
        row_outputs = fn.evaluate(env)
        active = [out for out in fn.outputs if row_outputs[out]]
        if not active:
            continue
        term = manager.true
        for pin in pins:
            literal = assignment[pin]
            term = term & (literal if env[pin] else ~literal)
        for out in active:
            results[out] = results[out] | term
    return results


def verify_against_tables(netlist: GateNetlist,
                          output_nets: Dict[str, str],
                          tables: Dict[str, Sequence[int]],
                          input_order: Sequence[str]) -> Optional[Dict[str, bool]]:
    """Formally check mapped outputs against specification truth tables.

    ``output_nets`` maps spec output names to netlist nets;
    ``input_order`` gives the MSB-first variable order of the tables.
    Returns ``None`` when equivalent, otherwise a counterexample input
    assignment for the first differing output.
    """
    manager, values = netlist_to_bdds(netlist, input_order=input_order)
    for out_name, net in output_nets.items():
        try:
            implementation = values[net]
        except KeyError:
            raise NetlistError(f"no net {net!r} for output {out_name!r}")
        spec = manager.from_truth_table(list(tables[out_name]),
                                        list(input_order))
        if implementation.index == spec.index:
            continue
        miter = implementation ^ spec
        return _any_sat(manager, miter, input_order)
    return None


def check_equivalence(netlist_a: GateNetlist, netlist_b: GateNetlist,
                      outputs_a: Sequence[str], outputs_b: Sequence[str],
                      input_order: Optional[Sequence[str]] = None
                      ) -> Optional[Dict[str, bool]]:
    """Check two netlists compute the same functions on shared inputs.

    Output lists pair up positionally.  Returns ``None`` when
    equivalent, else a counterexample assignment.
    """
    if len(outputs_a) != len(outputs_b):
        raise NetlistError("output lists must pair up")
    order = list(input_order) if input_order is not None else \
        sorted(set(netlist_a.primary_inputs)
               | set(netlist_b.primary_inputs))
    manager = Manager(order)
    _, values_a = netlist_to_bdds(netlist_a, manager, order)
    _, values_b = netlist_to_bdds(netlist_b, manager, order)
    for net_a, net_b in zip(outputs_a, outputs_b):
        f_a, f_b = values_a[net_a], values_b[net_b]
        if f_a.index == f_b.index:
            continue
        return _any_sat(manager, f_a ^ f_b, order)
    return None


def _any_sat(manager: Manager, bdd: BDD,
             variables: Sequence[str]) -> Dict[str, bool]:
    """One satisfying assignment of a non-FALSE BDD (a counterexample)."""
    if bdd.is_false:
        raise NetlistError("no counterexample exists for a FALSE miter")
    assignment: Dict[str, bool] = {name: False for name in variables}
    node = bdd
    while not node.is_terminal:
        if not node.high.is_false:
            assignment[node.var] = True
            node = node.high
        else:
            assignment[node.var] = False
            node = node.low
    return assignment
