"""Gate-level netlist graph.

A :class:`GateNetlist` is a flat graph of cell :class:`Instance`\\ s
connected by :class:`Net`\\ s.  Each net has exactly one driver (a cell
output pin or a primary input) and any number of sinks.  The graph knows
how to levelise itself for evaluation, compute per-net load capacitance
(sink input caps plus a fat-wire routing term), and summarise itself as
the cell histograms behind Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cells import Cell, Library
from ..errors import NetlistError

#: Routing capacitance added per sink (fat differential wires), farads.
WIRE_CAP_PER_SINK = 0.5e-15


@dataclass
class Net:
    """A signal wire."""

    name: str
    driver: Optional[Tuple[str, str]] = None  # (instance, output pin)
    is_primary_input: bool = False
    sinks: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def fanout(self) -> int:
        return len(self.sinks)


@dataclass
class Instance:
    """One placed cell."""

    name: str
    cell: Cell
    pins: Dict[str, str]  # pin -> net name

    def input_nets(self) -> List[str]:
        return [self.pins[p] for p in self.cell.inputs]

    def output_nets(self) -> List[str]:
        return [self.pins[p] for p in self.cell.outputs]


class GateNetlist:
    """A flat mapped netlist over one library."""

    def __init__(self, name: str, library: Library):
        self.name = name
        self.library = library
        self.instances: Dict[str, Instance] = {}
        self.nets: Dict[str, Net] = {}
        self.primary_inputs: List[str] = []
        self.primary_outputs: List[str] = []
        self._counter = 0

    # -- construction -----------------------------------------------------------

    def net(self, name: str) -> Net:
        """Get or create a net."""
        if name not in self.nets:
            self.nets[name] = Net(name)
        return self.nets[name]

    def new_net(self, hint: str = "n") -> Net:
        """Create a fresh uniquely-named net."""
        while True:
            self._counter += 1
            name = f"{hint}{self._counter}"
            if name not in self.nets:
                return self.net(name)

    def add_primary_input(self, name: str) -> Net:
        net = self.net(name)
        if net.driver is not None:
            raise NetlistError(f"net {name!r} already driven by {net.driver}")
        if not net.is_primary_input:
            net.is_primary_input = True
            self.primary_inputs.append(name)
        return net

    def add_primary_output(self, name: str) -> Net:
        net = self.net(name)
        if name not in self.primary_outputs:
            self.primary_outputs.append(name)
        return net

    def add_instance(self, cell_name: str, pins: Dict[str, str],
                     name: Optional[str] = None) -> Instance:
        """Instantiate ``cell_name`` with pin -> net-name connections."""
        cell = self.library.cell(cell_name)
        if name is None:
            self._counter += 1
            name = f"u{self._counter}_{cell_name.lower()}"
        if name in self.instances:
            raise NetlistError(f"duplicate instance name {name!r}")
        missing = [p for p in (*cell.inputs, *cell.outputs) if p not in pins]
        if missing:
            raise NetlistError(
                f"{name} ({cell_name}): unconnected pins {missing}")
        unknown = [p for p in pins
                   if p not in cell.inputs and p not in cell.outputs]
        if unknown:
            raise NetlistError(
                f"{name} ({cell_name}): unknown pins {unknown}")
        inst = Instance(name=name, cell=cell, pins=dict(pins))
        for pin in cell.inputs:
            self.net(pins[pin]).sinks.append((name, pin))
        for pin in cell.outputs:
            net = self.net(pins[pin])
            if net.driver is not None or net.is_primary_input:
                raise NetlistError(
                    f"net {pins[pin]!r} already driven; cannot also drive "
                    f"from {name}.{pin}")
            net.driver = (name, pin)
        self.instances[name] = inst
        return inst

    def move_sink(self, net_name: str, sink: Tuple[str, str],
                  new_net_name: str) -> None:
        """Re-home one (instance, pin) sink onto another net."""
        net = self.nets[net_name]
        if sink not in net.sinks:
            raise NetlistError(
                f"{sink} is not a sink of net {net_name!r}")
        net.sinks.remove(sink)
        self.net(new_net_name).sinks.append(sink)
        inst_name, pin = sink
        self.instances[inst_name].pins[pin] = new_net_name

    # -- validation ----------------------------------------------------------------

    def validate(self) -> None:
        for name, net in self.nets.items():
            if net.driver is None and not net.is_primary_input:
                raise NetlistError(f"net {name!r} has no driver")
        for out in self.primary_outputs:
            if out not in self.nets:
                raise NetlistError(f"primary output {out!r} has no net")

    # -- analysis --------------------------------------------------------------------

    def cell_histogram(self, include_pseudo: bool = False) -> Dict[str, int]:
        """Instance counts per cell type (the Table 3 'Cells' row input)."""
        hist: Dict[str, int] = {}
        for inst in self.instances.values():
            if inst.cell.pseudo and not include_pseudo:
                continue
            hist[inst.cell.name] = hist.get(inst.cell.name, 0) + 1
        return hist

    def total_cells(self) -> int:
        """Physical cell count (rail-swap pseudo cells excluded)."""
        return sum(1 for inst in self.instances.values()
                   if not inst.cell.pseudo)

    def total_area_um2(self) -> float:
        return sum(inst.cell.area_um2 for inst in self.instances.values()
                   if not inst.cell.pseudo)

    def load_cap(self, net_name: str) -> float:
        """Load capacitance of a net: sink pins plus routing."""
        net = self.nets[net_name]
        cap = WIRE_CAP_PER_SINK * net.fanout
        for inst_name, _pin in net.sinks:
            cap += self.instances[inst_name].cell.input_cap
        return cap

    def instance_delay(self, inst: Instance) -> float:
        """Cell delay of ``inst`` into its (worst) output load."""
        worst = 0.0
        for out_pin in inst.cell.outputs:
            worst = max(worst, self.load_cap(inst.pins[out_pin]))
        return inst.cell.delay_model.delay(worst)

    def levelize(self) -> List[Instance]:
        """Topological order of combinational instances.

        Sequential cell outputs act as sources (their Q only changes on a
        clock edge), so registers do not create combinational cycles.
        """
        order: List[Instance] = []
        state: Dict[str, int] = {}  # 0 unvisited, 1 visiting, 2 done

        def visit(inst: Instance) -> None:
            mark = state.get(inst.name, 0)
            if mark == 2:
                return
            if mark == 1:
                raise NetlistError(
                    f"combinational loop through instance {inst.name!r}")
            state[inst.name] = 1
            for net_name in inst.input_nets():
                net = self.nets[net_name]
                if net.driver is None:
                    continue
                driver = self.instances[net.driver[0]]
                if not driver.cell.is_sequential:
                    visit(driver)
            state[inst.name] = 2
            order.append(inst)

        # Iterative wrapper to dodge recursion limits on deep mux trees.
        import sys
        limit = sys.getrecursionlimit()
        needed = len(self.instances) + 100
        if needed > limit:
            sys.setrecursionlimit(needed)
        try:
            for inst in self.instances.values():
                if not inst.cell.is_sequential:
                    visit(inst)
        finally:
            if needed > limit:
                sys.setrecursionlimit(limit)
        return order

    def sequential_instances(self) -> List[Instance]:
        return [i for i in self.instances.values() if i.cell.is_sequential]

    def stats(self) -> Dict[str, float]:
        """Summary dict used by synthesis reports."""
        return {
            "cells": float(self.total_cells()),
            "area_um2": self.total_area_um2(),
            "nets": float(len(self.nets)),
            "sequential": float(len(self.sequential_instances())),
        }

    def __repr__(self) -> str:
        return (f"GateNetlist({self.name!r}: {self.total_cells()} cells, "
                f"{len(self.nets)} nets, lib={self.library.name})")
