"""Static timing analysis.

Computes the longest combinational path through a mapped netlist —
the "Delay" row of Table 3.  Path endpoints are primary inputs /
sequential outputs to primary outputs / sequential inputs; each instance
contributes its datasheet delay into the actual net load.

When a placement is supplied, each net additionally contributes an
Elmore wire delay computed from its half-perimeter length — the
post-P&R timing picture, with the fat-wire capacitance of differential
routing included through the technology's per-length constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import NetlistError
from .graph import GateNetlist, Instance

#: Wire resistance per length (minimum-width intermediate metal), ohm/m.
WIRE_RES_PER_M = 2.0e5


def _net_hpwl(netlist: GateNetlist, placement, net_name: str) -> float:
    """Half-perimeter length of one net under ``placement``, metres."""
    net = netlist.nets[net_name]
    points = []
    if net.driver is not None and net.driver[0] in placement.cells:
        points.append(placement.cells[net.driver[0]].center)
    for inst_name, _pin in net.sinks:
        cell = placement.cells.get(inst_name)
        if cell is not None:
            points.append(cell.center)
    if len(points) < 2:
        return 0.0
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def wire_delay(netlist: GateNetlist, placement, net_name: str) -> float:
    """Elmore delay of one routed net.

    ``0.5 * R_wire * C_wire`` for the distributed wire itself plus
    ``R_wire * C_sinks`` for the lumped pin load at the far end;
    differential nets carry doubled capacitance (fat-wire pair).
    """
    length = _net_hpwl(netlist, placement, net_name)
    if length == 0.0:
        return 0.0
    tech = netlist.library.tech
    differential = netlist.library.style in ("mcml", "pgmcml", "wddl")
    c_per_m = tech.cwire * (2.0 if differential else 1.0)
    r_total = WIRE_RES_PER_M * length
    c_wire = c_per_m * length
    c_sinks = sum(netlist.instances[i].cell.input_cap
                  for i, _ in netlist.nets[net_name].sinks)
    return 0.5 * r_total * c_wire + r_total * c_sinks


@dataclass
class TimingReport:
    """Critical-path summary."""

    netlist_name: str
    critical_delay: float
    critical_path: List[str]  # instance names source -> sink
    arrival_times: Dict[str, float]  # per net

    @property
    def critical_delay_ns(self) -> float:
        return self.critical_delay * 1e9

    def slack(self, clock_period: float) -> float:
        return clock_period - self.critical_delay

    def __repr__(self) -> str:
        return (f"TimingReport({self.netlist_name}: "
                f"{self.critical_delay_ns:.4g} ns through "
                f"{len(self.critical_path)} stages)")


def static_timing(netlist: GateNetlist, input_arrival: float = 0.0,
                  placement=None) -> TimingReport:
    """Longest-path arrival-time propagation in topological order.

    With ``placement`` (a :class:`repro.synth.Placement`), every cell's
    output additionally pays the Elmore delay of its routed net.
    """
    arrival: Dict[str, float] = {}
    through: Dict[str, Optional[Tuple[str, str]]] = {}

    def out_delay(inst: Instance, net: str) -> float:
        delay = netlist.instance_delay(inst)
        if placement is not None:
            delay += wire_delay(netlist, placement, net)
        return delay

    for name in netlist.primary_inputs:
        arrival[name] = input_arrival
        through[name] = None
    for inst in netlist.sequential_instances():
        # Register outputs launch at clk->q (the instance delay).
        for out_pin in inst.cell.outputs:
            net = inst.pins[out_pin]
            arrival[net] = input_arrival + out_delay(inst, net)
            through[net] = (inst.name, "")

    for inst in netlist.levelize():
        worst_in = None
        worst_t = input_arrival
        for net_name in inst.input_nets():
            t = arrival.get(net_name, input_arrival)
            if worst_in is None or t > worst_t:
                worst_in, worst_t = net_name, t
        for out_pin in inst.cell.outputs:
            net = inst.pins[out_pin]
            t_out = worst_t + out_delay(inst, net)
            if t_out > arrival.get(net, -1.0):
                arrival[net] = t_out
                through[net] = (inst.name, worst_in or "")

    if not arrival:
        raise NetlistError(f"{netlist.name}: nothing to time")

    # Endpoints: primary outputs and sequential data inputs.
    endpoints: List[Tuple[str, float]] = []
    for name in netlist.primary_outputs:
        endpoints.append((name, arrival.get(name, input_arrival)))
    for inst in netlist.sequential_instances():
        for pin in inst.cell.inputs:
            net = inst.pins[pin]
            endpoints.append((net, arrival.get(net, input_arrival)))
    if not endpoints:
        endpoints = [(n, t) for n, t in arrival.items()]

    end_net, worst = max(endpoints, key=lambda item: item[1])

    # Reconstruct the path backwards through the `through` links.
    path: List[str] = []
    cursor: Optional[str] = end_net
    guard = 0
    while cursor is not None and guard <= len(netlist.instances) + 2:
        guard += 1
        link = through.get(cursor)
        if link is None:
            break
        inst_name, prev_net = link
        path.append(inst_name)
        cursor = prev_net or None
    path.reverse()

    return TimingReport(
        netlist_name=netlist.name,
        critical_delay=worst - input_arrival,
        critical_path=path,
        arrival_times=arrival,
    )
