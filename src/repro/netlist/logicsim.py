"""Event-driven gate-level logic simulation.

Replaces the paper's ModelSim step: simulate the mapped netlist with
per-instance delays (cell datasheet delay into the actual net load),
record every net transition with its timestamp, and expose the activity
both as a transition stream (consumed by :mod:`repro.power` to build
current traces, and by the VCD writer) and as per-net toggle counts.

The simulator uses inertial-style delay: if an instance re-evaluates
before its previously scheduled output change has matured, the stale
event is superseded (narrow glitches inside one cell delay are
swallowed, as real gates do).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from .graph import GateNetlist, Instance


@dataclass(frozen=True)
class Transition:
    """One net value change."""

    time: float
    net: str
    value: bool
    instance: Optional[str] = None  # driving instance, None for stimuli


@dataclass
class SimulationTrace:
    """The recorded activity of one simulation run."""

    transitions: List[Transition] = field(default_factory=list)
    final_values: Dict[str, bool] = field(default_factory=dict)
    duration: float = 0.0

    def toggles(self, net: Optional[str] = None) -> int:
        """Total transitions, optionally restricted to one net."""
        if net is None:
            return len(self.transitions)
        return sum(1 for t in self.transitions if t.net == net)

    def toggle_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for t in self.transitions:
            counts[t.net] = counts.get(t.net, 0) + 1
        return counts

    def instance_toggles(self) -> Dict[str, int]:
        """Output transitions per driving instance (CMOS energy events)."""
        counts: Dict[str, int] = {}
        for t in self.transitions:
            if t.instance is not None:
                counts[t.instance] = counts.get(t.instance, 0) + 1
        return counts

    def value_of(self, net: str, time: float) -> bool:
        """Net value at ``time`` (False before any transition)."""
        value = False
        for t in self.transitions:
            if t.net != net:
                continue
            if t.time > time:
                break
            value = t.value
        return value

    def in_window(self, t0: float, t1: float) -> List[Transition]:
        return [t for t in self.transitions if t0 <= t.time < t1]


class LogicSimulator:
    """Event-driven simulator bound to one :class:`GateNetlist`."""

    def __init__(self, netlist: GateNetlist):
        netlist.validate()
        self.netlist = netlist
        self._order = netlist.levelize()
        self._delays: Dict[str, float] = {
            inst.name: netlist.instance_delay(inst)
            for inst in netlist.instances.values()
        }
        self.values: Dict[str, bool] = {n: False for n in netlist.nets}
        self.states: Dict[str, Dict[str, bool]] = {
            inst.name: {pin: False for pin in inst.cell.function.state_pins}
            for inst in netlist.sequential_instances()
        }
        self._prev_clock: Dict[str, bool] = {
            inst.name: False for inst in netlist.sequential_instances()
        }
        self._pending: Dict[Tuple[str, str], int] = {}
        # Fast combinational evaluation: per instance, the input net
        # names (MSB-first) and one packed truth table per output pin.
        self._tables: Dict[str, Tuple[List[str], List[Tuple[str, int]]]] = {}
        table_cache: Dict[str, Tuple[Tuple[str, ...], List[Tuple[str, int]]]] = {}
        for inst in netlist.instances.values():
            fn = inst.cell.function
            if fn.sequential or len(fn.inputs) > 8:
                continue
            cached = table_cache.get(fn.name)
            if cached is None:
                packed: List[Tuple[str, int]] = []
                for out in fn.outputs:
                    bits = fn.truth_table(out)
                    value = 0
                    for code, bit in enumerate(bits):
                        value |= bit << code
                    packed.append((out, value))
                cached = (fn.inputs, packed)
                table_cache[fn.name] = cached
            pins, packed = cached
            nets = [inst.pins[p] for p in pins]
            self._tables[inst.name] = (nets, packed)

    # -- helpers ------------------------------------------------------------------

    def _inputs_of(self, inst: Instance) -> Dict[str, bool]:
        return {pin: self.values[inst.pins[pin]]
                for pin in inst.cell.inputs}

    def _eval_outputs(self, inst: Instance) -> Dict[str, bool]:
        fast = self._tables.get(inst.name)
        if fast is not None:
            nets, packed = fast
            values = self.values
            code = 0
            for net in nets:
                code = (code << 1) | values[net]
            return {out: bool((table >> code) & 1)
                    for out, table in packed}
        assignment = self._inputs_of(inst)
        if inst.cell.is_sequential:
            assignment.update(self.states[inst.name])
        return inst.cell.function.evaluate(assignment)

    # -- settling ------------------------------------------------------------------

    def reset(self) -> None:
        """Force every net and state to logic 0 (the discharged die).

        This mirrors the SPICE initial condition of the paper's trace
        campaign: all internal nodes start at ground, so the transitions
        of the subsequent run charge exactly the nets that evaluate to 1.
        """
        for net in self.values:
            self.values[net] = False
        for state in self.states.values():
            for pin in state:
                state[pin] = False
        for name in self._prev_clock:
            self._prev_clock[name] = False
        self._pending = {}

    def initialize(self, inputs: Dict[str, bool],
                   states: Optional[Dict[str, Dict[str, bool]]] = None) -> None:
        """Set primary inputs and settle all nets with zero delay."""
        for name, value in inputs.items():
            if name not in self.netlist.nets:
                raise SimulationError(f"unknown primary input {name!r}")
            self.values[name] = bool(value)
        if states:
            for inst_name, state in states.items():
                self.states[inst_name].update(state)
        # Sequential outputs first (they are sources), then levelised logic.
        for inst in self.netlist.sequential_instances():
            for pin, value in self._eval_outputs(inst).items():
                self.values[inst.pins[pin]] = value
            clock = inst.cell.function.clock_pin
            if clock:
                self._prev_clock[inst.name] = self.values[inst.pins[clock]]
        for _ in range(2):  # two passes settle latch transparency
            for inst in self._order:
                for pin, value in self._eval_outputs(inst).items():
                    self.values[inst.pins[pin]] = value

    # -- event-driven run ------------------------------------------------------------

    def run(self, stimuli: Sequence[Tuple[float, str, bool]],
            duration: Optional[float] = None,
            record_initial: bool = False) -> SimulationTrace:
        """Apply timed primary-input events and simulate until quiescence.

        ``stimuli`` is a sequence of ``(time, net, value)``.  Events the
        netlist produces after the last stimulus are still processed;
        ``duration`` only bounds the reported trace duration (and errors
        if activity persists beyond five times that horizon, catching
        oscillations).
        """
        queue: List[Tuple[float, int, str, bool, Optional[str]]] = []
        seq = 0
        for time, net, value in stimuli:
            if net not in self.netlist.nets:
                raise SimulationError(f"unknown stimulus net {net!r}")
            heapq.heappush(queue, (float(time), seq, net, bool(value), None))
            seq += 1

        # (inst, out pin) -> seq id of the newest scheduled change; shared
        # with _react via an attribute so re-evaluations can supersede.
        pending: Dict[Tuple[str, str], int] = {}
        self._pending = pending
        trace = SimulationTrace()
        if record_initial:
            for name, value in self.values.items():
                trace.transitions.append(Transition(0.0, name, value))
        horizon = (duration or 0.0) * 5.0
        last_time = 0.0

        def schedule(time: float, net: str, value: bool, inst: Instance,
                     pin: str) -> None:
            nonlocal seq
            heapq.heappush(queue, (time, seq, net, value, inst.name))
            pending[(inst.name, pin)] = seq
            seq += 1

        while queue:
            time, event_id, net, value, src = heapq.heappop(queue)
            if horizon and time > horizon:
                raise SimulationError(
                    f"activity persists past 5x duration ({horizon:.3g} s); "
                    f"oscillating netlist?")
            if src is not None:
                driver = self.netlist.nets[net].driver
                if driver is not None:
                    key = (driver[0], driver[1])
                    if pending.get(key) != event_id:
                        continue  # superseded by a newer evaluation
                    del pending[key]
            if self.values[net] == value:
                continue
            self.values[net] = value
            last_time = max(last_time, time)
            trace.transitions.append(Transition(time, net, value, src))
            for inst_name, pin in self.netlist.nets[net].sinks:
                inst = self.netlist.instances[inst_name]
                self._react(inst, pin, time, schedule)

        self._pending = {}
        trace.final_values = dict(self.values)
        trace.duration = duration if duration is not None else last_time
        trace.transitions.sort(key=lambda t: (t.time, t.net))
        return trace

    def _react(self, inst: Instance, pin: str, time: float, schedule) -> None:
        fn = inst.cell.function
        if fn.sequential:
            self._react_sequential(inst, pin, time, schedule)
            return
        delay = self._delays[inst.name]
        outputs = self._eval_outputs(inst)
        for out_pin, value in outputs.items():
            net = inst.pins[out_pin]
            key = (inst.name, out_pin)
            # Schedule when the mature value will differ from the current
            # net value, or when a stale pending change must be undone;
            # either way the newest event supersedes the old one.
            if value != self.values[net] or key in self._pending:
                schedule(time + delay, net, value, inst, out_pin)

    def _react_sequential(self, inst: Instance, pin: str, time: float,
                          schedule) -> None:
        fn = inst.cell.function
        name = inst.name
        inputs = self._inputs_of(inst)
        update = False
        if fn.name == "DLATCH":
            update = True  # transparent latch reacts to any input change
        else:
            if pin == fn.clock_pin:
                now = inputs[fn.clock_pin]
                if now and not self._prev_clock[name]:
                    update = True
                self._prev_clock[name] = now
            elif pin == "RN" and not inputs["RN"]:
                update = True  # asynchronous reset assertion
        if update:
            self.states[name] = fn.next_state(inputs, self.states[name])
        outputs = self._eval_outputs(inst)
        delay = self._delays[name]
        for out_pin, value in outputs.items():
            net = inst.pins[out_pin]
            if value != self.values[net]:
                schedule(time + delay, net, value, inst, out_pin)
