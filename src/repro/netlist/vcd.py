"""Minimal VCD (value change dump) writer and reader.

The paper's flow stores the custom instruction's inputs in VCD format and
feeds them to the fast-SPICE simulator; our pipeline does the same
between the logic simulator and the power-trace composer, so traces can
also be inspected with standard waveform viewers.

Only the subset needed for single-bit wires is implemented: header,
``$var wire 1``, timescale in femtoseconds, and ``#time`` value-change
sections.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, TextIO

from ..errors import NetlistError
from .logicsim import SimulationTrace, Transition

#: VCD time unit used by the writer, seconds.
TIMESCALE = 1e-15

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Compact VCD identifier for signal ``index``."""
    if index < 0:
        raise NetlistError("negative VCD identifier index")
    chars: List[str] = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        chars.append(_ID_CHARS[rem])
    return "".join(reversed(chars))


def write_vcd(stream: TextIO, trace: SimulationTrace,
              nets: Optional[Iterable[str]] = None,
              module: str = "repro") -> None:
    """Serialise a simulation trace as VCD."""
    selected = sorted(set(nets) if nets is not None
                      else {t.net for t in trace.transitions})
    ids = {net: _identifier(i) for i, net in enumerate(selected)}

    stream.write("$date\n  repro PG-MCML reproduction\n$end\n")
    stream.write("$timescale 1 fs $end\n")
    stream.write(f"$scope module {module} $end\n")
    for net in selected:
        stream.write(f"$var wire 1 {ids[net]} {net} $end\n")
    stream.write("$upscope $end\n$enddefinitions $end\n")

    stream.write("$dumpvars\n")
    initial: Dict[str, bool] = {net: False for net in selected}
    for t in trace.transitions:
        if t.time == 0.0 and t.net in initial:
            initial[t.net] = t.value
    for net in selected:
        stream.write(f"{int(initial[net])}{ids[net]}\n")
    stream.write("$end\n")

    last_time: Optional[int] = None
    for t in sorted(trace.transitions, key=lambda x: (x.time, x.net)):
        if t.net not in ids or t.time == 0.0:
            continue
        ticks = int(round(t.time / TIMESCALE))
        if ticks != last_time:
            stream.write(f"#{ticks}\n")
            last_time = ticks
        stream.write(f"{int(t.value)}{ids[t.net]}\n")


def read_vcd(stream: TextIO) -> SimulationTrace:
    """Parse a (single-bit, single-scope) VCD back into a trace."""
    names: Dict[str, str] = {}
    transitions: List[Transition] = []
    initial: Dict[str, bool] = {}
    time = 0.0
    in_definitions = True
    seen_timestamp = False
    for raw in stream:
        line = raw.strip()
        if not line:
            continue
        if in_definitions:
            if line.startswith("$var"):
                parts = line.split()
                if len(parts) < 6 or parts[1] != "wire":
                    raise NetlistError(f"unsupported $var line: {line!r}")
                names[parts[3]] = parts[4]
            elif line.startswith("$enddefinitions"):
                in_definitions = False
            continue
        if line.startswith("$"):
            continue
        if line.startswith("#"):
            time = int(line[1:]) * TIMESCALE
            seen_timestamp = True
            continue
        value_char, ident = line[0], line[1:]
        if value_char not in "01":
            raise NetlistError(f"unsupported value change: {line!r}")
        if ident not in names:
            raise NetlistError(f"undeclared VCD identifier {ident!r}")
        value = value_char == "1"
        if seen_timestamp:
            transitions.append(Transition(time, names[ident], value))
        else:
            # $dumpvars block: initial values, not transitions.
            initial[names[ident]] = value

    trace = SimulationTrace(transitions=transitions)
    trace.duration = time
    trace.final_values = dict(initial)
    for t in transitions:
        trace.final_values[t.net] = t.value
    return trace
