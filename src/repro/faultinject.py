"""Deterministic fault injection for the SPICE engine.

Robustness code is only trustworthy if its failure paths are exercised,
and real circuits fail rarely and unreproducibly.  This module wraps
:class:`~repro.spice.devices.Device` objects in proxies that corrupt
their terminal currents on demand — NaN/Inf outputs, perturbed
characteristics (and therefore perturbed finite-difference Jacobians),
or call-parity oscillation that forces Newton non-convergence — inside a
chosen simulation-time window.  Everything is deterministic: no RNG, no
wall-clock, so a failing run replays exactly.

Usage::

    from repro.faultinject import Fault, FaultInjector

    injector = FaultInjector(circuit, [
        Fault("mn1", "oscillate", t_start=ns(1), t_stop=ns(1.2),
              trip_limit=1),
    ])
    with injector:                       # wraps the faulted devices
        result = run_transient(circuit, tstop=ns(3), dt=ps(20),
                               on_step=injector.set_time)

``trip_limit`` bounds how many Newton solve *attempts* see the fault
(each :meth:`FaultInjector.set_time` call inside the window counts one),
which models transient numerical pathologies that a retry at a smaller
timestep cures — the scenario the transient engine's step-halving ladder
exists for.  ``trip_limit=None`` keeps the fault active for the whole
window.

For DC solves there is no stepping callback: either leave ``now`` at its
default 0.0 (faults windowed over t=0 are active) or call
:meth:`set_time` by hand before :func:`~repro.spice.dc.solve_dc`.
"""

from __future__ import annotations

import math
import os
import signal
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from .errors import CircuitError
from .spice.circuit import Circuit
from .spice.devices import Device

#: Supported fault kinds.
FAULT_KINDS = ("nan", "inf", "open", "perturb", "oscillate")


@dataclass
class Fault:
    """One scheduled corruption of one device.

    Parameters
    ----------
    device:
        Name of the device to corrupt.
    kind:
        ``"nan"`` / ``"inf"`` — all terminal currents become NaN / Inf;
        ``"open"`` — the device stops conducting entirely;
        ``"perturb"`` — a deterministic nonlinear current of amplitude
        ``magnitude`` is superimposed between the first and last
        terminals, corrupting both the residual and the finite-difference
        Jacobian; ``"oscillate"`` — a current of ``magnitude`` whose sign
        flips on every device evaluation, making the Newton residual
        inconsistent with its Jacobian so the solve cannot converge.
    t_start, t_stop:
        Active window ``[t_start, t_stop)`` in simulation seconds.
    magnitude:
        Amplitude for ``"perturb"``/``"oscillate"``, amperes.
    trip_limit:
        Number of solve attempts (``set_time`` calls inside the window)
        the fault stays active for; ``None`` means the whole window.
    """

    device: str
    kind: str
    t_start: float = 0.0
    t_stop: float = math.inf
    magnitude: float = 1e-3
    trip_limit: Optional[int] = None
    trips: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise CircuitError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {FAULT_KINDS}")
        if self.t_stop <= self.t_start:
            raise CircuitError("fault window is empty (t_stop <= t_start)")

    def in_window(self, t: float) -> bool:
        return self.t_start <= t < self.t_stop

    @property
    def expired(self) -> bool:
        return self.trip_limit is not None and self.trips > self.trip_limit


class FaultyDevice(Device):
    """Proxy that applies an injector's active faults to a real device."""

    def __init__(self, inner: Device, injector: "FaultInjector"):
        super().__init__(inner.name, inner.terminals)
        self.inner = inner
        self._injector = injector
        self._calls = 0

    def currents(self, volts: Sequence[float]) -> List[float]:
        self._calls += 1
        base = list(self.inner.currents(volts))
        for fault in self._injector.faults_for(self.inner.name):
            base = self._apply(fault, base, volts)
        return base

    def capacitances(self):
        return self.inner.capacitances()

    def _apply(self, fault: Fault, base: List[float],
               volts: Sequence[float]) -> List[float]:
        if fault.kind == "nan":
            return [math.nan] * len(base)
        if fault.kind == "inf":
            return [math.inf] * len(base)
        if fault.kind == "open":
            return [0.0] * len(base)
        if fault.kind == "perturb":
            bump = fault.magnitude * math.sin(
                1e3 * (volts[0] - volts[-1]) + 1.0)
            out = list(base)
            out[0] += bump
            out[-1] -= bump
            return out
        # "oscillate": sign flips with call parity, so the residual seen
        # by Newton disagrees with the finite-difference Jacobian.
        sign = 1.0 if self._calls % 2 == 0 else -1.0
        out = list(base)
        out[0] += sign * fault.magnitude
        out[-1] -= sign * fault.magnitude
        return out


class FaultInjector:
    """Schedules faults against a circuit and arms/disarms the proxies.

    Works as a context manager (arm on entry, disarm on exit) or via
    explicit :meth:`arm` / :meth:`disarm`.  Pass :meth:`set_time` as the
    ``on_step`` callback of :func:`~repro.spice.transient.run_transient`
    so windowed faults track simulation time.
    """

    def __init__(self, circuit: Circuit,
                 faults: Iterable[Fault] = ()):
        self.circuit = circuit
        self.faults: List[Fault] = []
        self.now = 0.0
        self._originals: Dict[str, Device] = {}
        self._armed = False
        for fault in faults:
            self.add(fault)

    def add(self, fault: Fault) -> Fault:
        device = self.circuit.device(fault.device)  # raises if unknown
        if self._armed and fault.device not in self._originals:
            proxy = FaultyDevice(device, self)
            self._originals[fault.device] = self.circuit.swap_device(
                fault.device, proxy)
        self.faults.append(fault)
        return fault

    # -- arming --------------------------------------------------------------

    def arm(self) -> "FaultInjector":
        """Swap every faulted device for its proxy (idempotent)."""
        if self._armed:
            return self
        for fault in self.faults:
            if fault.device in self._originals:
                continue
            inner = self.circuit.device(fault.device)
            proxy = FaultyDevice(inner, self)
            self._originals[fault.device] = self.circuit.swap_device(
                fault.device, proxy)
        self._armed = True
        return self

    def disarm(self) -> None:
        """Restore the original devices."""
        for name, original in self._originals.items():
            self.circuit.swap_device(name, original)
        self._originals.clear()
        self._armed = False

    def __enter__(self) -> "FaultInjector":
        return self.arm()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.disarm()

    # -- scheduling ----------------------------------------------------------

    def set_time(self, t: float) -> None:
        """Advance simulation time; counts one solve attempt per call."""
        self.now = float(t)
        for fault in self.faults:
            if fault.trip_limit is not None and fault.in_window(self.now):
                fault.trips += 1

    def faults_for(self, device_name: str) -> List[Fault]:
        """The faults currently active on the named device."""
        return [f for f in self.faults
                if f.device == device_name and f.in_window(self.now)
                and not f.expired]

    def reset(self) -> None:
        """Clear trip counters and rewind time (fresh campaign)."""
        self.now = 0.0
        for fault in self.faults:
            fault.trips = 0


class WorkerKillSwitch:
    """SIGKILL forked worker processes, a bounded number of times.

    Chaos testing the acquisition pool's crash recovery needs workers
    that die *mid-campaign*, deterministically enough to assert on, and
    never take the parent (or a thread-backend worker, which *is* the
    parent) down with them.  The switch is created in the parent and
    inherited by fork; :meth:`poke` is then called from worker code
    (e.g. a :class:`~repro.sca.acquisition.TraceAcquirer` subclass at
    the top of ``acquire``) and SIGKILLs the calling process iff

    * the caller is **not** the process that built the switch (so the
      serial path, the thread backend, and the pool's parent survive),
    * at least ``kill_on_call`` pokes have happened in this process
      image (lets the worker finish some chunks first), and
    * a kill token remains.

    The kill budget lives on disk as one sentinel file per kill:
    ``os.unlink`` is atomic, so each token kills at most one process no
    matter how many workers race for it, and replacement workers forked
    after the budget is drained run to completion — which is exactly the
    "campaign completes byte-identical after N crashes" scenario.
    """

    def __init__(self, path: str, kills: int = 1, kill_on_call: int = 1):
        if kills < 0:
            raise CircuitError(f"kills must be >= 0: {kills}")
        if kill_on_call < 1:
            raise CircuitError(f"kill_on_call must be >= 1: {kill_on_call}")
        self.path = str(path)
        self.kill_on_call = kill_on_call
        self.parent_pid = os.getpid()
        self.calls = 0
        self._tokens = 0
        self.arm(kills)

    def _token(self, index: int) -> str:
        return f"{self.path}.kill{index}"

    def arm(self, kills: int) -> None:
        """(Re)write the kill budget: one sentinel file per kill."""
        for index in range(self._tokens):
            try:
                os.unlink(self._token(index))
            except OSError:
                pass
        self._tokens = kills
        for index in range(kills):
            with open(self._token(index), "w") as handle:
                handle.write(str(self.parent_pid))

    def pending(self) -> int:
        """Kill tokens not yet consumed."""
        return sum(1 for index in range(self._tokens)
                   if os.path.exists(self._token(index)))

    def poke(self) -> None:
        """Die (SIGKILL) if this is a forked worker and a token remains."""
        self.calls += 1
        if os.getpid() == self.parent_pid or self.calls < self.kill_on_call:
            return
        for index in range(self._tokens):
            try:
                os.unlink(self._token(index))
            except OSError:
                continue
            os.kill(os.getpid(), signal.SIGKILL)
        return


#: Ways :func:`corrupt_jsonl_record` can damage a line.
CORRUPTION_MODES = ("garbage", "truncate", "flip")


def corrupt_jsonl_record(path: str, index: int,
                         mode: str = "garbage") -> str:
    """Deterministically damage line ``index`` of a JSONL file in place.

    Chaos tooling for append-only stores (the job ledger, obs streams):
    ``"garbage"`` replaces the line with non-JSON bytes, ``"truncate"``
    cuts it mid-record (a torn write), and ``"flip"`` alters one
    character so the json still parses but any embedded checksum (the
    ledger's crc envelope) no longer matches.  Returns the original
    line so tests can assert on what was destroyed.  Line numbering
    counts every physical line, zero-based; negative indices address
    from the end as usual.
    """
    if mode not in CORRUPTION_MODES:
        raise CircuitError(
            f"unknown corruption mode {mode!r}; "
            f"choose from {CORRUPTION_MODES}")
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    try:
        original = lines[index]
    except IndexError:
        raise CircuitError(
            f"{path} has {len(lines)} lines; cannot corrupt line {index}")
    stripped = original.rstrip("\n")
    if mode == "garbage":
        damaged = "#### not json ####"
    elif mode == "truncate":
        damaged = stripped[:max(1, len(stripped) // 2)]
    else:  # "flip": change one digit-ish character, keep valid json
        position = len(stripped) // 2
        for offset, char in enumerate(stripped[position:]):
            if char.isdigit():
                replacement = "1" if char == "0" else "0"
                cut = position + offset
                damaged = stripped[:cut] + replacement \
                    + stripped[cut + 1:]
                break
        else:
            damaged = stripped[:-2] + '~"'
    lines[index] = damaged + "\n"
    with open(path, "w", encoding="utf-8") as handle:
        handle.writelines(lines)
    return stripped
