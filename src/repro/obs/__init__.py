"""Structured observability: spans, metrics, sinks, schema.

``repro.obs`` is the measurement substrate under every performance and
robustness claim the flow makes: the SPICE solvers, the transient
engine, the acquisition worker pool, and the campaign/checkpoint
runners all accept one :class:`Telemetry` handle (explicitly threaded,
never global) and describe what they did through it.

The load-bearing contract — telemetry on vs off is byte-identical in
every simulation and trace output, including kill-and-resume — is
enforced by ``tests/test_obs_invariance.py``.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .schema import SchemaError, span_tree, validate_record, validate_stream
from .sinks import JsonlSink, MemorySink, NullSink, Sink, read_jsonl
from .telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    default_telemetry,
    muted_telemetry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SchemaError",
    "span_tree",
    "validate_record",
    "validate_stream",
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "Sink",
    "read_jsonl",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
    "default_telemetry",
    "muted_telemetry",
]
