"""Schema validation for telemetry records.

Every record a :class:`~repro.obs.telemetry.Telemetry` emits is a flat
JSON object with a ``kind`` discriminator.  This module validates both
the per-record shape and the cross-record structure (unique span ids,
resolvable parents, child windows nested inside parent windows,
monotonically increasing sequence numbers) — the contract the CI
schema-validation test enforces on real traces.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..errors import ReproError


class SchemaError(ReproError):
    """A telemetry record or stream violates the schema."""

    default_error_code = "E_SCHEMA"


_REQUIRED: Dict[str, Dict[str, type]] = {
    "span": {"name": str, "span_id": int, "t_start": float,
             "t_end": float, "attrs": dict, "seq": int},
    "event": {"name": str, "t": float, "attrs": dict, "seq": int},
    "heartbeat": {"worker": str, "t": float, "attrs": dict, "seq": int},
    "progress": {"text": str, "t": float, "seq": int},
    "metrics": {"registry": dict, "t": float, "seq": int},
}

_METRIC_TYPES = ("counter", "gauge", "histogram")


def validate_record(record: Dict) -> None:
    """Validate one record's shape; raise :class:`SchemaError` if bad."""
    if not isinstance(record, dict):
        raise SchemaError(f"record is not an object: {record!r}")
    kind = record.get("kind")
    if kind not in _REQUIRED:
        raise SchemaError(
            f"unknown record kind {kind!r} (expected one of "
            f"{sorted(_REQUIRED)})")
    for field, typ in _REQUIRED[kind].items():
        if field not in record:
            raise SchemaError(f"{kind} record missing field {field!r}")
        value = record[field]
        if typ is float:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise SchemaError(
                    f"{kind}.{field} must be numeric, got {value!r}")
            if not math.isfinite(value):
                raise SchemaError(f"{kind}.{field} is not finite: {value!r}")
        elif not isinstance(value, typ) or isinstance(value, bool) \
                and typ is int:
            raise SchemaError(
                f"{kind}.{field} must be {typ.__name__}, got {value!r}")
    if kind == "span":
        parent = record.get("parent_id")
        if parent is not None and not isinstance(parent, int):
            raise SchemaError(f"span.parent_id must be int or null: {parent!r}")
        if record["t_end"] < record["t_start"]:
            raise SchemaError(
                f"span {record['name']!r} ends before it starts "
                f"({record['t_end']} < {record['t_start']})")
    if kind == "metrics":
        for name, entry in record["registry"].items():
            if not isinstance(entry, dict) \
                    or entry.get("type") not in _METRIC_TYPES:
                raise SchemaError(
                    f"metrics entry {name!r} has invalid type "
                    f"{entry.get('type') if isinstance(entry, dict) else entry!r}")


#: Child spans may start/end a hair outside the parent window because
#: both timestamps come from separate monotonic() calls; allow the
#: clock's practical granularity.
_NEST_SLACK = 1e-6


def validate_stream(records: Sequence[Dict]) -> Dict[int, Dict]:
    """Validate a whole record stream; returns ``{span_id: span}``.

    Checks per-record shape, unique span ids, resolvable parent
    references, child time windows nested inside their parents, and
    strictly increasing ``seq`` numbers.

    A stream may interleave records from several emitters (the job
    service's shared events file: every worker appends with its own
    ``src`` label and its own seq counter).  Records are partitioned by
    ``src`` and each partition is validated as an independent
    sub-stream; span references never cross partitions.  Single-source
    streams (the common case — no ``src`` field at all) behave exactly
    as before.
    """
    groups: Dict[Optional[str], List[Dict]] = {}
    for record in records:
        if not isinstance(record, dict):
            raise SchemaError(f"record is not an object: {record!r}")
        src = record.get("src")
        if src is not None and not isinstance(src, str):
            raise SchemaError(f"src must be a string: {src!r}")
        groups.setdefault(src, []).append(record)
    merged: Dict[int, Dict] = {}
    for group in groups.values():
        spans = _validate_substream(group)
        if len(groups) == 1:
            return spans
        for span_id, span in spans.items():
            # Multi-source streams: ids are per-emitter, so qualify
            # them to keep the merged mapping collision-free.
            merged[(span.get("src"), span_id)] = span
    return merged


def _validate_substream(records: Sequence[Dict]) -> Dict[int, Dict]:
    spans: Dict[int, Dict] = {}
    last_seq: Optional[int] = None
    for record in records:
        validate_record(record)
        seq = record["seq"]
        if last_seq is not None and seq <= last_seq:
            raise SchemaError(
                f"seq numbers must increase: {seq} after {last_seq}")
        last_seq = seq
        if record["kind"] == "span":
            span_id = record["span_id"]
            if span_id in spans:
                raise SchemaError(f"duplicate span_id {span_id}")
            spans[span_id] = record
    for span in spans.values():
        parent_id = span.get("parent_id")
        if parent_id is None:
            continue
        parent = spans.get(parent_id)
        if parent is None:
            raise SchemaError(
                f"span {span['span_id']} ({span['name']!r}) references "
                f"missing parent {parent_id}")
        if span["t_start"] < parent["t_start"] - _NEST_SLACK \
                or span["t_end"] > parent["t_end"] + _NEST_SLACK:
            raise SchemaError(
                f"span {span['span_id']} ({span['name']!r}) window "
                f"[{span['t_start']}, {span['t_end']}] escapes parent "
                f"{parent_id} ({parent['name']!r}) window "
                f"[{parent['t_start']}, {parent['t_end']}]")
    _reject_parent_cycles(spans)
    return spans


def _reject_parent_cycles(spans: Dict[int, Dict]) -> None:
    for start in spans:
        seen = set()
        node: Optional[int] = start
        while node is not None:
            if node in seen:
                raise SchemaError(f"parent cycle through span {node}")
            seen.add(node)
            node = spans[node].get("parent_id") if node in spans else None


def span_tree(records: Sequence[Dict]) -> List[Dict]:
    """Validated span forest as nested dicts (children in seq order).

    Each node: ``{"name", "attrs", "children": [...]}`` — timestamps and
    ids are stripped, which is exactly the determinism the equivalence
    tests compare across serial/thread/fork runs.  Multi-source streams
    forest each emitter separately, in first-appearance order.
    """
    sources: List[Optional[str]] = []
    for record in records:
        if isinstance(record, dict) and record.get("src") not in sources:
            sources.append(record.get("src"))
    if len(sources) > 1:
        forest: List[Dict] = []
        for src in sources:
            forest.extend(span_tree(
                [r for r in records if r.get("src") == src]))
        return forest
    spans = validate_stream(records)
    by_parent: Dict[Optional[int], List[Dict]] = {}
    for span in sorted(spans.values(), key=lambda s: s["seq"]):
        by_parent.setdefault(span.get("parent_id"), []).append(span)

    def build(span: Dict) -> Dict:
        return {
            "name": span["name"],
            "attrs": span["attrs"],
            "children": [build(c)
                         for c in by_parent.get(span["span_id"], [])],
        }

    return [build(root) for root in by_parent.get(None, [])]
