"""The `Telemetry` handle: hierarchical spans + metrics + progress.

One :class:`Telemetry` object is threaded *explicitly* through the
layers it observes (solver systems, acquisition pools, campaign and
checkpoint runners) — there is no global registry and no ambient
context variable in the hot path.  Code that is handed no telemetry
falls back to the module-level :data:`NULL_TELEMETRY` singleton, whose
every method is a near-zero-cost no-op, so instrumented code needs no
``if telemetry is not None`` guards.

Design rules, enforced by the test suite:

* **Invariance** — telemetry must never influence the computation it
  observes.  Spans carry monotonic timestamps and attributes only; no
  RNG, no branching on sink state.  Simulation and trace outputs are
  byte-identical with telemetry on, off, or redirected.
* **Deterministic trees** — span *structure* (names, nesting, order,
  attributes other than timestamps) is a pure function of the work
  performed.  Worker-pool spans are captured per chunk in an isolated
  collector and re-emitted by the parent in chunk-index order
  (:meth:`Telemetry.adopt`), so fork/thread runs produce the same tree
  as serial runs.
* **Monotonic time** — ``t_start``/``t_end`` come from
  :func:`time.monotonic`; a child span's window nests inside its
  parent's (see :mod:`repro.obs.schema`).
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .sinks import MemorySink, Sink


class _NullSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, key: str, value) -> None:
        pass

    def update(self, attrs: Dict) -> None:
        pass


class _NullMetric:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()

    def inc(self, n=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_METRIC = _NullMetric()


class NullTelemetry:
    """The disabled handle: every operation is a cached no-op.

    A single shared instance (:data:`NULL_TELEMETRY`) is the default for
    every instrumented layer, so the disabled path costs one attribute
    lookup and one no-op call — no allocation, no branching, no I/O.
    """

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        pass

    def heartbeat(self, worker: str, **attrs) -> None:
        pass

    def progress(self, text: str) -> None:
        pass

    def counter(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def timer(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def adopt(self, records: Sequence[Dict],
              extra_attrs: Optional[Dict] = None) -> None:
        pass

    def emit_metrics(self) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


#: The process-wide disabled handle.  Instrumented layers use this as
#: their default so the no-telemetry path never allocates.
NULL_TELEMETRY = NullTelemetry()


class Span:
    """One live span: context manager that emits on exit."""

    __slots__ = ("_telemetry", "name", "span_id", "parent_id", "attrs",
                 "t_start", "t_end")

    def __init__(self, telemetry: "Telemetry", name: str, attrs: Dict):
        self._telemetry = telemetry
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.t_start: float = 0.0
        self.t_end: float = 0.0

    def set(self, key: str, value) -> None:
        self.attrs[key] = value

    def update(self, attrs: Dict) -> None:
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._telemetry._enter_span(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._telemetry._exit_span(self)
        return False


class _Timer:
    """Times a block into a histogram (and nothing else)."""

    __slots__ = ("_hist", "_t0")

    def __init__(self, hist: Histogram):
        self._hist = hist
        self._t0 = 0.0

    def __enter__(self) -> "_Timer":
        self._t0 = time.monotonic()
        return self

    def __exit__(self, *exc) -> bool:
        self._hist.observe(time.monotonic() - self._t0)
        return False


class Telemetry:
    """An enabled telemetry handle: spans, metrics, progress, sinks.

    Parameters
    ----------
    sinks:
        Where finished records go (:class:`~repro.obs.sinks.JsonlSink`,
        :class:`~repro.obs.sinks.MemorySink`, ...).  May be empty: the
        metrics registry and progress rendering still work.
    registry:
        Metrics registry; a fresh one is created when omitted.
    progress:
        Callable rendering progress text for a human (``print`` for the
        CLI default); ``None`` mutes rendering while still recording
        ``progress`` records to the sinks.
    source:
        Optional emitter label stamped on every record as ``src``.
        Service workers use their worker id here: several processes can
        then append to one shared JSONL stream and
        :func:`~repro.obs.schema.validate_stream` validates each
        emitter's records (seq monotonicity, span nesting) as its own
        sub-stream.
    """

    enabled = True

    def __init__(self, sinks: Iterable[Sink] = (),
                 registry: Optional[MetricsRegistry] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 source: Optional[str] = None):
        self.sinks: List[Sink] = list(sinks)
        self.registry = registry if registry is not None else MetricsRegistry()
        self._progress = progress
        self.source = source
        self._ids = itertools.count(1)
        self._seq = itertools.count(1)
        self._local = threading.local()

    # -- span plumbing -------------------------------------------------------

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_span_id(self) -> Optional[int]:
        stack = self._stack()
        return stack[-1] if stack else None

    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def _enter_span(self, span: Span) -> None:
        stack = self._stack()
        span.span_id = next(self._ids)
        span.parent_id = stack[-1] if stack else None
        span.t_start = time.monotonic()
        stack.append(span.span_id)

    def _exit_span(self, span: Span) -> None:
        span.t_end = time.monotonic()
        stack = self._stack()
        if stack and stack[-1] == span.span_id:
            stack.pop()
        elif span.span_id in stack:  # tolerate misnested exits
            stack.remove(span.span_id)
        self._emit({
            "kind": "span",
            "name": span.name,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "t_start": span.t_start,
            "t_end": span.t_end,
            "attrs": span.attrs,
        })

    # -- point records -------------------------------------------------------

    def event(self, name: str, **attrs) -> None:
        self._emit({
            "kind": "event",
            "name": name,
            "span_id": self.current_span_id(),
            "t": time.monotonic(),
            "attrs": attrs,
        })

    def heartbeat(self, worker: str, **attrs) -> None:
        """A liveness beacon from a long-running worker.

        Distinct from :meth:`event` so stream consumers (the job
        service's supervisor, the HTTP progress tail) can filter
        liveness chatter from semantic events cheaply, and so the
        schema can require the ``worker`` identity on every beacon.
        """
        self._emit({
            "kind": "heartbeat",
            "worker": worker,
            "span_id": self.current_span_id(),
            "t": time.monotonic(),
            "attrs": attrs,
        })

    def progress(self, text: str) -> None:
        """Human-facing progress line: rendered and recorded."""
        if self._progress is not None:
            self._progress(text)
        self._emit({
            "kind": "progress",
            "text": text,
            "span_id": self.current_span_id(),
            "t": time.monotonic(),
        })

    # -- metrics -------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        return self.registry.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(name)

    def histogram(self, name: str) -> Histogram:
        return self.registry.histogram(name)

    def timer(self, name: str) -> _Timer:
        return _Timer(self.registry.histogram(name))

    def emit_metrics(self) -> None:
        """Write the current registry snapshot as one record."""
        self._emit({
            "kind": "metrics",
            "t": time.monotonic(),
            "registry": self.registry.snapshot(),
        })

    # -- worker reassembly ---------------------------------------------------

    def collector(self) -> "Telemetry":
        """A fresh isolated telemetry for one worker chunk.

        The worker records spans/events into a private
        :class:`MemorySink` and its own registry; the parent folds the
        result back in deterministic order with :meth:`adopt`.
        """
        return Telemetry(sinks=[MemorySink()], progress=None)

    def adopt(self, records: Sequence[Dict],
              extra_attrs: Optional[Dict] = None) -> None:
        """Re-emit a worker collector's records under the current span.

        Span ids are remapped onto this telemetry's id sequence in
        first-emitted order, worker-root spans are re-parented to the
        caller's current span, and ``extra_attrs`` (e.g. the chunk
        index) is merged into every adopted span — so calling ``adopt``
        chunk-by-chunk in index order yields a tree independent of
        worker scheduling.  Worker ``metrics`` records are merged into
        this registry instead of being re-emitted.
        """
        id_map: Dict[int, int] = {}
        parent_here = self.current_span_id()
        for record in records:
            kind = record.get("kind")
            if kind == "metrics":
                self.registry.merge(record.get("registry", {}))
                continue
            adopted = dict(record)
            if kind == "span":
                old = adopted["span_id"]
                id_map[old] = id_map.get(old) or next(self._ids)
                adopted["span_id"] = id_map[old]
                old_parent = adopted.get("parent_id")
                if old_parent is None:
                    adopted["parent_id"] = parent_here
                else:
                    id_map[old_parent] = id_map.get(old_parent) \
                        or next(self._ids)
                    adopted["parent_id"] = id_map[old_parent]
                if extra_attrs:
                    attrs = dict(adopted.get("attrs") or {})
                    attrs.update(extra_attrs)
                    adopted["attrs"] = attrs
            elif "span_id" in adopted:
                old_parent = adopted.get("span_id")
                if old_parent is None:
                    adopted["span_id"] = parent_here
                else:
                    id_map[old_parent] = id_map.get(old_parent) \
                        or next(self._ids)
                    adopted["span_id"] = id_map[old_parent]
            self._emit(adopted)

    def drain_collector(self, collector: "Telemetry") -> List[Dict]:
        """Finish a worker collector: metrics snapshot + its records."""
        collector.emit_metrics()
        sink = collector.sinks[0]
        assert isinstance(sink, MemorySink)
        records = sink.records
        sink.records = []
        return records

    # -- emission ------------------------------------------------------------

    def _emit(self, record: Dict) -> None:
        record["seq"] = next(self._seq)
        if self.source is not None:
            record["src"] = self.source
        for sink in self.sinks:
            sink.emit(record)

    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def default_telemetry() -> Telemetry:
    """What the CLI drivers use when handed nothing: progress renders to
    stdout (preserving the historical ``print`` behaviour), no sinks."""
    return Telemetry(progress=print)


def muted_telemetry() -> Telemetry:
    """Records everything, renders nothing (the stray-print test rig)."""
    return Telemetry(sinks=[MemorySink()], progress=None)
