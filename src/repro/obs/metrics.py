"""Process-local metrics: counters, gauges, histograms in a registry.

The registry is deliberately tiny — no labels, no exporters, no time
series.  A metric is a named cell of aggregate state that hot loops can
bump cheaply; :meth:`MetricsRegistry.snapshot` turns the whole registry
into one JSON-friendly dict for sinks, benchmarks and tests.

Thread safety: mutation goes through per-metric methods that are atomic
enough under the GIL for the int/float updates used here; the registry
itself takes a lock only on *creation* of a metric, never on update, so
the hot path stays allocation- and lock-free.  Cross-process merging
(fork worker pools) is explicit via :meth:`MetricsRegistry.merge` —
worker snapshots are folded in by the parent in deterministic chunk
order.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Union

from ..errors import ReproError

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def inc(self, n: Number = 1) -> None:
        self.value += n

    def snapshot(self) -> Dict[str, Number]:
        return {"type": "counter", "value": self.value}

    def merge(self, other: Dict[str, Number]) -> None:
        self.value += other["value"]


class Gauge:
    """A set-to-latest value (e.g. queue depth, worker count)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        self.value = value

    def snapshot(self) -> Dict[str, Optional[Number]]:
        return {"type": "gauge", "value": self.value}

    def merge(self, other: Dict[str, Optional[Number]]) -> None:
        if other["value"] is not None:
            self.value = other["value"]


class Histogram:
    """Aggregate distribution: count / total / min / max (+ mean).

    No buckets and no reservoir — the aggregates are exact, bounded in
    memory, and merge associatively across worker snapshots, which is
    what the deterministic fork/thread reassembly needs.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count: int = 0
        self.total: float = 0.0
        self.min: float = math.inf
        self.max: float = -math.inf

    def observe(self, value: Number) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def snapshot(self) -> Dict[str, Optional[Number]]:
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
        }

    def merge(self, other: Dict[str, Optional[Number]]) -> None:
        if not other["count"]:
            return
        self.count += int(other["count"])
        self.total += float(other["total"])
        if other["min"] is not None and other["min"] < self.min:
            self.min = float(other["min"])
        if other["max"] is not None and other["max"] > self.max:
            self.max = float(other["max"])


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named metrics of one process (or one worker snapshot)."""

    def __init__(self):
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = cls(name)
                    self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise ReproError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Dict]:
        """JSON-friendly view of every metric, sorted by name."""
        return {name: self._metrics[name].snapshot()
                for name in self.names()}

    def merge(self, snapshot: Dict[str, Dict]) -> None:
        """Fold a worker's snapshot into this registry."""
        for name in sorted(snapshot):
            entry = snapshot[name]
            cls = _KINDS.get(entry.get("type"))
            if cls is None:
                raise ReproError(
                    f"cannot merge metric {name!r} of unknown type "
                    f"{entry.get('type')!r}")
            self._get(name, cls).merge(entry)
