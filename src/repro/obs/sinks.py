"""Telemetry sinks: where span / event / metric records go.

A sink receives finished records (plain dicts — see
:mod:`repro.obs.schema`) and must never influence the computation that
produced them: sinks may buffer, write, or drop, but the tracing-
invariance contract (telemetry on vs off is byte-identical in every
simulation output) forbids them from raising into the instrumented code
path for ordinary I/O trouble.

:class:`JsonlSink` appends — it never reads the file back, so a corrupt
or truncated file left by a killed run cannot poison a resumed one; the
new records simply follow whatever bytes are already there.
"""

from __future__ import annotations

import io
import json
import os
import threading
from typing import Dict, List, Optional, Union


class Sink:
    """Base sink: collects nothing, closes cleanly."""

    def emit(self, record: Dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullSink(Sink):
    """Swallows everything (the explicit do-nothing choice)."""

    def emit(self, record: Dict) -> None:
        pass


class MemorySink(Sink):
    """Keeps records in a list — the test and reassembly workhorse."""

    def __init__(self):
        self.records: List[Dict] = []

    def emit(self, record: Dict) -> None:
        self.records.append(record)

    def clear(self) -> None:
        self.records = []

    def spans(self) -> List[Dict]:
        return [r for r in self.records if r.get("kind") == "span"]

    def events(self) -> List[Dict]:
        return [r for r in self.records if r.get("kind") == "event"]


class JsonlSink(Sink):
    """One JSON object per line, appended to a file (or file object).

    Append-only by design: a resume with the same path continues the
    file, and pre-existing garbage (torn last line from a kill) is left
    untouched rather than parsed.  Records are serialised with sorted
    keys so identical runs produce identical bytes modulo timestamps.
    """

    def __init__(self, path_or_file: Union[str, os.PathLike, io.TextIOBase],
                 flush_every: int = 64):
        self._lock = threading.Lock()
        self._since_flush = 0
        self.flush_every = max(1, int(flush_every))
        if isinstance(path_or_file, (str, os.PathLike)):
            self.path: Optional[str] = os.fspath(path_or_file)
            self._file = open(self.path, "a", encoding="utf-8")
            self._owns_file = True
            # A kill can leave the file torn mid-line; start on a fresh
            # line so the first new record is not glued to the tear.
            if self._needs_newline(self.path):
                self._file.write("\n")
        else:
            self.path = None
            self._file = path_or_file
            self._owns_file = False

    @staticmethod
    def _needs_newline(path: str) -> bool:
        try:
            with open(path, "rb") as fh:
                fh.seek(0, os.SEEK_END)
                if fh.tell() == 0:
                    return False
                fh.seek(-1, os.SEEK_END)
                return fh.read(1) != b"\n"
        except OSError:
            return False

    def emit(self, record: Dict) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"),
                          default=_jsonable)
        with self._lock:
            if self._file.closed:
                return
            self._file.write(line + "\n")
            self._since_flush += 1
            if self._since_flush >= self.flush_every:
                self._file.flush()
                self._since_flush = 0

    def flush(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                self._since_flush = 0

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                if self._owns_file:
                    self._file.close()


def _jsonable(value):
    """Last-resort serialiser: numpy scalars, paths, anything with repr."""
    for attr in ("item",):  # numpy scalar -> python scalar
        method = getattr(value, attr, None)
        if callable(method):
            try:
                return method()
            except (TypeError, ValueError):
                pass
    return repr(value)


def read_jsonl(path: Union[str, os.PathLike],
               strict: bool = False) -> List[Dict]:
    """Parse a JSONL trace file back into records.

    ``strict=False`` (the default) skips unparseable lines — the
    appropriate stance for a file that survived a kill mid-write;
    ``strict=True`` raises on the first bad line (the schema tests use
    this on files they produced themselves).
    """
    records: List[Dict] = []
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if strict:
                    raise
    return records
