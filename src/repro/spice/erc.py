"""Electrical-rule-check (ERC) preflight for transistor netlists.

A malformed circuit fed to the solvers fails deep inside Newton with an
opaque :class:`~repro.errors.ConvergenceError` — after burning the whole
recovery ladder on a problem no continuation method can fix.  The ERC
catches the classic wiring mistakes *structurally*, in milliseconds,
before any matrix is assembled, and names the offending devices and
nodes:

``floating-node``
    A node touched by exactly one device terminal (and not an input
    port — see below) dangles: KCL there is a single device current
    forced to zero.
``no-dc-path``
    A node (or island of nodes) with no resistive path — through
    resistors or MOSFET channels — to any rail or source-driven node.
    Its DC voltage is undefined (capacitors and ideal current sources
    do not pin a voltage).
``shorted-supply``
    Two rails at different potentials bridged by a hard short (a
    resistor below :data:`SHORT_RESISTANCE`).
``duplicate-name``
    Device names duplicated inside the device list (possible only by
    bypassing :meth:`Circuit.add`) or shared between a device and a
    voltage source (which :meth:`Circuit.add` does not cross-check).
``ungated-tail``
    PG-MCML only: a tail current source with no series sleep transistor
    stacked on top of it — the cell would burn its full tail current in
    sleep mode, silently voiding the paper's Table 3 claim.
``missing-sleep``
    PG-MCML only: no sleep transistors at all, or a sleep gate tied
    hard to ground (the cell could never wake).

Nodes whose every connection is a MOSFET gate or bulk are treated as
*input ports* (high-impedance by construction) and exempt from the
floating/no-path rules — a standalone cell's inputs and bias pins are
driven by the testbench, not the cell.

Findings are structured (:class:`ErcFinding`) and JSONL-serializable;
:func:`erc_preflight` raises :class:`~repro.errors.ErcError` carrying
the full :class:`ErcReport` and emits one telemetry event per finding,
so a rejected circuit leaves a machine-readable post-mortem.  The
``REPRO_ERC`` environment variable (``off`` disables) is the campaign-
level opt-out for intentionally-pathological fault-injection tests.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ErcError
from ..obs import NULL_TELEMETRY
from .circuit import GROUND, Circuit, canonical_node
from .devices import Capacitor, Device, ISource, Mosfet, Resistor

#: A resistor at or below this is a hard short for the supply rule, ohms.
#: (The constant-function rail tie in :mod:`repro.cells.mcml` is 1 Ω and
#: must stay above this.)
SHORT_RESISTANCE = 1e-2

#: Rule identifiers, in the order they are checked.
ERC_RULES = ("duplicate-name", "floating-node", "no-dc-path",
             "shorted-supply", "ungated-tail", "missing-sleep")

#: Environment opt-out for the wired-in preflights ("off" disables).
_ERC_ENV = "REPRO_ERC"


def erc_enabled(default: bool = True) -> bool:
    """Whether wired-in ERC preflights should run (``REPRO_ERC`` gate)."""
    raw = os.environ.get(_ERC_ENV, "").strip().lower()
    if not raw:
        return default
    return raw not in ("off", "0", "false", "no")


@dataclass(frozen=True)
class ErcFinding:
    """One structured rule violation."""

    rule: str
    message: str
    nodes: Tuple[str, ...] = ()
    devices: Tuple[str, ...] = ()
    severity: str = "error"

    def to_dict(self) -> Dict[str, object]:
        return {"rule": self.rule, "severity": self.severity,
                "message": self.message, "nodes": list(self.nodes),
                "devices": list(self.devices)}

    def __repr__(self) -> str:
        return f"ErcFinding({self.rule}: {self.message})"


@dataclass
class ErcReport:
    """Every finding of one :func:`check_circuit` run."""

    circuit: str
    findings: List[ErcFinding] = field(default_factory=list)
    rules_checked: Tuple[str, ...] = ERC_RULES

    @property
    def errors(self) -> List[ErcFinding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def by_rule(self, rule: str) -> List[ErcFinding]:
        return [f for f in self.findings if f.rule == rule]

    def to_dict(self) -> Dict[str, object]:
        return {"circuit": self.circuit,
                "ok": self.ok,
                "rules_checked": list(self.rules_checked),
                "findings": [f.to_dict() for f in self.findings]}

    def summary(self) -> str:
        if self.ok:
            return f"ERC clean: {self.circuit} ({len(self.rules_checked)} rules)"
        lines = [f"ERC failed: {self.circuit} "
                 f"({len(self.errors)} errors)"]
        for finding in self.findings:
            lines.append(f"  [{finding.rule}] {finding.message}")
        return "\n".join(lines)

    def raise_if_failed(self) -> "ErcReport":
        """Raise :class:`ErcError` when any error-severity finding exists."""
        if self.ok:
            return self
        rules = sorted(set(f.rule for f in self.errors))
        raise ErcError(
            self.summary(), report=self,
            context={"circuit": self.circuit, "rules": rules,
                     "n_findings": len(self.errors)})


# -- device classification ----------------------------------------------------


def _unwrap(device: Device) -> Device:
    """Peel fault-injection (and similar) proxies off a device."""
    seen = set()
    while id(device) not in seen:
        seen.add(id(device))
        inner = getattr(device, "inner", None)
        if not isinstance(inner, Device):
            break
        device = inner
    return device


def _conduction_edges(device: Device) -> List[Tuple[str, str]]:
    """Terminal pairs that provide a DC (resistive) path."""
    inner = _unwrap(device)
    t = device.terminals
    if isinstance(inner, Mosfet):
        return [(t[0], t[2])]  # drain-source channel
    if isinstance(inner, Resistor):
        return [(t[0], t[1])]
    if isinstance(inner, (Capacitor, ISource)):
        return []  # no DC path through either
    # Unknown device class: be conservative, assume all terminals conduct.
    return [(a, b) for a, b in zip(t, t[1:])]


def _high_z_terminals(device: Device) -> Sequence[int]:
    """Indices of terminals that draw no DC current (gate, bulk)."""
    inner = _unwrap(device)
    if isinstance(inner, Mosfet):
        return (1, 3)
    return ()


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}

    def add(self, node: str) -> None:
        self._parent.setdefault(node, node)

    def find(self, node: str) -> str:
        self.add(node)
        root = node
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[node] != root:  # path compression
            self._parent[node], node = root, self._parent[node]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb

    def components(self) -> Dict[str, List[str]]:
        groups: Dict[str, List[str]] = {}
        for node in self._parent:
            groups.setdefault(self.find(node), []).append(node)
        return groups


# -- the checker --------------------------------------------------------------


def check_circuit(circuit: Circuit,
                  rails: Optional[Iterable[str]] = None,
                  style: Optional[str] = None,
                  ports: Optional[Iterable[str]] = None,
                  t: float = 0.0) -> ErcReport:
    """Run every ERC rule over ``circuit``; never raises on findings.

    Parameters
    ----------
    rails:
        Extra rail nodes to treat as driven (cell-mode checking, where
        the supply is wired by a testbench that does not exist yet).
        Source-driven nodes and ground are always rails.
    style:
        ``"pgmcml"`` additionally enforces the sleep-gating rules
        (``ungated-tail``, ``missing-sleep``); any other value skips
        them.
    ports:
        Nets externally driven by a testbench or neighbouring cell
        (cell pins); exempt from the undriven-node rules even when
        channel-connected (e.g. transmission-gate data inputs).  Nodes
        touched only by MOSFET gates/bulks are inferred as ports
        automatically.
    t:
        Source evaluation time for rail potentials (shorted-supply).
    """
    report = ErcReport(circuit=circuit.name)
    fixed = circuit.fixed_nodes(t)
    rail_values: Dict[str, Optional[float]] = dict(fixed)
    for name in rails or ():
        rail_values.setdefault(canonical_node(name), None)
    declared_ports = {canonical_node(p) for p in ports or ()}

    # One pass over the devices collects everything the rules need.
    incidence: Dict[str, int] = {}
    gate_only: Dict[str, bool] = {}
    conduct = _UnionFind()
    shorts = _UnionFind()
    short_dev: Dict[str, List[str]] = {}
    names_seen: Dict[str, int] = {}
    for device in circuit.devices:
        names_seen[device.name] = names_seen.get(device.name, 0) + 1
        high_z = set(_high_z_terminals(device))
        for k, node in enumerate(device.terminals):
            incidence[node] = incidence.get(node, 0) + 1
            gate_only[node] = gate_only.get(node, True) and k in high_z
            conduct.add(node)
        for a, b in _conduction_edges(device):
            conduct.union(a, b)
        inner = _unwrap(device)
        if isinstance(inner, Resistor) \
                and inner.resistance <= SHORT_RESISTANCE:
            a, b = device.terminals
            shorts.union(a, b)
            short_dev.setdefault(shorts.find(a), []).append(device.name)

    # duplicate-name: list duplicates and device/source collisions.
    source_names = {s.name for s in circuit.vsources}
    for name, count in sorted(names_seen.items()):
        if count > 1:
            report.findings.append(ErcFinding(
                "duplicate-name",
                f"device name {name!r} appears {count} times",
                devices=(name,)))
        if name in source_names:
            report.findings.append(ErcFinding(
                "duplicate-name",
                f"name {name!r} is both a device and a voltage source",
                devices=(name,)))

    is_port = {node: (flag or node in declared_ports)
               and node not in rail_values
               for node, flag in gate_only.items()}

    # Both undriven-node rules key off conduction components with no
    # rail member.  A single-connection node that *does* conduct to a
    # rail (e.g. a constant cell's unused output leg, pinned to vdd
    # through its load channel) is electrically defined and legal.
    # Within a railless island, single-connection nodes are reported as
    # floating-node (the precise device is nameable) and the rest as
    # one no-dc-path finding per island.
    for members in conduct.components().values():
        if any(node in rail_values or node in declared_ports
               for node in members):
            continue
        stranded = sorted(n for n in members if not is_port[n])
        if not stranded:
            continue
        dangling = [n for n in stranded if incidence.get(n, 0) == 1]
        for node in dangling:
            touching = tuple(d.name for d in circuit.devices
                             if node in d.terminals)
            report.findings.append(ErcFinding(
                "floating-node",
                f"node {node!r} is touched only by "
                f"{touching[0] if touching else '?'!r} and has no DC "
                f"path to any rail",
                nodes=(node,), devices=touching))
        islanded = [n for n in stranded if n not in dangling]
        if islanded:
            touching = tuple(sorted(set(
                d.name for d in circuit.devices
                if any(n in d.terminals for n in islanded))))
            report.findings.append(ErcFinding(
                "no-dc-path",
                f"nodes {islanded} have no DC path to any rail "
                f"(rails: {sorted(rail_values)})",
                nodes=tuple(islanded), devices=touching))

    # shorted-supply: two rails at different potentials in one hard-short
    # component.
    for root, members in shorts.components().items():
        rail_members = [n for n in members if n in rail_values]
        if len(rail_members) < 2:
            continue
        values = {n: rail_values[n] for n in rail_members}
        distinct = set(values.values())
        if len(distinct) > 1 or None in distinct and len(values) > 1:
            bridges = tuple(sorted(set(short_dev.get(root, []))))
            report.findings.append(ErcFinding(
                "shorted-supply",
                f"rails {sorted(rail_members)} are bridged by hard shorts "
                f"({', '.join(bridges) or 'unknown'})",
                nodes=tuple(sorted(rail_members)), devices=bridges))

    if style == "pgmcml":
        _check_sleep_gating(circuit, report)
    return report


def _check_sleep_gating(circuit: Circuit, report: ErcReport) -> None:
    """PG-MCML rules: every tail gated, sleep nets present and wakeable."""
    device_names = {d.name for d in circuit.devices}
    by_name = {d.name: d for d in circuit.devices}
    tails = [d for d in circuit.devices
             if "mtail" in d.name and not d.name.endswith(("_sleep", "_pg"))]
    sleeps = [d for d in circuit.devices if d.name.endswith("_sleep")]

    if not sleeps:
        report.findings.append(ErcFinding(
            "missing-sleep",
            f"circuit {circuit.name!r} is pgmcml-style but contains no "
            f"sleep transistors",
            devices=tuple(sorted(d.name for d in tails))))

    for tail in tails:
        companion = f"{tail.name}_sleep"
        if companion not in device_names:
            report.findings.append(ErcFinding(
                "ungated-tail",
                f"tail {tail.name!r} has no series sleep transistor "
                f"({companion!r} not found)",
                nodes=(tail.terminals[0],), devices=(tail.name,)))
            continue
        sleep = by_name[companion]
        # Series contract: the sleep source sits on the tail drain.
        if isinstance(_unwrap(sleep), Mosfet) \
                and sleep.terminals[2] != tail.terminals[0]:
            report.findings.append(ErcFinding(
                "ungated-tail",
                f"sleep transistor {companion!r} is not in series with "
                f"tail {tail.name!r} (source {sleep.terminals[2]!r} != "
                f"tail drain {tail.terminals[0]!r})",
                nodes=(tail.terminals[0],),
                devices=(tail.name, companion)))

    for sleep in sleeps:
        inner = _unwrap(sleep)
        if isinstance(inner, Mosfet) \
                and canonical_node(sleep.terminals[1]) == GROUND:
            report.findings.append(ErcFinding(
                "missing-sleep",
                f"sleep transistor {sleep.name!r} has its gate tied to "
                f"ground: the cell can never wake",
                nodes=(sleep.terminals[1],), devices=(sleep.name,)))


def erc_preflight(circuit: Circuit,
                  rails: Optional[Iterable[str]] = None,
                  style: Optional[str] = None,
                  ports: Optional[Iterable[str]] = None,
                  t: float = 0.0,
                  telemetry=None) -> ErcReport:
    """Check ``circuit`` and raise :class:`ErcError` on any error finding.

    The check runs in a ``spice.erc.preflight`` telemetry span; every
    finding is emitted as a ``spice.erc.finding`` event and counted, so
    a rejected circuit is attributable from the JSONL trace alone.
    """
    tele = telemetry if telemetry is not None else NULL_TELEMETRY
    with tele.span("spice.erc.preflight", circuit=circuit.name,
                   style=style or "") as span:
        report = check_circuit(circuit, rails=rails, style=style,
                               ports=ports, t=t)
        span.set("findings", len(report.findings))
        span.set("ok", report.ok)
        tele.counter("spice.erc.checks").inc()
        if not report.ok:
            tele.counter("spice.erc.failures").inc()
            for finding in report.findings:
                tele.event("spice.erc.finding", circuit=circuit.name,
                           **finding.to_dict())
        report.raise_if_failed()
    return report
