"""Convergence-recovery strategies for the DC solver.

Plain damped Newton fails on stiff or multi-stable circuits: the iterate
limit-cycles between solution basins, or the Jacobian goes singular in a
flat region.  Real SPICE engines survive these cases with a *ladder* of
continuation methods, each cheaper than the next is desperate:

1. **plain Newton** from the midpoint guess;
2. **gmin stepping** — a shrinking shunt conductance to ground convexifies
   the problem, each rung warm-starting the next;
3. **source stepping** — ramp every fixed source from 0 to its target
   value, tracking the solution branch continuously (the textbook cure
   for bistable circuits whose midpoint guess sits in no-man's land);
4. **pseudo-transient** — a dynamic gmin ramp that mimics integrating the
   circuit to steady state: start with a huge conductance (trivially
   solvable), shrink it geometrically on success, grow it back on
   failure.  This walks through folds that defeat source stepping.

The :class:`RecoveryPolicy` configures the ladder; every attempt is
recorded in a :class:`SolverDiagnostics` that is attached to the
resulting :class:`~repro.spice.dc.OperatingPoint` on success and to the
:class:`~repro.errors.ConvergenceError` on failure — a failed solve is
never silent about what was tried.

The ladder is assembly-agnostic: it drives ``System.newton`` through the
same interface whether the system assembles residuals with the
vectorized device banks (:mod:`repro.spice.banks`, the default) or the
reference per-device loop, and the diagnostics it records (attempts,
iterations, residuals, singular-Jacobian events) carry identical
semantics under either strategy.
"""

from __future__ import annotations

import math
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import BudgetExhaustedError, CircuitError, ConvergenceError
from ..obs import NULL_TELEMETRY

#: The classic shrinking-gmin ladder (finishing with a clean gmin=0 solve).
GMIN_LADDER = (1e-2, 1e-4, 1e-6, 1e-8, 1e-10, 1e-12, 0.0)

#: Environment override for the default solve budget (see
#: :meth:`SolveBudget.from_env`).
_BUDGET_ENV = "REPRO_SOLVE_BUDGET"

#: Per-attempt Newton iteration ceiling (the historical ``maxiter``).
_ATTEMPT_MAXITER = 120


@dataclass(frozen=True)
class SolveBudget:
    """Deterministic runaway-solve limits.

    All counters are pure functions of the work performed — no
    wall-clock — so a budgeted run is exactly reproducible.  ``None``
    means unlimited (the default: behaviour is identical to the
    pre-budget engine).

    ``max_newton_iterations`` and ``max_ladder_attempts`` bound one DC
    solve (cumulative Newton iterations across every recovery rung, and
    the number of rungs); ``max_transient_rejections`` and
    ``max_transient_steps`` bound one transient run (failed Newton
    solves across all step-halving retries, and accepted steps).  When a
    limit trips, the engine raises
    :class:`~repro.errors.BudgetExhaustedError` carrying the
    :class:`SolverDiagnostics` accumulated so far instead of spinning.
    """

    max_newton_iterations: Optional[int] = None
    max_ladder_attempts: Optional[int] = None
    max_transient_rejections: Optional[int] = None
    max_transient_steps: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("max_newton_iterations", "max_ladder_attempts",
                     "max_transient_rejections", "max_transient_steps"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise CircuitError(f"budget field {name} must be >= 0 or "
                                   f"None: {value}")

    def to_dict(self) -> Dict[str, Optional[int]]:
        return asdict(self)

    @classmethod
    def from_env(cls) -> "SolveBudget":
        """Budget from ``REPRO_SOLVE_BUDGET`` (unlimited when unset).

        Accepted forms: a bare integer (cumulative Newton iterations
        per DC solve, e.g. ``600``) or comma-separated ``key=value``
        pairs with keys ``iters``, ``attempts``, ``rejections``,
        ``steps`` (e.g. ``iters=600,rejections=64``).
        """
        raw = os.environ.get(_BUDGET_ENV, "").strip()
        if not raw:
            return UNLIMITED_BUDGET
        if raw not in _ENV_CACHE:
            _ENV_CACHE.clear()
            _ENV_CACHE[raw] = cls._parse(raw)
        return _ENV_CACHE[raw]

    @classmethod
    def _parse(cls, raw: str) -> "SolveBudget":
        keys = {"iters": "max_newton_iterations",
                "attempts": "max_ladder_attempts",
                "rejections": "max_transient_rejections",
                "steps": "max_transient_steps"}
        try:
            if "=" not in raw:
                return cls(max_newton_iterations=int(raw))
            fields: Dict[str, int] = {}
            for pair in raw.split(","):
                key, _, value = pair.partition("=")
                fields[keys[key.strip()]] = int(value)
            return cls(**fields)
        except (KeyError, ValueError) as err:
            raise CircuitError(
                f"cannot parse {_BUDGET_ENV}={raw!r}: {err} (expected an "
                f"integer or key=value pairs with keys {sorted(keys)})",
                context={"env": _BUDGET_ENV, "value": raw}) from err


#: The default budget: every limit off.
UNLIMITED_BUDGET = SolveBudget()

_ENV_CACHE: Dict[str, SolveBudget] = {}


@dataclass
class NewtonStats:
    """Per-solve bookkeeping filled in by :meth:`System.newton`."""

    iterations: int = 0
    residual: float = math.nan
    singular_jacobian_events: int = 0
    converged: bool = False


@dataclass
class StrategyAttempt:
    """One rung of the recovery ladder: what ran and how it ended."""

    strategy: str
    converged: bool
    iterations: int
    residual: float
    singular_jacobian_events: int = 0

    def __repr__(self) -> str:
        verdict = "ok" if self.converged else "failed"
        return (f"StrategyAttempt({self.strategy}: {verdict}, "
                f"{self.iterations} iters, residual {self.residual:.3g})")

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe record (NaN residuals become ``None``)."""
        return {"strategy": self.strategy, "converged": self.converged,
                "iterations": self.iterations,
                "residual": self.residual
                if math.isfinite(self.residual) else None,
                "singular_jacobian_events": self.singular_jacobian_events}


@dataclass
class SolverDiagnostics:
    """The full story of one DC solve: every strategy, every outcome.

    ``budget_exhausted`` names the :class:`SolveBudget` limit that cut
    the solve short, or ``None`` when the ladder ran to its natural end.
    """

    attempts: List[StrategyAttempt] = field(default_factory=list)
    converged_by: Optional[str] = None
    budget_exhausted: Optional[str] = None

    @property
    def singular_jacobian_events(self) -> int:
        """Total silent-``lstsq`` fallbacks across all attempts."""
        return sum(a.singular_jacobian_events for a in self.attempts)

    @property
    def total_iterations(self) -> int:
        return sum(a.iterations for a in self.attempts)

    def strategies(self) -> List[str]:
        return [a.strategy for a in self.attempts]

    def record(self, strategy: str, stats: NewtonStats) -> StrategyAttempt:
        attempt = StrategyAttempt(
            strategy=strategy, converged=stats.converged,
            iterations=stats.iterations, residual=stats.residual,
            singular_jacobian_events=stats.singular_jacobian_events)
        self.attempts.append(attempt)
        return attempt

    def to_dict(self) -> Dict[str, object]:
        """JSONL-serializable post-mortem of the solve."""
        return {"attempts": [a.to_dict() for a in self.attempts],
                "converged_by": self.converged_by,
                "budget_exhausted": self.budget_exhausted,
                "total_iterations": self.total_iterations,
                "singular_jacobian_events": self.singular_jacobian_events}

    def summary(self) -> str:
        lines = [f"{len(self.attempts)} strategy attempts, "
                 f"{self.total_iterations} Newton iterations, "
                 f"{self.singular_jacobian_events} singular-Jacobian events"]
        for a in self.attempts:
            verdict = "converged" if a.converged else "failed"
            lines.append(f"  {a.strategy:24s} {verdict:10s} "
                         f"iters={a.iterations:<4d} "
                         f"residual={a.residual:.3g}")
        if self.converged_by is not None:
            lines.append(f"solved by: {self.converged_by}")
        return "\n".join(lines)


@dataclass
class RecoveryPolicy:
    """Configuration of the DC recovery ladder.

    Strategies run in order — gmin stepping, then source stepping, then
    pseudo-transient — each only if the previous ones failed.  Disabling
    a strategy removes its rungs but keeps the rest of the ladder.
    """

    gmin_ladder: Sequence[float] = GMIN_LADDER
    source_stepping: bool = True
    #: Initial (and maximum) source-ramp increment.
    source_step_initial: float = 0.25
    #: Give up on source stepping below this increment (a fold point).
    source_step_min: float = 1.0 / 4096.0
    pseudo_transient: bool = True
    ptran_gmin_start: float = 1.0
    #: Shrink factor applied to gmin after an accepted rung.
    ptran_shrink: float = 0.1
    #: Growth factor applied to gmin after a rejected rung.
    ptran_grow: float = 3.0
    #: Abandon pseudo-transient when gmin grows past this.
    ptran_gmin_max: float = 1e3
    #: A rung below this gmin is followed by one clean gmin=0 solve.
    ptran_gmin_floor: float = 1e-14
    ptran_max_rungs: int = 80


def _exhaust_dc(budget: SolveBudget, diag: SolverDiagnostics, limit: str,
                telemetry) -> None:
    """Record and raise a DC budget exhaustion."""
    diag.budget_exhausted = limit
    telemetry.counter("spice.budget.dc_exhausted").inc()
    telemetry.event("spice.budget.exhausted", scope="dc", limit=limit,
                    attempts=len(diag.attempts),
                    newton_iterations=diag.total_iterations)
    failures = [a for a in diag.attempts if not a.converged]
    last = failures[-1] if failures else None
    raise BudgetExhaustedError(
        f"DC solve budget exhausted ({limit}={getattr(budget, limit)}) "
        f"after {len(diag.attempts)} ladder attempts and "
        f"{diag.total_iterations} Newton iterations\n{diag.summary()}",
        iterations=diag.total_iterations,
        residual=last.residual if last is not None else math.nan,
        diagnostics=diag,
        context={"scope": "dc", "limit": limit,
                 "budget": budget.to_dict(),
                 "attempts": len(diag.attempts),
                 "newton_iterations": diag.total_iterations})


def _budget_maxiter(budget: SolveBudget, diag: SolverDiagnostics,
                    telemetry) -> int:
    """Per-attempt iteration cap; raises when the budget is spent."""
    if budget.max_ladder_attempts is not None \
            and len(diag.attempts) >= budget.max_ladder_attempts:
        _exhaust_dc(budget, diag, "max_ladder_attempts", telemetry)
    maxiter = _ATTEMPT_MAXITER
    if budget.max_newton_iterations is not None:
        remaining = budget.max_newton_iterations - diag.total_iterations
        if remaining <= 0:
            _exhaust_dc(budget, diag, "max_newton_iterations", telemetry)
        maxiter = min(maxiter, remaining)
    return maxiter


def _attempt(system, diagnostics: SolverDiagnostics, strategy: str,
             fixed: Dict[str, float], x: np.ndarray,
             gmin: float, telemetry=NULL_TELEMETRY,
             maxiter: int = _ATTEMPT_MAXITER) -> Optional[np.ndarray]:
    """One recorded Newton attempt; ``None`` on non-convergence."""
    stats = NewtonStats()
    try:
        result = system.newton(fixed, x, gmin=gmin, stats=stats,
                               maxiter=maxiter)
    except ConvergenceError:
        result = None
    attempt = diagnostics.record(strategy, stats)
    telemetry.counter("spice.dc.ladder_attempts").inc()
    if len(diagnostics.attempts) > 1:
        # Rung 2 onward means plain Newton did not carry the solve.
        telemetry.event("spice.dc.attempt", strategy=strategy,
                        converged=attempt.converged,
                        iterations=attempt.iterations,
                        singular_jacobian_events=
                        attempt.singular_jacobian_events)
    return result


def solve_with_recovery(system, fixed: Dict[str, float], x0: np.ndarray,
                        policy: Optional[RecoveryPolicy] = None,
                        telemetry=None,
                        budget: Optional[SolveBudget] = None,
                        ) -> Tuple[np.ndarray, SolverDiagnostics]:
    """Run the recovery ladder until one strategy produces a gmin=0 solve.

    Returns the solution and the diagnostics; raises
    :class:`ConvergenceError` (with the diagnostics attached) only after
    every enabled strategy has failed.  Every ladder rung past plain
    Newton is recorded as a ``spice.dc.attempt`` event on ``telemetry``
    (defaulting to the system's own handle), so a struggling solve is
    visible in traces without any per-iteration cost on healthy ones.

    ``budget`` (default: :meth:`SolveBudget.from_env`) bounds the whole
    solve deterministically; when a limit trips the ladder stops with a
    :class:`~repro.errors.BudgetExhaustedError` carrying the
    diagnostics accumulated so far.
    """
    policy = policy if policy is not None else RecoveryPolicy()
    if telemetry is None:
        telemetry = getattr(system, "telemetry", NULL_TELEMETRY)
    budget = budget if budget is not None else SolveBudget.from_env()
    diag = SolverDiagnostics()

    def attempt(strategy: str, fixed_a: Dict[str, float], x_a: np.ndarray,
                gmin_a: float) -> Optional[np.ndarray]:
        maxiter = _budget_maxiter(budget, diag, telemetry)
        return _attempt(system, diag, strategy, fixed_a, x_a, gmin_a,
                        telemetry=telemetry, maxiter=maxiter)

    # 1. Plain Newton from the caller's guess.
    x = attempt("newton", fixed, x0, 0.0)
    if x is not None:
        diag.converged_by = "newton"
        return x, diag

    # 2. Gmin stepping, warm-starting each rung from the previous one.
    x = x0.copy()
    solved = False
    for gmin in policy.gmin_ladder:
        result = attempt(f"gmin:{gmin:g}", fixed, x, gmin)
        if result is not None:
            x = result
            solved = gmin == 0.0
    if not solved:
        # Final plain attempt warm-started from wherever the ladder got.
        result = attempt("gmin:final", fixed, x, 0.0)
        solved = result is not None
        if solved:
            x = result
    if solved:
        diag.converged_by = diag.attempts[-1].strategy
        return x, diag

    # 3. Source stepping: ramp all sources from zero, tracking the branch.
    if policy.source_stepping:
        x = np.zeros(system.n)
        alpha, step = 0.0, policy.source_step_initial
        while alpha < 1.0:
            target = min(1.0, alpha + step)
            scaled = {node: value * target for node, value in fixed.items()}
            result = attempt(f"source-step:{target:.4g}", scaled, x, 0.0)
            if result is not None:
                x, alpha = result, target
                step = min(step * 2.0, policy.source_step_initial)
            else:
                step /= 2.0
                if step < policy.source_step_min:
                    break  # fold point: this branch ends before alpha=1
        if alpha >= 1.0:
            diag.converged_by = diag.attempts[-1].strategy
            return x, diag

    # 4. Pseudo-transient: dynamic gmin ramp through folds.
    if policy.pseudo_transient:
        x = x0.copy()
        gmin = policy.ptran_gmin_start
        for _ in range(policy.ptran_max_rungs):
            if gmin > policy.ptran_gmin_max:
                break
            result = attempt(f"ptran:gmin={gmin:.2g}", fixed, x, gmin)
            if result is not None:
                x = result
                gmin *= policy.ptran_shrink
                if gmin < policy.ptran_gmin_floor:
                    final = attempt("ptran:final", fixed, x, 0.0)
                    if final is not None:
                        diag.converged_by = "ptran:final"
                        return final, diag
                    break
            else:
                gmin *= policy.ptran_grow

    failures = [a for a in diag.attempts if not a.converged]
    last = failures[-1] if failures else None
    raise ConvergenceError(
        "DC solve failed after exhausting the recovery ladder "
        f"({len(diag.attempts)} attempts: "
        f"{', '.join(sorted(set(a.strategy.split(':')[0] for a in diag.attempts)))})"
        f"\n{diag.summary()}",
        iterations=diag.total_iterations,
        residual=last.residual if last is not None else math.nan,
        diagnostics=diag,
        context={"scope": "dc", "attempts": len(diag.attempts),
                 "strategies": sorted(set(
                     a.strategy.split(":")[0] for a in diag.attempts)),
                 "newton_iterations": diag.total_iterations})
