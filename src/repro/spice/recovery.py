"""Convergence-recovery strategies for the DC solver.

Plain damped Newton fails on stiff or multi-stable circuits: the iterate
limit-cycles between solution basins, or the Jacobian goes singular in a
flat region.  Real SPICE engines survive these cases with a *ladder* of
continuation methods, each cheaper than the next is desperate:

1. **plain Newton** from the midpoint guess;
2. **gmin stepping** — a shrinking shunt conductance to ground convexifies
   the problem, each rung warm-starting the next;
3. **source stepping** — ramp every fixed source from 0 to its target
   value, tracking the solution branch continuously (the textbook cure
   for bistable circuits whose midpoint guess sits in no-man's land);
4. **pseudo-transient** — a dynamic gmin ramp that mimics integrating the
   circuit to steady state: start with a huge conductance (trivially
   solvable), shrink it geometrically on success, grow it back on
   failure.  This walks through folds that defeat source stepping.

The :class:`RecoveryPolicy` configures the ladder; every attempt is
recorded in a :class:`SolverDiagnostics` that is attached to the
resulting :class:`~repro.spice.dc.OperatingPoint` on success and to the
:class:`~repro.errors.ConvergenceError` on failure — a failed solve is
never silent about what was tried.

The ladder is assembly-agnostic: it drives ``System.newton`` through the
same interface whether the system assembles residuals with the
vectorized device banks (:mod:`repro.spice.banks`, the default) or the
reference per-device loop, and the diagnostics it records (attempts,
iterations, residuals, singular-Jacobian events) carry identical
semantics under either strategy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConvergenceError
from ..obs import NULL_TELEMETRY

#: The classic shrinking-gmin ladder (finishing with a clean gmin=0 solve).
GMIN_LADDER = (1e-2, 1e-4, 1e-6, 1e-8, 1e-10, 1e-12, 0.0)


@dataclass
class NewtonStats:
    """Per-solve bookkeeping filled in by :meth:`System.newton`."""

    iterations: int = 0
    residual: float = math.nan
    singular_jacobian_events: int = 0
    converged: bool = False


@dataclass
class StrategyAttempt:
    """One rung of the recovery ladder: what ran and how it ended."""

    strategy: str
    converged: bool
    iterations: int
    residual: float
    singular_jacobian_events: int = 0

    def __repr__(self) -> str:
        verdict = "ok" if self.converged else "failed"
        return (f"StrategyAttempt({self.strategy}: {verdict}, "
                f"{self.iterations} iters, residual {self.residual:.3g})")


@dataclass
class SolverDiagnostics:
    """The full story of one DC solve: every strategy, every outcome."""

    attempts: List[StrategyAttempt] = field(default_factory=list)
    converged_by: Optional[str] = None

    @property
    def singular_jacobian_events(self) -> int:
        """Total silent-``lstsq`` fallbacks across all attempts."""
        return sum(a.singular_jacobian_events for a in self.attempts)

    @property
    def total_iterations(self) -> int:
        return sum(a.iterations for a in self.attempts)

    def strategies(self) -> List[str]:
        return [a.strategy for a in self.attempts]

    def record(self, strategy: str, stats: NewtonStats) -> StrategyAttempt:
        attempt = StrategyAttempt(
            strategy=strategy, converged=stats.converged,
            iterations=stats.iterations, residual=stats.residual,
            singular_jacobian_events=stats.singular_jacobian_events)
        self.attempts.append(attempt)
        return attempt

    def summary(self) -> str:
        lines = [f"{len(self.attempts)} strategy attempts, "
                 f"{self.total_iterations} Newton iterations, "
                 f"{self.singular_jacobian_events} singular-Jacobian events"]
        for a in self.attempts:
            verdict = "converged" if a.converged else "failed"
            lines.append(f"  {a.strategy:24s} {verdict:10s} "
                         f"iters={a.iterations:<4d} "
                         f"residual={a.residual:.3g}")
        if self.converged_by is not None:
            lines.append(f"solved by: {self.converged_by}")
        return "\n".join(lines)


@dataclass
class RecoveryPolicy:
    """Configuration of the DC recovery ladder.

    Strategies run in order — gmin stepping, then source stepping, then
    pseudo-transient — each only if the previous ones failed.  Disabling
    a strategy removes its rungs but keeps the rest of the ladder.
    """

    gmin_ladder: Sequence[float] = GMIN_LADDER
    source_stepping: bool = True
    #: Initial (and maximum) source-ramp increment.
    source_step_initial: float = 0.25
    #: Give up on source stepping below this increment (a fold point).
    source_step_min: float = 1.0 / 4096.0
    pseudo_transient: bool = True
    ptran_gmin_start: float = 1.0
    #: Shrink factor applied to gmin after an accepted rung.
    ptran_shrink: float = 0.1
    #: Growth factor applied to gmin after a rejected rung.
    ptran_grow: float = 3.0
    #: Abandon pseudo-transient when gmin grows past this.
    ptran_gmin_max: float = 1e3
    #: A rung below this gmin is followed by one clean gmin=0 solve.
    ptran_gmin_floor: float = 1e-14
    ptran_max_rungs: int = 80


def _attempt(system, diagnostics: SolverDiagnostics, strategy: str,
             fixed: Dict[str, float], x: np.ndarray,
             gmin: float, telemetry=NULL_TELEMETRY) -> Optional[np.ndarray]:
    """One recorded Newton attempt; ``None`` on non-convergence."""
    stats = NewtonStats()
    try:
        result = system.newton(fixed, x, gmin=gmin, stats=stats)
    except ConvergenceError:
        result = None
    attempt = diagnostics.record(strategy, stats)
    telemetry.counter("spice.dc.ladder_attempts").inc()
    if len(diagnostics.attempts) > 1:
        # Rung 2 onward means plain Newton did not carry the solve.
        telemetry.event("spice.dc.attempt", strategy=strategy,
                        converged=attempt.converged,
                        iterations=attempt.iterations,
                        singular_jacobian_events=
                        attempt.singular_jacobian_events)
    return result


def solve_with_recovery(system, fixed: Dict[str, float], x0: np.ndarray,
                        policy: Optional[RecoveryPolicy] = None,
                        telemetry=None,
                        ) -> Tuple[np.ndarray, SolverDiagnostics]:
    """Run the recovery ladder until one strategy produces a gmin=0 solve.

    Returns the solution and the diagnostics; raises
    :class:`ConvergenceError` (with the diagnostics attached) only after
    every enabled strategy has failed.  Every ladder rung past plain
    Newton is recorded as a ``spice.dc.attempt`` event on ``telemetry``
    (defaulting to the system's own handle), so a struggling solve is
    visible in traces without any per-iteration cost on healthy ones.
    """
    policy = policy if policy is not None else RecoveryPolicy()
    if telemetry is None:
        telemetry = getattr(system, "telemetry", NULL_TELEMETRY)
    diag = SolverDiagnostics()

    # 1. Plain Newton from the caller's guess.
    x = _attempt(system, diag, "newton", fixed, x0, gmin=0.0,
                 telemetry=telemetry)
    if x is not None:
        diag.converged_by = "newton"
        return x, diag

    # 2. Gmin stepping, warm-starting each rung from the previous one.
    x = x0.copy()
    solved = False
    for gmin in policy.gmin_ladder:
        result = _attempt(system, diag, f"gmin:{gmin:g}", fixed, x, gmin,
                          telemetry=telemetry)
        if result is not None:
            x = result
            solved = gmin == 0.0
    if not solved:
        # Final plain attempt warm-started from wherever the ladder got.
        result = _attempt(system, diag, "gmin:final", fixed, x, gmin=0.0,
                          telemetry=telemetry)
        solved = result is not None
        if solved:
            x = result
    if solved:
        diag.converged_by = diag.attempts[-1].strategy
        return x, diag

    # 3. Source stepping: ramp all sources from zero, tracking the branch.
    if policy.source_stepping:
        x = np.zeros(system.n)
        alpha, step = 0.0, policy.source_step_initial
        while alpha < 1.0:
            target = min(1.0, alpha + step)
            scaled = {node: value * target for node, value in fixed.items()}
            result = _attempt(system, diag, f"source-step:{target:.4g}",
                              scaled, x, gmin=0.0, telemetry=telemetry)
            if result is not None:
                x, alpha = result, target
                step = min(step * 2.0, policy.source_step_initial)
            else:
                step /= 2.0
                if step < policy.source_step_min:
                    break  # fold point: this branch ends before alpha=1
        if alpha >= 1.0:
            diag.converged_by = diag.attempts[-1].strategy
            return x, diag

    # 4. Pseudo-transient: dynamic gmin ramp through folds.
    if policy.pseudo_transient:
        x = x0.copy()
        gmin = policy.ptran_gmin_start
        for _ in range(policy.ptran_max_rungs):
            if gmin > policy.ptran_gmin_max:
                break
            result = _attempt(system, diag, f"ptran:gmin={gmin:.2g}",
                              fixed, x, gmin, telemetry=telemetry)
            if result is not None:
                x = result
                gmin *= policy.ptran_shrink
                if gmin < policy.ptran_gmin_floor:
                    final = _attempt(system, diag, "ptran:final", fixed, x,
                                     gmin=0.0, telemetry=telemetry)
                    if final is not None:
                        diag.converged_by = "ptran:final"
                        return final, diag
                    break
            else:
                gmin *= policy.ptran_grow

    failures = [a for a in diag.attempts if not a.converged]
    last = failures[-1] if failures else None
    raise ConvergenceError(
        "DC solve failed after exhausting the recovery ladder "
        f"({len(diag.attempts)} attempts: "
        f"{', '.join(sorted(set(a.strategy.split(':')[0] for a in diag.attempts)))})"
        f"\n{diag.summary()}",
        iterations=diag.total_iterations,
        residual=last.residual if last is not None else math.nan,
        diagnostics=diag)
