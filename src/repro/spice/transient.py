"""Fixed-step transient analysis.

Capacitors (explicit and MOSFET parasitics) are handled by companion
models: backward Euler by default, trapezoidal on request.  The time grid
is a regular ``dt`` grid augmented with every stimulus breakpoint so sharp
source edges land exactly on a step.

The engine reuses the DC :class:`~repro.spice.dc.System` indices across
steps and warm-starts every Newton solve from the previous solution, so a
cell-level transient (tens of devices, hundreds of steps) completes in
well under a second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import BudgetExhaustedError, CircuitError, ConvergenceError
from ..obs import NULL_TELEMETRY
from .circuit import Circuit, canonical_node
from .dc import OperatingPoint, System, solve_dc
from .recovery import SolveBudget
from .waveform import Waveform


@dataclass
class TransientStats:
    """Retry/step bookkeeping for one transient run.

    ``steps_taken`` counts accepted Newton solves (base grid intervals
    plus any recovery substeps); the remaining counters describe how
    hard the engine had to fight to finish.
    """

    grid_points: int = 0
    steps_taken: int = 0
    newton_failures: int = 0
    retried_intervals: int = 0
    halvings: int = 0
    max_subdivision_depth: int = 0
    be_fallback_steps: int = 0
    ringing_fallback_steps: int = 0


class TransientResult:
    """Node voltages and source currents over time."""

    def __init__(self, time: np.ndarray, voltages: Dict[str, np.ndarray],
                 source_currents: Dict[str, np.ndarray],
                 stats: Optional[TransientStats] = None):
        self.time = time
        self.voltages = voltages
        self.source_currents = source_currents
        self.stats = stats if stats is not None else TransientStats(
            grid_points=len(time))

    def wave(self, node: str) -> Waveform:
        """Voltage waveform of ``node``."""
        try:
            return Waveform(self.time, self.voltages[node])
        except KeyError:
            known = ", ".join(sorted(self.voltages))
            raise CircuitError(
                f"node {node!r} was not recorded; recorded: {known}") from None

    def current(self, source_name: str) -> Waveform:
        """Current delivered by the named source (positive = sourcing)."""
        try:
            return Waveform(self.time, self.source_currents[source_name])
        except KeyError:
            known = ", ".join(sorted(self.source_currents))
            raise CircuitError(
                f"source {source_name!r} not recorded; recorded: {known}"
            ) from None

    def differential(self, node_p: str, node_n: str) -> Waveform:
        """Differential voltage ``v(node_p) - v(node_n)``."""
        return self.wave(node_p) - self.wave(node_n)


class _CompanionCaps:
    """Capacitor companion-model bookkeeping for one circuit.

    Vectorized like the device banks (:mod:`repro.spice.banks`): the
    capacitor list is flattened to index arrays into the packed voltage
    vector ``System.full_volts`` builds, so each Newton ``extra`` call is
    a handful of array operations instead of a Python loop over entries.
    The companion Jacobian is constant over a time step (it only depends
    on ``geq = factor*c/dt`` and the node incidence), so
    :meth:`make_extra` builds it once and the closure reuses it across
    Newton iterations.

    Commit discipline: :meth:`step_currents` computes the per-entry
    companion currents of a candidate accepted step *without* touching
    state; :meth:`commit_currents` stores exactly one such vector as the
    new ``_i_prev``.  The transient engine calls ``commit_currents``
    exactly once per accepted step, whichever method the step ends up
    using (see the ringing path in ``advance_interval``).
    """

    def __init__(self, system: System, circuit: Circuit):
        self.system = system
        self.entries: List[Tuple[int, Optional[str], int, Optional[str], float]] = []
        for a, b, c in circuit.linear_capacitances():
            ia = system.index.get(a, -1)
            ib = system.index.get(b, -1)
            if ia < 0 and ib < 0:
                continue  # both ends fixed: no effect on unknowns
            self.entries.append((ia, a if ia < 0 else None,
                                 ib, b if ib < 0 else None, c))
        self.all_caps = circuit.linear_capacitances()
        self._i_prev: Optional[np.ndarray] = None  # per-entry, for trapezoidal
        # Flat packed-vector indices: unknown -> its row, fixed -> n + pos.
        n = system.n

        def packed(idx: int, name: Optional[str]) -> int:
            return idx if idx >= 0 else n + system.fixed_pos[name]

        self.ja = np.array([packed(ia, na) for ia, na, _, _, _ in self.entries],
                           dtype=int)
        self.jb = np.array([packed(ib, nb) for _, _, ib, nb, _ in self.entries],
                           dtype=int)
        self.cvec = np.array([c for *_, c in self.entries])
        ia_arr = np.array([e[0] for e in self.entries], dtype=int)
        ib_arr = np.array([e[2] for e in self.entries], dtype=int)
        self._ua = ia_arr >= 0
        self._ub = ib_arr >= 0
        self._rows_a = ia_arr[self._ua]
        self._rows_b = ib_arr[self._ub]
        both = self._ua & self._ub
        self._rows_ab = ia_arr[both]
        self._cols_ab = ib_arr[both]
        self._both = both
        # Dense incidence (n, E): the residual deposit collapses to one
        # matrix-vector product per Newton iteration.  Never built in
        # sparse mode — at full-core scale an (n, E) dense operator is
        # exactly the footprint the sparse assembly exists to avoid.
        self._s_extra: Optional[np.ndarray] = None
        if system.assembly != "sparse":
            self._s_extra = np.zeros((n, len(self.entries)))
            for k, (ia, _, ib, _, _) in enumerate(self.entries):
                if ia >= 0:
                    self._s_extra[ia, k] += 1.0
                if ib >= 0:
                    self._s_extra[ib, k] -= 1.0
        # Sparse-mode companion stamp positions, cached per assembly
        # object (a device swap rebuilds the pattern and invalidates
        # every cached position — see _sparse_positions).
        self._sp_for = None
        self._sp_pos: Optional[np.ndarray] = None

    def _sparse_positions(self) -> np.ndarray:
        """Canonical data positions of the companion Jacobian stamps.

        The four stamp groups — (a,a) +geq, (b,b) +geq, (a,b) -geq,
        (b,a) -geq — concatenated in that order; recomputed whenever the
        System's sparse assembly is rebuilt (``swap_device`` under fault
        injection changes the pattern, so stale positions would deposit
        into the wrong entries).
        """
        sp_asm = self.system.sparse_assembly()
        if self._sp_for is not sp_asm:
            self._sp_pos = np.concatenate([
                sp_asm.positions(self._rows_a, self._rows_a),
                sp_asm.positions(self._rows_b, self._rows_b),
                sp_asm.positions(self._rows_ab, self._cols_ab),
                sp_asm.positions(self._cols_ab, self._rows_ab),
            ]) if self.entries else np.zeros(0, dtype=np.int64)
            self._sp_for = sp_asm
        return self._sp_pos

    def start(self) -> None:
        self._i_prev = np.zeros(len(self.entries))

    def _v_diff(self, x: np.ndarray, fixed: Dict[str, float]) -> np.ndarray:
        """Per-entry voltage across each capacitor (a minus b)."""
        v = self.system.full_volts(x, fixed)
        return v[self.ja] - v[self.jb]

    def make_extra(self, x_prev: np.ndarray, fixed_prev: Dict[str, float],
                   fixed_now: Dict[str, float], dt: float, method: str,
                   n: int):
        """Build the Newton ``extra`` callback for one time step."""
        if self.system.assembly == "loop":
            return self._make_extra_loop(x_prev, fixed_prev, fixed_now, dt,
                                         method, n)
        if self.system.assembly == "sparse":
            return self._make_extra_sparse(x_prev, fixed_prev, fixed_now,
                                           dt, method, n)
        if not self.entries:
            f0 = np.zeros(n)
            j0 = np.zeros((n, n))
            return lambda x: (f0, j0)
        v_prev = self._v_diff(x_prev, fixed_prev)
        i_prev = self._i_prev if self._i_prev is not None else np.zeros(
            len(self.entries))
        factor = 1.0 if method == "be" else 2.0
        geq = factor * self.cvec / dt
        # The companion Jacobian never changes within the step: stamp it
        # once and let every Newton iteration reuse it (`newton` adds it
        # to the device Jacobian without mutating it).
        jac = np.zeros((n, n))
        np.add.at(jac, (self._rows_a, self._rows_a), geq[self._ua])
        np.add.at(jac, (self._rows_b, self._rows_b), geq[self._ub])
        np.add.at(jac, (self._rows_ab, self._cols_ab), -geq[self._both])
        np.add.at(jac, (self._cols_ab, self._rows_ab), -geq[self._both])
        tail_now = self.system.fixed_tail(fixed_now)
        s_extra = self._s_extra
        system = self.system
        ja, jb = self.ja, self.jb
        trap = method == "trap"

        def extra(x: np.ndarray):
            v = system.full_volts(x, fixed_now, tail_now)
            i_now = geq * ((v[ja] - v[jb]) - v_prev)
            if trap:
                i_now = i_now - i_prev
            return s_extra @ i_now, jac

        return extra

    def _make_extra_sparse(self, x_prev: np.ndarray,
                           fixed_prev: Dict[str, float],
                           fixed_now: Dict[str, float], dt: float,
                           method: str, n: int):
        """Sparse-mode ``extra``: the Jacobian is a constant nnz data
        vector over the canonical pattern, the residual deposits with
        bincounts — no (n, E) or (n, n) dense arrays anywhere."""
        nnz = self.system.sparse_assembly().nnz
        if not self.entries:
            f0 = np.zeros(n)
            d0 = np.zeros(nnz)
            return lambda x: (f0, d0)
        v_prev = self._v_diff(x_prev, fixed_prev)
        i_prev = self._i_prev if self._i_prev is not None else np.zeros(
            len(self.entries))
        factor = 1.0 if method == "be" else 2.0
        geq = factor * self.cvec / dt
        stamp = np.concatenate([geq[self._ua], geq[self._ub],
                                -geq[self._both], -geq[self._both]])
        data = np.bincount(self._sparse_positions(), weights=stamp,
                           minlength=nnz)
        tail_now = self.system.fixed_tail(fixed_now)
        system = self.system
        ja, jb = self.ja, self.jb
        rows_a, rows_b = self._rows_a, self._rows_b
        ua, ub = self._ua, self._ub
        trap = method == "trap"

        def extra(x: np.ndarray):
            v = system.full_volts(x, fixed_now, tail_now)
            i_now = geq * ((v[ja] - v[jb]) - v_prev)
            if trap:
                i_now = i_now - i_prev
            f = np.bincount(rows_a, weights=i_now[ua], minlength=n)
            f -= np.bincount(rows_b, weights=i_now[ub], minlength=n)
            return f, data

        return extra

    def _make_extra_loop(self, x_prev: np.ndarray,
                         fixed_prev: Dict[str, float],
                         fixed_now: Dict[str, float], dt: float, method: str,
                         n: int):
        """Reference per-entry ``extra`` (``assembly="loop"``), kept
        verbatim from the pre-bank engine."""

        def volt(idx, name, x, fixed):
            return x[idx] if idx >= 0 else fixed[name]

        v_prev = np.array([
            volt(ia, na, x_prev, fixed_prev) - volt(ib, nb, x_prev, fixed_prev)
            for ia, na, ib, nb, _ in self.entries
        ])
        i_prev = self._i_prev if self._i_prev is not None else np.zeros(
            len(self.entries))
        factor = 1.0 if method == "be" else 2.0

        def extra(x: np.ndarray):
            f = np.zeros(n)
            jac = np.zeros((n, n))
            for k, (ia, na, ib, nb, c) in enumerate(self.entries):
                geq = factor * c / dt
                v_now = (volt(ia, na, x, fixed_now)
                         - volt(ib, nb, x, fixed_now))
                i_now = geq * (v_now - v_prev[k])
                if method == "trap":
                    i_now -= i_prev[k]
                if ia >= 0:
                    f[ia] += i_now
                    jac[ia, ia] += geq
                    if ib >= 0:
                        jac[ia, ib] -= geq
                if ib >= 0:
                    f[ib] -= i_now
                    jac[ib, ib] += geq
                    if ia >= 0:
                        jac[ib, ia] -= geq
            return f, jac

        return extra

    def step_currents(self, x: np.ndarray, x_prev: np.ndarray,
                      fixed_now: Dict[str, float],
                      fixed_prev: Dict[str, float], dt: float,
                      method: str) -> np.ndarray:
        """Per-entry companion currents of a candidate accepted step.

        Pure: reads ``_i_prev`` (for the trapezoidal history term) but
        never writes it — pass the result to :meth:`commit_currents`
        once the step is final.
        """
        factor = 1.0 if method == "be" else 2.0
        i_prev = self._i_prev if self._i_prev is not None else np.zeros(
            len(self.entries))
        geq = factor * self.cvec / dt
        i_new = geq * (self._v_diff(x, fixed_now)
                       - self._v_diff(x_prev, fixed_prev))
        if method == "trap":
            i_new = i_new - i_prev
        return i_new

    def commit_currents(self, i_new: np.ndarray) -> None:
        """Store the accepted step's currents; call exactly once per step."""
        self._i_prev = i_new

    def commit(self, x: np.ndarray, x_prev: np.ndarray,
               fixed_now: Dict[str, float], fixed_prev: Dict[str, float],
               dt: float, method: str) -> None:
        """Record per-entry currents after a converged step (trapezoidal)."""
        self.commit_currents(self.step_currents(x, x_prev, fixed_now,
                                                fixed_prev, dt, method))

    def fixed_node_currents(self, fixed_names: Sequence[str]) -> Dict[str, float]:
        """Capacitor current drawn out of each fixed node at the last step."""
        totals = {name: 0.0 for name in fixed_names}
        if self._i_prev is None:
            return totals
        for k, (ia, na, ib, nb, _) in enumerate(self.entries):
            if ia < 0 and na in totals:
                totals[na] += self._i_prev[k]
            if ib < 0 and nb in totals:
                totals[nb] -= self._i_prev[k]
        return totals


def _time_grid(tstop: float, dt: float, breakpoints: Sequence[float]) -> np.ndarray:
    # Integer-indexed construction: each base point is the single product
    # k * dt, and the point count comes from one guarded division — not
    # from float range arithmetic, whose accumulated representation error
    # for non-binary dt/tstop ratios (dt=1e-11, tstop=1e-9) can land the
    # final point short of or past tstop and shift the sample count.
    n_steps = int(np.floor(tstop / dt * (1.0 + 1e-12)))
    base = np.arange(n_steps + 1, dtype=float) * dt
    base = base[base <= tstop]
    extra = [t for t in breakpoints if 0.0 < t < tstop]
    grid = np.unique(np.concatenate([base, np.asarray(extra, dtype=float),
                                     np.asarray([tstop])]))
    # Drop points closer than dt/1000 to avoid degenerate steps.
    keep = [0]
    for i in range(1, len(grid)):
        if grid[i] - grid[keep[-1]] > dt * 1e-3:
            keep.append(i)
    # tstop must survive dedup exactly: when a stimulus breakpoint lands
    # within dt/1000 of it, drop the breakpoint and keep tstop instead.
    last = len(grid) - 1
    if keep[-1] != last:
        if len(keep) == 1:
            keep.append(last)
        else:
            keep[-1] = last
    return grid[keep]


#: Ringing-detector floors: entries below ``RINGING_REL_FLOOR`` times the
#: trace's own peak companion-current magnitude are numerical noise, and
#: ``RINGING_ABS_FLOOR`` guards the all-(near-)zero trace.  The floor is
#: *relative* on purpose: an absolute cutoff (the old 1e-12 A) classified
#: any trace whose alternating currents sat entirely at floor scale —
#: femtofarad caps on millivolt swings — as non-ringing.
RINGING_REL_FLOOR = 1e-6
RINGING_ABS_FLOOR = 1e-30


def _ringing_mask(i_new: np.ndarray, i_old: np.ndarray) -> np.ndarray:
    """Elementwise ringing mask over the trailing capacitor-entry axis.

    Accepts ``(E,)`` serial vectors and ``(B, E)`` batched stacks alike;
    the floor reduction is per trace (``axis=-1``), so the batched
    detector is the serial detector applied row by row — bit for bit.
    """
    a_new, a_old = np.abs(i_new), np.abs(i_old)
    scale = np.maximum(a_new.max(axis=-1, keepdims=True),
                       a_old.max(axis=-1, keepdims=True))
    floor = np.maximum(RINGING_REL_FLOOR * scale, RINGING_ABS_FLOOR)
    mask = (a_new > floor) & (a_old > floor)
    alternating = (i_new * i_old < 0.0) & (a_new > 0.95 * a_old)
    return mask & alternating


def _trap_ringing(i_new: Optional[np.ndarray],
                  i_old: Optional[np.ndarray]) -> bool:
    """Detect trapezoidal ringing: sign-alternating, non-decaying
    companion currents (the classic trap artefact on sharp edges)."""
    if i_new is None or i_old is None or i_new.size == 0:
        return False
    return bool(np.any(_ringing_mask(i_new, i_old)))


def run_transient(circuit: Circuit, tstop: float, dt: float,
                  record: Optional[Sequence[str]] = None,
                  method: str = "be",
                  ic: Optional[OperatingPoint] = None,
                  max_step_halvings: int = 8,
                  be_fallback: bool = True,
                  detect_ringing: bool = False,
                  on_step: Optional[Callable[[float], None]] = None,
                  telemetry=None,
                  budget: Optional[SolveBudget] = None) -> TransientResult:
    """Simulate ``circuit`` from 0 to ``tstop`` with base step ``dt``.

    Parameters
    ----------
    record:
        Node names to record (default: every node).  Names are
        canonicalised (ground aliases fold to ``"0"``); a name that is
        not a node of the circuit raises :class:`CircuitError` instead
        of silently recording 0.0.
    method:
        ``"be"`` (backward Euler, default — robust) or ``"trap"``
        (trapezoidal — second order, used by the oscillation-sensitive
        characterisation tests).
    ic:
        Initial operating point; computed with :func:`solve_dc` at t=0
        when omitted.
    max_step_halvings:
        On a failed Newton step the engine locally halves the step and
        retries, down to ``dt / 2**max_step_halvings``.  Substeps are
        internal: results stay aligned to the base grid.
    be_fallback:
        When a trapezoidal substep still fails at the minimum step size,
        retry it once with backward Euler before giving up.
    detect_ringing:
        After each converged trapezoidal step, check the capacitor
        companion currents for sign-alternating non-decaying ringing and
        redo the step with backward Euler when found (off by default —
        it damps legitimate oscillations too).
    on_step:
        Callback invoked with the target time before every Newton solve
        attempt (including retries) — the fault-injection hook.
    telemetry:
        Observability handle; the run is wrapped in a
        ``spice.transient.run`` span and the per-run
        :class:`TransientStats` are folded into the metrics registry
        once at the end (no per-step telemetry cost).
    budget:
        Deterministic :class:`~repro.spice.recovery.SolveBudget`
        (default: ``REPRO_SOLVE_BUDGET`` via
        :meth:`SolveBudget.from_env`).  ``max_transient_rejections``
        bounds failed Newton solves across all step-halving retries,
        ``max_transient_steps`` bounds accepted steps; its DC limits
        apply to the initial operating-point solve.  Exhaustion raises
        :class:`~repro.errors.BudgetExhaustedError` carrying the
        :class:`TransientStats` so far.
    """
    if tstop <= 0.0 or dt <= 0.0:
        raise CircuitError("tstop and dt must be positive")
    if method not in ("be", "trap"):
        raise CircuitError(f"unknown integration method {method!r}")
    if max_step_halvings < 0:
        raise CircuitError("max_step_halvings must be >= 0")
    tele = telemetry if telemetry is not None else NULL_TELEMETRY
    budget = budget if budget is not None else SolveBudget.from_env()
    with tele.span("spice.transient.run", circuit=circuit.name,
                   tstop=tstop, dt=dt, method=method) as span:
        system = System(circuit, telemetry=tele)
        op = ic if ic is not None else solve_dc(circuit, t=0.0, system=system,
                                                budget=budget)
        caps = _CompanionCaps(system, circuit)
        caps.start()

        if record is not None:
            # Unknown names used to silently record 0.0 (the old
            # fixed_now.get default) — validate up front instead.
            known = set(circuit.all_nodes())
            record_nodes = list(dict.fromkeys(record))
            canon_of = {node: canonical_node(node) for node in record_nodes}
            bad = sorted(node for node, canon in canon_of.items()
                         if canon not in known)
            if bad:
                raise CircuitError(
                    f"record names {bad} are not nodes of circuit "
                    f"{circuit.name!r}; known nodes: {sorted(known)}")
        else:
            record_nodes = circuit.all_nodes()
            canon_of = {node: node for node in record_nodes}
        grid = _time_grid(tstop, dt, circuit.stimulus_breakpoints())
        stats = TransientStats(grid_points=len(grid))

        x = np.array([op.voltages[n] for n in system.unknowns]) if system.n else \
            np.zeros(0)
        fixed_prev = circuit.fixed_nodes(0.0)
        fixed_names = list(fixed_prev)

        volt_hist: Dict[str, List[float]] = {n: [] for n in record_nodes}
        src_hist: Dict[str, List[float]] = {s.name: [] for s in circuit.vsources}

        def snapshot(x_now: np.ndarray, fixed_now: Dict[str, float]) -> None:
            for node in record_nodes:
                canon = canon_of[node]
                if canon in system.index:
                    volt_hist[node].append(float(x_now[system.index[canon]]))
                else:
                    volt_hist[node].append(fixed_now[canon])
            dev_currents = system.fixed_node_currents(x_now, fixed_now)
            cap_currents = caps.fixed_node_currents(fixed_names)
            for source in circuit.vsources:
                total = dev_currents.get(source.node, 0.0) + cap_currents.get(
                    source.node, 0.0)
                src_hist[source.name].append(total)

        def solve_substep(t_next: float, sub: float, x_cur: np.ndarray,
                          fixed_cur: Dict[str, float],
                          fixed_next: Dict[str, float], use_method: str):
            if on_step is not None:
                on_step(t_next)
            extra = caps.make_extra(x_cur, fixed_cur, fixed_next, sub,
                                    use_method, system.n)
            return system.newton(fixed_next, x_cur, gmin=0.0, extra=extra)

        def exhaust(limit: str, t_next: float) -> None:
            """Record and raise a transient budget exhaustion."""
            tele.counter("spice.budget.transient_exhausted").inc()
            tele.event("spice.budget.exhausted", scope="transient",
                       limit=limit, t=t_next,
                       steps_taken=stats.steps_taken,
                       newton_failures=stats.newton_failures)
            raise BudgetExhaustedError(
                f"transient budget exhausted at t={t_next:.6g} s "
                f"({limit}={getattr(budget, limit)}): "
                f"{stats.steps_taken} steps accepted, "
                f"{stats.newton_failures} Newton rejections",
                iterations=stats.newton_failures,
                context={"scope": "transient", "limit": limit, "t": t_next,
                         "budget": budget.to_dict(),
                         "steps_taken": stats.steps_taken,
                         "newton_failures": stats.newton_failures,
                         "halvings": stats.halvings})

        def advance_interval(t0: float, t1: float, x_cur: np.ndarray,
                             fixed_cur: Dict[str, float]):
            """March from t0 to t1, subdividing locally on Newton failures."""
            min_sub = (t1 - t0) / (2 ** max_step_halvings)
            pending = [t1]
            interval_retried = False
            t_cur = t0
            while pending:
                t_next = pending[-1]
                sub = t_next - t_cur
                fixed_next = circuit.fixed_nodes(t_next)
                use_method = method
                try:
                    x_new = solve_substep(t_next, sub, x_cur, fixed_cur,
                                          fixed_next, method)
                except BudgetExhaustedError:
                    raise
                except ConvergenceError as err:
                    stats.newton_failures += 1
                    if budget.max_transient_rejections is not None \
                            and stats.newton_failures \
                            > budget.max_transient_rejections:
                        exhaust("max_transient_rejections", t_next)
                    if not interval_retried:
                        interval_retried = True
                        stats.retried_intervals += 1
                    if sub / 2.0 >= min_sub * (1.0 - 1e-12):
                        stats.halvings += 1
                        pending.append(t_cur + sub / 2.0)
                        stats.max_subdivision_depth = max(
                            stats.max_subdivision_depth, len(pending))
                        continue
                    if method == "trap" and be_fallback:
                        try:
                            x_new = solve_substep(t_next, sub, x_cur, fixed_cur,
                                                  fixed_next, "be")
                            use_method = "be"
                            stats.be_fallback_steps += 1
                        except ConvergenceError:
                            raise ConvergenceError(
                                f"transient step to t={t_next:.6g} s failed "
                                f"after {max_step_halvings} halvings and a "
                                f"backward-Euler fallback",
                                iterations=err.iterations,
                                residual=err.residual) from err
                    else:
                        raise ConvergenceError(
                            f"transient step to t={t_next:.6g} s failed after "
                            f"{max_step_halvings} halvings "
                            f"(smallest step {sub:.3g} s)",
                            iterations=err.iterations,
                            residual=err.residual) from err
                # Exactly one commit_currents per accepted step: compute
                # candidate companion currents without touching _i_prev,
                # decide which solution the step keeps, then commit once.
                i_cand = caps.step_currents(x_new, x_cur, fixed_next,
                                            fixed_cur, sub, use_method)
                if (detect_ringing and use_method == "trap"
                        and _trap_ringing(i_cand, caps._i_prev)):
                    try:
                        x_be = solve_substep(t_next, sub, x_cur, fixed_cur,
                                             fixed_next, "be")
                    except ConvergenceError:
                        # BE redo failed: keep the converged trap step.
                        caps.commit_currents(i_cand)
                    else:
                        x_new = x_be
                        caps.commit_currents(caps.step_currents(
                            x_new, x_cur, fixed_next, fixed_cur, sub, "be"))
                        stats.ringing_fallback_steps += 1
                else:
                    caps.commit_currents(i_cand)
                pending.pop()
                t_cur, x_cur, fixed_cur = t_next, x_new, fixed_next
                stats.steps_taken += 1
                if budget.max_transient_steps is not None \
                        and stats.steps_taken > budget.max_transient_steps:
                    exhaust("max_transient_steps", t_next)
            return x_cur, fixed_cur

        snapshot(x, fixed_prev)
        for i in range(1, len(grid)):
            x, fixed_prev = advance_interval(float(grid[i - 1]), float(grid[i]),
                                             x, fixed_prev)
            snapshot(x, fixed_prev)

        voltages = {n: np.asarray(v) for n, v in volt_hist.items()}
        currents = {n: np.asarray(v) for n, v in src_hist.items()}
        span.set("grid_points", stats.grid_points)
        span.set("steps_taken", stats.steps_taken)
        span.set("newton_failures", stats.newton_failures)
        span.set("halvings", stats.halvings)
        span.set("be_fallback_steps", stats.be_fallback_steps)
        span.set("ringing_fallback_steps", stats.ringing_fallback_steps)
        _note_transient(tele, stats)
    return TransientResult(grid, voltages, currents, stats=stats)


def _note_transient(tele, stats: TransientStats) -> None:
    """Fold one finished transient run into the metrics registry."""
    tele.counter("spice.transient.runs").inc()
    tele.counter("spice.transient.steps_accepted").inc(stats.steps_taken)
    if stats.newton_failures:
        tele.counter("spice.transient.step_rejections").inc(
            stats.newton_failures)
    if stats.halvings:
        tele.counter("spice.transient.halvings").inc(stats.halvings)
    if stats.be_fallback_steps:
        tele.counter("spice.transient.be_fallbacks").inc(
            stats.be_fallback_steps)
    if stats.ringing_fallback_steps:
        tele.counter("spice.transient.ringing_fallbacks").inc(
            stats.ringing_fallback_steps)
