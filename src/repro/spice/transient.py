"""Fixed-step transient analysis.

Capacitors (explicit and MOSFET parasitics) are handled by companion
models: backward Euler by default, trapezoidal on request.  The time grid
is a regular ``dt`` grid augmented with every stimulus breakpoint so sharp
source edges land exactly on a step.

The engine reuses the DC :class:`~repro.spice.dc.System` indices across
steps and warm-starts every Newton solve from the previous solution, so a
cell-level transient (tens of devices, hundreds of steps) completes in
well under a second.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CircuitError
from .circuit import Circuit
from .dc import OperatingPoint, System, solve_dc
from .waveform import Waveform


class TransientResult:
    """Node voltages and source currents over time."""

    def __init__(self, time: np.ndarray, voltages: Dict[str, np.ndarray],
                 source_currents: Dict[str, np.ndarray]):
        self.time = time
        self.voltages = voltages
        self.source_currents = source_currents

    def wave(self, node: str) -> Waveform:
        """Voltage waveform of ``node``."""
        try:
            return Waveform(self.time, self.voltages[node])
        except KeyError:
            known = ", ".join(sorted(self.voltages))
            raise CircuitError(
                f"node {node!r} was not recorded; recorded: {known}") from None

    def current(self, source_name: str) -> Waveform:
        """Current delivered by the named source (positive = sourcing)."""
        try:
            return Waveform(self.time, self.source_currents[source_name])
        except KeyError:
            known = ", ".join(sorted(self.source_currents))
            raise CircuitError(
                f"source {source_name!r} not recorded; recorded: {known}"
            ) from None

    def differential(self, node_p: str, node_n: str) -> Waveform:
        """Differential voltage ``v(node_p) - v(node_n)``."""
        return self.wave(node_p) - self.wave(node_n)


class _CompanionCaps:
    """Capacitor companion-model bookkeeping for one circuit."""

    def __init__(self, system: System, circuit: Circuit):
        self.entries: List[Tuple[int, Optional[str], int, Optional[str], float]] = []
        for a, b, c in circuit.linear_capacitances():
            ia = system.index.get(a, -1)
            ib = system.index.get(b, -1)
            if ia < 0 and ib < 0:
                continue  # both ends fixed: no effect on unknowns
            self.entries.append((ia, a if ia < 0 else None,
                                 ib, b if ib < 0 else None, c))
        self.all_caps = circuit.linear_capacitances()
        self._i_prev: Optional[np.ndarray] = None  # per-entry, for trapezoidal

    def _volt(self, idx: int, name: Optional[str], x: np.ndarray,
              fixed: Dict[str, float]) -> float:
        return x[idx] if idx >= 0 else fixed[name]

    def start(self) -> None:
        self._i_prev = np.zeros(len(self.entries))

    def make_extra(self, x_prev: np.ndarray, fixed_prev: Dict[str, float],
                   fixed_now: Dict[str, float], dt: float, method: str,
                   n: int):
        """Build the Newton ``extra`` callback for one time step."""
        v_prev = np.array([
            self._volt(ia, na, x_prev, fixed_prev)
            - self._volt(ib, nb, x_prev, fixed_prev)
            for ia, na, ib, nb, _ in self.entries
        ])
        i_prev = self._i_prev if self._i_prev is not None else np.zeros(
            len(self.entries))
        factor = 1.0 if method == "be" else 2.0

        def extra(x: np.ndarray):
            f = np.zeros(n)
            jac = np.zeros((n, n))
            for k, (ia, na, ib, nb, c) in enumerate(self.entries):
                geq = factor * c / dt
                v_now = (self._volt(ia, na, x, fixed_now)
                         - self._volt(ib, nb, x, fixed_now))
                i_now = geq * (v_now - v_prev[k])
                if method == "trap":
                    i_now -= i_prev[k]
                if ia >= 0:
                    f[ia] += i_now
                    jac[ia, ia] += geq
                    if ib >= 0:
                        jac[ia, ib] -= geq
                if ib >= 0:
                    f[ib] -= i_now
                    jac[ib, ib] += geq
                    if ia >= 0:
                        jac[ib, ia] -= geq
            return f, jac

        return extra

    def commit(self, x: np.ndarray, x_prev: np.ndarray,
               fixed_now: Dict[str, float], fixed_prev: Dict[str, float],
               dt: float, method: str) -> None:
        """Record per-entry currents after a converged step (trapezoidal)."""
        factor = 1.0 if method == "be" else 2.0
        i_new = np.zeros(len(self.entries))
        i_prev = self._i_prev if self._i_prev is not None else np.zeros(
            len(self.entries))
        for k, (ia, na, ib, nb, c) in enumerate(self.entries):
            geq = factor * c / dt
            v_now = self._volt(ia, na, x, fixed_now) - self._volt(
                ib, nb, x, fixed_now)
            v_old = self._volt(ia, na, x_prev, fixed_prev) - self._volt(
                ib, nb, x_prev, fixed_prev)
            i = geq * (v_now - v_old)
            if method == "trap":
                i -= i_prev[k]
            i_new[k] = i
        self._i_prev = i_new

    def fixed_node_currents(self, fixed_names: Sequence[str]) -> Dict[str, float]:
        """Capacitor current drawn out of each fixed node at the last step."""
        totals = {name: 0.0 for name in fixed_names}
        if self._i_prev is None:
            return totals
        for k, (ia, na, ib, nb, _) in enumerate(self.entries):
            if ia < 0 and na in totals:
                totals[na] += self._i_prev[k]
            if ib < 0 and nb in totals:
                totals[nb] -= self._i_prev[k]
        return totals


def _time_grid(tstop: float, dt: float, breakpoints: Sequence[float]) -> np.ndarray:
    base = np.arange(0.0, tstop + dt / 2, dt)
    extra = [t for t in breakpoints if 0.0 < t < tstop]
    grid = np.unique(np.concatenate([base, np.asarray(extra, dtype=float)]))
    # Drop points closer than dt/1000 to avoid degenerate steps.
    keep = [0]
    for i in range(1, len(grid)):
        if grid[i] - grid[keep[-1]] > dt * 1e-3:
            keep.append(i)
    return grid[keep]


def run_transient(circuit: Circuit, tstop: float, dt: float,
                  record: Optional[Sequence[str]] = None,
                  method: str = "be",
                  ic: Optional[OperatingPoint] = None) -> TransientResult:
    """Simulate ``circuit`` from 0 to ``tstop`` with base step ``dt``.

    Parameters
    ----------
    record:
        Node names to record (default: every node).
    method:
        ``"be"`` (backward Euler, default — robust) or ``"trap"``
        (trapezoidal — second order, used by the oscillation-sensitive
        characterisation tests).
    ic:
        Initial operating point; computed with :func:`solve_dc` at t=0
        when omitted.
    """
    if tstop <= 0.0 or dt <= 0.0:
        raise CircuitError("tstop and dt must be positive")
    if method not in ("be", "trap"):
        raise CircuitError(f"unknown integration method {method!r}")
    system = System(circuit)
    op = ic if ic is not None else solve_dc(circuit, t=0.0, system=system)
    caps = _CompanionCaps(system, circuit)
    caps.start()

    record_nodes = list(record) if record is not None else circuit.all_nodes()
    grid = _time_grid(tstop, dt, circuit.stimulus_breakpoints())

    x = np.array([op.voltages[n] for n in system.unknowns]) if system.n else \
        np.zeros(0)
    fixed_prev = circuit.fixed_nodes(0.0)
    fixed_names = list(fixed_prev)

    volt_hist: Dict[str, List[float]] = {n: [] for n in record_nodes}
    src_hist: Dict[str, List[float]] = {s.name: [] for s in circuit.vsources}

    def snapshot(x_now: np.ndarray, fixed_now: Dict[str, float]) -> None:
        for node in record_nodes:
            if node in system.index:
                volt_hist[node].append(float(x_now[system.index[node]]))
            else:
                volt_hist[node].append(fixed_now.get(node, 0.0))
        dev_currents = system.fixed_node_currents(x_now, fixed_now)
        cap_currents = caps.fixed_node_currents(fixed_names)
        for source in circuit.vsources:
            total = dev_currents.get(source.node, 0.0) + cap_currents.get(
                source.node, 0.0)
            src_hist[source.name].append(total)

    snapshot(x, fixed_prev)
    for i in range(1, len(grid)):
        t_now = float(grid[i])
        step = t_now - float(grid[i - 1])
        fixed_now = circuit.fixed_nodes(t_now)
        extra = caps.make_extra(x, fixed_prev, fixed_now, step, method,
                                system.n)
        x_new = system.newton(fixed_now, x, gmin=0.0, extra=extra)
        caps.commit(x_new, x, fixed_now, fixed_prev, step, method)
        x, fixed_prev = x_new, fixed_now
        snapshot(x, fixed_now)

    voltages = {n: np.asarray(v) for n, v in volt_hist.items()}
    currents = {n: np.asarray(v) for n, v in src_hist.items()}
    return TransientResult(grid, voltages, currents)
