"""DC sweep analysis.

Steps one voltage source through a list of values, warm-starting each
Newton solve from the previous point (source stepping for free), and
returns every node voltage and source current as functions of the swept
variable.  This is how the transfer curves behind the MCML noise-margin
and CMOS VTC tests are produced.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import CircuitError
from .circuit import Circuit
from .dc import System, solve_dc
from .stimulus import DC
from .waveform import Waveform


class SweepResult:
    """Node voltages / source currents vs the swept value."""

    def __init__(self, variable: str, values: np.ndarray,
                 voltages: Dict[str, np.ndarray],
                 source_currents: Dict[str, np.ndarray]):
        self.variable = variable
        self.values = values
        self.voltages = voltages
        self.source_currents = source_currents

    def _as_wave(self, samples: np.ndarray) -> Waveform:
        # Waveform wants a strictly increasing axis; the sweep may have
        # run in any order (reverse/hysteresis characterisation), so
        # sort by swept value.  Stable sort keeps this a no-op view of
        # an already-ascending sweep.
        order = np.argsort(self.values, kind="stable")
        return Waveform(self.values[order], np.asarray(samples)[order])

    def wave(self, node: str) -> Waveform:
        """Node voltage as a Waveform over the (ascending) swept value."""
        try:
            return self._as_wave(self.voltages[node])
        except KeyError:
            known = ", ".join(sorted(self.voltages))
            raise CircuitError(
                f"node {node!r} not recorded; recorded: {known}") from None

    def current(self, source_name: str) -> Waveform:
        try:
            return self._as_wave(self.source_currents[source_name])
        except KeyError:
            known = ", ".join(sorted(self.source_currents))
            raise CircuitError(
                f"source {source_name!r} not recorded; recorded: {known}"
            ) from None

    def gain(self, out_node: str) -> Waveform:
        """Numerical derivative d(v_out)/d(v_swept)."""
        wave = self.wave(out_node)
        slope = np.gradient(wave.v, wave.t)
        return Waveform(wave.t, slope)

    def switching_threshold(self, out_node: str) -> float:
        """Input value where ``v(out) == v(in)`` (the VTC midpoint)."""
        wave = self.wave(out_node)
        diff = wave.v - wave.t
        crossings = Waveform(wave.t, diff).crossings(0.0)
        if not crossings:
            raise CircuitError(
                f"transfer curve of {out_node!r} never crosses the "
                f"identity line")
        return crossings[0]

    def __repr__(self) -> str:
        return (f"SweepResult({self.variable}: {len(self.values)} points "
                f"[{self.values[0]:.3g}, {self.values[-1]:.3g}])")


def dc_sweep(circuit: Circuit, source_name: str,
             values: Sequence[float],
             record: Optional[Sequence[str]] = None) -> SweepResult:
    """Sweep the named grounded voltage source through ``values``.

    The source's stimulus is restored afterwards, so the circuit can be
    reused.  Values need not be monotonic — decreasing (reverse) and
    mixed orders are solved in ascending order for warm-start quality
    and the results are scattered back into the caller's order, so
    hysteresis / backward-VTC characterisation works.  Only duplicate
    values are rejected (the swept variable must be a function axis).
    """
    values_arr = np.asarray(list(values), dtype=float)
    if values_arr.size < 2:
        raise CircuitError("a sweep needs at least two points")
    if values_arr.size != np.unique(values_arr).size:
        dupes = sorted({v for v in values_arr.tolist()
                        if values_arr.tolist().count(v) > 1})
        raise CircuitError(
            f"sweep values must not repeat: {dupes}")
    source = next((s for s in circuit.vsources if s.name == source_name),
                  None)
    if source is None:
        known = ", ".join(s.name for s in circuit.vsources)
        raise CircuitError(
            f"no source named {source_name!r}; sources: {known}")

    system = System(circuit)
    record_nodes = list(record) if record is not None else \
        circuit.all_nodes()
    volt_hist: Dict[str, np.ndarray] = {
        n: np.empty(values_arr.size) for n in record_nodes}
    src_hist: Dict[str, np.ndarray] = {
        s.name: np.empty(values_arr.size) for s in circuit.vsources}

    # Solve ascending (each point warm-starts the next), record into the
    # caller's slots.  A strictly decreasing sweep is thus exactly
    # "reverse, solve, un-reverse".
    order = np.argsort(values_arr, kind="stable")
    original = source.stimulus
    guess: Optional[Dict[str, float]] = None
    try:
        for position in order:
            source.stimulus = DC(float(values_arr[position]))
            op = solve_dc(circuit, system=system, guess=guess)
            guess = {n: op.voltages[n] for n in system.unknowns}
            for node in record_nodes:
                if node not in op.voltages:
                    known = ", ".join(sorted(op.voltages))
                    raise CircuitError(
                        f"cannot record unknown node {node!r}; the "
                        f"operating point knows: {known}")
                volt_hist[node][position] = op.voltages[node]
            for s in circuit.vsources:
                src_hist[s.name][position] = op.source_currents[s.name]
    finally:
        source.stimulus = original

    return SweepResult(
        variable=source_name, values=values_arr,
        voltages=volt_hist, source_currents=src_hist)
