"""DC sweep analysis.

Steps one voltage source through a list of values, warm-starting each
Newton solve from the previous point (source stepping for free), and
returns every node voltage and source current as functions of the swept
variable.  This is how the transfer curves behind the MCML noise-margin
and CMOS VTC tests are produced.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import CircuitError
from .circuit import Circuit
from .dc import System, solve_dc
from .stimulus import DC
from .waveform import Waveform


class SweepResult:
    """Node voltages / source currents vs the swept value."""

    def __init__(self, variable: str, values: np.ndarray,
                 voltages: Dict[str, np.ndarray],
                 source_currents: Dict[str, np.ndarray]):
        self.variable = variable
        self.values = values
        self.voltages = voltages
        self.source_currents = source_currents

    def wave(self, node: str) -> Waveform:
        """Node voltage as a Waveform over the swept variable."""
        try:
            return Waveform(self.values, self.voltages[node])
        except KeyError:
            known = ", ".join(sorted(self.voltages))
            raise CircuitError(
                f"node {node!r} not recorded; recorded: {known}") from None

    def current(self, source_name: str) -> Waveform:
        try:
            return Waveform(self.values, self.source_currents[source_name])
        except KeyError:
            known = ", ".join(sorted(self.source_currents))
            raise CircuitError(
                f"source {source_name!r} not recorded; recorded: {known}"
            ) from None

    def gain(self, out_node: str) -> Waveform:
        """Numerical derivative d(v_out)/d(v_swept)."""
        wave = self.wave(out_node)
        slope = np.gradient(wave.v, wave.t)
        return Waveform(wave.t, slope)

    def switching_threshold(self, out_node: str) -> float:
        """Input value where ``v(out) == v(in)`` (the VTC midpoint)."""
        diff = self.wave(out_node).v - self.values
        crossings = Waveform(self.values, diff).crossings(0.0)
        if not crossings:
            raise CircuitError(
                f"transfer curve of {out_node!r} never crosses the "
                f"identity line")
        return crossings[0]

    def __repr__(self) -> str:
        return (f"SweepResult({self.variable}: {len(self.values)} points "
                f"[{self.values[0]:.3g}, {self.values[-1]:.3g}])")


def dc_sweep(circuit: Circuit, source_name: str,
             values: Sequence[float],
             record: Optional[Sequence[str]] = None) -> SweepResult:
    """Sweep the named grounded voltage source through ``values``.

    The source's stimulus is restored afterwards, so the circuit can be
    reused.  Values need not be monotonic, but warm starting works best
    when they are.
    """
    values_arr = np.asarray(list(values), dtype=float)
    if values_arr.size < 2:
        raise CircuitError("a sweep needs at least two points")
    if values_arr.size != np.unique(values_arr).size or \
            not np.all(np.diff(values_arr) > 0):
        raise CircuitError("sweep values must be strictly increasing")
    source = next((s for s in circuit.vsources if s.name == source_name),
                  None)
    if source is None:
        known = ", ".join(s.name for s in circuit.vsources)
        raise CircuitError(
            f"no source named {source_name!r}; sources: {known}")

    system = System(circuit)
    record_nodes = list(record) if record is not None else \
        circuit.all_nodes()
    volt_hist: Dict[str, List[float]] = {n: [] for n in record_nodes}
    src_hist: Dict[str, List[float]] = {s.name: [] for s in circuit.vsources}

    original = source.stimulus
    guess: Optional[Dict[str, float]] = None
    try:
        for value in values_arr:
            source.stimulus = DC(float(value))
            op = solve_dc(circuit, system=system, guess=guess)
            guess = {n: op.voltages[n] for n in system.unknowns}
            for node in record_nodes:
                volt_hist[node].append(op.voltages.get(node, 0.0))
            for s in circuit.vsources:
                src_hist[s.name].append(op.source_currents[s.name])
    finally:
        source.stimulus = original

    return SweepResult(
        variable=source_name, values=values_arr,
        voltages={n: np.asarray(v) for n, v in volt_hist.items()},
        source_currents={n: np.asarray(v) for n, v in src_hist.items()})
