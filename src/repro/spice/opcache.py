"""Content-addressed operating-point cache.

A synthesized core instantiates the same handful of cells thousands of
times, and an acquisition campaign re-solves the same testbench with
only the stimulus changing — most DC solves the engine runs are exact
repeats.  This module caches solved operating points keyed by a
*content fingerprint* of everything that determines the solution and
the solver's trajectory to it:

* every device, in list order, as ``(class tag, name, terminals,
  parameters, parasitic capacitances)`` — list order matters because
  deposit summation order is part of the floating-point result;
* the fixed-node voltages at the solve time (the bias / corner axis —
  a different stimulus value at ``t`` is a different key);
* the warm-start guess and the assembly mode (both steer the Newton
  trajectory).

Content addressing *is* the invalidation contract: ``swap_device``
(fault-injection arming, model overrides) changes the device tuple, so
the poisoned entry simply can never be looked up again.  Devices of
unknown classes — fault proxies, test doubles — have no stable
parameter surface to fingerprint, so circuits containing them bypass
the cache entirely (counted in ``bypasses``).

A cache hit returns a fresh :class:`~repro.spice.dc.OperatingPoint`
with copied voltage/current dicts, byte-identical to what a cold solve
would produce (the solver is deterministic given the fingerprinted
inputs); the stored solve's diagnostics ride along.  The cache is OFF
by default — enable it with ``REPRO_OP_CACHE=1`` / ``--op-cache`` or by
passing an explicit cache to :func:`~repro.spice.dc.solve_dc`.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from typing import Dict, Optional

from .devices import Capacitor, ISource, Mosfet, Resistor

#: Environment switch for the process-default cache ("1"/"true"/"on").
OP_CACHE_ENV = "REPRO_OP_CACHE"

#: Default entry ceiling; FIFO eviction beyond it keeps the footprint
#: bounded for long campaigns.
DEFAULT_MAX_ENTRIES = 4096

_TRUTHY = {"1", "true", "on", "yes"}


class OperatingPointCache:
    """FIFO-bounded map from content fingerprints to operating points."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        self.max_entries = max_entries
        self._store: "OrderedDict[str, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.stores = 0

    def __len__(self) -> int:
        return len(self._store)

    def counters(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "bypasses": self.bypasses, "stores": self.stores,
                "entries": len(self._store)}

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._store.clear()
        self.hits = self.misses = self.bypasses = self.stores = 0

    # -- fingerprinting ------------------------------------------------------

    def fingerprint(self, circuit, t: float,
                    guess: Optional[Dict[str, float]],
                    assembly: str) -> Optional[str]:
        """The content key, or ``None`` when the circuit cannot be
        fingerprinted (unknown device classes — fault proxies)."""
        parts = [circuit.name, assembly]
        for device in circuit.devices:
            cls = type(device)
            if cls is Resistor:
                sig = ("R", device.name, device.terminals,
                       repr(device.resistance))
            elif cls is Capacitor:
                sig = ("C", device.name, device.terminals,
                       repr(device.capacitance))
            elif cls is ISource:
                sig = ("I", device.name, device.terminals,
                       repr(device.value))
            elif cls is Mosfet:
                params = tuple(sorted(
                    (k, repr(v))
                    for k, v in device.model.bank_params().items()))
                caps = tuple((a, b, repr(c))
                             for a, b, c in device.capacitances())
                sig = ("M", device.name, device.terminals, params, caps)
            else:
                return None
            parts.append(repr(sig))
        fixed = circuit.fixed_nodes(t)
        parts.append(repr(tuple(sorted(
            (node, repr(v)) for node, v in fixed.items()))))
        if guess:
            parts.append(repr(tuple(sorted(
                (node, repr(v)) for node, v in guess.items()))))
        else:
            parts.append("no-guess")
        digest = hashlib.sha256("\x1f".join(parts).encode()).hexdigest()
        return digest

    # -- storage -------------------------------------------------------------

    def lookup(self, key: str):
        """The cached :class:`OperatingPoint` (fresh dict copies), or
        ``None``.  Counts the hit/miss."""
        stored = self._store.get(key)
        if stored is None:
            self.misses += 1
            return None
        self.hits += 1
        return _copy_op(stored)

    def store(self, key: str, op) -> None:
        self.stores += 1
        self._store[key] = _copy_op(op)
        while len(self._store) > self.max_entries:
            self._store.popitem(last=False)


def _copy_op(op):
    """A defensively-copied OperatingPoint (shared diagnostics)."""
    from .dc import OperatingPoint
    return OperatingPoint(dict(op.voltages), dict(op.source_currents),
                          diagnostics=op.diagnostics)


_DEFAULT_CACHE: Optional[OperatingPointCache] = None


def default_op_cache() -> Optional[OperatingPointCache]:
    """The process-default cache when ``REPRO_OP_CACHE`` enables it.

    The instance persists across calls (that is the point — repeated
    solves share it); flipping the environment variable off hides it
    without clearing it.
    """
    global _DEFAULT_CACHE
    if os.environ.get(OP_CACHE_ENV, "").strip().lower() not in _TRUTHY:
        return None
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = OperatingPointCache()
    return _DEFAULT_CACHE
