"""Supervised subprocess execution for external simulators.

An external simulator is an adversary as far as robustness goes: it can
hang on a stiff circuit, die on a malformed deck, spray megabytes on
stderr, or leave children behind.  :func:`run_supervised` wraps every
invocation in the same discipline the solver budgets apply internally:

* a hard **wall-clock timeout** per attempt, enforced by SIGTERM to the
  process group followed, after a grace period, by SIGKILL — a hung
  simulator is reaped, never waited on forever;
* **bounded retries with exponential backoff** for *transient* failures
  (non-zero exit, spawn races); timeouts are not retried by default
  because a deterministic input that hung once will hang again;
* **stdout/stderr capture** (bounded tails) into the obs stream, so a
  failed run's post-mortem lives in the same JSONL as the campaign
  telemetry;
* structured errors from the PR 5 taxonomy: exhausted retries raise
  :class:`~repro.errors.BackendError`, a reaped hang raises
  :class:`~repro.errors.BackendTimeoutError`, a missing binary raises
  :class:`~repro.errors.BackendUnavailableError` — each with
  ``to_dict()``-able context.
"""

from __future__ import annotations

import os
import signal
import subprocess
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ...errors import (
    BackendError,
    BackendTimeoutError,
    BackendUnavailableError,
)
from ...obs import NULL_TELEMETRY


@dataclass(frozen=True)
class SupervisorPolicy:
    """Supervision knobs for one class of subprocess invocation.

    ``retries`` counts *additional* attempts after the first (so
    ``retries=2`` allows three runs).  Backoff before retry *i* (1-based)
    is ``backoff * backoff_factor**(i-1)`` seconds.  ``term_grace`` is
    how long a SIGTERM'd process gets to exit before SIGKILL.
    """

    timeout: float = 60.0
    term_grace: float = 2.0
    retries: int = 2
    backoff: float = 0.25
    backoff_factor: float = 2.0
    retry_on_timeout: bool = False
    capture_bytes: int = 16384

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise BackendError(f"timeout must be positive: {self.timeout}")
        if self.term_grace < 0 or self.retries < 0 or self.backoff < 0:
            raise BackendError(
                "term_grace, retries and backoff must be non-negative")
        if self.backoff_factor < 1.0:
            raise BackendError(
                f"backoff_factor must be >= 1: {self.backoff_factor}")

    def to_dict(self) -> Dict[str, object]:
        return {"timeout": self.timeout, "term_grace": self.term_grace,
                "retries": self.retries, "backoff": self.backoff,
                "backoff_factor": self.backoff_factor,
                "retry_on_timeout": self.retry_on_timeout}


@dataclass
class AttemptRecord:
    """One subprocess attempt, successful or not."""

    attempt: int
    returncode: Optional[int]
    duration: float
    timed_out: bool
    killed: bool
    stdout_tail: str
    stderr_tail: str

    def to_dict(self) -> Dict[str, object]:
        return {"attempt": self.attempt, "returncode": self.returncode,
                "duration": self.duration, "timed_out": self.timed_out,
                "killed": self.killed, "stdout_tail": self.stdout_tail,
                "stderr_tail": self.stderr_tail}


@dataclass
class SupervisedRun:
    """A successful supervised invocation."""

    argv: List[str]
    returncode: int
    stdout: str
    stderr: str
    attempts: List[AttemptRecord] = field(default_factory=list)

    @property
    def retries_used(self) -> int:
        return len(self.attempts) - 1


def _tail(text: str, limit: int) -> str:
    """Bounded tail of a capture — post-mortems need the end, where
    simulators print their actual error."""
    if len(text) <= limit:
        return text
    return "..." + text[-limit:]


def _reap(proc: "subprocess.Popen", grace: float) -> bool:
    """SIGTERM the process group, escalate to SIGKILL after ``grace``.

    Returns True when SIGKILL was needed.  Signals go to the whole
    group (the child was started in its own session) so a simulator
    that forked helpers cannot orphan them past the timeout.
    """

    def signal_group(sig) -> None:
        try:
            os.killpg(proc.pid, sig)
        except (ProcessLookupError, PermissionError, OSError):
            try:
                proc.send_signal(sig)
            except (ProcessLookupError, OSError):
                pass

    signal_group(signal.SIGTERM)
    try:
        proc.wait(timeout=grace)
        return False
    except subprocess.TimeoutExpired:
        pass
    signal_group(signal.SIGKILL)
    try:
        proc.wait(timeout=10.0)
    except subprocess.TimeoutExpired:  # pragma: no cover - kernel-level wedge
        pass
    return True


def run_supervised(argv: Sequence[str],
                   policy: Optional[SupervisorPolicy] = None,
                   cwd: Optional[str] = None,
                   input_text: Optional[str] = None,
                   telemetry=None,
                   what: str = "backend subprocess",
                   sleep: Callable[[float], None] = time.sleep
                   ) -> SupervisedRun:
    """Run ``argv`` under supervision; return the successful run.

    Raises :class:`BackendUnavailableError` when the binary cannot be
    spawned at all, :class:`BackendTimeoutError` when the wall-clock
    budget expires (after reaping the process), and
    :class:`BackendError` when every attempt exits non-zero.  ``sleep``
    is injectable so retry/backoff tests run instantly.
    """
    policy = policy if policy is not None else SupervisorPolicy()
    tele = telemetry if telemetry is not None else NULL_TELEMETRY
    argv = [str(a) for a in argv]
    attempts: List[AttemptRecord] = []
    max_attempts = policy.retries + 1

    for attempt in range(1, max_attempts + 1):
        if attempt > 1:
            delay = policy.backoff * policy.backoff_factor ** (attempt - 2)
            tele.counter("spice.backend.subprocess.retries").inc()
            if delay > 0:
                sleep(delay)
        t0 = time.monotonic()
        try:
            proc = subprocess.Popen(
                argv, cwd=cwd,
                stdin=subprocess.PIPE if input_text is not None else
                subprocess.DEVNULL,
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                text=True, start_new_session=True)
        except FileNotFoundError as exc:
            raise BackendUnavailableError(
                f"{what}: binary not found: {argv[0]!r}",
                context={"argv": argv, "what": what,
                         "errno": exc.errno}) from exc
        except OSError as exc:
            # Spawn-level races (EAGAIN under fork pressure) are the
            # canonical transient failure: retry them.
            record = AttemptRecord(attempt, None, 0.0, False, False, "",
                                   repr(exc))
            attempts.append(record)
            _note_attempt(tele, what, argv, record)
            if attempt >= max_attempts:
                raise BackendError(
                    f"{what}: could not spawn {argv[0]!r} after "
                    f"{max_attempts} attempts: {exc}",
                    context=_context(what, argv, policy, attempts)) from exc
            continue

        timed_out = False
        killed = False
        try:
            stdout, stderr = proc.communicate(input=input_text,
                                              timeout=policy.timeout)
        except subprocess.TimeoutExpired:
            timed_out = True
            killed = _reap(proc, policy.term_grace)
            stdout, stderr = _drain(proc)
        duration = time.monotonic() - t0
        record = AttemptRecord(
            attempt=attempt, returncode=proc.returncode, duration=duration,
            timed_out=timed_out, killed=killed,
            stdout_tail=_tail(stdout, policy.capture_bytes),
            stderr_tail=_tail(stderr, policy.capture_bytes))
        attempts.append(record)
        _note_attempt(tele, what, argv, record)

        if timed_out:
            tele.counter("spice.backend.subprocess.timeouts").inc()
            if policy.retry_on_timeout and attempt < max_attempts:
                continue
            raise BackendTimeoutError(
                f"{what}: {argv[0]!r} exceeded the {policy.timeout:g} s "
                f"wall-clock budget and was "
                f"{'SIGKILLed' if killed else 'terminated'} "
                f"(attempt {attempt}/{max_attempts})",
                context=_context(what, argv, policy, attempts))
        if proc.returncode == 0:
            tele.counter("spice.backend.subprocess.runs").inc()
            return SupervisedRun(argv=argv, returncode=0, stdout=stdout,
                                 stderr=stderr, attempts=attempts)
        if attempt >= max_attempts:
            break
    tele.counter("spice.backend.subprocess.failures").inc()
    last = attempts[-1]
    raise BackendError(
        f"{what}: {argv[0]!r} exited with status {last.returncode} after "
        f"{len(attempts)} attempt(s); stderr tail: "
        f"{last.stderr_tail.strip()[-500:] or '<empty>'}",
        context=_context(what, argv, policy, attempts))


def _drain(proc: "subprocess.Popen"):
    """Collect whatever output a reaped process left in its pipes."""
    try:
        stdout, stderr = proc.communicate(timeout=1.0)
    except (subprocess.TimeoutExpired, ValueError, OSError):
        return "", ""
    return stdout or "", stderr or ""


def _context(what: str, argv: Sequence[str], policy: SupervisorPolicy,
             attempts: List[AttemptRecord]) -> Dict[str, object]:
    return {"what": what, "argv": list(argv), "policy": policy.to_dict(),
            "attempts": [a.to_dict() for a in attempts]}


def _note_attempt(tele, what: str, argv: Sequence[str],
                  record: AttemptRecord) -> None:
    """One obs event per attempt: the captured output is the post-mortem."""
    tele.event("spice.backend.subprocess",
               what=what, argv=" ".join(argv), attempt=record.attempt,
               returncode=record.returncode, duration=record.duration,
               timed_out=record.timed_out, killed=record.killed,
               stdout_tail=record.stdout_tail,
               stderr_tail=record.stderr_tail)
