"""Backend selection and graceful degradation.

The rest of the system asks for simulation through two functions with
the internal engine's exact signatures (:func:`solve_dc`,
:func:`run_transient`); *which* engine answers is decided here, once
per process, from (in priority order):

1. an explicit :func:`set_default_backend` call (the CLI's
   ``--backend`` flag, tests);
2. the ``REPRO_SPICE_BACKEND`` environment variable;
3. the internal engine.

A requested external backend that fails its probe **degrades
gracefully**: the resolution emits a
``spice.backend.unavailable`` telemetry event (with the probe error's
``to_dict()`` post-mortem) plus a counter, and returns the internal
backend — so campaigns, tests, and CI on machines without ngspice keep
working, loudly.  Pass ``strict=True`` (or set
``REPRO_SPICE_BACKEND_STRICT=1``) to propagate the structured
``E_BACKEND_UNAVAILABLE`` error instead, for jobs whose whole point is
the external engine (the CI oracle job).
"""

from __future__ import annotations

import os
from typing import Optional, Sequence, Tuple, Union

from ...errors import BackendUnavailableError
from ...obs import NULL_TELEMETRY
from ..circuit import Circuit
from ..dc import OperatingPoint
from ..transient import TransientResult
from .base import InternalBackend, SimulatorBackend, get_backend

#: Environment variable naming the default backend.
BACKEND_ENV = "REPRO_SPICE_BACKEND"
#: When truthy, an unavailable requested backend raises instead of
#: degrading to the internal engine.
STRICT_ENV = "REPRO_SPICE_BACKEND_STRICT"

#: Explicit override (highest priority); None defers to the env.
_EXPLICIT: Optional[SimulatorBackend] = None
#: Cache of the last env-driven resolution: (env value, backend).
_RESOLVED: Optional[Tuple[str, SimulatorBackend]] = None

_INTERNAL = InternalBackend()


def set_default_backend(
        backend: Union[SimulatorBackend, str, None]) -> None:
    """Pin the process-wide default backend (None reverts to the env).

    A string is resolved through :func:`get_backend` immediately, so a
    typo fails here rather than deep inside a campaign.
    """
    global _EXPLICIT, _RESOLVED
    if isinstance(backend, str):
        backend = get_backend(backend)
    _EXPLICIT = backend
    _RESOLVED = None


def reset_default_backend() -> None:
    """Forget every cached resolution (tests, env changes)."""
    set_default_backend(None)


def _strict_env() -> bool:
    return os.environ.get(STRICT_ENV, "").strip().lower() in (
        "1", "true", "yes", "on")


def default_backend(telemetry=None,
                    strict: Optional[bool] = None) -> SimulatorBackend:
    """The backend simulation goes through when none is passed.

    Probes a non-internal choice on first use; an unavailable backend
    degrades to the internal engine with a telemetry post-mortem
    (unless strict — see module docstring).  The resolution is cached
    against the env value, so steady-state cost is a dict lookup.
    """
    if _EXPLICIT is not None:
        return _EXPLICIT
    global _RESOLVED
    wanted = os.environ.get(BACKEND_ENV, "").strip() or InternalBackend.name
    if _RESOLVED is not None and _RESOLVED[0] == wanted:
        return _RESOLVED[1]
    tele = telemetry if telemetry is not None else NULL_TELEMETRY
    if wanted == InternalBackend.name:
        _RESOLVED = (wanted, _INTERNAL)
        return _INTERNAL
    backend = get_backend(wanted)
    strict = _strict_env() if strict is None else strict
    try:
        probe = backend.probe()
    except BackendUnavailableError as err:
        tele.counter("spice.backend.unavailable").inc()
        tele.event("spice.backend.unavailable", backend=wanted,
                   fallback=InternalBackend.name, strict=strict,
                   error=err.to_dict())
        if strict:
            raise
        _RESOLVED = (wanted, _INTERNAL)
        return _INTERNAL
    tele.event("spice.backend.selected", backend=wanted,
               version=probe.version, binary=probe.binary)
    _RESOLVED = (wanted, backend)
    return backend


def solve_dc(circuit: Circuit, t: float = 0.0, telemetry=None,
             backend: Optional[SimulatorBackend] = None,
             **kwargs) -> OperatingPoint:
    """Backend-routed DC solve (internal-engine signature)."""
    chosen = backend if backend is not None else default_backend(telemetry)
    return chosen.solve_dc(circuit, t=t, telemetry=telemetry, **kwargs)


def run_transient(circuit: Circuit, tstop: float, dt: float,
                  record: Optional[Sequence[str]] = None, telemetry=None,
                  backend: Optional[SimulatorBackend] = None,
                  **kwargs) -> TransientResult:
    """Backend-routed transient run (internal-engine signature)."""
    chosen = backend if backend is not None else default_backend(telemetry)
    return chosen.run_transient(circuit, tstop, dt, record=record,
                                telemetry=telemetry, **kwargs)
