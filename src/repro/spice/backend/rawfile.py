"""Typed parser for ngspice ASCII rawfiles.

``ngspice -b -r out.raw`` writes its analysis results in the classic
Berkeley SPICE3 rawfile format.  With ``.options filetype=ascii`` in
the deck, the file is plain text:

.. code-block:: text

    Title: * buf cell
    Date: ...
    Plotname: Transient Analysis
    Flags: real
    No. Variables: 4
    No. Points: 201
    Variables:
            0       time    time
            1       v(out)  voltage
            2       v(vdd)  voltage
            3       i(v1_vdd)       current
    Values:
    0       0.0
            1.2e+00
            ...

External output is never trusted: the parser validates the header
against itself (declared vs actual variable and point counts), requires
every value to be finite, and the typed accessors
(:meth:`RawPlot.vector`) resolve names case-insensitively but loudly —
a missing node is an :class:`~repro.errors.BackendProtocolError`
(``E_BACKEND_PROTOCOL``) carrying what *was* found, never a silent
zero-fill.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ...errors import BackendProtocolError


@dataclass(frozen=True)
class RawVariable:
    """One vector declared in a rawfile plot."""

    index: int
    name: str
    kind: str  # "time" | "voltage" | "current" | ...


@dataclass
class RawPlot:
    """One analysis block of a rawfile (op point, transient, ...)."""

    title: str
    plotname: str
    flags: str
    variables: List[RawVariable]
    #: shape ``(n_variables, n_points)``, all finite.
    values: np.ndarray = field(repr=False, default=None)

    @property
    def n_points(self) -> int:
        return int(self.values.shape[1])

    def names(self) -> List[str]:
        return [v.name for v in self.variables]

    def index_of(self, name: str) -> Optional[int]:
        """Index of ``name`` (case-insensitive; ``v(x)`` and bare ``x``
        both match a voltage vector)."""
        want = name.strip().lower()
        folded = [v.name.strip().lower() for v in self.variables]
        if want in folded:
            return folded.index(want)
        wrapped = f"v({want})"
        if wrapped in folded:
            return folded.index(wrapped)
        if want.startswith("v(") and want.endswith(")") \
                and want[2:-1] in folded:
            return folded.index(want[2:-1])
        return None

    def vector(self, name: str) -> np.ndarray:
        idx = self.index_of(name)
        if idx is None:
            raise BackendProtocolError(
                f"rawfile plot {self.plotname!r} has no vector {name!r}",
                context={"plotname": self.plotname, "wanted": name,
                         "available": self.names()})
        return self.values[idx]

    def is_transient(self) -> bool:
        return "transient" in self.plotname.lower()

    def is_op(self) -> bool:
        return "operating point" in self.plotname.lower()


def _bad(message: str, **context) -> BackendProtocolError:
    return BackendProtocolError(f"malformed rawfile: {message}",
                                context=context)


def _header_value(line: str, key: str) -> str:
    return line[len(key):].strip()


def parse_ascii_rawfile(text: str) -> List[RawPlot]:
    """Parse every plot of an ASCII rawfile; validate before returning.

    Raises :class:`BackendProtocolError` on structural problems,
    non-numeric or non-finite values, or count mismatches.  Complex
    plots (AC analysis) are out of scope and rejected explicitly.
    """
    lines = text.splitlines()
    plots: List[RawPlot] = []
    i = 0
    n = len(lines)
    while i < n:
        line = lines[i].strip()
        if not line:
            i += 1
            continue
        header: Dict[str, str] = {}
        while i < n:
            stripped = lines[i].strip()
            if stripped.startswith("Variables:"):
                break
            for key in ("Title:", "Date:", "Plotname:", "Flags:",
                        "No. Variables:", "No. Points:", "Command:",
                        "Option:"):
                if stripped.startswith(key):
                    header[key[:-1]] = _header_value(stripped, key)
                    break
            else:
                if stripped:
                    raise _bad(f"unexpected header line {stripped!r}",
                               line=i + 1)
            i += 1
        if i >= n:
            if header:
                raise _bad("header without a Variables: section",
                           header=sorted(header))
            break
        if "Plotname" not in header:
            raise _bad("plot without a Plotname header")
        flags = header.get("Flags", "real")
        if "complex" in flags.lower():
            raise _bad("complex plots are not supported",
                       plotname=header["Plotname"])
        try:
            n_vars = int(header["No. Variables"])
            n_points = int(header["No. Points"])
        except (KeyError, ValueError):
            raise _bad("missing or non-integer variable/point counts",
                       plotname=header["Plotname"]) from None
        if n_vars <= 0 or n_points < 0:
            raise _bad(f"implausible counts: {n_vars} variables, "
                       f"{n_points} points", plotname=header["Plotname"])

        i += 1  # past "Variables:"
        variables: List[RawVariable] = []
        for k in range(n_vars):
            if i >= n:
                raise _bad("variable list truncated",
                           plotname=header["Plotname"], expected=n_vars)
            parts = lines[i].split()
            if len(parts) < 3:
                raise _bad(f"malformed variable line {lines[i]!r}",
                           plotname=header["Plotname"])
            try:
                index = int(parts[0])
            except ValueError:
                raise _bad(f"non-integer variable index in {lines[i]!r}",
                           plotname=header["Plotname"]) from None
            if index != k:
                raise _bad(f"variable indices out of order: expected {k}, "
                           f"got {index}", plotname=header["Plotname"])
            variables.append(RawVariable(index=index, name=parts[1],
                                         kind=parts[2]))
            i += 1

        folded = [v.name.lower() for v in variables]
        if len(set(folded)) != len(folded):
            dupes = sorted({name for name in folded
                            if folded.count(name) > 1})
            raise _bad(f"duplicate vector names {dupes}",
                       plotname=header["Plotname"])

        if i >= n or not lines[i].strip().startswith("Values:"):
            raise _bad("missing Values: section",
                       plotname=header["Plotname"])
        i += 1
        values = np.empty((n_vars, n_points))
        for p in range(n_points):
            tokens: List[str] = []
            while i < n and len(tokens) < n_vars + 1:
                stripped = lines[i].strip()
                if not stripped:
                    i += 1
                    continue
                tokens.extend(stripped.split())
                i += 1
            if len(tokens) != n_vars + 1:
                raise _bad(
                    f"point {p} has {len(tokens) - 1} values, expected "
                    f"{n_vars}", plotname=header["Plotname"], point=p)
            try:
                point_index = int(tokens[0])
            except ValueError:
                raise _bad(f"non-integer point index {tokens[0]!r}",
                           plotname=header["Plotname"], point=p) from None
            if point_index != p:
                raise _bad(f"point indices out of order: expected {p}, "
                           f"got {point_index}",
                           plotname=header["Plotname"])
            for k in range(n_vars):
                try:
                    values[k, p] = float(tokens[1 + k])
                except ValueError:
                    raise _bad(
                        f"non-numeric value {tokens[1 + k]!r}",
                        plotname=header["Plotname"], point=p,
                        vector=variables[k].name) from None
        if not np.all(np.isfinite(values)):
            bad_vectors = sorted(
                variables[k].name
                for k in range(n_vars)
                if not np.all(np.isfinite(values[k])))
            raise _bad("non-finite values", plotname=header["Plotname"],
                       vectors=bad_vectors)
        plots.append(RawPlot(title=header.get("Title", ""),
                             plotname=header["Plotname"], flags=flags,
                             variables=variables, values=values))
    if not plots:
        raise _bad("no plots found", length=len(text))
    return plots
