"""ngspice as a supervised external-simulator backend.

The backend turns one :class:`~repro.spice.Circuit` into a batch-mode
ngspice run:

1. export the circuit through :func:`repro.spice.deck.write_spice_deck`
   (``.options filetype=ascii``, ``.save all``, and the analysis card),
   keeping the :class:`~repro.spice.deck.DeckInfo` manifest;
2. run ``ngspice -b -r out.raw deck.sp`` under
   :func:`~repro.spice.backend.supervise.run_supervised` — hard
   wall-clock timeout with SIGTERM→SIGKILL escalation, bounded retries
   with backoff, stdout/stderr captured into the obs stream;
3. parse the ASCII rawfile with the validating parser
   (:mod:`repro.spice.backend.rawfile`) and translate vectors back onto
   circuit node and source names via the manifest — node coverage,
   point counts, and finiteness are all checked before a
   :class:`~repro.spice.Waveform` is built from external data.

Sign convention: ngspice's ``i(vxx)`` is the current flowing *into* the
source's positive terminal, so a delivering supply reads negative; the
internal engine counts delivery as positive.  The backend negates, so
``OperatingPoint.current("vdd")`` means the same thing for every
backend.

The deck's MOS cards are a LEVEL=1 approximation of our EKV model, so
agreement with the internal engine is a *calibration* question, not a
bit-exactness one — see ``tests/test_backend_oracle.py`` for the
documented tolerances.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Dict, Optional, Sequence

import numpy as np

from ...errors import (
    BackendError,
    BackendProtocolError,
    BackendUnavailableError,
)
from ...obs import NULL_TELEMETRY
from ..circuit import Circuit, GROUND, canonical_node
from ..dc import OperatingPoint
from ..deck import DeckInfo, write_spice_deck
from ..transient import TransientResult, TransientStats
from .base import BackendProbe, SimulatorBackend
from .rawfile import RawPlot, parse_ascii_rawfile
from .supervise import SupervisorPolicy, run_supervised

#: Environment override for the ngspice binary path.
NGSPICE_ENV = "REPRO_NGSPICE"

_PROBE_POLICY = SupervisorPolicy(timeout=10.0, retries=1, backoff=0.2)


class NgspiceBackend(SimulatorBackend):
    """Run DC and transient analyses through a supervised ngspice.

    Parameters
    ----------
    binary:
        ngspice executable; default is ``$REPRO_NGSPICE`` or
        ``"ngspice"`` on the PATH.
    policy:
        :class:`SupervisorPolicy` for simulation runs (probe runs use a
        short fixed policy).
    keep_artifacts:
        Keep each run's scratch directory (deck, rawfile, logs) instead
        of deleting it — post-mortem debugging.
    """

    name = "ngspice"

    def __init__(self, binary: Optional[str] = None,
                 policy: Optional[SupervisorPolicy] = None,
                 keep_artifacts: bool = False):
        self.binary = binary or os.environ.get(NGSPICE_ENV) or "ngspice"
        self.policy = policy if policy is not None else SupervisorPolicy()
        self.keep_artifacts = keep_artifacts
        self._probe: Optional[BackendProbe] = None

    # -- probing -------------------------------------------------------------

    def probe(self, telemetry=None) -> BackendProbe:
        """Locate and identify the binary (cached after first success)."""
        if self._probe is not None:
            return self._probe
        tele = telemetry if telemetry is not None else NULL_TELEMETRY
        resolved = shutil.which(self.binary)
        if resolved is None:
            raise BackendUnavailableError(
                f"ngspice binary {self.binary!r} not found on PATH",
                context={"backend": self.name, "binary": self.binary,
                         "env": NGSPICE_ENV})
        run = run_supervised([resolved, "--version"],
                             policy=_PROBE_POLICY, telemetry=tele,
                             what="ngspice probe")
        version = ""
        for line in run.stdout.splitlines():
            line = line.strip()
            if "ngspice" in line.lower():
                version = line
                break
        self._probe = BackendProbe(
            name=self.name, available=True, version=version,
            binary=resolved,
            detail={"probe_attempts": len(run.attempts)})
        return self._probe

    # -- shared plumbing -----------------------------------------------------

    def _run_deck(self, deck_text: str, telemetry, what: str) -> str:
        """Run one deck in a scratch dir; return the rawfile text."""
        tele = telemetry if telemetry is not None else NULL_TELEMETRY
        probe = self.probe(telemetry=tele)
        workdir = tempfile.mkdtemp(prefix="repro-ngspice-")
        deck_path = os.path.join(workdir, "deck.sp")
        raw_path = os.path.join(workdir, "out.raw")
        log_path = os.path.join(workdir, "ngspice.log")
        try:
            with open(deck_path, "w", encoding="utf-8") as stream:
                stream.write(deck_text)
            run_supervised(
                [probe.binary, "-b", "-o", log_path, "-r", raw_path,
                 deck_path],
                policy=self.policy, cwd=workdir, telemetry=tele, what=what)
            if not os.path.exists(raw_path):
                log_tail = _read_tail(log_path, self.policy.capture_bytes)
                raise BackendProtocolError(
                    f"{what}: ngspice exited 0 but wrote no rawfile",
                    context={"deck": deck_path, "log_tail": log_tail})
            with open(raw_path, "r", encoding="utf-8",
                      errors="replace") as stream:
                return stream.read()
        finally:
            if not self.keep_artifacts:
                shutil.rmtree(workdir, ignore_errors=True)
            else:
                tele.event("spice.backend.ngspice.artifacts",
                           workdir=workdir)

    def _voltages_from_plot(self, plot: RawPlot, circuit: Circuit,
                            point: int = -1) -> Dict[str, float]:
        """All node voltages at one plot point, validated for coverage."""
        voltages: Dict[str, float] = {}
        missing = []
        for node in circuit.all_nodes():
            if node == GROUND:
                voltages[node] = 0.0
                continue
            idx = plot.index_of(node)
            if idx is None:
                missing.append(node)
            else:
                voltages[node] = float(plot.values[idx, point])
        if missing:
            raise BackendProtocolError(
                f"ngspice output is missing node(s) {sorted(missing)} of "
                f"circuit {circuit.name!r}",
                context={"circuit": circuit.name, "missing": sorted(missing),
                         "available": plot.names()})
        return voltages

    def _source_currents(self, plot: RawPlot, circuit: Circuit,
                         info: DeckInfo) -> Dict[str, np.ndarray]:
        """Per-source delivered-current vectors (internal sign)."""
        currents: Dict[str, np.ndarray] = {}
        by_source: Dict[str, int] = {}
        for idx, variable in enumerate(plot.variables):
            source = info.source_for_vector(variable.name)
            if source is not None:
                by_source[source] = idx
        missing = [s.name for s in circuit.vsources
                   if s.name not in by_source]
        if missing:
            raise BackendProtocolError(
                f"ngspice output is missing branch current(s) for "
                f"source(s) {sorted(missing)}",
                context={"circuit": circuit.name, "missing": sorted(missing),
                         "available": plot.names()})
        for source in circuit.vsources:
            # ngspice: positive into the + terminal; internal engine:
            # positive = delivering.  Negate to unify.
            currents[source.name] = -plot.values[by_source[source.name]]
        return currents

    def _single_plot(self, raw_text: str, want: str) -> RawPlot:
        plots = parse_ascii_rawfile(raw_text)
        matches = [p for p in plots
                   if (want == "op" and p.is_op())
                   or (want == "tran" and p.is_transient())]
        if len(matches) != 1:
            raise BackendProtocolError(
                f"expected exactly one {want} plot, found "
                f"{[p.plotname for p in plots]}",
                context={"wanted": want,
                         "plots": [p.plotname for p in plots]})
        return matches[0]

    # -- the backend interface -----------------------------------------------

    def solve_dc(self, circuit: Circuit, t: float = 0.0,
                 telemetry=None, **kwargs) -> OperatingPoint:
        """DC operating point via a batch ``.op`` run.

        Sources are frozen at their ``t`` values in the exported deck
        (``dc_snapshot``), matching the internal engine's
        ``solve_dc(t=...)`` semantics.  Internal-solver keywords
        (``guess``/``system``/``policy``/``budget``) are ignored: the
        supervision policy is the external engine's budget.
        """
        tele = telemetry if telemetry is not None else NULL_TELEMETRY
        _reject_unknown(kwargs, ("guess", "system", "policy", "budget"))
        circuit.validate()
        import io

        buffer = io.StringIO()
        info = write_spice_deck(
            buffer, circuit, title=f"{circuit.name} (repro ngspice op)",
            op=True, dc_snapshot=t, save=["all"],
            options={"filetype": "ascii"})
        with tele.span("spice.backend.ngspice.solve_dc",
                       circuit=circuit.name, t=t):
            raw_text = self._run_deck(buffer.getvalue(), tele,
                                      what=f"ngspice op ({circuit.name})")
            plot = self._single_plot(raw_text, "op")
            if plot.n_points != 1:
                raise BackendProtocolError(
                    f"operating-point plot has {plot.n_points} points, "
                    f"expected 1", context={"circuit": circuit.name})
            voltages = self._voltages_from_plot(plot, circuit)
            currents = self._source_currents(plot, circuit, info)
        return OperatingPoint(
            voltages,
            {name: float(vec[-1]) for name, vec in currents.items()},
            diagnostics=None)

    def run_transient(self, circuit: Circuit, tstop: float, dt: float,
                      record: Optional[Sequence[str]] = None,
                      telemetry=None, **kwargs) -> TransientResult:
        """Transient analysis via a batch ``.tran`` run.

        The result lives on ngspice's own time grid (validated strictly
        increasing, spanning ``[0, ~tstop]``); callers resample when
        comparing against the internal engine's grid.  ``record``
        filters the returned voltages exactly like the internal engine
        (unknown names raise :class:`~repro.errors.CircuitError`-class
        errors rather than recording zeros).
        """
        from ...errors import CircuitError

        tele = telemetry if telemetry is not None else NULL_TELEMETRY
        _reject_unknown(kwargs, ("method", "ic", "max_step_halvings",
                                 "be_fallback", "detect_ringing", "on_step",
                                 "budget"))
        if tstop <= 0.0 or dt <= 0.0:
            raise CircuitError("tstop and dt must be positive")
        circuit.validate()
        if record is not None:
            known = set(circuit.all_nodes())
            record_nodes = list(dict.fromkeys(record))
            canon_of = {node: canonical_node(node) for node in record_nodes}
            bad = sorted(node for node, canon in canon_of.items()
                         if canon not in known)
            if bad:
                raise CircuitError(
                    f"record names {bad} are not nodes of circuit "
                    f"{circuit.name!r}; known nodes: {sorted(known)}")
        else:
            record_nodes = circuit.all_nodes()
            canon_of = {node: node for node in record_nodes}
        import io

        buffer = io.StringIO()
        info = write_spice_deck(
            buffer, circuit, title=f"{circuit.name} (repro ngspice tran)",
            tran={"tstep": dt, "tstop": tstop}, save=["all"],
            options={"filetype": "ascii"})
        with tele.span("spice.backend.ngspice.run_transient",
                       circuit=circuit.name, tstop=tstop, dt=dt):
            raw_text = self._run_deck(buffer.getvalue(), tele,
                                      what=f"ngspice tran ({circuit.name})")
            plot = self._single_plot(raw_text, "tran")
            time_idx = plot.index_of("time")
            if time_idx is None:
                raise BackendProtocolError(
                    "transient plot has no time vector",
                    context={"available": plot.names()})
            time = plot.values[time_idx]
            if plot.n_points < 2:
                raise BackendProtocolError(
                    f"transient plot has only {plot.n_points} point(s)",
                    context={"circuit": circuit.name, "tstop": tstop})
            if not np.all(np.diff(time) > 0):
                raise BackendProtocolError(
                    "transient time vector is not strictly increasing",
                    context={"circuit": circuit.name,
                             "n_points": plot.n_points})
            if time[-1] < tstop * (1.0 - 1e-6):
                raise BackendProtocolError(
                    f"transient run stopped early: reached "
                    f"{time[-1]:.6g} s of {tstop:.6g} s",
                    context={"circuit": circuit.name, "tstop": tstop,
                             "reached": float(time[-1])})
            voltages: Dict[str, np.ndarray] = {}
            for node in record_nodes:
                canon = canon_of[node]
                if canon == GROUND:
                    voltages[node] = np.zeros_like(time)
                    continue
                voltages[node] = np.array(plot.vector(canon), dtype=float)
            currents = self._source_currents(plot, circuit, info)
        stats = TransientStats(grid_points=len(time),
                               steps_taken=len(time) - 1)
        return TransientResult(time, voltages,
                               {n: np.asarray(v) for n, v in
                                currents.items()},
                               stats=stats)


def _reject_unknown(kwargs: Dict[str, object],
                    ignorable: Sequence[str]) -> None:
    """Internal-engine keywords are ignored; anything else is a typo."""
    unknown = sorted(set(kwargs) - set(ignorable))
    if unknown:
        raise BackendError(
            f"ngspice backend got unsupported option(s) {unknown}",
            context={"unknown": unknown, "ignorable": list(ignorable)})


def _read_tail(path: str, limit: int) -> str:
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as stream:
            text = stream.read()
    except OSError:
        return ""
    return text[-limit:]
