"""The simulator-backend seam.

Every figure in the reproduction rests on the internal EKV engine; this
module turns "which engine" into a parameter.  A
:class:`SimulatorBackend` answers the two questions the rest of the
system asks of a circuit simulator — *what is the DC operating point*
and *what happens over time* — with the exact result types the internal
engine already returns (:class:`~repro.spice.dc.OperatingPoint`,
:class:`~repro.spice.transient.TransientResult`), so callers cannot tell
backends apart by shape.

:class:`InternalBackend` wraps the in-process engine and is always
available.  External backends (:class:`~repro.spice.backend.ngspice.
NgspiceBackend`) must first pass :meth:`SimulatorBackend.probe`, which
raises a structured
:class:`~repro.errors.BackendUnavailableError` (``E_BACKEND_UNAVAILABLE``)
on machines without the binary — callers that can degrade do so through
:func:`repro.spice.backend.dispatch.default_backend`, never by guessing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ...errors import BackendError
from ..circuit import Circuit
from ..dc import OperatingPoint
from ..dc import solve_dc as _internal_solve_dc
from ..transient import TransientResult
from ..transient import run_transient as _internal_run_transient


@dataclass(frozen=True)
class BackendProbe:
    """What probing a backend established about this machine."""

    name: str
    available: bool
    version: str = ""
    binary: Optional[str] = None
    detail: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "available": self.available,
                "version": self.version, "binary": self.binary,
                "detail": dict(self.detail)}


class SimulatorBackend:
    """Abstract circuit-simulator backend.

    Implementations must keep the *internal engine's* conventions:

    * ``solve_dc`` returns an :class:`OperatingPoint` whose voltages
      cover every node (fixed nodes included) and whose
      ``source_currents`` are positive when the source delivers
      current;
    * ``run_transient`` returns a :class:`TransientResult` whose
      ``source_currents`` follow the same sign convention, on whatever
      time grid the engine produced (callers resample when comparing).

    Extra keyword arguments beyond this contract (``guess``, recovery
    ``policy``, solve ``budget`` …) are internal-engine specifics;
    external backends ignore what they can and raise
    :class:`BackendError` for requests they cannot honour silently.
    """

    #: Stable backend identifier (``"internal"``, ``"ngspice"``).
    name: str = "abstract"

    def probe(self) -> BackendProbe:
        """Establish that this backend can run here.

        Returns a :class:`BackendProbe` on success; raises
        :class:`~repro.errors.BackendUnavailableError` with machine
        context otherwise.  Must be cheap to call repeatedly
        (implementations cache).
        """
        raise NotImplementedError

    def solve_dc(self, circuit: Circuit, t: float = 0.0,
                 telemetry=None, **kwargs) -> OperatingPoint:
        raise NotImplementedError

    def run_transient(self, circuit: Circuit, tstop: float, dt: float,
                      record: Optional[Sequence[str]] = None,
                      telemetry=None, **kwargs) -> TransientResult:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class InternalBackend(SimulatorBackend):
    """The in-process EKV engine behind the backend interface.

    A thin delegation layer: same functions, same defaults, same
    telemetry threading — byte-identical to calling
    :func:`repro.spice.solve_dc` / :func:`repro.spice.run_transient`
    directly, which is what the dispatch seam's equivalence tests pin.
    """

    name = "internal"

    def probe(self) -> BackendProbe:
        return BackendProbe(name=self.name, available=True,
                            version="repro-ekv")

    def solve_dc(self, circuit: Circuit, t: float = 0.0,
                 telemetry=None, **kwargs) -> OperatingPoint:
        return _internal_solve_dc(circuit, t=t, telemetry=telemetry,
                                  **kwargs)

    def run_transient(self, circuit: Circuit, tstop: float, dt: float,
                      record: Optional[Sequence[str]] = None,
                      telemetry=None, **kwargs) -> TransientResult:
        return _internal_run_transient(circuit, tstop, dt, record=record,
                                       telemetry=telemetry, **kwargs)


def get_backend(name: str, **options) -> SimulatorBackend:
    """Construct a backend by stable name.

    ``options`` are forwarded to the backend constructor (e.g.
    ``binary=`` / ``policy=`` for ngspice).  Unknown names raise
    :class:`BackendError` listing the registry — a typo in
    ``REPRO_SPICE_BACKEND`` or ``--backend`` must fail fast, not fall
    back silently.
    """
    from .ngspice import NgspiceBackend  # local import avoids a cycle

    registry = {
        InternalBackend.name: InternalBackend,
        NgspiceBackend.name: NgspiceBackend,
    }
    try:
        factory = registry[name]
    except KeyError:
        raise BackendError(
            f"unknown simulator backend {name!r}; available: "
            f"{sorted(registry)}",
            context={"backend": name,
                     "available": sorted(registry)}) from None
    return factory(**options)


def available_backends() -> Sequence[str]:
    """Stable names accepted by :func:`get_backend`."""
    return ("internal", "ngspice")
