"""Pluggable simulator backends (ROADMAP item 4).

The internal EKV engine and external simulators answer the same two
questions — DC operating point, transient waveforms — behind one seam:

* :mod:`repro.spice.backend.base` — the :class:`SimulatorBackend`
  protocol, the always-available :class:`InternalBackend`, and the
  :func:`get_backend` registry;
* :mod:`repro.spice.backend.supervise` — supervised subprocess
  execution (wall-clock timeout with SIGTERM→SIGKILL escalation,
  bounded retries with backoff, obs capture);
* :mod:`repro.spice.backend.rawfile` — the validating ASCII rawfile
  parser (external output is never trusted);
* :mod:`repro.spice.backend.ngspice` — ngspice behind the seam;
* :mod:`repro.spice.backend.dispatch` — process-wide backend selection
  (``REPRO_SPICE_BACKEND`` / ``--backend``) with graceful degradation
  to the internal engine when the external binary is missing.

The differential oracle (``tests/test_backend_oracle.py``) compares the
two engines on representative CMOS/MCML/PG-MCML cells, which is what
turns the internal engine's accuracy from an assumption into a measured
quantity.
"""

from .base import (
    BackendProbe,
    InternalBackend,
    SimulatorBackend,
    available_backends,
    get_backend,
)
from .dispatch import (
    BACKEND_ENV,
    STRICT_ENV,
    default_backend,
    reset_default_backend,
    set_default_backend,
)
from .ngspice import NGSPICE_ENV, NgspiceBackend
from .rawfile import RawPlot, RawVariable, parse_ascii_rawfile
from .supervise import (
    AttemptRecord,
    SupervisedRun,
    SupervisorPolicy,
    run_supervised,
)

__all__ = [
    "BackendProbe",
    "InternalBackend",
    "SimulatorBackend",
    "available_backends",
    "get_backend",
    "BACKEND_ENV",
    "STRICT_ENV",
    "default_backend",
    "reset_default_backend",
    "set_default_backend",
    "NGSPICE_ENV",
    "NgspiceBackend",
    "RawPlot",
    "RawVariable",
    "parse_ascii_rawfile",
    "AttemptRecord",
    "SupervisedRun",
    "SupervisorPolicy",
    "run_supervised",
]
