"""A small SPICE-class analog circuit simulator.

The paper's entire evaluation rests on transistor-level simulation
(HSPICE-class accuracy for cells, Synopsys Nanosim for blocks).  This
package replaces those proprietary tools for cell-level work:

* :mod:`repro.spice.mosfet` — a smooth EKV-style MOSFET model valid from
  subthreshold to strong inversion (the same first-order physics that
  make MCML work: saturated tail current, triode PMOS loads, exponential
  subthreshold leakage);
* :mod:`repro.spice.devices` — device classes (MOSFET, resistor,
  capacitor, sources) with a uniform terminal-current interface;
* :mod:`repro.spice.circuit` — the netlist container;
* :mod:`repro.spice.dc` — Newton-Raphson operating-point solver with
  damping and gmin stepping;
* :mod:`repro.spice.recovery` — the convergence-recovery ladder (gmin,
  source stepping, pseudo-transient) with per-strategy diagnostics;
* :mod:`repro.spice.transient` — fixed-step backward-Euler/trapezoidal
  transient analysis with local step-halving retry on Newton failures;
* :mod:`repro.spice.waveform` — waveform storage and measurements
  (crossings, delays, averages, charge integrals);
* :mod:`repro.spice.stimulus` — DC / pulse / PWL / clock stimuli.

Block-level current simulation (thousands of cells over microseconds) is
done by the calibrated fast models in :mod:`repro.power`, exactly as the
paper switches from SPICE to a fast-SPICE tool for the ISE block.
"""

from .waveform import Waveform
from .stimulus import DC, Pulse, PWL, Clock, Stimulus
from .mosfet import MosfetModel
from .devices import Mosfet, Resistor, Capacitor, VSource, ISource
from .circuit import Circuit, GROUND
from .dc import solve_dc, OperatingPoint
from .sparse import SparseAssembly
from .opcache import OP_CACHE_ENV, OperatingPointCache, default_op_cache
from .deck import DeckInfo, parse_spice_deck, write_spice_deck, write_subckt
from .erc import (
    ErcFinding,
    ErcReport,
    check_circuit,
    erc_enabled,
    erc_preflight,
)
from .recovery import (
    NewtonStats,
    RecoveryPolicy,
    SolveBudget,
    SolverDiagnostics,
    StrategyAttempt,
    UNLIMITED_BUDGET,
    solve_with_recovery,
)
from .sweep import dc_sweep, SweepResult
from .transient import TransientResult, TransientStats, run_transient
from .batch import (
    BATCH_ENV,
    BatchSystem,
    batch_size_from_env,
    run_transient_batch,
)
from .analysis import (
    differential_delay,
    propagation_delay,
    measure_swing,
    average_supply_current,
)
from .backend import (
    InternalBackend,
    NgspiceBackend,
    SimulatorBackend,
    SupervisorPolicy,
    available_backends,
    default_backend,
    get_backend,
    reset_default_backend,
    set_default_backend,
)

__all__ = [
    "Waveform",
    "DC",
    "Pulse",
    "PWL",
    "Clock",
    "Stimulus",
    "MosfetModel",
    "Mosfet",
    "Resistor",
    "Capacitor",
    "VSource",
    "ISource",
    "Circuit",
    "GROUND",
    "solve_dc",
    "OperatingPoint",
    "SparseAssembly",
    "OP_CACHE_ENV",
    "OperatingPointCache",
    "default_op_cache",
    "ErcFinding",
    "ErcReport",
    "check_circuit",
    "erc_enabled",
    "erc_preflight",
    "NewtonStats",
    "RecoveryPolicy",
    "SolveBudget",
    "SolverDiagnostics",
    "StrategyAttempt",
    "UNLIMITED_BUDGET",
    "solve_with_recovery",
    "dc_sweep",
    "SweepResult",
    "DeckInfo",
    "parse_spice_deck",
    "write_spice_deck",
    "write_subckt",
    "InternalBackend",
    "NgspiceBackend",
    "SimulatorBackend",
    "SupervisorPolicy",
    "available_backends",
    "default_backend",
    "get_backend",
    "reset_default_backend",
    "set_default_backend",
    "TransientResult",
    "TransientStats",
    "run_transient",
    "BATCH_ENV",
    "BatchSystem",
    "batch_size_from_env",
    "run_transient_batch",
    "differential_delay",
    "propagation_delay",
    "measure_swing",
    "average_supply_current",
]
