"""Vectorized device-bank MNA assembly.

The reference solver walks a Python loop over devices, calling each
device's ``currents`` ~5 times per MOSFET per Newton iteration to build
the KCL residual and its forward-difference Jacobian.  This module
replaces that hot path with *device banks*: at
:class:`~repro.spice.dc.System` construction, devices are grouped by
concrete class into flat NumPy structures and every bank is evaluated
with one batched model call across the device axis.

Bank layout
-----------

All banks index a single packed voltage vector

    ``V = [x (unknown nodes, System order) | fixed (ground + sources,
    fixed_nodes() order)]``

so a terminal is one integer: ``index[node]`` when unknown, ``n +
fixed_pos[node]`` when source-driven.  Each bank holds:

* ``tidx`` — ``(M, T)`` terminal index matrix into ``V``;
* per-device parameter vectors (resistances, EKV parameters, source
  values);
* a :class:`_ScatterPlan` — precomputed flattened ``(row, col, device,
  terminal, sign)`` index arrays so residual and Jacobian contributions
  deposit with ``np.add.at`` instead of nested Python loops.

A device's contribution is expressed as one *flow* per device (channel
current, resistor current, source value) plus signed deposits into its
terminals — exactly the ``[i, 0, -i, 0]``-shaped vectors the device
classes return, minus the zeros.  Jacobian values are the same forward
differences the reference loop computes (step
:data:`FD_STEP`), evaluated as one batched call per terminal, so the
Newton trajectory is preserved up to batched-libm rounding (≤1e-12;
see ``tests/test_spice_banks.py``).

Device classes without a bank — custom :class:`Device` subclasses such
as the fault-injection proxies — fall back to :class:`LoopBlock`, which
reproduces the reference per-device arithmetic verbatim.  The reference
loop for *all* devices stays available behind
``System(assembly="loop")`` / ``REPRO_SPICE_ASSEMBLY=loop``.

Banks snapshot device parameters; :class:`~repro.spice.dc.System`
rebuilds them whenever the identity of the circuit's device list
changes (``swap_device`` — fault-injection arming/disarming — or
devices added after construction).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .devices import Capacitor, Device, ISource, Mosfet, Resistor
from .mosfet import batched_currents_and_derivs, batched_ids

#: Forward-difference step for device Jacobians, volts (shared with the
#: reference loop so both assemblies walk the same Newton trajectory).
FD_STEP = 1e-6


#: Entry-count ceiling for the dense scatter operators: below it each
#: deposit is one precomputed matrix-vector product (a single dispatch
#: into BLAS, which is what cell-sized circuits are bound by); above it
#: the plan falls back to index-based ``np.bincount`` accumulation so
#: memory stays linear in the number of deposits.
_DENSE_LIMIT = 1 << 18


class _ScatterPlan:
    """Precomputed deposit operators for one bank.

    ``flow_terms`` lists ``(terminal, sign)`` pairs describing where the
    device's flow enters KCL (e.g. drain ``+``, source ``-``);
    ``deriv_cols`` lists the terminals the flow is differentiated
    against (``derivs`` arrives as an ``(M, len(deriv_cols))`` matrix in
    that column order).  Terminals landing on unknown nodes feed the
    residual and Jacobian; terminals landing on fixed nodes feed the
    per-source current totals.
    """

    def __init__(self, tidx: np.ndarray, n_unknowns: int, n_fixed: int,
                 flow_terms: Sequence[Tuple[int, float]],
                 deriv_cols: Sequence[int]):
        m = tidx.shape[0]
        t = len(deriv_cols)
        dev = np.arange(m)
        f_rows, f_dev, f_sgn = [], [], []
        fx_rows, fx_dev, fx_sgn = [], [], []
        j_flat, j_col, j_sgn = [], [], []
        for term, sgn in flow_terms:
            col = tidx[:, term]
            unk = col < n_unknowns
            f_rows.append(col[unk])
            f_dev.append(dev[unk])
            f_sgn.append(np.full(int(unk.sum()), sgn))
            fx_rows.append(col[~unk] - n_unknowns)
            fx_dev.append(dev[~unk])
            fx_sgn.append(np.full(int((~unk).sum()), sgn))
            for pos, k in enumerate(deriv_cols):
                colk = tidx[:, k]
                mask = unk & (colk < n_unknowns)
                j_flat.append(col[mask] * n_unknowns + colk[mask])
                j_col.append(dev[mask] * t + pos)
                j_sgn.append(np.full(int(mask.sum()), sgn))
        self.n = n_unknowns
        self.f_rows = np.concatenate(f_rows)
        self.f_dev = np.concatenate(f_dev)
        self.f_sgn = np.concatenate(f_sgn)
        self.fx_rows = np.concatenate(fx_rows)
        self.fx_dev = np.concatenate(fx_dev)
        self.fx_sgn = np.concatenate(fx_sgn)
        self.j_flat = np.concatenate(j_flat) if j_flat else np.zeros(0, int)
        self.j_col = np.concatenate(j_col) if j_col else np.zeros(0, int)
        self.j_sgn = np.concatenate(j_sgn) if j_sgn else np.zeros(0)
        # Dense operators where the footprint allows: one dgemv beats a
        # gather + multiply + bincount chain by several dispatches.
        self.s_f = self.s_fx = self.s_j = None
        if n_unknowns * m <= _DENSE_LIMIT:
            self.s_f = np.zeros((n_unknowns, m))
            np.add.at(self.s_f, (self.f_rows, self.f_dev), self.f_sgn)
        if n_fixed * m <= _DENSE_LIMIT:
            self.s_fx = np.zeros((n_fixed, m))
            np.add.at(self.s_fx, (self.fx_rows, self.fx_dev), self.fx_sgn)
        if t and n_unknowns * n_unknowns * m * t <= _DENSE_LIMIT:
            self.s_j = np.zeros((n_unknowns * n_unknowns, m * t))
            np.add.at(self.s_j, (self.j_flat, self.j_col), self.j_sgn)

    def add_flows(self, f: np.ndarray, flows: np.ndarray) -> None:
        if self.s_f is not None:
            f += self.s_f @ flows
        elif self.f_rows.size:
            f += np.bincount(self.f_rows,
                             weights=self.f_sgn * flows[self.f_dev],
                             minlength=f.size)

    def add_derivs(self, jac: np.ndarray, derivs: np.ndarray) -> None:
        if self.s_j is not None:
            jac += (self.s_j @ derivs.ravel()).reshape(jac.shape)
        elif self.j_flat.size:
            flat = derivs.ravel()
            jac += np.bincount(self.j_flat,
                               weights=self.j_sgn * flat[self.j_col],
                               minlength=jac.size).reshape(jac.shape)

    def add_fixed_flows(self, totals: np.ndarray,
                        flows: np.ndarray) -> None:
        if self.s_fx is not None:
            totals += self.s_fx @ flows
        elif self.fx_rows.size:
            totals += np.bincount(self.fx_rows,
                                  weights=self.fx_sgn * flows[self.fx_dev],
                                  minlength=totals.size)

    # -- batch-axis deposits (B independent circuits, one topology) ---------
    #
    # The dense operators are shared across lanes, so a whole batch
    # deposits with a single dgemm: ``(B, m) @ (m, n)``.  The bincount
    # fallbacks flatten the lane axis into the row index so the deposit
    # stays a single call as well.

    def add_flows_batch(self, f: np.ndarray, flows: np.ndarray) -> None:
        """``f`` is ``(B, n)``; ``flows`` is ``(B, m)`` (or ``(m,)``)."""
        if self.s_f is not None:
            f += flows @ self.s_f.T
        elif self.f_rows.size:
            nb, n = f.shape
            w = np.broadcast_to(self.f_sgn * flows[..., self.f_dev],
                                (nb, self.f_dev.size))
            rows = np.arange(nb)[:, None] * n + self.f_rows
            f += np.bincount(rows.ravel(), weights=w.ravel(),
                             minlength=f.size).reshape(f.shape)

    def add_derivs_batch(self, jac: np.ndarray, derivs: np.ndarray) -> None:
        """``jac`` is ``(B, n, n)``; ``derivs`` is ``(B, m, t)``."""
        nb = jac.shape[0]
        if self.s_j is not None:
            jac += (derivs.reshape(nb, -1) @ self.s_j.T).reshape(jac.shape)
        elif self.j_flat.size:
            flat = derivs.reshape(nb, -1)
            w = self.j_sgn * flat[:, self.j_col]
            cells = jac.shape[1] * jac.shape[2]
            rows = np.arange(nb)[:, None] * cells + self.j_flat
            jac += np.bincount(rows.ravel(), weights=w.ravel(),
                               minlength=jac.size).reshape(jac.shape)

    def add_fixed_flows_batch(self, totals: np.ndarray,
                              flows: np.ndarray) -> None:
        """``totals`` is ``(B, F)``; ``flows`` is ``(B, m)`` (or ``(m,)``)."""
        if self.s_fx is not None:
            totals += flows @ self.s_fx.T
        elif self.fx_rows.size:
            nb, nf = totals.shape
            w = np.broadcast_to(self.fx_sgn * flows[..., self.fx_dev],
                                (nb, self.fx_dev.size))
            rows = np.arange(nb)[:, None] * nf + self.fx_rows
            totals += np.bincount(rows.ravel(), weights=w.ravel(),
                                  minlength=totals.size).reshape(totals.shape)


class MosfetBank:
    """All :class:`Mosfet` devices as flat EKV parameter vectors."""

    flow_terms = ((0, 1.0), (2, -1.0))     # drain +ids, source -ids
    deriv_cols = (0, 1, 2, 3)

    def __init__(self, devices: Sequence[Mosfet], tidx: np.ndarray,
                 n_unknowns: int, n_fixed: int):
        self.tidx = tidx
        keys = ("sign", "vt0", "gamma_b", "vp_den", "ispec", "ut", "lam")
        per_dev = [d.model.bank_params() for d in devices]
        self.params = tuple(np.array([p[k] for p in per_dev]) for k in keys)
        self.plan = _ScatterPlan(tidx, n_unknowns, n_fixed, self.flow_terms,
                                 self.deriv_cols)

    def flows(self, volts_full: np.ndarray, params=None) -> np.ndarray:
        """Channel currents; ``volts_full`` may carry leading batch axes.

        ``params`` overrides the snapshotted EKV vectors (the batch
        engine passes ``(B, M)`` stacks when lanes differ, e.g. under
        per-trace mismatch).
        """
        v = volts_full[..., self.tidx]
        p = self.params if params is None else params
        return batched_ids(v[..., 0], v[..., 1], v[..., 2], v[..., 3], *p)

    def flows_and_derivs(self, volts_full: np.ndarray, h: float,
                         params=None):
        p = self.params if params is None else params
        return batched_currents_and_derivs(volts_full[..., self.tidx], h, *p)

    def lane_params(self, devices: Sequence[Mosfet]) -> tuple:
        """Parameter vectors for one batch lane's devices (bank order)."""
        keys = ("sign", "vt0", "gamma_b", "vp_den", "ispec", "ut", "lam")
        per_dev = [d.model.bank_params() for d in devices]
        return tuple(np.array([p[k] for p in per_dev]) for k in keys)


class ResistorBank:
    """All :class:`Resistor` devices as one resistance vector."""

    flow_terms = ((0, 1.0), (1, -1.0))
    deriv_cols = (0, 1)

    def __init__(self, devices: Sequence[Resistor], tidx: np.ndarray,
                 n_unknowns: int, n_fixed: int):
        self.tidx = tidx
        self.res = np.array([d.resistance for d in devices])
        self.plan = _ScatterPlan(tidx, n_unknowns, n_fixed, self.flow_terms,
                                 self.deriv_cols)

    def flows(self, volts_full: np.ndarray, params=None) -> np.ndarray:
        v = volts_full[..., self.tidx]
        res = self.res if params is None else params
        return (v[..., 0] - v[..., 1]) / res

    def flows_and_derivs(self, volts_full: np.ndarray, h: float,
                         params=None):
        v = volts_full[..., self.tidx]
        res = self.res if params is None else params
        base = (v[..., 0] - v[..., 1]) / res
        # The same forward differences the reference loop computes (not
        # the analytic ±1/R), so both assemblies agree to rounding.
        d0 = ((v[..., 0] + h - v[..., 1]) / res - base) / h
        d1 = ((v[..., 0] - (v[..., 1] + h)) / res - base) / h
        return base, np.stack((d0, d1), axis=-1)

    def lane_params(self, devices: Sequence[Resistor]) -> np.ndarray:
        return np.array([d.resistance for d in devices])


class ISourceBank:
    """All :class:`ISource` devices; constant flows, no Jacobian."""

    flow_terms = ((0, 1.0), (1, -1.0))
    deriv_cols = ()

    def __init__(self, devices: Sequence[ISource], tidx: np.ndarray,
                 n_unknowns: int, n_fixed: int):
        self.tidx = tidx
        self.val = np.array([d.value for d in devices])
        self.plan = _ScatterPlan(tidx, n_unknowns, n_fixed, self.flow_terms,
                                 self.deriv_cols)

    def flows(self, volts_full: np.ndarray, params=None) -> np.ndarray:
        return self.val if params is None else params

    def flows_and_derivs(self, volts_full: np.ndarray, h: float,
                         params=None):
        return (self.val if params is None else params), None

    def lane_params(self, devices: Sequence[ISource]) -> np.ndarray:
        return np.array([d.value for d in devices])


class LoopBlock:
    """Reference per-device assembly for un-banked device classes.

    Mirrors the original ``System`` loop verbatim: custom
    :class:`Device` subclasses (fault-injection proxies, test doubles)
    keep their exact call pattern and arithmetic, including dynamic
    behaviour between calls.
    """

    def __init__(self, entries: Sequence[Tuple[Device, List[int],
                                               List[Optional[str]]]],
                 fixed_pos: Dict[str, int]):
        self.entries = list(entries)
        self.fixed_pos = fixed_pos

    @staticmethod
    def _volts(idxs, names, x, fixed):
        return [x[i] if i >= 0 else fixed[names[k]]
                for k, i in enumerate(idxs)]

    def accumulate(self, f: np.ndarray, jac: Optional[np.ndarray],
                   x: np.ndarray, fixed: Dict[str, float],
                   h: float) -> None:
        for device, idxs, names in self.entries:
            volts = self._volts(idxs, names, x, fixed)
            base = device.currents(volts)
            for k, i in enumerate(idxs):
                if i >= 0:
                    f[i] += base[k]
            if jac is None:
                continue
            for k, j in enumerate(idxs):
                if j < 0:
                    continue
                volts_p = list(volts)
                volts_p[k] += h
                pert = device.currents(volts_p)
                for m, i in enumerate(idxs):
                    if i >= 0:
                        jac[i, j] += (pert[m] - base[m]) / h

    def fixed_totals(self, totals: np.ndarray, x: np.ndarray,
                     fixed: Dict[str, float]) -> None:
        for device, idxs, names in self.entries:
            volts = self._volts(idxs, names, x, fixed)
            cur = device.currents(volts)
            for k, i in enumerate(idxs):
                if i < 0:
                    totals[self.fixed_pos[names[k]]] += cur[k]


class BankAssembly:
    """The full banked view of one circuit's devices.

    Built once per :class:`~repro.spice.dc.System` (and rebuilt on
    device-list identity changes).  Capacitors carry no DC current and
    are dropped entirely; exact :class:`Mosfet` / :class:`Resistor` /
    :class:`ISource` instances go to their banks; every other device —
    including *subclasses* of the banked types, which may override
    ``currents`` — takes the reference loop.
    """

    def __init__(self, circuit, index: Dict[str, int], n_unknowns: int,
                 fixed_pos: Dict[str, int]):
        self.n = n_unknowns
        self.fixed_pos = fixed_pos
        grouped = {Mosfet: [], Resistor: [], ISource: []}
        loop_entries = []
        for device in circuit.devices:
            cls = type(device)
            if cls is Capacitor:
                continue  # open at DC: zero current, zero derivatives
            if cls in grouped:
                row = [index[node] if node in index
                       else n_unknowns + fixed_pos[node]
                       for node in device.terminals]
                grouped[cls].append((device, row))
            else:
                idxs = [index.get(node, -1) for node in device.terminals]
                names = [None if node in index else node
                         for node in device.terminals]
                loop_entries.append((device, idxs, names))
        self.banks = []
        self.bank_classes = []
        for cls, bank_cls in ((Mosfet, MosfetBank), (Resistor, ResistorBank),
                              (ISource, ISourceBank)):
            if grouped[cls]:
                devs = [d for d, _ in grouped[cls]]
                tidx = np.array([row for _, row in grouped[cls]], dtype=int)
                self.banks.append(bank_cls(devs, tidx, n_unknowns,
                                           len(fixed_pos)))
                self.bank_classes.append(cls)
        self.loop = LoopBlock(loop_entries, fixed_pos) if loop_entries \
            else None

    def accumulate(self, f: np.ndarray, jac: Optional[np.ndarray],
                   volts_full: np.ndarray, x: np.ndarray,
                   fixed: Dict[str, float], h: float) -> None:
        """Deposit every device's residual (and Jacobian) contribution."""
        for bank in self.banks:
            if jac is None:
                bank.plan.add_flows(f, bank.flows(volts_full))
            else:
                flows, derivs = bank.flows_and_derivs(volts_full, h)
                bank.plan.add_flows(f, flows)
                if derivs is not None:
                    bank.plan.add_derivs(jac, derivs)
        if self.loop is not None:
            self.loop.accumulate(f, jac, x, fixed, h)

    def fixed_totals(self, volts_full: np.ndarray, x: np.ndarray,
                     fixed: Dict[str, float]) -> np.ndarray:
        """Device current drawn out of each fixed node (bank order)."""
        totals = np.zeros(len(self.fixed_pos))
        for bank in self.banks:
            bank.plan.add_fixed_flows(totals, bank.flows(volts_full))
        if self.loop is not None:
            self.loop.fixed_totals(totals, x, fixed)
        return totals

    # -- batch axis ----------------------------------------------------------

    def lane_params(self, circuit) -> list:
        """Per-bank parameter vectors harvested from one lane's circuit.

        The lane must share the template's topology (same device classes
        in the same order — validated by ``BatchSystem``), so grouping
        by class reproduces the template's bank order exactly.
        """
        grouped = {cls: [] for cls in self.bank_classes}
        for device in circuit.devices:
            cls = type(device)
            if cls in grouped:
                grouped[cls].append(device)
        return [bank.lane_params(grouped[cls])
                for cls, bank in zip(self.bank_classes, self.banks)]

    def accumulate_batch(self, f: np.ndarray, jac: Optional[np.ndarray],
                         volts_full: np.ndarray, h: float,
                         params: Optional[list] = None) -> None:
        """Batched :meth:`accumulate` over ``(B, n + F)`` packed voltages.

        ``params`` is a per-bank list of lane-stacked parameter arrays
        (or ``None`` to reuse the template's snapshot).  Loop entries
        are not supported on the batch axis — the batch engine falls
        back to the serial path when any are present.
        """
        for k, bank in enumerate(self.banks):
            p = None if params is None else params[k]
            if jac is None:
                bank.plan.add_flows_batch(f, bank.flows(volts_full, p))
            else:
                flows, derivs = bank.flows_and_derivs(volts_full, h, p)
                bank.plan.add_flows_batch(f, flows)
                if derivs is not None:
                    bank.plan.add_derivs_batch(jac, derivs)

    def fixed_totals_batch(self, volts_full: np.ndarray,
                           params: Optional[list] = None) -> np.ndarray:
        """Batched :meth:`fixed_totals`: ``(B, F)`` per-source currents."""
        totals = np.zeros((volts_full.shape[0], len(self.fixed_pos)))
        for k, bank in enumerate(self.banks):
            p = None if params is None else params[k]
            bank.plan.add_fixed_flows_batch(totals, bank.flows(volts_full, p))
        return totals
