"""Waveform measurements used by cell characterisation.

These mirror the ``.measure`` statements a designer would write in a
SPICE deck: 50 %-to-50 % propagation delays, differential zero-crossing
delays (the natural delay definition for MCML), output swing, and average
supply current.
"""

from __future__ import annotations

from typing import Optional

from ..errors import CharacterizationError
from .transient import TransientResult
from .waveform import Waveform


def propagation_delay(vin: Waveform, vout: Waveform, threshold_in: float,
                      threshold_out: float, edge_in: str = "both",
                      edge_out: str = "both", after: float = 0.0) -> float:
    """Delay from the first input crossing to the next output crossing.

    Raises :class:`CharacterizationError` when either waveform never
    crosses its threshold — the usual symptom of a dead cell or a bias
    voltage that fails to switch the gate.
    """
    t_in = vin.first_crossing(threshold_in, edge_in, after=after)
    if t_in is None:
        raise CharacterizationError(
            f"input never crosses {threshold_in:.3g} V after {after:.3g} s")
    t_out = vout.first_crossing(threshold_out, edge_out, after=t_in)
    if t_out is None:
        raise CharacterizationError(
            f"output never crosses {threshold_out:.3g} V after the input "
            f"edge at {t_in:.3g} s")
    return t_out - t_in


def differential_delay(result: TransientResult, in_p: str, in_n: str,
                       out_p: str, out_n: str, after: float = 0.0) -> float:
    """MCML delay: input differential zero-crossing to output zero-crossing."""
    din = result.differential(in_p, in_n)
    dout = result.differential(out_p, out_n)
    return propagation_delay(din, dout, 0.0, 0.0, after=after)


def measure_swing(result: TransientResult, out_p: str, out_n: str,
                  settle_fraction: float = 0.2) -> float:
    """Differential output swing: |settled high level - settled low level|.

    Measures the settled differential value over the trailing portion of
    the waveform; callers arrange the stimulus so the output is static at
    the end of the run.
    """
    diff = result.differential(out_p, out_n)
    settled = diff.settle_value(settle_fraction)
    return abs(settled)


def average_supply_current(result: TransientResult, source_name: str,
                           t0: Optional[float] = None,
                           t1: Optional[float] = None) -> float:
    """Time-averaged current delivered by a supply over ``[t0, t1]``."""
    return result.current(source_name).average(t0, t1)


def peak_supply_current(result: TransientResult, source_name: str) -> float:
    """Peak current delivered by a supply."""
    return result.current(source_name).peak()
