"""Newton-Raphson DC operating-point solver.

The solver is purely nodal: source-driven nodes are known voltages, every
other node is an unknown, and the residual is KCL (sum of device currents
leaving the node).  The Jacobian is assembled from per-device forward
differences, which keeps device models trivially extensible.  Robustness
measures are the SPICE classics: per-iteration voltage-step damping and
gmin continuation when plain Newton fails.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

import numpy as np

from ..errors import CircuitError, ConvergenceError
from ..obs import NULL_TELEMETRY
from .banks import FD_STEP, BankAssembly
from .circuit import Circuit, canonical_node
from .opcache import default_op_cache
from .sparse import SparseAssembly
from .recovery import (
    GMIN_LADDER,
    NewtonStats,
    RecoveryPolicy,
    SolveBudget,
    SolverDiagnostics,
    solve_with_recovery,
)

#: Forward-difference step for device Jacobians, volts (shared with the
#: banked assembly so both walk the same Newton trajectory).
_FD_STEP = FD_STEP

#: Environment override for the default assembly strategy.
_ASSEMBLY_ENV = "REPRO_SPICE_ASSEMBLY"

_ASSEMBLY_CHOICES = ("bank", "loop", "sparse")

#: Largest allowed Newton voltage update, volts.
_DAMP_LIMIT = 0.3

_GMIN_LADDER = GMIN_LADDER


class System:
    """Index structures for repeated solves of one circuit.

    Building the node indices once and reusing them across transient steps
    is the main performance lever of the engine.  ``assembly`` selects the
    residual/Jacobian strategy: ``"bank"`` (default) evaluates devices in
    vectorized class banks (:mod:`repro.spice.banks`); ``"loop"`` keeps
    the reference per-device Python loop; ``"sparse"`` assembles the same
    bank deposits into a canonical CSC pattern and factors with SuperLU
    (:mod:`repro.spice.sparse`) — the only mode that scales to a full
    synthesized core.  The ``REPRO_SPICE_ASSEMBLY`` environment variable
    changes the default.
    """

    def __init__(self, circuit: Circuit, telemetry=None,
                 assembly: Optional[str] = None):
        circuit.validate()
        self.circuit = circuit
        #: Observability handle; the shared no-op when not provided.
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        #: Cumulative count of singular-Jacobian (lstsq fallback) events.
        self.singular_jacobian_events = 0
        if assembly is None:
            assembly = os.environ.get(_ASSEMBLY_ENV, "bank")
        if assembly not in _ASSEMBLY_CHOICES:
            raise CircuitError(
                f"unknown assembly strategy {assembly!r}; "
                f"expected one of {_ASSEMBLY_CHOICES}")
        self.assembly = assembly
        self.fixed_set = set(circuit.fixed_nodes())
        self.unknowns: List[str] = circuit.unknown_nodes()
        self.index: Dict[str, int] = {n: i for i, n in enumerate(self.unknowns)}
        self.n = len(self.unknowns)
        # Packed-voltage layout: V = [x | fixed values in fixed_nodes()
        # key order].  The key set is stable across t and across the
        # scaled dicts source stepping builds, so the positions hold for
        # every solve of this System.
        self.fixed_names_order: List[str] = list(circuit.fixed_nodes())
        self.fixed_pos: Dict[str, int] = {
            n: i for i, n in enumerate(self.fixed_names_order)}
        # Per-device terminal classification: unknown index or -1 (fixed).
        self.dev_terms: List[List[int]] = []
        self.dev_fixed_names: List[List[Optional[str]]] = []
        for device in circuit.devices:
            idxs: List[int] = []
            fixed_names: List[Optional[str]] = []
            for node in device.terminals:
                if node in self.index:
                    idxs.append(self.index[node])
                    fixed_names.append(None)
                else:
                    idxs.append(-1)
                    fixed_names.append(node)
            self.dev_terms.append(idxs)
            self.dev_fixed_names.append(fixed_names)
        self._banks: Optional[BankAssembly] = None
        self._bank_sig = None
        self._sparse: Optional[SparseAssembly] = None

    # -- assembly ------------------------------------------------------------

    def bank_assembly(self) -> BankAssembly:
        """The banked device view, rebuilt if the device list changed.

        Fault injection arms by ``swap_device`` *after* System
        construction; the identity signature catches that (and any
        device added to the list) and rebuilds the flat arrays.  Swaps
        preserve terminals by contract, so node indexing never changes.
        """
        sig = tuple(map(id, self.circuit.devices))
        if sig != self._bank_sig:
            self._banks = BankAssembly(self.circuit, self.index, self.n,
                                       self.fixed_pos)
            self._bank_sig = sig
        return self._banks

    def sparse_assembly(self) -> SparseAssembly:
        """The sparse pattern view, rebuilt alongside the banks.

        Follows :meth:`bank_assembly`'s identity signature: a
        ``swap_device`` (fault-injection arming) rebuilds the banks,
        which invalidates the pattern and its deposit positions here.
        """
        banks = self.bank_assembly()
        if self._sparse is None or self._sparse.banks is not banks:
            self._sparse = SparseAssembly(self.circuit, banks, self.index,
                                          self.n)
        return self._sparse

    def fixed_tail(self, fixed: Dict[str, float]) -> np.ndarray:
        """Fixed node voltages in bank order (the tail of ``full_volts``).

        Constant across the Newton iterations of one solve — hoist it
        with this and pass it as ``tail`` to the residual methods.
        """
        return np.array([fixed[name] for name in self.fixed_names_order])

    def full_volts(self, x: np.ndarray, fixed: Dict[str, float],
                   tail: Optional[np.ndarray] = None) -> np.ndarray:
        """Pack unknown and fixed node voltages into one bank-indexed vector."""
        v = np.empty(self.n + len(self.fixed_names_order))
        v[:self.n] = x
        v[self.n:] = self.fixed_tail(fixed) if tail is None else tail
        return v

    def device_volts(self, dev_idx: int, x: np.ndarray,
                     fixed: Dict[str, float]) -> List[float]:
        idxs = self.dev_terms[dev_idx]
        names = self.dev_fixed_names[dev_idx]
        return [x[i] if i >= 0 else fixed[names[k]]
                for k, i in enumerate(idxs)]

    def residual_and_jacobian(self, x: np.ndarray, fixed: Dict[str, float],
                              gmin: float,
                              tail: Optional[np.ndarray] = None):
        """KCL residual and its Jacobian at ``x``.

        ``tail`` optionally carries :meth:`fixed_tail`'s result so
        repeated solves against the same ``fixed`` dict skip the
        dict-to-array packing (the ``newton`` loop hoists it).
        """
        if self.assembly == "loop":
            return self._residual_and_jacobian_loop(x, fixed, gmin)
        if self.assembly == "sparse":
            sp_asm = self.sparse_assembly()
            f = np.zeros(self.n)
            data = np.zeros(sp_asm.nnz)
            volts_full = self.full_volts(x, fixed, tail)
            sp_asm.accumulate(f, data, volts_full, x, fixed, _FD_STEP)
            if gmin > 0.0:
                f += gmin * x
                data[sp_asm.diag_pos] += gmin
            return f, data
        f = np.zeros(self.n)
        jac = np.zeros((self.n, self.n))
        volts_full = self.full_volts(x, fixed, tail)
        self.bank_assembly().accumulate(f, jac, volts_full, x, fixed,
                                        _FD_STEP)
        if gmin > 0.0:
            f += gmin * x
            jac[np.diag_indices(self.n)] += gmin
        return f, jac

    def _residual_and_jacobian_loop(self, x: np.ndarray,
                                    fixed: Dict[str, float], gmin: float):
        """Reference per-device assembly loop (``assembly="loop"``)."""
        f = np.zeros(self.n)
        jac = np.zeros((self.n, self.n))
        for d, device in enumerate(self.circuit.devices):
            idxs = self.dev_terms[d]
            volts = self.device_volts(d, x, fixed)
            base = device.currents(volts)
            for k, i in enumerate(idxs):
                if i >= 0:
                    f[i] += base[k]
            for k, j in enumerate(idxs):
                if j < 0:
                    continue
                volts_p = list(volts)
                volts_p[k] += _FD_STEP
                pert = device.currents(volts_p)
                for m, i in enumerate(idxs):
                    if i >= 0:
                        jac[i, j] += (pert[m] - base[m]) / _FD_STEP
        if gmin > 0.0:
            f += gmin * x
            jac[np.diag_indices(self.n)] += gmin
        return f, jac

    def residual_only(self, x: np.ndarray, fixed: Dict[str, float],
                      gmin: float,
                      tail: Optional[np.ndarray] = None) -> np.ndarray:
        if self.assembly == "loop":
            return self._residual_only_loop(x, fixed, gmin)
        f = np.zeros(self.n)
        volts_full = self.full_volts(x, fixed, tail)
        self.bank_assembly().accumulate(f, None, volts_full, x, fixed,
                                        _FD_STEP)
        if gmin > 0.0:
            f += gmin * x
        return f

    def _residual_only_loop(self, x: np.ndarray, fixed: Dict[str, float],
                            gmin: float) -> np.ndarray:
        f = np.zeros(self.n)
        for d, device in enumerate(self.circuit.devices):
            idxs = self.dev_terms[d]
            volts = self.device_volts(d, x, fixed)
            base = device.currents(volts)
            for k, i in enumerate(idxs):
                if i >= 0:
                    f[i] += base[k]
        if gmin > 0.0:
            f += gmin * x
        return f

    def fixed_node_currents(self, x: np.ndarray,
                            fixed: Dict[str, float]) -> Dict[str, float]:
        """Total device current drawn out of each fixed node."""
        if self.assembly == "loop":
            return self._fixed_node_currents_loop(x, fixed)
        volts_full = self.full_volts(x, fixed)
        totals = self.bank_assembly().fixed_totals(volts_full, x, fixed)
        out: Dict[str, float] = {node: 0.0 for node in fixed}
        for name, pos in self.fixed_pos.items():
            out[name] = float(totals[pos])
        return out

    def _fixed_node_currents_loop(self, x: np.ndarray,
                                  fixed: Dict[str, float]) -> Dict[str, float]:
        totals: Dict[str, float] = {node: 0.0 for node in fixed}
        for d, device in enumerate(self.circuit.devices):
            idxs = self.dev_terms[d]
            names = self.dev_fixed_names[d]
            volts = self.device_volts(d, x, fixed)
            cur = device.currents(volts)
            for k, i in enumerate(idxs):
                if i < 0:
                    totals[names[k]] += cur[k]
        return totals

    # -- Newton --------------------------------------------------------------

    def newton(self, fixed: Dict[str, float], x0: np.ndarray, gmin: float,
               extra=None, abstol: float = 1e-11, steptol: float = 1e-8,
               maxiter: int = 120,
               stats: Optional[NewtonStats] = None) -> np.ndarray:
        """Damped Newton iteration.

        ``extra`` is an optional callable ``extra(x) -> (f_extra, J_extra)``
        used by the transient engine to inject capacitor companion models.
        ``stats``, when given, is filled with iteration count, final
        residual, and singular-Jacobian (lstsq fallback) events.
        """
        if stats is None:
            stats = NewtonStats()
        if self.n == 0:
            stats.converged = True
            stats.residual = 0.0
            self._note_solve(stats)
            return x0.copy()
        x = x0.copy()
        vmax = max([0.0] + list(fixed.values())) + 1.0
        vmin = min([0.0] + list(fixed.values())) - 1.0
        tail = self.fixed_tail(fixed) if self.assembly != "loop" else None
        last_res = np.inf
        for iteration in range(maxiter):
            f, jac = self.residual_and_jacobian(x, fixed, gmin, tail=tail)
            if extra is not None:
                f_extra, j_extra = extra(x)
                f = f + f_extra
                jac = jac + j_extra
            last_res = float(abs(f).max()) if f.size else 0.0
            stats.iterations = iteration + 1
            stats.residual = last_res
            if not np.isfinite(last_res):
                # A NaN/Inf residual can never recover: x would only fill
                # with NaN.  Fail fast so retry ladders get their turn.
                self._note_solve(stats)
                raise ConvergenceError(
                    f"Newton hit a non-finite residual at iteration "
                    f"{iteration + 1}", iterations=iteration + 1,
                    residual=last_res)
            if self.assembly == "sparse":
                # `jac` is the canonical nnz data vector here; splu with
                # the precomputed ordering, Tikhonov retry inside.
                dx, singular = self.sparse_assembly().solve(jac, -f)
                if singular:
                    stats.singular_jacobian_events += singular
                    self.singular_jacobian_events += singular
            else:
                try:
                    dx = np.linalg.solve(jac, -f)
                except np.linalg.LinAlgError:
                    stats.singular_jacobian_events += 1
                    self.singular_jacobian_events += 1
                    # Tikhonov term added in place on a copy: same
                    # regularised matrix as `jac + 1e-12*eye(n)` without
                    # materialising an n*n identity per singular event.
                    jac_reg = jac.copy()
                    jac_reg.flat[::self.n + 1] += 1e-12
                    dx, *_ = np.linalg.lstsq(jac_reg, -f, rcond=None)
            if not np.all(np.isfinite(dx)):
                self._note_solve(stats)
                raise ConvergenceError(
                    f"Newton produced a non-finite update at iteration "
                    f"{iteration + 1}", iterations=iteration + 1,
                    residual=last_res)
            step = float(abs(dx).max()) if dx.size else 0.0
            if step > _DAMP_LIMIT:
                dx *= _DAMP_LIMIT / step
                step = _DAMP_LIMIT
            x = np.minimum(np.maximum(x + dx, vmin), vmax)
            if last_res < abstol and step < steptol:
                stats.converged = True
                self._note_solve(stats)
                return x
        self._note_solve(stats)
        raise ConvergenceError(
            f"Newton failed after {maxiter} iterations "
            f"(residual {last_res:.3g} A)", iterations=maxiter,
            residual=last_res)

    def _note_solve(self, stats: NewtonStats) -> None:
        """Fold one finished Newton attempt into the metrics registry.

        Called once per solve (never per iteration), so the disabled
        path costs four no-op method calls — measured under 2 % on the
        acquisition benchmark's serial path.
        """
        tele = self.telemetry
        tele.counter("spice.newton.solves").inc()
        tele.counter("spice.newton.iterations").inc(stats.iterations)
        if stats.singular_jacobian_events:
            tele.counter("spice.newton.singular_jacobian_events").inc(
                stats.singular_jacobian_events)
        if not stats.converged:
            tele.counter("spice.newton.failures").inc()


class OperatingPoint:
    """Result of a DC solve: node voltages and source currents.

    ``diagnostics`` records the recovery-ladder attempts that produced
    the solve (None for legacy construction paths).
    """

    def __init__(self, voltages: Dict[str, float],
                 source_currents: Dict[str, float],
                 diagnostics: Optional[SolverDiagnostics] = None):
        self.voltages = voltages
        self.source_currents = source_currents
        self.diagnostics = diagnostics

    def __getitem__(self, node: str) -> float:
        return self.voltages[node]

    def current(self, source_name: str) -> float:
        """Current drawn from the named source (positive = delivering)."""
        return self.source_currents[source_name]

    def __repr__(self) -> str:
        pairs = ", ".join(f"{n}={v:.4g}" for n, v in sorted(self.voltages.items()))
        return f"OperatingPoint({pairs})"


def _initial_guess(system: System, fixed: Dict[str, float]) -> np.ndarray:
    """Seed all unknowns midway between the extreme rails.

    With only positive supplies this is the classic Vdd/2 start; when
    rails straddle 0 V (split-supply biasing) the midpoint keeps the
    guess centred instead of biased toward the positive rail.
    """
    vals = list(fixed.values()) + [0.0]
    level = (max(vals) + min(vals)) / 2.0
    return np.full(system.n, level)


def solve_dc(circuit: Circuit, t: float = 0.0,
             guess: Optional[Dict[str, float]] = None,
             system: Optional[System] = None,
             policy: Optional[RecoveryPolicy] = None,
             telemetry=None,
             budget: Optional[SolveBudget] = None,
             op_cache=None) -> OperatingPoint:
    """Find the DC operating point of ``circuit`` at source time ``t``.

    Tries plain Newton from a midpoint guess first, then climbs the
    recovery ladder (gmin stepping, source stepping, pseudo-transient —
    see :mod:`repro.spice.recovery`).  The returned operating point
    carries a :class:`SolverDiagnostics`; so does the
    :class:`ConvergenceError` raised when every strategy fails.

    ``telemetry`` wraps the solve in a ``spice.dc.solve`` span; when
    omitted, a reused ``system``'s handle applies (the transient engine
    threads its handle through the shared :class:`System`).

    ``budget`` (default: ``REPRO_SOLVE_BUDGET`` via
    :meth:`SolveBudget.from_env`, unlimited when unset) deterministically
    bounds the solve; exhaustion raises
    :class:`~repro.errors.BudgetExhaustedError` instead of spinning on a
    stiff circuit.

    ``op_cache`` (default: ``REPRO_OP_CACHE`` via
    :func:`~repro.spice.opcache.default_op_cache`, off when unset)
    short-circuits repeated solves of content-identical circuits at the
    same bias — see :mod:`repro.spice.opcache` for the fingerprint and
    invalidation contract.  Solves under a custom recovery ``policy``
    bypass the cache (the policy steers the trajectory but is not part
    of the key).
    """
    sys_ = system if system is not None else System(circuit,
                                                    telemetry=telemetry)
    tele = telemetry if telemetry is not None else sys_.telemetry
    if op_cache is None:
        op_cache = default_op_cache()
    cache_key = None
    if op_cache is not None:
        if policy is not None:
            op_cache.bypasses += 1
            tele.counter("spice.opcache.bypasses").inc()
        else:
            cache_key = op_cache.fingerprint(circuit, t, guess,
                                             sys_.assembly)
            if cache_key is None:
                op_cache.bypasses += 1
                tele.counter("spice.opcache.bypasses").inc()
            else:
                hit = op_cache.lookup(cache_key)
                if hit is not None:
                    tele.counter("spice.opcache.hits").inc()
                    return hit
                tele.counter("spice.opcache.misses").inc()
    fixed = circuit.fixed_nodes(t)
    x0 = _initial_guess(sys_, fixed)
    if guess:
        bad = []
        for node, volt in guess.items():
            canon = canonical_node(node)
            if canon in sys_.index:
                x0[sys_.index[canon]] = volt
            elif canon not in fixed:
                # A typo here used to silently degrade the warm start;
                # fixed-node entries stay tolerated (their value is pinned
                # by the source anyway), anything else is an error.
                bad.append(node)
        if bad:
            raise CircuitError(
                f"guess names {sorted(bad)} are not nodes of circuit "
                f"{circuit.name!r} (unknowns: {sorted(sys_.index)})")
    with tele.span("spice.dc.solve", circuit=circuit.name, t=t,
                   unknowns=sys_.n) as span:
        x, diagnostics = solve_with_recovery(sys_, fixed, x0, policy=policy,
                                             telemetry=tele, budget=budget)
        span.set("converged_by", diagnostics.converged_by)
        span.set("attempts", len(diagnostics.attempts))
        span.set("newton_iterations", diagnostics.total_iterations)
        span.set("singular_jacobian_events",
                 diagnostics.singular_jacobian_events)
    voltages = dict(fixed)
    for node, idx in sys_.index.items():
        voltages[node] = float(x[idx])
    node_currents = sys_.fixed_node_currents(x, fixed)
    source_currents = {
        source.name: node_currents.get(source.node, 0.0)
        for source in circuit.vsources
    }
    op = OperatingPoint(voltages, source_currents,
                        diagnostics=diagnostics)
    if cache_key is not None:
        op_cache.store(cache_key, op)
        tele.counter("spice.opcache.stores").inc()
    return op
