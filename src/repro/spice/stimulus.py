"""Time-domain stimuli for voltage sources.

Each stimulus exposes ``value(t)`` and a conservative ``breakpoints()``
list so the transient engine can refine time steps around edges, mirroring
what SPICE does with PWL/PULSE sources.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import CircuitError


class Stimulus:
    """Base class: a scalar function of time."""

    def value(self, t: float) -> float:
        raise NotImplementedError

    def breakpoints(self) -> List[float]:
        """Times where the derivative changes; may be empty."""
        return []


class DC(Stimulus):
    """A constant level."""

    def __init__(self, level: float):
        self.level = float(level)

    def value(self, t: float) -> float:
        return self.level

    def __repr__(self) -> str:
        return f"DC({self.level})"


class PWL(Stimulus):
    """Piecewise-linear stimulus from ``(time, value)`` points.

    Holds the first value before the first point and the last value after
    the last point, like SPICE.
    """

    def __init__(self, points: Sequence[Tuple[float, float]]):
        if not points:
            raise CircuitError("PWL needs at least one point")
        times = [float(p[0]) for p in points]
        if any(t1 <= t0 for t0, t1 in zip(times, times[1:])):
            raise CircuitError("PWL time points must be strictly increasing")
        self.points = [(float(t), float(v)) for t, v in points]

    def value(self, t: float) -> float:
        pts = self.points
        if t <= pts[0][0]:
            return pts[0][1]
        if t >= pts[-1][0]:
            return pts[-1][1]
        for (t0, v0), (t1, v1) in zip(pts, pts[1:]):
            if t0 <= t <= t1:
                frac = (t - t0) / (t1 - t0)
                return v0 + frac * (v1 - v0)
        return pts[-1][1]  # unreachable, defensive

    def breakpoints(self) -> List[float]:
        return [t for t, _ in self.points]

    def __repr__(self) -> str:
        return f"PWL({len(self.points)} pts)"


class Pulse(Stimulus):
    """SPICE-style PULSE source.

    Parameters mirror SPICE: initial value ``v0``, pulsed value ``v1``,
    ``delay``, ``rise``, ``fall``, pulse ``width`` and ``period``
    (``period=0`` means a single pulse).
    """

    def __init__(self, v0: float, v1: float, delay: float, rise: float,
                 fall: float, width: float, period: float = 0.0):
        if min(rise, fall, width) < 0 or delay < 0 or period < 0:
            raise CircuitError("pulse timing parameters must be non-negative")
        if period and period < rise + width + fall:
            raise CircuitError("pulse period shorter than rise+width+fall")
        self.v0, self.v1 = float(v0), float(v1)
        self.delay, self.rise, self.fall = float(delay), float(rise), float(fall)
        self.width, self.period = float(width), float(period)

    def value(self, t: float) -> float:
        if t < self.delay:
            return self.v0
        local = t - self.delay
        if self.period:
            local = local % self.period
        if local < self.rise:
            if self.rise == 0.0:
                return self.v1
            return self.v0 + (self.v1 - self.v0) * local / self.rise
        local -= self.rise
        if local < self.width:
            return self.v1
        local -= self.width
        if local < self.fall:
            if self.fall == 0.0:
                return self.v0
            return self.v1 + (self.v0 - self.v1) * local / self.fall
        return self.v0

    def breakpoints(self) -> List[float]:
        base = [self.delay,
                self.delay + self.rise,
                self.delay + self.rise + self.width,
                self.delay + self.rise + self.width + self.fall]
        if not self.period:
            return base
        points = []
        for cycle in range(16):  # enough for any cell-level transient
            offset = cycle * self.period
            points.extend(b + offset for b in base)
        return points

    def __repr__(self) -> str:
        return (f"Pulse(v0={self.v0}, v1={self.v1}, delay={self.delay}, "
                f"rise={self.rise}, fall={self.fall}, width={self.width}, "
                f"period={self.period})")


class Clock(Pulse):
    """A 50 %-duty clock built on :class:`Pulse`."""

    def __init__(self, v0: float, v1: float, period: float,
                 transition: float, delay: float = 0.0):
        if period <= 0:
            raise CircuitError("clock period must be positive")
        if transition <= 0 or transition >= period / 2:
            raise CircuitError("clock transition must be in (0, period/2)")
        super().__init__(v0, v1, delay, transition, transition,
                         period / 2 - transition, period)
