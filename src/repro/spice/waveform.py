"""Waveform storage and measurement.

A :class:`Waveform` is an immutable pair of monotonically increasing time
points and sample values.  It supports the measurements every experiment
needs: threshold crossings (for delays), averages and integrals (for
power), resampling (for trace alignment) and quantisation (for the 1 µA
measurement-resolution model of the side-channel study).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from ..errors import TraceError

ArrayLike = Union[Sequence[float], np.ndarray]

# numpy 2 renamed trapz to trapezoid; support both.
_trapezoid = getattr(np, "trapezoid", None) or np.trapz


class Waveform:
    """A sampled signal ``v(t)`` with strictly increasing time points."""

    __slots__ = ("t", "v")

    def __init__(self, t: ArrayLike, v: ArrayLike):
        t_arr = np.asarray(t, dtype=float)
        v_arr = np.asarray(v, dtype=float)
        if t_arr.ndim != 1 or v_arr.ndim != 1:
            raise TraceError("waveform arrays must be one-dimensional")
        if t_arr.shape != v_arr.shape:
            raise TraceError(
                f"time/value length mismatch: {t_arr.shape} vs {v_arr.shape}")
        if t_arr.size == 0:
            raise TraceError("waveform must have at least one sample")
        if t_arr.size > 1 and not np.all(np.diff(t_arr) > 0):
            raise TraceError("waveform time points must be strictly increasing")
        self.t = t_arr
        self.v = v_arr

    # -- basic properties ---------------------------------------------------

    def __len__(self) -> int:
        return int(self.t.size)

    def __repr__(self) -> str:
        return (f"Waveform({len(self)} pts, t=[{self.t[0]:.3g}, {self.t[-1]:.3g}], "
                f"v=[{self.v.min():.3g}, {self.v.max():.3g}])")

    @property
    def duration(self) -> float:
        """Total spanned time."""
        return float(self.t[-1] - self.t[0])

    def value_at(self, time: float) -> float:
        """Linearly interpolated value at ``time`` (clamped at the ends)."""
        return float(np.interp(time, self.t, self.v))

    def slice(self, t0: float, t1: float) -> "Waveform":
        """Return the samples with ``t0 <= t <= t1`` (must be non-empty)."""
        if t1 < t0:
            raise TraceError(f"slice bounds reversed: {t0} > {t1}")
        mask = (self.t >= t0) & (self.t <= t1)
        if not mask.any():
            raise TraceError(f"no samples in window [{t0}, {t1}]")
        return Waveform(self.t[mask], self.v[mask])

    # -- measurements -------------------------------------------------------

    def crossings(self, level: float, edge: str = "both") -> List[float]:
        """Interpolated times where the waveform crosses ``level``.

        ``edge`` is ``"rise"``, ``"fall"`` or ``"both"``.  A sample exactly
        at the level counts as part of whichever segment crosses it.
        """
        if edge not in ("rise", "fall", "both"):
            raise TraceError(f"edge must be rise/fall/both, got {edge!r}")
        times: List[float] = []
        for i in range(len(self) - 1):
            v0, v1 = self.v[i], self.v[i + 1]
            if v0 == v1:
                continue
            rising = v0 < level <= v1
            falling = v0 > level >= v1
            if (rising and edge in ("rise", "both")) or (
                    falling and edge in ("fall", "both")):
                frac = (level - v0) / (v1 - v0)
                times.append(float(self.t[i] + frac * (self.t[i + 1] - self.t[i])))
        return times

    def first_crossing(self, level: float, edge: str = "both",
                       after: float = -np.inf) -> Optional[float]:
        """First crossing of ``level`` at or after time ``after`` (or None)."""
        for time in self.crossings(level, edge):
            if time >= after:
                return time
        return None

    def average(self, t0: Optional[float] = None,
                t1: Optional[float] = None) -> float:
        """Time-weighted (trapezoidal) average over ``[t0, t1]``."""
        wave = self if t0 is None and t1 is None else self.slice(
            self.t[0] if t0 is None else t0, self.t[-1] if t1 is None else t1)
        if len(wave) == 1:
            return float(wave.v[0])
        return float(_trapezoid(wave.v, wave.t) / wave.duration)

    def integral(self) -> float:
        """Trapezoidal integral over the full span (e.g. charge from current)."""
        if len(self) == 1:
            return 0.0
        return float(_trapezoid(self.v, self.t))

    def rms(self) -> float:
        """Root-mean-square value (time weighted)."""
        if len(self) == 1:
            return abs(float(self.v[0]))
        mean_sq = _trapezoid(self.v ** 2, self.t) / self.duration
        return float(np.sqrt(mean_sq))

    def peak(self) -> float:
        """Maximum value."""
        return float(self.v.max())

    def trough(self) -> float:
        """Minimum value."""
        return float(self.v.min())

    def swing(self) -> float:
        """Peak-to-peak excursion."""
        return float(self.v.max() - self.v.min())

    def settle_value(self, fraction: float = 0.1) -> float:
        """Average of the trailing ``fraction`` of the waveform (settled value)."""
        if not 0.0 < fraction <= 1.0:
            raise TraceError("settle fraction must be in (0, 1]")
        t0 = self.t[-1] - fraction * self.duration
        return self.average(t0=t0, t1=float(self.t[-1]))

    # -- transforms ----------------------------------------------------------

    def resample(self, times: ArrayLike) -> "Waveform":
        """Linear-interpolation resample onto new time points."""
        t_new = np.asarray(times, dtype=float)
        return Waveform(t_new, np.interp(t_new, self.t, self.v))

    def quantize(self, step: float) -> "Waveform":
        """Round values to the nearest multiple of ``step``.

        Models a measurement instrument's amplitude resolution; the paper
        records currents with 1 µA resolution, which floors the information
        available to the attacker.
        """
        if step <= 0.0:
            raise TraceError("quantisation step must be positive")
        return Waveform(self.t, np.round(self.v / step) * step)

    def shifted(self, dt: float) -> "Waveform":
        """Time-shift by ``dt``."""
        return Waveform(self.t + dt, self.v)

    def scaled(self, gain: float) -> "Waveform":
        """Amplitude-scale by ``gain``."""
        return Waveform(self.t, self.v * gain)

    def _binary_op(self, other: Union["Waveform", float], op) -> "Waveform":
        if isinstance(other, Waveform):
            if len(other) != len(self) or not np.allclose(other.t, self.t):
                other = other.resample(self.t)
            return Waveform(self.t, op(self.v, other.v))
        return Waveform(self.t, op(self.v, float(other)))

    def __add__(self, other: Union["Waveform", float]) -> "Waveform":
        return self._binary_op(other, np.add)

    def __sub__(self, other: Union["Waveform", float]) -> "Waveform":
        return self._binary_op(other, np.subtract)

    def __mul__(self, other: Union["Waveform", float]) -> "Waveform":
        return self._binary_op(other, np.multiply)

    @staticmethod
    def sum(waves: Iterable["Waveform"]) -> "Waveform":
        """Sum several waveforms on the time base of the first one."""
        waves = list(waves)
        if not waves:
            raise TraceError("cannot sum zero waveforms")
        total = waves[0]
        for wave in waves[1:]:
            total = total + wave
        return total
