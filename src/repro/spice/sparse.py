"""Sparse MNA assembly over the device-bank scatter plans.

Dense ``(n, n)`` Jacobians cap the engine at S-box-unit scale: a
synthesized AES core elaborates to ~10^5 devices and ~10^4..10^5
unknowns, where a dense Jacobian would need tens of gigabytes per
Newton iteration.  This module extends the PR 4 bank scatter plans
(:mod:`repro.spice.banks`) to a compressed-sparse assembly:

* The *pattern* — the set of ``(row, col)`` Jacobian coordinates any
  device can ever touch — is computed once per
  :class:`~repro.spice.dc.System` from the bank plans' flat coordinates,
  the full diagonal (gmin / Tikhonov terms), every linear capacitor's
  companion incidence, and every loop-entry terminal pair.  It is
  permuted once with reverse Cuthill-McKee and frozen as a canonical
  CSC structure.
* Each Newton iteration assembles only the ``nnz`` *data vector* over
  that fixed pattern (one ``np.bincount`` per bank, exactly mirroring
  the dense deposits), so ``jac + j_extra`` in ``System.newton`` stays
  plain 1-D array addition.
* The solve factors with :func:`scipy.sparse.linalg.splu` under
  ``permc_spec="COLAMD"``.  The cross-iteration reuse lives in the
  frozen pattern and index plans: pattern construction, RCM bandwidth
  permutation, coordinate canonicalisation, and every deposit-position
  plan are computed once per circuit and shared by all Newton
  iterations, time steps, and batch lanes.  The COLAMD fill-reducing
  ordering itself is recomputed inside each factorization — it is
  linear-ish in ``nnz`` and measured to be negligible next to the
  numeric factor, whereas a bandwidth (RCM) ordering alone produces
  catastrophic fill on circuit graphs at 10^4-10^5 unknowns.  SuperLU's
  symbolic-only refactor is not exposed by scipy, and this module does
  not pretend otherwise (see DESIGN.md §13).

Equivalence contract: the residual and every Jacobian *entry* are the
same floating-point sums the bank assembly deposits (same bincount
ordering, same FD step), so sparse and dense-bank differ only through
the linear solver (LAPACK ``getrf`` vs SuperLU).  The proof burden
lives in ``tests/test_spice_sparse.py`` (≤1e-9 on every waveform).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import reverse_cuthill_mckee
from scipy.sparse.linalg import splu

from ..errors import CircuitError, ConvergenceError
from .banks import BankAssembly

#: Tikhonov term added to the diagonal when the factorization reports a
#: singular matrix — the same value the dense path adds before lstsq.
_TIKHONOV = 1e-12

#: Below this many unknowns a doubly-singular sparse system densifies
#: and takes the dense path's exact lstsq fallback; above it the solve
#: fails loudly instead of materialising an (n, n) array.
_DENSE_LSTSQ_LIMIT = 4096


class SparseAssembly:
    """Canonical CSC pattern + deposit positions for one circuit.

    Wraps a :class:`~repro.spice.banks.BankAssembly` (sharing its banks,
    flows, and scatter plans) and precomputes, for every possible
    Jacobian contribution, its position in the canonical ``nnz``-long
    data vector.  Rebuilt alongside the banks whenever the device-list
    identity changes (``swap_device``).
    """

    def __init__(self, circuit, banks: BankAssembly, index: Dict[str, int],
                 n_unknowns: int):
        self.banks = banks
        self.n = n_unknowns
        n = n_unknowns
        if n == 0:
            self.nnz = 0
            self.diag_pos = np.zeros(0, dtype=np.int64)
            self._bank_pos: List[np.ndarray] = [
                np.zeros(0, dtype=np.int64) for _ in banks.banks]
            self._loop_pos: List[List[List[int]]] = []
            return
        rows: List[np.ndarray] = [np.arange(n, dtype=np.int64)]
        cols: List[np.ndarray] = [np.arange(n, dtype=np.int64)]
        for bank in banks.banks:
            flat = bank.plan.j_flat.astype(np.int64)
            rows.append(flat // n)
            cols.append(flat % n)
        # Companion-capacitor incidence: the transient engine stamps
        # (a,a), (b,b), (a,b), (b,a) for every linear capacitance with
        # at least one unknown end.  Included up front so the pattern
        # holds for DC and every transient step alike.
        cap_r: List[int] = []
        cap_c: List[int] = []
        for a, b, _ in circuit.linear_capacitances():
            ia = index.get(a, -1)
            ib = index.get(b, -1)
            if ia >= 0:
                cap_r.append(ia)
                cap_c.append(ia)
            if ib >= 0:
                cap_r.append(ib)
                cap_c.append(ib)
            if ia >= 0 and ib >= 0:
                cap_r.extend((ia, ib))
                cap_c.extend((ib, ia))
        rows.append(np.asarray(cap_r, dtype=np.int64))
        cols.append(np.asarray(cap_c, dtype=np.int64))
        # Loop entries (custom Device subclasses, fault proxies): every
        # unknown-terminal pair can receive an FD Jacobian entry.
        loop_r: List[int] = []
        loop_c: List[int] = []
        if banks.loop is not None:
            for _, idxs, _ in banks.loop.entries:
                unk = [i for i in idxs if i >= 0]
                for i in unk:
                    for j in unk:
                        loop_r.append(i)
                        loop_c.append(j)
        rows.append(np.asarray(loop_r, dtype=np.int64))
        cols.append(np.asarray(loop_c, dtype=np.int64))

        rows_all = np.concatenate(rows)
        cols_all = np.concatenate(cols)
        # One-time bandwidth (RCM) permutation on the symmetrized
        # pattern, baked into the canonical coordinates.  It keeps the
        # canonical layout deterministic and cache-friendly; the
        # fill-reducing ordering for the factorization itself is COLAMD
        # inside splu (RCM alone fills in catastrophically at scale).
        ones = np.ones(rows_all.size)
        pattern = sp.coo_matrix((ones, (rows_all, cols_all)),
                                shape=(n, n)).tocsc()
        perm = np.asarray(
            reverse_cuthill_mckee(pattern + pattern.T, symmetric_mode=True),
            dtype=np.int64)
        invperm = np.empty(n, dtype=np.int64)
        invperm[perm] = np.arange(n, dtype=np.int64)
        self._perm = perm
        self._invperm = invperm
        # Canonical CSC order over permuted coordinates: flat key is
        # col * n + row so np.unique yields column-major sorted entries.
        flat_all = invperm[cols_all] * n + invperm[rows_all]
        uniq, inverse = np.unique(flat_all, return_inverse=True)
        self._uniq = uniq
        self.nnz = int(uniq.size)
        self._csc_rows = (uniq % n).astype(np.int32)
        counts = np.bincount(uniq // n, minlength=n)
        self._csc_indptr = np.zeros(n + 1, dtype=np.int32)
        np.cumsum(counts, out=self._csc_indptr[1:])
        # Slice the canonical positions back out per contributor.
        offset = 0
        self.diag_pos = inverse[offset:offset + n].copy()
        offset += n
        self._bank_pos = []
        for bank in banks.banks:
            size = bank.plan.j_flat.size
            self._bank_pos.append(inverse[offset:offset + size].copy())
            offset += size
        offset += len(cap_r)  # capacitor coords resolve via positions()
        self._loop_pos = []
        if banks.loop is not None:
            for _, idxs, _ in banks.loop.entries:
                unk = [i for i in idxs if i >= 0]
                posmat = [[-1] * len(idxs) for _ in idxs]
                k = offset
                for mi, i in enumerate(idxs):
                    if i < 0:
                        continue
                    for mj, j in enumerate(idxs):
                        if j < 0:
                            continue
                        posmat[mi][mj] = int(inverse[k])
                        k += 1
                offset += len(unk) * len(unk)
                self._loop_pos.append(posmat)

    # -- pattern queries -----------------------------------------------------

    def positions(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Canonical data positions of ``(rows, cols)`` coordinates.

        The coordinates must be part of the pattern (bank deposits,
        the diagonal, capacitor incidence, or loop-entry pairs) —
        anything else raises :class:`CircuitError` rather than silently
        scattering into the wrong entry.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        flat = self._invperm[cols] * self.n + self._invperm[rows]
        pos = np.searchsorted(self._uniq, flat)
        pos = np.minimum(pos, self.nnz - 1) if self.nnz else pos
        if self.nnz == 0 or not np.array_equal(self._uniq[pos], flat):
            raise CircuitError(
                "coordinates outside the sparse assembly pattern; the "
                "pattern is stale (rebuild the System's sparse assembly)")
        return pos

    def matrix(self, data: np.ndarray) -> sp.csc_matrix:
        """The permuted CSC matrix over one assembled data vector."""
        return sp.csc_matrix((data, self._csc_rows, self._csc_indptr),
                             shape=(self.n, self.n))

    # -- assembly ------------------------------------------------------------

    def accumulate(self, f: np.ndarray, data: Optional[np.ndarray],
                   volts_full: np.ndarray, x: np.ndarray,
                   fixed: Dict[str, float], h: float) -> None:
        """Deposit every device's residual (and Jacobian data) contribution.

        Mirrors :meth:`BankAssembly.accumulate` entry for entry: the
        residual deposits are the banks' own, the Jacobian deposits land
        in the canonical data vector through the precomputed positions.
        """
        for bank, jpos in zip(self.banks.banks, self._bank_pos):
            plan = bank.plan
            if data is None:
                plan.add_flows(f, bank.flows(volts_full))
                continue
            flows, derivs = bank.flows_and_derivs(volts_full, h)
            plan.add_flows(f, flows)
            if derivs is not None and jpos.size:
                flat = derivs.ravel()
                data += np.bincount(jpos,
                                    weights=plan.j_sgn * flat[plan.j_col],
                                    minlength=data.size)
        if self.banks.loop is not None:
            self._accumulate_loop(f, data, x, fixed, h)

    def _accumulate_loop(self, f: np.ndarray, data: Optional[np.ndarray],
                         x: np.ndarray, fixed: Dict[str, float],
                         h: float) -> None:
        """Reference per-device loop with sparse Jacobian positions."""
        loop = self.banks.loop
        for (device, idxs, names), posmat in zip(loop.entries,
                                                 self._loop_pos):
            volts = loop._volts(idxs, names, x, fixed)
            base = device.currents(volts)
            for k, i in enumerate(idxs):
                if i >= 0:
                    f[i] += base[k]
            if data is None:
                continue
            for k, j in enumerate(idxs):
                if j < 0:
                    continue
                volts_p = list(volts)
                volts_p[k] += h
                pert = device.currents(volts_p)
                for m, i in enumerate(idxs):
                    if i >= 0:
                        data[posmat[m][k]] += (pert[m] - base[m]) / h

    def accumulate_batch(self, f: np.ndarray, data: Optional[np.ndarray],
                         volts_full: np.ndarray, h: float,
                         params: Optional[list] = None) -> None:
        """Batched :meth:`accumulate`: ``f`` is ``(A, n)``, ``data`` is
        ``(A, nnz)`` lane-stacked data vectors.  Loop entries are not
        supported on the batch axis (the batch engine rejects them)."""
        for k, (bank, jpos) in enumerate(zip(self.banks.banks,
                                             self._bank_pos)):
            p = None if params is None else params[k]
            plan = bank.plan
            if data is None:
                plan.add_flows_batch(f, bank.flows(volts_full, p))
                continue
            flows, derivs = bank.flows_and_derivs(volts_full, h, p)
            plan.add_flows_batch(f, flows)
            if derivs is not None and jpos.size:
                nb = data.shape[0]
                flat = derivs.reshape(nb, -1)
                w = plan.j_sgn * flat[:, plan.j_col]
                rows = np.arange(nb)[:, None] * data.shape[1] + jpos
                data += np.bincount(rows.ravel(), weights=w.ravel(),
                                    minlength=data.size).reshape(data.shape)

    # -- solve ---------------------------------------------------------------

    def solve(self, data: np.ndarray,
              rhs: np.ndarray) -> Tuple[np.ndarray, int]:
        """Solve ``A dx = rhs`` for one assembled data vector.

        Returns ``(dx, singular_events)``.  A singular factorization
        retries once with the dense path's Tikhonov diagonal; if that is
        still singular, small systems densify into the dense path's
        exact lstsq fallback and large ones fail loudly.
        """
        try:
            lu = splu(self.matrix(data), permc_spec="COLAMD")
            return self._unpermute(lu.solve(rhs[self._perm])), 0
        except RuntimeError:
            # Exactly singular — the sparse analogue of LinAlgError; a
            # non-finite solution instead propagates to Newton's own
            # finiteness check, exactly like the dense path.
            pass
        data_reg = data.copy()
        data_reg[self.diag_pos] += _TIKHONOV
        try:
            lu = splu(self.matrix(data_reg), permc_spec="COLAMD")
            return self._unpermute(lu.solve(rhs[self._perm])), 1
        except RuntimeError:
            if self.n > _DENSE_LSTSQ_LIMIT:
                raise ConvergenceError(
                    f"sparse factorization is singular even with a "
                    f"Tikhonov diagonal ({self.n} unknowns; too large "
                    f"for the dense lstsq fallback)") from None
            dense = self.matrix(data_reg).toarray()
            y, *_ = np.linalg.lstsq(dense, rhs[self._perm], rcond=None)
            return self._unpermute(y), 1

    def solve_batch(self, datas: np.ndarray,
                    rhs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-lane :meth:`solve` over ``(A, nnz)`` data stacks.

        Returns ``(dx, singular_events)`` with shapes ``(A, n)`` /
        ``(A,)``.  Every lane shares the canonical pattern, so the
        one-time ordering amortises across the whole batch.
        """
        nb = datas.shape[0]
        dx = np.empty((nb, self.n))
        singular = np.zeros(nb, dtype=int)
        for a in range(nb):
            dx[a], singular[a] = self.solve(datas[a], rhs[a])
        return dx, singular

    def _unpermute(self, y: np.ndarray) -> np.ndarray:
        dx = np.empty_like(y)
        dx[self._perm] = y
        return dx
