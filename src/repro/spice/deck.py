"""SPICE deck export.

Writes a :class:`~repro.spice.Circuit` as a conventional ``.sp`` netlist
(devices, ``.MODEL`` cards for every MOSFET flavour present, sources,
and an optional ``.TRAN`` line), so generated cells can be inspected
with standard tools or re-simulated elsewhere.  The model cards carry
our EKV-ish parameters as comments plus a LEVEL=1 approximation —
the exported deck is for interchange and eyeballing, not bit-exact
re-simulation.
"""

from __future__ import annotations

from typing import Dict, Optional, TextIO

from ..errors import CircuitError
from .circuit import Circuit, GROUND
from .devices import Capacitor, ISource, Mosfet, Resistor
from .stimulus import DC, Pulse, PWL


def _node(name: str) -> str:
    return "0" if name == GROUND else name


def _stimulus_text(stimulus) -> str:
    if isinstance(stimulus, DC):
        return f"DC {stimulus.level:g}"
    if isinstance(stimulus, Pulse):
        return (f"PULSE({stimulus.v0:g} {stimulus.v1:g} {stimulus.delay:g} "
                f"{stimulus.rise:g} {stimulus.fall:g} {stimulus.width:g} "
                f"{stimulus.period:g})")
    if isinstance(stimulus, PWL):
        points = " ".join(f"{t:g} {v:g}" for t, v in stimulus.points)
        return f"PWL({points})"
    raise CircuitError(
        f"cannot export stimulus type {type(stimulus).__name__}")


def write_spice_deck(stream: TextIO, circuit: Circuit,
                     title: Optional[str] = None,
                     tran: Optional[Dict[str, float]] = None) -> None:
    """Serialise ``circuit`` as a SPICE deck.

    ``tran`` may carry ``{"tstep": ..., "tstop": ...}`` to emit a
    ``.TRAN`` card.
    """
    stream.write(f"* {title or circuit.name}\n")
    stream.write("* exported by repro (PG-MCML reproduction)\n\n")

    models: Dict[str, object] = {}
    r_idx = c_idx = m_idx = i_idx = 0
    for device in circuit.devices:
        if isinstance(device, Resistor):
            r_idx += 1
            a, b = device.terminals
            stream.write(f"R{r_idx}_{device.name} {_node(a)} {_node(b)} "
                         f"{device.resistance:g}\n")
        elif isinstance(device, Capacitor):
            c_idx += 1
            a, b = device.terminals
            stream.write(f"C{c_idx}_{device.name} {_node(a)} {_node(b)} "
                         f"{device.capacitance:g}\n")
        elif isinstance(device, ISource):
            i_idx += 1
            a, b = device.terminals
            stream.write(f"I{i_idx}_{device.name} {_node(a)} {_node(b)} "
                         f"DC {device.value:g}\n")
        elif isinstance(device, Mosfet):
            m_idx += 1
            model = device.model
            base = model.params.name.replace("~", "_").replace("@", "_")
            models.setdefault(base, model.params)
            d, g, s, b = device.terminals
            stream.write(
                f"M{m_idx}_{device.name} {_node(d)} {_node(g)} {_node(s)} "
                f"{_node(b)} {base} W={model.w:g} L={model.l:g}\n")
        else:
            raise CircuitError(
                f"cannot export device type {type(device).__name__}")

    stream.write("\n")
    for index, source in enumerate(circuit.vsources, start=1):
        stream.write(f"V{index}_{source.name} {_node(source.node)} 0 "
                     f"{_stimulus_text(source.stimulus)}\n")

    stream.write("\n")
    for name, params in sorted(models.items()):
        kind = "NMOS" if params.is_nmos else "PMOS"
        stream.write(
            f".MODEL {name} {kind} (LEVEL=1 VTO={params.vt0 * params.polarity:g} "
            f"KP={params.kp:g} LAMBDA={params.lam:g} GAMMA={params.gamma_b:g})\n")
        stream.write(f"* ekv: nsub={params.nsub:g} cox={params.cox:g} "
                     f"cj={params.cj:g} cov={params.cov:g}\n")

    if tran is not None:
        try:
            stream.write(f"\n.TRAN {tran['tstep']:g} {tran['tstop']:g}\n")
        except KeyError as exc:
            raise CircuitError(f"tran spec missing {exc}") from None
    stream.write("\n.END\n")
