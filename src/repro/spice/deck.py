"""SPICE deck export, interchange, and re-parsing.

Writes a :class:`~repro.spice.Circuit` as a conventional ``.sp`` netlist
(devices, ``.MODEL`` cards for every MOSFET flavour present, sources,
and optional analysis/output cards), so generated cells can be inspected
with standard tools or re-simulated elsewhere.  The model cards carry
our EKV-ish parameters as comments plus a LEVEL=1 approximation —
the exported deck is for interchange and cross-checking, not bit-exact
re-simulation.

Three layers live here:

* :func:`write_spice_deck` — a full standalone deck.  Returns a
  :class:`DeckInfo` manifest mapping circuit device/source names onto
  the emitted card names, which is what the external-simulator backend
  (:mod:`repro.spice.backend`) uses to map rawfile vectors back onto
  circuit objects.
* :func:`write_subckt` — a ``.SUBCKT`` wrapper for one circuit (the
  interchange idiom for exporting a cell into a foreign testbench).
* :func:`parse_spice_deck` — a deliberately strict re-parser for the
  subset this module emits.  Round-tripping every exported deck through
  it is the export test-suite's contract, and the fake-simulator tests
  use it to interpret decks without a real SPICE.

Export is strict about device types: only concrete
:class:`~repro.spice.devices.Resistor` / ``Capacitor`` / ``Mosfet`` /
``ISource`` instances have a faithful card representation.  Subclasses
(fault-injection proxies, behavioural overrides) and foreign devices
raise :class:`~repro.errors.CircuitError` listing every offender —
silently exporting a proxy as its pristine base class would hand an
external simulator a different circuit than the one we solve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

from ..errors import CircuitError
from .circuit import Circuit, GROUND
from .devices import Capacitor, ISource, Mosfet, Resistor
from .stimulus import DC, Pulse, PWL

#: Concrete device classes with a faithful card representation.
_EXPORTABLE = (Resistor, Capacitor, Mosfet, ISource)

_CARD_LETTER = {Resistor: "R", Capacitor: "C", Mosfet: "M", ISource: "I"}


def _node(name: str) -> str:
    return "0" if name == GROUND else name


def _ident(name: str) -> str:
    """Sanitise a repro identifier for use inside a SPICE card name."""
    return name.replace("~", "_").replace("@", "_")


def _stimulus_text(stimulus) -> str:
    if isinstance(stimulus, DC):
        return f"DC {stimulus.level:g}"
    if isinstance(stimulus, Pulse):
        return (f"PULSE({stimulus.v0:g} {stimulus.v1:g} {stimulus.delay:g} "
                f"{stimulus.rise:g} {stimulus.fall:g} {stimulus.width:g} "
                f"{stimulus.period:g})")
    if isinstance(stimulus, PWL):
        points = " ".join(f"{t:g} {v:g}" for t, v in stimulus.points)
        return f"PWL({points})"
    raise CircuitError(
        f"cannot export stimulus type {type(stimulus).__name__}",
        context={"stimulus": type(stimulus).__name__})


@dataclass
class DeckInfo:
    """Manifest of one deck export.

    Maps the circuit's own names onto the card names that landed in the
    deck, so external-simulator output (which is keyed by card name,
    e.g. ``i(v1_vdd)``) can be translated back onto circuit objects.
    SPICE is case-insensitive, so lookups should go through
    :meth:`source_for_vector`.
    """

    title: str = ""
    #: circuit device name -> emitted card name (e.g. ``M1_mn_tail``).
    device_cards: Dict[str, str] = field(default_factory=dict)
    #: circuit source name -> emitted card name (e.g. ``V1_vdd``).
    source_cards: Dict[str, str] = field(default_factory=dict)
    #: deck node names (ground folded to ``"0"``).
    nodes: List[str] = field(default_factory=list)
    #: emitted ``.MODEL`` names.
    models: List[str] = field(default_factory=list)
    #: emitted ``.SAVE`` vectors.
    saves: List[str] = field(default_factory=list)
    #: emitted analysis cards (``.OP`` / ``.TRAN ...``).
    analyses: List[str] = field(default_factory=list)

    def source_for_vector(self, vector: str) -> Optional[str]:
        """Circuit source name for a rawfile current vector.

        Accepts ``i(v1_vdd)``, ``v1_vdd#branch``, or a bare card name,
        case-insensitively; returns ``None`` for an unknown vector.
        """
        name = vector.strip().lower()
        if name.startswith("i(") and name.endswith(")"):
            name = name[2:-1]
        if name.endswith("#branch"):
            name = name[: -len("#branch")]
        for source, card in self.source_cards.items():
            if card.lower() == name:
                return source
        return None


def _check_exportable(circuit: Circuit) -> None:
    """Reject devices without a faithful card representation.

    Mirrors the :func:`_stimulus_text` contract: anything we cannot
    express exactly raises instead of being dropped or approximated.
    Exact-type matching deliberately rejects subclasses — a fault proxy
    or behavioural override subclassing :class:`Mosfet` would otherwise
    silently export as a pristine transistor (see
    :mod:`repro.spice.banks`, which routes the same classes through the
    reference loop for the same reason).
    """
    bad: List[Tuple[str, str, bool]] = []
    for device in circuit.devices:
        if type(device) not in _EXPORTABLE:
            proxy = isinstance(device, _EXPORTABLE)
            bad.append((device.name, type(device).__name__, proxy))
    if bad:
        shown = ", ".join(f"{name} ({typ})" for name, typ, _ in bad[:8])
        more = "" if len(bad) <= 8 else f" (+{len(bad) - 8} more)"
        hint = ""
        if any(proxy for *_, proxy in bad):
            hint = ("; device subclasses (fault proxies, behavioural "
                    "overrides) must be disarmed or swapped back before "
                    "export")
        raise CircuitError(
            f"cannot export device(s) of circuit {circuit.name!r}: "
            f"{shown}{more}{hint}",
            context={"circuit": circuit.name,
                     "devices": [name for name, _, _ in bad],
                     "types": sorted({typ for _, typ, _ in bad})})


def _check_node_case(circuit: Circuit) -> None:
    """SPICE is case-insensitive; two nodes differing only by case
    would silently merge in an external simulator."""
    by_fold: Dict[str, str] = {}
    for node in circuit.all_nodes():
        fold = node.lower()
        if fold in by_fold and by_fold[fold] != node:
            raise CircuitError(
                f"circuit {circuit.name!r} has nodes {by_fold[fold]!r} and "
                f"{node!r} that collide case-insensitively in SPICE",
                context={"circuit": circuit.name,
                         "nodes": [by_fold[fold], node]})
        by_fold[fold] = node


def _normalize_save(entry: str) -> str:
    """Turn a save spec into a SPICE vector: bare node names become
    ``v(node)``; ``all`` and explicit ``v(...)`` / ``i(...)`` pass
    through."""
    entry = entry.strip()
    if not entry:
        raise CircuitError("empty .save entry")
    low = entry.lower()
    if low == "all" or "(" in entry:
        return entry
    return f"v({_node(entry)})"


def _write_devices(stream: TextIO, circuit: Circuit,
                   info: DeckInfo) -> Dict[str, object]:
    """Emit one card per device; returns the models to declare."""
    models: Dict[str, object] = {}
    r_idx = c_idx = m_idx = i_idx = 0
    for device in circuit.devices:
        if type(device) is Resistor:
            r_idx += 1
            a, b = device.terminals
            card = f"R{r_idx}_{_ident(device.name)}"
            stream.write(f"{card} {_node(a)} {_node(b)} "
                         f"{device.resistance:g}\n")
        elif type(device) is Capacitor:
            c_idx += 1
            a, b = device.terminals
            card = f"C{c_idx}_{_ident(device.name)}"
            stream.write(f"{card} {_node(a)} {_node(b)} "
                         f"{device.capacitance:g}\n")
        elif type(device) is ISource:
            i_idx += 1
            a, b = device.terminals
            card = f"I{i_idx}_{_ident(device.name)}"
            stream.write(f"{card} {_node(a)} {_node(b)} "
                         f"DC {device.value:g}\n")
        else:  # Mosfet — _check_exportable already rejected the rest
            m_idx += 1
            model = device.model
            base = _ident(model.params.name)
            models.setdefault(base, model.params)
            d, g, s, b = device.terminals
            card = f"M{m_idx}_{_ident(device.name)}"
            stream.write(
                f"{card} {_node(d)} {_node(g)} {_node(s)} "
                f"{_node(b)} {base} W={model.w:g} L={model.l:g}\n")
        info.device_cards[device.name] = card
    return models


def _write_models(stream: TextIO, models: Dict[str, object],
                  info: DeckInfo) -> None:
    for name, params in sorted(models.items()):
        kind = "NMOS" if params.is_nmos else "PMOS"
        stream.write(
            f".MODEL {name} {kind} (LEVEL=1 VTO={params.vt0 * params.polarity:g} "
            f"KP={params.kp:g} LAMBDA={params.lam:g} GAMMA={params.gamma_b:g})\n")
        stream.write(f"* ekv: nsub={params.nsub:g} cox={params.cox:g} "
                     f"cj={params.cj:g} cov={params.cov:g}\n")
        info.models.append(name)


def write_spice_deck(stream: TextIO, circuit: Circuit,
                     title: Optional[str] = None,
                     tran: Optional[Dict[str, float]] = None,
                     op: bool = False,
                     dc_snapshot: Optional[float] = None,
                     save: Optional[Sequence[str]] = None,
                     print_vectors: Optional[Sequence[str]] = None,
                     options: Optional[Dict[str, object]] = None) -> DeckInfo:
    """Serialise ``circuit`` as a standalone SPICE deck.

    Parameters
    ----------
    tran:
        ``{"tstep": ..., "tstop": ...}`` to emit a ``.TRAN`` card.
    op:
        Emit a ``.OP`` card (DC operating-point analysis).
    dc_snapshot:
        When given, every source is frozen at its value at this time
        and emitted as a plain ``DC`` level — the backend's
        "operating point at t" export (external simulators have no
        notion of our ``solve_dc(t=...)``).
    save:
        ``.SAVE`` vectors; bare node names become ``v(node)``, ``all``
        and explicit ``v(...)`` / ``i(...)`` entries pass through.
    print_vectors:
        ``.PRINT TRAN`` vectors (requires ``tran``; the tabular-output
        sibling of ``.save`` for log-scraping workflows).
    options:
        ``.OPTIONS`` key/value pairs (value ``None`` emits a bare flag).

    Returns the :class:`DeckInfo` manifest of what was emitted.
    """
    _check_exportable(circuit)
    _check_node_case(circuit)
    info = DeckInfo(title=title or circuit.name)
    stream.write(f"* {info.title}\n")
    stream.write("* exported by repro (PG-MCML reproduction)\n\n")
    info.nodes = [_node(n) for n in circuit.all_nodes()]

    models = _write_devices(stream, circuit, info)

    stream.write("\n")
    for index, source in enumerate(circuit.vsources, start=1):
        card = f"V{index}_{_ident(source.name)}"
        if dc_snapshot is not None:
            text = f"DC {source.value(dc_snapshot):g}"
        else:
            text = _stimulus_text(source.stimulus)
        stream.write(f"{card} {_node(source.node)} 0 {text}\n")
        info.source_cards[source.name] = card

    stream.write("\n")
    _write_models(stream, models, info)

    if options:
        parts = []
        for key, value in options.items():
            parts.append(key if value is None else f"{key}={value}")
        stream.write(f"\n.OPTIONS {' '.join(parts)}\n")

    if save:
        vectors = [_normalize_save(entry) for entry in save]
        stream.write(f"\n.SAVE {' '.join(vectors)}\n")
        info.saves = vectors

    if print_vectors is not None:
        if tran is None:
            raise CircuitError(
                "print_vectors requires a tran analysis "
                "(.PRINT needs an analysis type)")
        vectors = [_normalize_save(entry) for entry in print_vectors]
        stream.write(f"\n.PRINT TRAN {' '.join(vectors)}\n")

    if op:
        stream.write("\n.OP\n")
        info.analyses.append(".OP")
    if tran is not None:
        try:
            card = f".TRAN {tran['tstep']:g} {tran['tstop']:g}"
        except KeyError as exc:
            raise CircuitError(f"tran spec missing {exc}") from None
        stream.write(f"\n{card}\n")
        info.analyses.append(card)
    stream.write("\n.END\n")
    return info


def write_subckt(stream: TextIO, circuit: Circuit, ports: Sequence[str],
                 name: Optional[str] = None,
                 include_models: bool = True) -> DeckInfo:
    """Emit ``circuit`` as a ``.SUBCKT`` definition.

    ``ports`` is the ordered terminal list of the subcircuit (supply,
    bias, input, and output nets — the SewIC ``cell1rw.sp`` idiom).
    Every port must be a node of the circuit; voltage sources are
    rejected because they belong to the instantiating testbench, not
    the cell.  Model cards are emitted after ``.ENDS`` (SPICE models
    are global) unless ``include_models`` is False — pass False when
    concatenating several subckts sharing flavours into one file.
    """
    _check_exportable(circuit)
    _check_node_case(circuit)
    if not ports:
        raise CircuitError(
            f"subckt export of {circuit.name!r} needs at least one port")
    if circuit.vsources:
        raise CircuitError(
            f"circuit {circuit.name!r} has voltage sources "
            f"({', '.join(s.name for s in circuit.vsources)}); a .SUBCKT "
            f"body must leave stimulus to the instantiating testbench",
            context={"circuit": circuit.name,
                     "sources": [s.name for s in circuit.vsources]})
    known = set(circuit.all_nodes())
    port_nodes = []
    bad = []
    for port in ports:
        if port in known:
            port_nodes.append(_node(port))
        else:
            bad.append(port)
    if bad:
        raise CircuitError(
            f"subckt ports {sorted(bad)} are not nodes of circuit "
            f"{circuit.name!r}",
            context={"circuit": circuit.name, "ports": sorted(bad)})
    if len(set(p.lower() for p in port_nodes)) != len(port_nodes):
        raise CircuitError(
            f"subckt ports of {circuit.name!r} repeat: {list(ports)}")

    subname = _ident(name or circuit.name)
    info = DeckInfo(title=subname)
    info.nodes = [_node(n) for n in circuit.all_nodes()]
    stream.write(f"* subckt export of {circuit.name}\n")
    stream.write(f".SUBCKT {subname} {' '.join(port_nodes)}\n")
    models = _write_devices(stream, circuit, info)
    stream.write(f".ENDS {subname}\n")
    if include_models:
        stream.write("\n")
        _write_models(stream, models, info)
    return info


# -- re-parsing ---------------------------------------------------------------


@dataclass
class ParsedCard:
    """One device card: letter, emitted name, nodes, trailing fields."""

    letter: str
    name: str
    nodes: List[str]
    fields: List[str]
    params: Dict[str, float] = field(default_factory=dict)


@dataclass
class ParsedSource:
    """One V-source card."""

    name: str
    node: str
    kind: str  # "DC" | "PULSE" | "PWL"
    values: List[float]


@dataclass
class ParsedDeck:
    """Structured view of a deck this module emitted.

    The parser is strict on purpose: it understands exactly the subset
    :func:`write_spice_deck` / :func:`write_subckt` produce, and raises
    :class:`CircuitError` on anything else — it exists to prove decks
    round-trip, not to read arbitrary SPICE.
    """

    title: str = ""
    devices: List[ParsedCard] = field(default_factory=list)
    sources: List[ParsedSource] = field(default_factory=list)
    models: Dict[str, Tuple[str, Dict[str, float]]] = field(
        default_factory=dict)
    saves: List[str] = field(default_factory=list)
    prints: List[Tuple[str, List[str]]] = field(default_factory=list)
    options: Dict[str, str] = field(default_factory=dict)
    tran: Optional[Tuple[float, float]] = None
    op: bool = False
    subckts: Dict[str, "ParsedDeck"] = field(default_factory=dict)
    subckt_ports: Dict[str, List[str]] = field(default_factory=dict)
    ended: bool = False

    def nodes(self) -> List[str]:
        """Every node named by a device or source card."""
        seen = {}
        for card in self.devices:
            for node in card.nodes:
                seen[node] = True
        for source in self.sources:
            seen[source.node] = True
        return sorted(seen)

    def device(self, suffix: str) -> ParsedCard:
        """The unique device card whose name ends with ``_<suffix>``."""
        matches = [c for c in self.devices
                   if c.name.lower().endswith("_" + suffix.lower())]
        if len(matches) != 1:
            raise CircuitError(
                f"expected exactly one card matching {suffix!r}, found "
                f"{[c.name for c in matches]}")
        return matches[0]


_MODEL_KINDS = ("NMOS", "PMOS")

_DEVICE_NODE_COUNT = {"R": 2, "C": 2, "I": 2, "M": 4}


def _parse_float(token: str, what: str) -> float:
    try:
        return float(token)
    except ValueError:
        raise CircuitError(f"{what}: not a number: {token!r}") from None


def _parse_paren_values(text: str, what: str) -> List[float]:
    if not text.endswith(")"):
        raise CircuitError(f"{what}: unterminated value list: {text!r}")
    inner = text[text.index("(") + 1:-1]
    return [_parse_float(tok, what) for tok in inner.split()]


def _parse_source_line(tokens: List[str], line: str) -> ParsedSource:
    if len(tokens) < 4:
        raise CircuitError(f"malformed source card: {line!r}")
    name, node, ref = tokens[0], tokens[1], tokens[2]
    if ref != "0":
        raise CircuitError(
            f"source {name!r} must reference ground (got {ref!r})")
    rest = " ".join(tokens[3:])
    upper = rest.upper()
    if upper.startswith("DC"):
        return ParsedSource(name, node, "DC",
                            [_parse_float(rest.split()[1], name)])
    if upper.startswith("PULSE("):
        return ParsedSource(name, node, "PULSE",
                            _parse_paren_values(rest, name))
    if upper.startswith("PWL("):
        return ParsedSource(name, node, "PWL",
                            _parse_paren_values(rest, name))
    raise CircuitError(f"source {name!r}: unknown stimulus {rest!r}")


def _parse_model_line(tokens: List[str], line: str):
    if len(tokens) < 3:
        raise CircuitError(f"malformed .MODEL card: {line!r}")
    name, kind = tokens[1], tokens[2].upper()
    if kind not in _MODEL_KINDS:
        raise CircuitError(f"model {name!r}: unknown kind {kind!r}")
    blob = " ".join(tokens[3:]).strip()
    params: Dict[str, float] = {}
    if blob:
        if not (blob.startswith("(") and blob.endswith(")")):
            raise CircuitError(f"model {name!r}: unparenthesised params")
        for pair in blob[1:-1].split():
            if "=" not in pair:
                raise CircuitError(
                    f"model {name!r}: malformed param {pair!r}")
            key, value = pair.split("=", 1)
            params[key.upper()] = _parse_float(value, f"model {name}")
    return name, kind, params


def _parse_device_line(tokens: List[str], line: str) -> ParsedCard:
    letter = tokens[0][0].upper()
    count = _DEVICE_NODE_COUNT[letter]
    if len(tokens) < 1 + count + 1:
        raise CircuitError(f"malformed {letter} card: {line!r}")
    nodes = tokens[1:1 + count]
    rest = tokens[1 + count:]
    card = ParsedCard(letter=letter, name=tokens[0], nodes=nodes,
                      fields=rest)
    for token in rest:
        if "=" in token:
            key, value = token.split("=", 1)
            card.params[key.upper()] = _parse_float(
                value, f"card {tokens[0]}")
    return card


def parse_spice_deck(text: str) -> ParsedDeck:
    """Parse a deck emitted by this module back into structured cards.

    Raises :class:`CircuitError` on any card outside the emitted
    subset, on a missing ``.END``, or on malformed numbers — the
    round-trip must be loud, exactly like the export side.
    """
    deck = ParsedDeck()
    target = deck
    lines: List[str] = []
    for raw in text.splitlines():
        line = raw.rstrip()
        if not line.strip() or line.lstrip().startswith("*"):
            continue
        if line.lstrip().startswith("+"):
            if not lines:
                raise CircuitError(
                    f"continuation line with nothing to continue: {line!r}")
            lines[-1] += " " + line.lstrip()[1:].strip()
        else:
            lines.append(line.strip())

    for line in lines:
        tokens = line.split()
        head = tokens[0].upper()
        if head.startswith(".SUBCKT"):
            if len(tokens) < 3:
                raise CircuitError(f"malformed .SUBCKT: {line!r}")
            sub = ParsedDeck(title=tokens[1])
            deck.subckts[tokens[1]] = sub
            deck.subckt_ports[tokens[1]] = tokens[2:]
            target = sub
            continue
        if head.startswith(".ENDS"):
            if target is deck:
                raise CircuitError(".ENDS outside a .SUBCKT")
            target = deck
            continue
        if head == ".END":
            deck.ended = True
            continue
        if head == ".MODEL":
            name, kind, params = _parse_model_line(tokens, line)
            deck.models[name] = (kind, params)
            continue
        if head == ".OPTIONS":
            for token in tokens[1:]:
                if "=" in token:
                    key, value = token.split("=", 1)
                    deck.options[key] = value
                else:
                    deck.options[token] = ""
            continue
        if head == ".SAVE":
            deck.saves.extend(tokens[1:])
            continue
        if head == ".PRINT":
            if len(tokens) < 3:
                raise CircuitError(f"malformed .PRINT: {line!r}")
            deck.prints.append((tokens[1].upper(), tokens[2:]))
            continue
        if head == ".OP":
            deck.op = True
            continue
        if head == ".TRAN":
            if len(tokens) != 3:
                raise CircuitError(f"malformed .TRAN: {line!r}")
            deck.tran = (_parse_float(tokens[1], ".TRAN"),
                         _parse_float(tokens[2], ".TRAN"))
            continue
        if head.startswith("."):
            raise CircuitError(f"unsupported control card: {line!r}")
        letter = head[0]
        if letter == "V":
            target.sources.append(_parse_source_line(tokens, line))
        elif letter in _DEVICE_NODE_COUNT:
            target.devices.append(_parse_device_line(tokens, line))
        else:
            raise CircuitError(f"unrecognised card: {line!r}")
    return deck
