"""The netlist container.

A :class:`Circuit` owns devices and grounded voltage sources.  Nodes are
plain strings created implicitly by the devices that touch them; ``"0"``
(alias ``"gnd"``) is ground.  Nodes driven by a :class:`VSource` are
*fixed*: the solvers treat them as known voltages, and the current each
source delivers is recovered from KCL after the solve.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import CircuitError
from ..tech.params import MosParams, VT_THERMAL
from .devices import (
    Capacitor,
    Device,
    ISource,
    Mosfet,
    Resistor,
    VSource,
)
from .mosfet import MosfetModel

GROUND = "0"
_GROUND_ALIASES = {"0", "gnd", "gnd!", "vss", "vss!"}


def canonical_node(name: str) -> str:
    """Map ground aliases onto the canonical ground name."""
    if not name:
        raise CircuitError("empty node name")
    if name.lower() in _GROUND_ALIASES:
        return GROUND
    return name


class Circuit:
    """A flat transistor-level netlist."""

    def __init__(self, name: str = "circuit"):
        self.name = name
        self.devices: List[Device] = []
        self.vsources: List[VSource] = []
        self._device_names: Dict[str, Device] = {}
        self._driven_nodes: Dict[str, VSource] = {}

    # -- construction --------------------------------------------------------

    def add(self, device: Device) -> Device:
        """Add a pre-built device, normalising its node names."""
        if device.name in self._device_names:
            raise CircuitError(f"duplicate device name {device.name!r}")
        device.terminals = tuple(canonical_node(n) for n in device.terminals)
        self._device_names[device.name] = device
        self.devices.append(device)
        return device

    def v(self, name: str, node: str, stimulus) -> VSource:
        """Add a grounded voltage source driving ``node``."""
        node = canonical_node(node)
        if node == GROUND:
            raise CircuitError("cannot drive the ground node with a source")
        if node in self._driven_nodes:
            raise CircuitError(f"node {node!r} already driven by "
                               f"{self._driven_nodes[node].name!r}")
        if name in self._device_names or any(s.name == name for s in self.vsources):
            raise CircuitError(f"duplicate source name {name!r}")
        source = VSource(name, node, stimulus)
        self.vsources.append(source)
        self._driven_nodes[node] = source
        return source

    def resistor(self, name: str, a: str, b: str, resistance: float) -> Resistor:
        return self.add(Resistor(name, a, b, resistance))  # type: ignore[return-value]

    def capacitor(self, name: str, a: str, b: str, capacitance: float) -> Capacitor:
        return self.add(Capacitor(name, a, b, capacitance))  # type: ignore[return-value]

    def isource(self, name: str, a: str, b: str, value: float) -> ISource:
        return self.add(ISource(name, a, b, value))  # type: ignore[return-value]

    def mosfet(self, name: str, d: str, g: str, s: str, b: str,
               params: MosParams, w: float, l: float,
               temp_vt: float = VT_THERMAL) -> Mosfet:
        model = MosfetModel(params, w, l, temp_vt)
        return self.add(Mosfet(name, d, g, s, b, model))  # type: ignore[return-value]

    # -- topology queries ----------------------------------------------------

    def device(self, name: str) -> Device:
        try:
            return self._device_names[name]
        except KeyError:
            raise CircuitError(f"no device named {name!r}") from None

    def source_for(self, node: str) -> Optional[VSource]:
        return self._driven_nodes.get(canonical_node(node))

    def swap_device(self, name: str, replacement: Device) -> Device:
        """Replace the named device in place, returning the original.

        The replacement must expose the same terminals in the same
        order — node indexing built by solvers stays valid.  Used by
        the fault-injection harness (:mod:`repro.faultinject`) and model
        overrides.
        """
        old = self.device(name)
        if tuple(replacement.terminals) != tuple(old.terminals):
            raise CircuitError(
                f"replacement for {name!r} must keep terminals "
                f"{old.terminals}, got {replacement.terminals}")
        self.devices[self.devices.index(old)] = replacement
        self._device_names[name] = replacement
        return old

    def all_nodes(self) -> List[str]:
        """Every node touched by a device or source (ground included)."""
        nodes = {GROUND}
        for device in self.devices:
            nodes.update(device.terminals)
        for source in self.vsources:
            nodes.add(source.node)
        return sorted(nodes)

    def fixed_nodes(self, t: float = 0.0) -> Dict[str, float]:
        """Ground plus every source-driven node, with values at time ``t``."""
        fixed = {GROUND: 0.0}
        for source in self.vsources:
            fixed[source.node] = source.value(t)
        return fixed

    def unknown_nodes(self) -> List[str]:
        fixed = set(self.fixed_nodes())
        return [n for n in self.all_nodes() if n not in fixed]

    def linear_capacitances(self) -> List[Tuple[str, str, float]]:
        """All linear capacitances (explicit caps + device parasitics)."""
        caps: List[Tuple[str, str, float]] = []
        for device in self.devices:
            for a, b, c in device.capacitances():
                if c > 0.0 and a != b:
                    caps.append((canonical_node(a), canonical_node(b), c))
        return caps

    def validate(self) -> None:
        """Sanity-check the netlist; raises :class:`CircuitError`."""
        if not self.devices:
            raise CircuitError(f"circuit {self.name!r} has no devices")
        driven = set(self.fixed_nodes())
        floating: List[str] = []
        touch_count: Dict[str, int] = {}
        for device in self.devices:
            for node in device.terminals:
                touch_count[node] = touch_count.get(node, 0) + 1
        for node, count in touch_count.items():
            if node in driven:
                continue
            if count < 2:
                floating.append(node)
        if floating:
            raise CircuitError(
                f"circuit {self.name!r} has single-connection floating "
                f"nodes: {sorted(floating)}")

    def stimulus_breakpoints(self) -> List[float]:
        """Union of all source breakpoints (for step placement)."""
        points: List[float] = []
        for source in self.vsources:
            points.extend(source.stimulus.breakpoints())
        return sorted(set(points))

    def __repr__(self) -> str:
        return (f"Circuit({self.name!r}: {len(self.devices)} devices, "
                f"{len(self.vsources)} sources, "
                f"{len(self.all_nodes())} nodes)")
