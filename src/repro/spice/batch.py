"""Lockstep batched transient analysis across independent circuits.

A CPA/TVLA campaign re-solves the *same* topology thousands of times
with only the stimulus (and possibly device parameters) differing.  This
module extends the device banks (:mod:`repro.spice.banks`) with a batch
axis: B circuits sharing one topology are evaluated as ``(B, M)`` device
stacks, their residuals and Jacobians assembled into ``(B, n)`` /
``(B, n, n)`` stacks, and every Newton iteration factors all lanes with
a single batched :func:`numpy.linalg.solve`.

Lockstep semantics
------------------

The serial engine (:func:`~repro.spice.transient.run_transient`) is the
normative oracle — the batched engine reproduces its *per-lane* control
flow exactly and only shares the dispatch:

* Newton iterations carry a per-lane convergence mask: a converged lane
  freezes (its iterate never moves again) while the rest keep stepping,
  so each lane walks the same damped-Newton trajectory it would walk
  alone.
* Step-halving state is per lane: a lane that rejects a step subdivides
  its own pending stack without affecting its batch mates.
* :class:`~repro.spice.recovery.SolveBudget` accounting is per lane
  (per-lane :class:`~repro.spice.transient.TransientStats` counted
  against the shared limits).
* A lane that fails — Newton divergence, budget exhaustion, anything —
  *falls out of the batch* and is retried serially with the full
  recovery ladder at the end of the run, instead of poisoning the other
  lanes.  Only if the serial retry also fails does the error propagate,
  which makes batched failure semantics identical to serial ones.

Whole-batch serial fallback (with a ``spice.batch.fallback`` telemetry
event) happens when the batch axis cannot apply at all: un-banked custom
device classes (fault-injection proxies), an ``on_step`` hook,
``REPRO_SPICE_ASSEMBLY=loop``, no unknowns, or lanes whose topologies
do not actually match.

The batch size used by acquisition comes from the ``batch=`` knob on
:class:`~repro.sca.acquisition.TraceAcquirer` /
:class:`~repro.sca.acquisition.AcquisitionPool`, defaulting to the
``REPRO_SPICE_BATCH`` environment variable (see
:func:`batch_size_from_env`); ``python -m repro --spice-batch N`` sets
the same variable.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import BudgetExhaustedError, CircuitError, ConvergenceError
from ..obs import NULL_TELEMETRY
from .banks import FD_STEP
from .circuit import Circuit, canonical_node
from .dc import _ASSEMBLY_ENV, _DAMP_LIMIT, OperatingPoint, System, \
    _initial_guess, solve_dc
from .recovery import _ATTEMPT_MAXITER, SolveBudget
from .transient import TransientResult, TransientStats, _CompanionCaps, \
    _ringing_mask, _time_grid, run_transient

#: Environment override for the default acquisition batch size.
BATCH_ENV = "REPRO_SPICE_BATCH"


def batch_size_from_env(default: Optional[int] = None) -> Optional[int]:
    """The ``REPRO_SPICE_BATCH`` batch size, or ``default`` when unset.

    ``1`` (and ``None``) mean the serial engine; larger values select the
    lockstep batched engine for that many traces per solve.
    """
    raw = os.environ.get(BATCH_ENV, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise CircuitError(
            f"cannot parse {BATCH_ENV}={raw!r}: expected a positive integer",
            context={"env": BATCH_ENV, "value": raw}) from None
    if value < 1:
        raise CircuitError(
            f"{BATCH_ENV} must be >= 1, got {value}",
            context={"env": BATCH_ENV, "value": raw})
    return value


class BatchSystem:
    """Bank-indexed view of B circuits sharing one topology.

    The first circuit is the *template*: its :class:`System` supplies the
    node indices, scatter plans, and packed-voltage layout for every
    lane.  Construction validates that all lanes really are the same
    topology (device classes and terminals, node sets, source names,
    stimulus breakpoints) and harvests per-lane device parameters, which
    are collapsed back to the template's shared vectors when no lane
    differs (the common case — only the stimulus varies).
    """

    def __init__(self, circuits: Sequence[Circuit], telemetry=None,
                 assembly: Optional[str] = None):
        if not circuits:
            raise CircuitError("BatchSystem needs at least one circuit")
        self.circuits = list(circuits)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        if assembly is None:
            # "loop" never reaches here (run_transient_batch falls back
            # to the serial engine first); a direct caller gets "bank".
            env = os.environ.get(_ASSEMBLY_ENV, "bank")
            assembly = "sparse" if env == "sparse" else "bank"
        if assembly not in ("bank", "sparse"):
            raise CircuitError(
                f"batch assembly must be 'bank' or 'sparse', got "
                f"{assembly!r}; the loop assembly runs serially")
        self.system = System(self.circuits[0], telemetry=self.telemetry,
                             assembly=assembly)
        self._validate_lockstep()
        self.banks = self.system.bank_assembly()
        if self.banks.loop is not None:
            kinds = sorted({type(d).__name__
                            for d, _, _ in self.banks.loop.entries})
            raise CircuitError(
                f"batch assembly does not support un-banked device classes "
                f"{kinds}; run these circuits serially",
                context={"classes": kinds})
        self.params = self._harvest_params()

    # -- construction --------------------------------------------------------

    def _validate_lockstep(self) -> None:
        tpl = self.circuits[0]
        tpl_devs = [(type(d), tuple(d.terminals)) for d in tpl.devices]
        tpl_unknowns = tpl.unknown_nodes()
        tpl_fixed = list(tpl.fixed_nodes())
        tpl_sources = [(s.name, s.node) for s in tpl.vsources]
        tpl_breaks = tuple(tpl.stimulus_breakpoints())
        tpl_caps = [(a, b) for a, b, _ in tpl.linear_capacitances()]
        for i, ckt in enumerate(self.circuits[1:], start=1):
            ckt.validate()
            lane_devs = [(type(d), tuple(d.terminals)) for d in ckt.devices]
            if lane_devs != tpl_devs:
                raise CircuitError(
                    f"batch lane {i} ({ckt.name!r}) differs from the "
                    f"template topology: device classes/terminals do not "
                    f"match", context={"lane": i})
            if ckt.unknown_nodes() != tpl_unknowns \
                    or list(ckt.fixed_nodes()) != tpl_fixed:
                raise CircuitError(
                    f"batch lane {i} ({ckt.name!r}) has a different node "
                    f"partition than the template", context={"lane": i})
            if [(s.name, s.node) for s in ckt.vsources] != tpl_sources:
                raise CircuitError(
                    f"batch lane {i} ({ckt.name!r}) has different sources "
                    f"than the template", context={"lane": i})
            if tuple(ckt.stimulus_breakpoints()) != tpl_breaks:
                raise CircuitError(
                    f"batch lane {i} ({ckt.name!r}) has different stimulus "
                    f"breakpoints than the template; lockstep marching "
                    f"needs one shared time grid", context={"lane": i})
            if [(a, b) for a, b, _ in ckt.linear_capacitances()] != tpl_caps:
                raise CircuitError(
                    f"batch lane {i} ({ckt.name!r}) has different "
                    f"capacitor connectivity than the template",
                    context={"lane": i})

    def _harvest_params(self) -> Optional[list]:
        """Per-bank parameter stacks, or ``None`` when all lanes match."""
        per_lane = [self.banks.lane_params(ckt) for ckt in self.circuits]
        stacked, any_differ = [], False
        for k in range(len(self.banks.banks)):
            cols = [lane[k] for lane in per_lane]
            if isinstance(cols[0], tuple):
                parts = []
                for j in range(len(cols[0])):
                    vals = [c[j] for c in cols]
                    if all(np.array_equal(v, vals[0]) for v in vals[1:]):
                        parts.append(vals[0])
                    else:
                        parts.append(np.stack(vals))
                        any_differ = True
                stacked.append(tuple(parts))
            else:
                if all(np.array_equal(c, cols[0]) for c in cols[1:]):
                    stacked.append(cols[0])
                else:
                    stacked.append(np.stack(cols))
                    any_differ = True
        return stacked if any_differ else None

    def params_for(self, lane_ids: np.ndarray) -> Optional[list]:
        """The per-bank parameter view for a subset of lanes."""
        if self.params is None:
            return None
        out = []
        for p in self.params:
            if isinstance(p, tuple):
                out.append(tuple(q if q.ndim == 1 else q[lane_ids]
                                 for q in p))
            else:
                out.append(p if p.ndim == 1 else p[lane_ids])
        return out

    # -- assembly ------------------------------------------------------------

    def residual_and_jacobian_batch(self, xs: np.ndarray, tails: np.ndarray,
                                    gmin: float, lane_ids: np.ndarray,
                                    with_jac: bool = True):
        """Stacked KCL residuals (and Jacobians) for a subset of lanes.

        ``xs`` is ``(A, n)``, ``tails`` is ``(A, F)``; returns
        ``((A, n), (A, n, n))``.
        """
        n = self.system.n
        volts_full = np.concatenate([xs, tails], axis=1)
        f = np.zeros((xs.shape[0], n))
        if self.system.assembly == "sparse":
            sp_asm = self.system.sparse_assembly()
            data = np.zeros((xs.shape[0], sp_asm.nnz)) if with_jac else None
            sp_asm.accumulate_batch(f, data, volts_full, FD_STEP,
                                    self.params_for(lane_ids))
            if gmin > 0.0:
                f += gmin * xs
                if data is not None:
                    data[:, sp_asm.diag_pos] += gmin
            return f, data
        jac = np.zeros((xs.shape[0], n, n)) if with_jac else None
        self.banks.accumulate_batch(f, jac, volts_full, FD_STEP,
                                    self.params_for(lane_ids))
        if gmin > 0.0:
            f += gmin * xs
            if jac is not None:
                jac[:, np.arange(n), np.arange(n)] += gmin
        return f, jac

    def fixed_totals_batch(self, xs: np.ndarray, tails: np.ndarray,
                           lane_ids: np.ndarray) -> np.ndarray:
        """Per-source device currents, ``(A, F)``."""
        volts_full = np.concatenate([xs, tails], axis=1)
        return self.banks.fixed_totals_batch(volts_full,
                                             self.params_for(lane_ids))

    # -- lockstep Newton -----------------------------------------------------

    def newton_batch(self, tails: np.ndarray, x0s: np.ndarray,
                     gmin: float, lane_ids: np.ndarray, extra=None,
                     abstol: float = 1e-11, steptol: float = 1e-8,
                     maxiter: int = _ATTEMPT_MAXITER):
        """Damped Newton over all lanes at once with per-lane freezing.

        Mirrors :meth:`System.newton` lane for lane: per-lane damping,
        per-lane rail clipping, the same convergence test — but every
        iteration assembles and factors the still-active lanes together.
        A lane whose residual or update goes non-finite is marked failed
        and frozen (serial raises there; the batch equivalent is falling
        out).  Returns ``(xs, converged, iters, resid, singular)``.
        """
        nb, n = x0s.shape
        converged = np.zeros(nb, bool)
        failed = np.zeros(nb, bool)
        iters = np.zeros(nb, int)
        resid = np.full(nb, np.inf)
        singular = np.zeros(nb, int)
        xs = x0s.copy()
        if n == 0:
            converged[:] = True
            resid[:] = 0.0
            return xs, converged, iters, resid, singular
        if tails.shape[1]:
            vmax = np.maximum(tails.max(axis=1), 0.0) + 1.0
            vmin = np.minimum(tails.min(axis=1), 0.0) - 1.0
        else:
            vmax = np.full(nb, 1.0)
            vmin = np.full(nb, -1.0)
        tele = self.telemetry
        for iteration in range(maxiter):
            idx = np.flatnonzero(~converged & ~failed)
            if idx.size == 0:
                break
            tele.counter("spice.batch.lockstep_iterations").inc()
            f, jac = self.residual_and_jacobian_batch(xs[idx], tails[idx],
                                                      gmin, lane_ids[idx])
            if extra is not None:
                f_extra, j_extra = extra(xs[idx], idx)
                f = f + f_extra
                jac = jac + j_extra
            res = np.abs(f).max(axis=1)
            iters[idx] = iteration + 1
            resid[idx] = res
            bad = ~np.isfinite(res)
            if bad.any():
                # A NaN/Inf residual can never recover (serial fails
                # fast there); freeze those lanes and keep the rest.
                failed[idx[bad]] = True
                good = ~bad
                idx, f, jac, res = idx[good], f[good], jac[good], res[good]
                if idx.size == 0:
                    continue
            if self.system.assembly == "sparse":
                # Per-lane splu over the shared canonical pattern: the
                # one-time ordering amortises across lanes and steps.
                dx, sing = self.system.sparse_assembly().solve_batch(
                    jac, -f)
                if sing.any():
                    singular[idx] += sing
                    self.system.singular_jacobian_events += int(sing.sum())
            else:
                try:
                    dx = np.linalg.solve(jac, -f[..., None])[..., 0]
                except np.linalg.LinAlgError:
                    # One singular lane poisons the stacked factorization:
                    # redo lane by lane with the serial solver's exact
                    # Tikhonov-lstsq fallback so healthy lanes stay on the
                    # fast path next iteration.
                    dx = np.empty_like(f)
                    for a in range(idx.size):
                        try:
                            dx[a] = np.linalg.solve(jac[a], -f[a])
                        except np.linalg.LinAlgError:
                            singular[idx[a]] += 1
                            self.system.singular_jacobian_events += 1
                            jac_reg = jac[a].copy()
                            jac_reg.flat[::n + 1] += 1e-12
                            dx[a], *_ = np.linalg.lstsq(jac_reg, -f[a],
                                                        rcond=None)
            bad = ~np.all(np.isfinite(dx), axis=1)
            if bad.any():
                failed[idx[bad]] = True
                good = ~bad
                idx, dx, res = idx[good], dx[good], res[good]
                if idx.size == 0:
                    continue
            step = np.abs(dx).max(axis=1)
            over = step > _DAMP_LIMIT
            if over.any():
                dx[over] *= (_DAMP_LIMIT / step[over])[:, None]
                step[over] = _DAMP_LIMIT
            xs[idx] = np.minimum(np.maximum(xs[idx] + dx,
                                            vmin[idx, None]),
                                 vmax[idx, None])
            converged[idx] = (res < abstol) & (step < steptol)
        tele.counter("spice.batch.lockstep_solves").inc()
        return xs, converged, iters, resid, singular


class _BatchCaps:
    """Per-lane capacitor companion state over one shared incidence.

    The template's :class:`~repro.spice.transient._CompanionCaps` supplies
    the entry list and packed indices; this class stacks the per-lane
    capacitance values and trapezoidal history currents ``(B, E)`` and
    precomputes dense deposit operators so a whole batch's companion
    residual and Jacobian are two matmuls.
    """

    def __init__(self, system: System, circuits: Sequence[Circuit]):
        tpl = _CompanionCaps(system, circuits[0])
        self.entries = tpl.entries
        self.ja, self.jb = tpl.ja, tpl.jb
        self._s_extra = tpl._s_extra            # (n, E) residual incidence
        n = system.n
        e = len(self.entries)
        self._sparse = system.assembly == "sparse"
        if self._s_extra is None:
            # Sparse mode skips the serial (n, E) incidence at full-core
            # scale; batch lanes are per-trace testbenches, where it is
            # affordable and keeps the batched residual a single dgemm.
            self._s_extra = np.zeros((n, e))
            for k, (ia, _, ib, _, _) in enumerate(self.entries):
                if ia >= 0:
                    self._s_extra[ia, k] += 1.0
                if ib >= 0:
                    self._s_extra[ib, k] -= 1.0
        if self._sparse:
            self._sp_pos = tpl._sparse_positions()
            self._sp_ua, self._sp_ub = tpl._ua, tpl._ub
            self._sp_both = tpl._both
            self._nnz = system.sparse_assembly().nnz
        cvecs = []
        for ckt in circuits:
            vals = [c for a, b, c in ckt.linear_capacitances()
                    if system.index.get(a, -1) >= 0
                    or system.index.get(b, -1) >= 0]
            cvecs.append(np.array(vals) if vals else np.zeros(0))
        self.cvec = cvecs[0] if all(np.array_equal(v, cvecs[0])
                                    for v in cvecs[1:]) else np.stack(cvecs)
        # Jacobian incidence (n*n, E): geq @ s_jac.T stamps all lanes.
        # In sparse mode the stamps land in (A, nnz) data stacks through
        # the canonical positions instead.
        self._s_jac = None
        if not self._sparse:
            self._s_jac = np.zeros((n * n, e))
            for k, (ia, _, ib, _, _) in enumerate(self.entries):
                if ia >= 0:
                    self._s_jac[ia * n + ia, k] += 1.0
                if ib >= 0:
                    self._s_jac[ib * n + ib, k] += 1.0
                if ia >= 0 and ib >= 0:
                    self._s_jac[ia * n + ib, k] -= 1.0
                    self._s_jac[ib * n + ia, k] -= 1.0
        # Fixed-node incidence (F, E) for source-current snapshots.
        nf = len(system.fixed_pos)
        self._s_fixed = np.zeros((nf, e))
        for k, (ia, na, ib, nb, _) in enumerate(self.entries):
            if ia < 0 and na in system.fixed_pos:
                self._s_fixed[system.fixed_pos[na], k] += 1.0
            if ib < 0 and nb in system.fixed_pos:
                self._s_fixed[system.fixed_pos[nb], k] -= 1.0
        self.i_prev = np.zeros((len(circuits), e))
        self.n = n

    def lane_cvec(self, lane_ids: np.ndarray) -> np.ndarray:
        return self.cvec if self.cvec.ndim == 1 else self.cvec[lane_ids]

    def v_diff(self, xs: np.ndarray, tails: np.ndarray) -> np.ndarray:
        """Per-entry voltage across each capacitor, ``(A, E)``."""
        v = np.concatenate([xs, tails], axis=1)
        return v[:, self.ja] - v[:, self.jb]

    def geq(self, factors: np.ndarray, dts: np.ndarray,
            lane_ids: np.ndarray) -> np.ndarray:
        """Companion conductances ``factor * c / dt``, ``(A, E)``."""
        return (factors[:, None] * self.lane_cvec(lane_ids)) / dts[:, None]

    def make_extra(self, xs_prev: np.ndarray, tails_prev: np.ndarray,
                   tails_now: np.ndarray, dts: np.ndarray,
                   factors: np.ndarray, lane_ids: np.ndarray):
        """Batched Newton ``extra`` for one lockstep step.

        ``factors`` is 1.0 (BE) or 2.0 (trap) per lane; the returned
        closure takes the active-subset iterate plus its index into the
        round's lane arrays.
        """
        a, n = xs_prev.shape[0], self.n
        if not self.entries:
            if self._sparse:
                return lambda xs, sel: (np.zeros((xs.shape[0], n)),
                                        np.zeros((xs.shape[0], self._nnz)))
            return lambda xs, sel: (np.zeros((xs.shape[0], n)),
                                    np.zeros((xs.shape[0], n, n)))
        v_prev = self.v_diff(xs_prev, tails_prev)
        i_prev = self.i_prev[lane_ids]
        geq = self.geq(factors, dts, lane_ids)
        if self._sparse:
            w = np.concatenate([geq[:, self._sp_ua], geq[:, self._sp_ub],
                                -geq[:, self._sp_both],
                                -geq[:, self._sp_both]], axis=1)
            rows = np.arange(a)[:, None] * self._nnz + self._sp_pos
            jac = np.bincount(rows.ravel(), weights=w.ravel(),
                              minlength=a * self._nnz).reshape(a, self._nnz)
        else:
            jac = (geq @ self._s_jac.T).reshape(a, n, n)
        trap = factors == 2.0
        ja, jb = self.ja, self.jb
        s_extra_t = self._s_extra.T

        def extra(xs: np.ndarray, sel: np.ndarray):
            v = np.concatenate([xs, tails_now[sel]], axis=1)
            i_now = geq[sel] * ((v[:, ja] - v[:, jb]) - v_prev[sel])
            i_now = np.where(trap[sel, None], i_now - i_prev[sel], i_now)
            return i_now @ s_extra_t, jac[sel]

        return extra

    def step_currents(self, xs: np.ndarray, tails_now: np.ndarray,
                      xs_prev: np.ndarray, tails_prev: np.ndarray,
                      dts: np.ndarray, factors: np.ndarray,
                      lane_ids: np.ndarray) -> np.ndarray:
        """Candidate companion currents of an accepted step, ``(A, E)``.

        Pure (like the serial ``step_currents``): reads the trapezoidal
        history, never writes it.
        """
        if not self.entries:
            return np.zeros((xs.shape[0], 0))
        geq = self.geq(factors, dts, lane_ids)
        i_new = geq * (self.v_diff(xs, tails_now)
                       - self.v_diff(xs_prev, tails_prev))
        trap = factors == 2.0
        return np.where(trap[:, None], i_new - self.i_prev[lane_ids], i_new)

    def commit_currents(self, lane_ids: np.ndarray,
                        i_new: np.ndarray) -> None:
        """Store accepted currents; exactly once per accepted lane step."""
        self.i_prev[lane_ids] = i_new

    def fixed_totals(self) -> np.ndarray:
        """Capacitor current drawn out of each fixed node, ``(B, F)``."""
        return self.i_prev @ self._s_fixed.T


class _Lane:
    """Marching state of one batch lane (mirrors the serial locals)."""

    __slots__ = ("idx", "circuit", "x", "fixed", "tail", "t_cur", "pending",
                 "min_sub", "interval_retried", "fallback", "redo", "failed",
                 "stats", "round_method", "round_t_next", "round_sub",
                 "round_fixed", "round_tail")

    def __init__(self, idx: int, circuit: Circuit, stats: TransientStats):
        self.idx = idx
        self.circuit = circuit
        self.x: Optional[np.ndarray] = None
        self.fixed: Dict[str, float] = {}
        self.tail: Optional[np.ndarray] = None
        self.t_cur = 0.0
        self.pending: List[float] = []
        self.min_sub = 0.0
        self.interval_retried = False
        self.fallback = False           # BE fallback pending at min step
        self.redo = None                # (x_trap, i_cand) awaiting BE redo
        self.failed: Optional[str] = None
        self.stats = stats


def run_transient_batch(circuits: Sequence[Circuit], tstop: float, dt: float,
                        record: Optional[Sequence[str]] = None,
                        method: str = "be",
                        ics: Optional[Sequence[OperatingPoint]] = None,
                        max_step_halvings: int = 8,
                        be_fallback: bool = True,
                        detect_ringing: bool = False,
                        on_step=None,
                        telemetry=None,
                        budget: Optional[SolveBudget] = None,
                        ) -> List[TransientResult]:
    """Simulate B same-topology circuits in lockstep; serial-equivalent.

    Parameters match :func:`~repro.spice.transient.run_transient` with a
    list of circuits (and optionally a list of initial operating points)
    in place of one.  Returns one :class:`TransientResult` per lane, in
    input order, equal to the serial engine's output to batched-BLAS
    rounding (≤1e-12; see ``tests/test_spice_batch.py``).

    Falls back to per-lane serial runs — with a ``spice.batch.fallback``
    telemetry event — whenever the batch axis cannot apply: un-banked
    custom device classes, an ``on_step`` hook, mismatched topologies,
    ``REPRO_SPICE_ASSEMBLY=loop``, or a circuit with no unknowns.  A
    lane that fails mid-flight falls out of the batch and is retried
    serially (``spice.batch.lane_isolated`` event); its error propagates
    only if the serial retry fails too.
    """
    circuits = list(circuits)
    if not circuits:
        return []
    tele = telemetry if telemetry is not None else NULL_TELEMETRY
    budget = budget if budget is not None else SolveBudget.from_env()

    def serial_all(reason: str) -> List[TransientResult]:
        tele.counter("spice.batch.serial_fallbacks").inc()
        tele.event("spice.batch.fallback", reason=reason,
                   lanes=len(circuits))
        return [run_transient(ckt, tstop, dt, record=record, method=method,
                              ic=None if ics is None else ics[i],
                              max_step_halvings=max_step_halvings,
                              be_fallback=be_fallback,
                              detect_ringing=detect_ringing,
                              on_step=on_step, telemetry=telemetry,
                              budget=budget)
                for i, ckt in enumerate(circuits)]

    if on_step is not None:
        return serial_all("on_step-hook")
    if os.environ.get(_ASSEMBLY_ENV, "bank") == "loop":
        return serial_all("assembly=loop")
    if ics is not None and len(ics) != len(circuits):
        raise CircuitError(
            f"ics has {len(ics)} entries for {len(circuits)} circuits")
    try:
        bs = BatchSystem(circuits, telemetry=tele)
    except CircuitError as err:
        return serial_all(f"unbatchable: {err.args[0][:120]}")
    if bs.system.n == 0:
        return serial_all("no-unknowns")
    if tstop <= 0.0 or dt <= 0.0:
        raise CircuitError("tstop and dt must be positive")
    if method not in ("be", "trap"):
        raise CircuitError(f"unknown integration method {method!r}")
    if max_step_halvings < 0:
        raise CircuitError("max_step_halvings must be >= 0")

    nb = len(circuits)
    system = bs.system
    with tele.span("spice.transient.batch_run", circuit=circuits[0].name,
                   lanes=nb, tstop=tstop, dt=dt, method=method) as span:
        tele.counter("spice.batch.runs").inc()
        tele.counter("spice.batch.lanes").inc(nb)
        results = _march(bs, tstop, dt, record, method, ics,
                         max_step_halvings, be_fallback, detect_ringing,
                         tele, budget)
        failed = [i for i, r in enumerate(results) if r is None]
        span.set("lane_retries", len(failed))
        for i in failed:
            tele.counter("spice.batch.lane_retries").inc()
            tele.event("spice.batch.lane_isolated", lane=i,
                       circuit=circuits[i].name)
            # Serial retry with the full recovery ladder: the serial
            # path is normative, so whatever it produces — result or
            # error — is the lane's outcome.
            results[i] = run_transient(
                circuits[i], tstop, dt, record=record, method=method,
                ic=None if ics is None else ics[i],
                max_step_halvings=max_step_halvings,
                be_fallback=be_fallback, detect_ringing=detect_ringing,
                telemetry=telemetry, budget=budget)
    return results


def _march(bs: BatchSystem, tstop: float, dt: float,
           record: Optional[Sequence[str]], method: str,
           ics: Optional[Sequence[OperatingPoint]], max_step_halvings: int,
           be_fallback: bool, detect_ringing: bool, tele,
           budget: SolveBudget) -> List[Optional[TransientResult]]:
    """Lockstep marching core; ``None`` marks a lane needing serial retry."""
    system = bs.system
    circuits = bs.circuits
    nb = len(circuits)
    n = system.n

    template = circuits[0]
    if record is not None:
        known = set(template.all_nodes())
        record_nodes = list(dict.fromkeys(record))
        canon_of = {node: canonical_node(node) for node in record_nodes}
        bad = sorted(node for node, canon in canon_of.items()
                     if canon not in known)
        if bad:
            raise CircuitError(
                f"record names {bad} are not nodes of circuit "
                f"{template.name!r}; known nodes: {sorted(known)}")
    else:
        record_nodes = template.all_nodes()
        canon_of = {node: node for node in record_nodes}
    grid = _time_grid(tstop, dt, template.stimulus_breakpoints())

    lanes = [_Lane(i, ckt, TransientStats(grid_points=len(grid)))
             for i, ckt in enumerate(circuits)]
    all_ids = np.arange(nb)

    # -- initial operating points (batched plain Newton, serial ladder
    # for the stragglers — the ladder is exactly what serial would run).
    fixed0 = [ckt.fixed_nodes(0.0) for ckt in circuits]
    tails0 = np.stack([system.fixed_tail(f) for f in fixed0])
    if ics is not None:
        xs = np.stack([
            np.array([op.voltages[u] for u in system.unknowns])
            for op in ics])
    else:
        if budget.max_ladder_attempts is not None \
                and budget.max_ladder_attempts < 1:
            return [None] * nb  # serial raises before its first rung
        x0s = np.stack([_initial_guess(system, f) for f in fixed0])
        maxiter0 = _ATTEMPT_MAXITER
        if budget.max_newton_iterations is not None:
            maxiter0 = min(maxiter0, budget.max_newton_iterations)
        xs, converged, _, _, _ = bs.newton_batch(tails0, x0s, 0.0, all_ids,
                                                 maxiter=maxiter0)
        for i in np.flatnonzero(~converged):
            try:
                op = solve_dc(circuits[i], t=0.0, budget=budget)
            except ConvergenceError:
                lanes[i].failed = "dc"
                continue
            xs[i] = [op.voltages[u] for u in system.unknowns]

    caps = _BatchCaps(system, circuits)
    for lane, f0, t0 in zip(lanes, fixed0, tails0):
        lane.x = xs[lane.idx].copy()
        lane.fixed = f0
        lane.tail = t0

    fixed_names = list(fixed0[0])
    src_pos = {s.name: system.fixed_pos[s.node] for s in template.vsources}
    rec_unknown = {node: system.index[c] for node, c in canon_of.items()
                   if c in system.index}
    rec_fixed = {node: system.fixed_pos[c] for node, c in canon_of.items()
                 if c not in system.index}

    snap_x: List[np.ndarray] = []
    snap_tail: List[np.ndarray] = []
    snap_src: List[np.ndarray] = []

    def snapshot() -> None:
        xs_now = np.stack([lane.x for lane in lanes])
        tails_now = np.stack([lane.tail for lane in lanes])
        dev = bs.fixed_totals_batch(xs_now, tails_now, all_ids)
        totals = dev + caps.fixed_totals()
        snap_x.append(xs_now)
        snap_tail.append(tails_now)
        snap_src.append(totals)

    snapshot()
    for gi in range(1, len(grid)):
        t0, t1 = float(grid[gi - 1]), float(grid[gi])
        live = [lane for lane in lanes if lane.failed is None]
        if not live:
            break
        for lane in live:
            lane.pending = [t1]
            lane.t_cur = t0
            lane.min_sub = (t1 - t0) / (2 ** max_step_halvings)
            lane.interval_retried = False
            lane.fallback = False
            lane.redo = None
        while True:
            round_lanes = [lane for lane in live
                           if lane.failed is None and lane.pending]
            if not round_lanes:
                break
            _lockstep_round(bs, caps, round_lanes, method, be_fallback,
                            detect_ringing, max_step_halvings, budget, tele)
        snapshot()

    # -- per-lane results ----------------------------------------------------
    x_series = np.stack(snap_x)          # (T, B, n)
    tail_series = np.stack(snap_tail)    # (T, B, F)
    src_series = np.stack(snap_src)      # (T, B, F)
    results: List[Optional[TransientResult]] = []
    for lane in lanes:
        if lane.failed is not None:
            results.append(None)
            continue
        i = lane.idx
        voltages = {}
        for node in record_nodes:
            if node in rec_unknown:
                voltages[node] = x_series[:, i, rec_unknown[node]].copy()
            else:
                voltages[node] = tail_series[:, i, rec_fixed[node]].copy()
        currents = {name: src_series[:, i, pos].copy()
                    for name, pos in src_pos.items()}
        results.append(TransientResult(grid, voltages, currents,
                                       stats=lane.stats))
    return results


def _lockstep_round(bs: BatchSystem, caps: _BatchCaps,
                    round_lanes: List[_Lane], method: str, be_fallback: bool,
                    detect_ringing: bool, max_step_halvings: int,
                    budget: SolveBudget, tele) -> None:
    """One batched solve round: each unfinished lane attempts its next
    substep, then accepts / halves / falls back exactly as serial would."""
    system = bs.system
    for lane in round_lanes:
        lane.round_t_next = lane.pending[-1]
        lane.round_sub = lane.round_t_next - lane.t_cur
        lane.round_fixed = lane.circuit.fixed_nodes(lane.round_t_next)
        lane.round_tail = system.fixed_tail(lane.round_fixed)
        lane.round_method = "be" if (method == "be" or lane.fallback
                                     or lane.redo is not None) else "trap"

    lane_ids = np.array([lane.idx for lane in round_lanes])
    xs_prev = np.stack([lane.x for lane in round_lanes])
    tails_prev = np.stack([lane.tail for lane in round_lanes])
    tails_next = np.stack([lane.round_tail for lane in round_lanes])
    dts = np.array([lane.round_sub for lane in round_lanes])
    factors = np.array([1.0 if lane.round_method == "be" else 2.0
                        for lane in round_lanes])

    extra = caps.make_extra(xs_prev, tails_prev, tails_next, dts, factors,
                            lane_ids)
    xs_new, converged, iters, resid, _ = bs.newton_batch(
        tails_next, xs_prev, 0.0, lane_ids, extra=extra)

    # Candidate companion currents for every converged lane in one call.
    i_cand = caps.step_currents(xs_new, tails_next, xs_prev, tails_prev,
                                dts, factors, lane_ids)
    ringing = np.zeros(len(round_lanes), bool)
    if detect_ringing and i_cand.shape[1]:
        i_old = caps.i_prev[lane_ids]
        ringing = np.any(_ringing_mask(i_cand, i_old), axis=-1)

    for a, lane in enumerate(round_lanes):
        stats = lane.stats
        if not converged[a]:
            if lane.redo is not None:
                # BE redo of a ringing trap step failed: keep the
                # converged trap solution (serial does the same).
                x_trap, i_trap = lane.redo
                lane.redo = None
                caps.commit_currents(np.array([lane.idx]), i_trap[None, :])
                _accept(lane, x_trap, budget, tele)
                continue
            if lane.fallback:
                # The BE fallback itself failed: serial raises here.
                lane.failed = "be-fallback"
                tele.counter("spice.batch.lane_failures").inc()
                continue
            stats.newton_failures += 1
            if budget.max_transient_rejections is not None \
                    and stats.newton_failures \
                    > budget.max_transient_rejections:
                lane.failed = "budget:max_transient_rejections"
                tele.counter("spice.batch.lane_failures").inc()
                continue
            if not lane.interval_retried:
                lane.interval_retried = True
                stats.retried_intervals += 1
            if lane.round_sub / 2.0 >= lane.min_sub * (1.0 - 1e-12):
                stats.halvings += 1
                lane.pending.append(lane.t_cur + lane.round_sub / 2.0)
                stats.max_subdivision_depth = max(
                    stats.max_subdivision_depth, len(lane.pending))
            elif method == "trap" and be_fallback:
                lane.fallback = True
            else:
                lane.failed = "newton"
                tele.counter("spice.batch.lane_failures").inc()
            continue
        # Converged.
        if lane.redo is not None:
            # This round WAS the BE redo: commit its currents, accept.
            lane.redo = None
            stats.ringing_fallback_steps += 1
            caps.commit_currents(np.array([lane.idx]), i_cand[a][None, :])
            _accept(lane, xs_new[a], budget, tele)
            continue
        if ringing[a] and lane.round_method == "trap":
            # Converged trap step rings: stash it and redo with BE next
            # round (the serial engine solves the BE redo inline; the
            # inputs are identical so the trajectory is too).
            lane.redo = (xs_new[a].copy(), i_cand[a].copy())
            continue
        if lane.fallback:
            lane.fallback = False
            stats.be_fallback_steps += 1
        caps.commit_currents(np.array([lane.idx]), i_cand[a][None, :])
        _accept(lane, xs_new[a], budget, tele)


def _accept(lane: _Lane, x_new: np.ndarray, budget: SolveBudget,
            tele) -> None:
    """Commit one lane's accepted substep (serial's post-solve block)."""
    lane.pending.pop()
    lane.t_cur = lane.round_t_next
    lane.x = np.asarray(x_new).copy()
    lane.fixed = lane.round_fixed
    lane.tail = lane.round_tail
    lane.stats.steps_taken += 1
    if budget.max_transient_steps is not None \
            and lane.stats.steps_taken > budget.max_transient_steps:
        lane.failed = "budget:max_transient_steps"
        tele.counter("spice.batch.lane_failures").inc()
