"""Smooth EKV-style MOSFET model.

The model interpolates continuously between the subthreshold exponential
and the square-law strong-inversion regimes using the classic EKV
interpolation function ``F(x) = ln(1 + exp(x/2))**2``:

    ids = Ispec * (F(xf) - F(xr)) * (1 + lambda * vds)

    Ispec = 2 * n * kp * (W/L) * Ut**2
    vp    = (vgb - vt_eff) / n          (pinch-off voltage)
    xf    = (vp - vsb) / Ut             (forward normalised voltage)
    xr    = (vp - vdb) / Ut             (reverse normalised voltage)

with the threshold adjusted for body effect,
``vt_eff = vt0 + gamma*(sqrt(phi + vsb) - sqrt(phi))``.

This captures every first-order effect the paper relies on:

* a tail transistor in saturation delivers a bias current set by Vn and
  (W/L), nearly independent of the drain voltage (constant-current MCML
  operation);
* a PMOS load biased in triode behaves as a tunable resistor set by Vp;
* subthreshold conduction decays exponentially below Vt with slope
  ``n·Ut·ln10`` per decade, so a high-Vt sleep transistor with negative
  VGS reduces sleep-mode leakage by orders of magnitude (§4: topology (d)
  gives the sleep device negative VGS during power-down);
* body bias modulates the threshold (topology (c) of Fig. 2).

PMOS devices are evaluated by polarity mirroring of the NMOS equations.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import DeviceError
from ..tech.params import MosParams, VT_THERMAL

#: Surface potential used by the body-effect expression, volts.
BULK_PHI = 0.7

#: Floor for the body-effect square root argument (forward-bias clamp).
_PHI_FLOOR = 0.05


def softplus(x: float) -> float:
    """Numerically stable ``ln(1 + exp(x))``."""
    if x > 35.0:
        return x
    if x < -35.0:
        return math.exp(x)
    return math.log1p(math.exp(x))


def ekv_interp(x: float) -> float:
    """EKV interpolation function ``ln(1 + exp(x/2))**2``."""
    s = softplus(0.5 * x)
    return s * s


def softplus_vec(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`softplus` with the same branch structure.

    The clamp keeps ``exp`` from overflowing on entries the branches
    replace anyway, so the piecewise result matches the scalar function
    branch for branch.
    """
    clipped = np.minimum(np.maximum(x, -35.0), 35.0)
    mid = np.log1p(np.exp(clipped))
    out = np.where(x > 35.0, x, mid)
    return np.where(x < -35.0, np.exp(np.minimum(x, 0.0)), out)


def ekv_interp_vec(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`ekv_interp` over a device-axis array."""
    s = softplus_vec(0.5 * x)
    return s * s


def batched_ids(vd, vg, vs, vb, sign, vt0, gamma_b, vp_den, ispec, ut,
                lam) -> np.ndarray:
    """Drain currents of a whole MOSFET bank in one vectorized call.

    All arguments are arrays over the device axis: terminal voltages in
    the :class:`~repro.spice.devices.Mosfet` convention plus the
    per-device parameter vectors from :meth:`MosfetModel.bank_params`.
    PMOS devices are mirrored through ``sign = -1`` exactly as the
    scalar :meth:`MosfetModel.ids` does, so the arithmetic (and hence
    the Newton trajectory built on it) follows the scalar model
    operation for operation.
    """
    # sign is exactly +-1.0, so sign*(a-b) == sign*a - sign*b bit for
    # bit; folding the mirror into the differences saves dispatches.
    vgb = (vg - vb) * sign
    vsb = (vs - vb) * sign
    vdb = (vd - vb) * sign
    vds = (vd - vs) * sign
    arg = np.maximum(BULK_PHI + vsb, _PHI_FLOOR)
    vt_eff = vt0 + gamma_b * (np.sqrt(arg) - math.sqrt(BULK_PHI))
    vp = (vgb - vt_eff) * vp_den
    xf = (vp - vsb) / ut
    xr = (vp - vdb) / ut
    both = np.empty((2,) + np.shape(xf))
    both[0] = xf
    both[1] = xr
    interp = ekv_interp_vec(both)
    current = ispec * (interp[0] - interp[1])
    current = current * (1.0 + lam * vds)
    return sign * current


def batched_currents_and_derivs(volts: np.ndarray, h: float, sign, vt0,
                                gamma_b, vp_den, ispec, ut, lam):
    """Channel currents and forward-difference partials for a bank.

    ``volts`` is ``(..., M, 4)`` in terminal order ``(d, g, s, b)`` —
    ``(M, 4)`` for a single circuit, ``(B, M, 4)`` for a batch of B
    circuits sharing one topology.  Returns ``(ids, derivs)`` with
    ``derivs[..., k] = d(ids)/d(v_k)`` computed by the same forward
    difference (step ``h``) the reference per-device loop uses.  The
    base point and the four perturbed points are stacked on a leading
    axis and evaluated in a *single* :func:`batched_ids` call — for
    cell-sized banks the cost is ufunc dispatch, not floating point, so
    one call over ``(5, ..., M)`` beats five calls over ``(..., M)``.
    """
    key = (h, volts.ndim)
    try:
        pert = _PERT_CACHE[key]
    except KeyError:
        pert = np.zeros((5,) + (1,) * (volts.ndim - 1) + (4,))
        for k in range(4):
            pert[(k + 1,) + (0,) * (volts.ndim - 1) + (k,)] = h
        _PERT_CACHE[key] = pert
    stacked = volts + pert  # (5, ..., M, 4): base + one step per terminal
    ids = batched_ids(stacked[..., 0], stacked[..., 1], stacked[..., 2],
                      stacked[..., 3], sign, vt0, gamma_b, vp_den, ispec,
                      ut, lam)
    base = ids[0]
    derivs = np.moveaxis((ids[1:] - base) / h, 0, -1)
    return base, derivs


#: (5, 1, ..., 4) perturbation tensors keyed by (FD step, volts.ndim)
#: (see :func:`batched_currents_and_derivs`).
_PERT_CACHE: dict = {}


class MosfetModel:
    """A sized instance of a MOSFET flavour.

    Parameters
    ----------
    params:
        The flavour (possibly corner-shifted or mismatch-sampled).
    w, l:
        Channel width and length, metres.
    temp_vt:
        Thermal voltage, volts (defaults to 300 K).
    """

    __slots__ = ("params", "w", "l", "ut", "ispec", "_vp_den")

    def __init__(self, params: MosParams, w: float, l: float,
                 temp_vt: float = VT_THERMAL):
        if w < params.wmin * 0.999:
            raise DeviceError(
                f"width {w:.3g} below minimum {params.wmin:.3g} for {params.name}")
        if l < params.lmin * 0.999:
            raise DeviceError(
                f"length {l:.3g} below minimum {params.lmin:.3g} for {params.name}")
        self.params = params
        self.w = float(w)
        self.l = float(l)
        self.ut = float(temp_vt)
        self.ispec = 2.0 * params.nsub * params.kp * (w / l) * self.ut ** 2
        self._vp_den = 1.0 / params.nsub

    # -- threshold ----------------------------------------------------------

    def vt_eff(self, vsb: float) -> float:
        """Body-effect-adjusted threshold magnitude for source-bulk bias."""
        p = self.params
        arg = max(BULK_PHI + vsb, _PHI_FLOOR)
        return p.vt0 + p.gamma_b * (math.sqrt(arg) - math.sqrt(BULK_PHI))

    # -- current ------------------------------------------------------------

    def ids(self, vg: float, vd: float, vs: float, vb: float = 0.0) -> float:
        """Drain-to-source channel current.

        Sign convention: positive current flows *into* the drain terminal
        and *out of* the source terminal.  For a PMOS device conducting
        normally (source high), the returned value is negative.
        """
        if self.params.is_nmos:
            return self._core(vg, vd, vs, vb)
        return -self._core(-vg, -vd, -vs, -vb)

    def _core(self, vg: float, vd: float, vs: float, vb: float) -> float:
        """NMOS-convention EKV current."""
        vgb = vg - vb
        vsb = vs - vb
        vdb = vd - vb
        vt_eff = self.vt_eff(vsb)
        vp = (vgb - vt_eff) * self._vp_den
        xf = (vp - vsb) / self.ut
        xr = (vp - vdb) / self.ut
        current = self.ispec * (ekv_interp(xf) - ekv_interp(xr))
        # Channel-length modulation on the net current; smooth everywhere
        # and negligible for the small |vds| excursions of MCML internals.
        current *= 1.0 + self.params.lam * (vd - vs)
        return current

    # -- bank evaluation ------------------------------------------------------

    def bank_params(self) -> dict:
        """Scalar parameters for the batched bank path, keyed like the
        keyword arguments of :func:`batched_ids`."""
        p = self.params
        return {
            "sign": 1.0 if p.is_nmos else -1.0,
            "vt0": p.vt0,
            "gamma_b": p.gamma_b,
            "vp_den": self._vp_den,
            "ispec": self.ispec,
            "ut": self.ut,
            "lam": p.lam,
        }

    # -- small-signal conveniences (used by bias solvers and tests) ---------

    def gm(self, vg: float, vd: float, vs: float, vb: float = 0.0,
           h: float = 1e-6) -> float:
        """Transconductance dIds/dVg by central difference."""
        return (self.ids(vg + h, vd, vs, vb) - self.ids(vg - h, vd, vs, vb)) / (2 * h)

    def gds(self, vg: float, vd: float, vs: float, vb: float = 0.0,
            h: float = 1e-6) -> float:
        """Output conductance dIds/dVd by central difference."""
        return (self.ids(vg, vd + h, vs, vb) - self.ids(vg, vd - h, vs, vb)) / (2 * h)

    # -- capacitances ---------------------------------------------------------

    @property
    def cgs(self) -> float:
        """Gate-source capacitance (2/3 channel + overlap), farads."""
        p = self.params
        return (2.0 / 3.0) * p.cox * self.w * self.l + p.cov * self.w

    @property
    def cgd(self) -> float:
        """Gate-drain overlap capacitance, farads."""
        return self.params.cov * self.w

    @property
    def cdb(self) -> float:
        """Drain-bulk junction capacitance, farads."""
        return self.params.cj * self.w

    @property
    def csb(self) -> float:
        """Source-bulk junction capacitance, farads."""
        return self.params.cj * self.w

    @property
    def cin(self) -> float:
        """Total gate input capacitance (for fanout loading), farads."""
        p = self.params
        return p.cox * self.w * self.l + 2.0 * p.cov * self.w

    def __repr__(self) -> str:
        return (f"MosfetModel({self.params.name}, W={self.w * 1e6:.3g}u, "
                f"L={self.l * 1e6:.3g}u)")
