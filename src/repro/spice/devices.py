"""Circuit devices.

Every conductive device implements a uniform interface:

* ``terminals`` — ordered node names;
* ``currents(volts)`` — given the terminal voltages (same order), return
  the current flowing *out of each node into the device*.  The entries of
  a conservative device sum to zero.
* ``capacitances()`` — linear capacitances contributed by the device as
  ``(node_a, node_b, farads)`` triples; the transient engine turns these
  into companion models.

The Newton solver differentiates ``currents`` by finite differences, so
devices only need to provide well-behaved current equations.

``currents`` is the *extensibility* interface, not the hot path: the
default assembly evaluates exact :class:`Mosfet` / :class:`Resistor` /
:class:`ISource` instances in vectorized class banks
(:mod:`repro.spice.banks`) that reproduce this method's arithmetic
device for device.  Subclasses that override ``currents`` are detected
by concrete type and automatically routed through the reference
per-device loop instead, so overriding it remains safe.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import DeviceError
from .mosfet import MosfetModel
from .stimulus import DC, Stimulus

CapTriple = Tuple[str, str, float]


class Device:
    """Base class for conductive devices."""

    def __init__(self, name: str, terminals: Sequence[str]):
        if not name:
            raise DeviceError("device needs a non-empty name")
        self.name = name
        self.terminals: Tuple[str, ...] = tuple(terminals)

    def currents(self, volts: Sequence[float]) -> List[float]:
        raise NotImplementedError

    def capacitances(self) -> List[CapTriple]:
        return []

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name}: {','.join(self.terminals)})"


class Resistor(Device):
    """A linear resistor between two nodes."""

    def __init__(self, name: str, a: str, b: str, resistance: float):
        super().__init__(name, (a, b))
        if resistance <= 0.0:
            raise DeviceError(f"resistor {name}: resistance must be positive")
        self.resistance = float(resistance)

    def currents(self, volts: Sequence[float]) -> List[float]:
        i = (volts[0] - volts[1]) / self.resistance
        return [i, -i]


class Capacitor(Device):
    """A linear capacitor; open at DC, companion-modelled in transient."""

    def __init__(self, name: str, a: str, b: str, capacitance: float):
        super().__init__(name, (a, b))
        if capacitance < 0.0:
            raise DeviceError(f"capacitor {name}: capacitance must be >= 0")
        self.capacitance = float(capacitance)

    def currents(self, volts: Sequence[float]) -> List[float]:
        return [0.0, 0.0]

    def capacitances(self) -> List[CapTriple]:
        return [(self.terminals[0], self.terminals[1], self.capacitance)]


class ISource(Device):
    """Ideal current source driving ``value`` amperes from node a to node b."""

    def __init__(self, name: str, a: str, b: str, value: float):
        super().__init__(name, (a, b))
        self.value = float(value)

    def currents(self, volts: Sequence[float]) -> List[float]:
        return [self.value, -self.value]


class VSource:
    """A grounded ideal voltage source pinning one node to a stimulus.

    The solver treats driven nodes as known voltages, which keeps the
    system purely nodal.  All supplies, inputs, and bias voltages in the
    reproduction are node-to-ground, so floating sources are not needed.
    """

    def __init__(self, name: str, node: str, stimulus):
        if not name:
            raise DeviceError("voltage source needs a name")
        if isinstance(stimulus, (int, float)):
            stimulus = DC(float(stimulus))
        if not isinstance(stimulus, Stimulus):
            raise DeviceError(
                f"vsource {name}: stimulus must be a Stimulus or number")
        self.name = name
        self.node = node
        self.stimulus = stimulus

    def value(self, t: float) -> float:
        return self.stimulus.value(t)

    def __repr__(self) -> str:
        return f"VSource({self.name}: {self.node} <- {self.stimulus!r})"


class Mosfet(Device):
    """A four-terminal MOSFET (drain, gate, source, bulk)."""

    def __init__(self, name: str, d: str, g: str, s: str, b: str,
                 model: MosfetModel):
        super().__init__(name, (d, g, s, b))
        self.model = model

    @property
    def drain(self) -> str:
        return self.terminals[0]

    @property
    def gate(self) -> str:
        return self.terminals[1]

    @property
    def source(self) -> str:
        return self.terminals[2]

    @property
    def bulk(self) -> str:
        return self.terminals[3]

    def currents(self, volts: Sequence[float]) -> List[float]:
        vd, vg, vs, vb = volts
        ids = self.model.ids(vg, vd, vs, vb)
        return [ids, 0.0, -ids, 0.0]

    def capacitances(self) -> List[CapTriple]:
        d, g, s, b = self.terminals
        m = self.model
        return [
            (g, s, m.cgs),
            (g, d, m.cgd),
            (d, b, m.cdb),
            (s, b, m.csb),
        ]
