"""The processor simulator.

A functional, cycle-counting model: one cycle per instruction (loads and
stores included — the OR1200's tightly-coupled memories behave this
way), big-endian memory, r0 hard-wired to zero, no delay slots.

What the power experiments need from this model is the *activity
timeline* of the custom functional unit: which cycles executed
``l.sbox`` and what operands it saw.  :class:`ExecutionStats` captures
exactly that, yielding the ISE duty factor of §6 (0.01 % in the paper's
benchmark) and the operand stream that drives the transistor-level
power simulation of Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..aes.sbox import SBOX
from ..errors import CPUError
from .isa import (
    Instruction,
    decode,
)

WORD_MASK = 0xFFFFFFFF


@dataclass
class ExecutionStats:
    """What happened during a run."""

    cycles: int = 0
    instructions: int = 0
    opcode_counts: Dict[str, int] = field(default_factory=dict)
    #: (cycle, operand, result) per l.sbox execution
    sbox_events: List[Tuple[int, int, int]] = field(default_factory=list)

    @property
    def sbox_cycles(self) -> int:
        return len(self.sbox_events)

    @property
    def ise_duty(self) -> float:
        """Fraction of cycles in which the S-box ISE was active (§6)."""
        if self.cycles == 0:
            return 0.0
        return self.sbox_cycles / self.cycles

    def __repr__(self) -> str:
        return (f"ExecutionStats({self.instructions} instr, "
                f"{self.cycles} cycles, ISE duty "
                f"{self.ise_duty * 100:.4g}%)")


class CPU:
    """The OpenRISC-flavoured core with the S-box ISE port."""

    def __init__(self, memory_size: int = 1 << 20):
        if memory_size % 4:
            raise CPUError("memory size must be word aligned")
        self.memory = bytearray(memory_size)
        self.regs: List[int] = [0] * 32
        self.pc = 0
        self.flag = False
        self.halted = False
        self.stats = ExecutionStats()
        #: optional hook called as hook(cpu, instruction) before execution
        self.trace_hook: Optional[Callable[["CPU", Instruction], None]] = None
        self._decode_cache: Dict[int, Instruction] = {}

    # -- memory -------------------------------------------------------------

    def load_image(self, image: Dict[int, int]) -> None:
        """Load a sparse byte image (from :func:`repro.cpu.assemble`)."""
        for addr, value in image.items():
            if not 0 <= addr < len(self.memory):
                raise CPUError(f"image byte at {addr:#x} outside memory")
            self.memory[addr] = value & 0xFF

    def read_word(self, addr: int) -> int:
        if addr % 4 or not 0 <= addr <= len(self.memory) - 4:
            raise CPUError(f"bad word read at {addr:#x}")
        b = self.memory
        return (b[addr] << 24) | (b[addr + 1] << 16) | (b[addr + 2] << 8) | \
            b[addr + 3]

    def write_word(self, addr: int, value: int) -> None:
        if addr % 4 or not 0 <= addr <= len(self.memory) - 4:
            raise CPUError(f"bad word write at {addr:#x}")
        value &= WORD_MASK
        self.memory[addr] = value >> 24
        self.memory[addr + 1] = (value >> 16) & 0xFF
        self.memory[addr + 2] = (value >> 8) & 0xFF
        self.memory[addr + 3] = value & 0xFF

    def read_byte(self, addr: int) -> int:
        if not 0 <= addr < len(self.memory):
            raise CPUError(f"bad byte read at {addr:#x}")
        return self.memory[addr]

    def write_byte(self, addr: int, value: int) -> None:
        if not 0 <= addr < len(self.memory):
            raise CPUError(f"bad byte write at {addr:#x}")
        self.memory[addr] = value & 0xFF

    # -- registers -----------------------------------------------------------

    def set_reg(self, index: int, value: int) -> None:
        if index != 0:
            self.regs[index] = value & WORD_MASK

    # -- execution ------------------------------------------------------------

    def step(self) -> Instruction:
        """Execute one instruction; returns the decoded instruction."""
        if self.halted:
            raise CPUError("CPU is halted")
        word = self.read_word(self.pc)
        inst = self._decode_cache.get(word)
        if inst is None:
            inst = decode(word)
            self._decode_cache[word] = inst
        if self.trace_hook is not None:
            self.trace_hook(self, inst)
        next_pc = self.pc + 4
        mn = inst.mnemonic
        regs = self.regs

        if mn == "l.nop":
            # l.nop with a nonzero immediate is the simulator's halt hook
            # (mirrors the OR1K l.nop NOP_EXIT convention).
            pass
        elif mn == "l.add":
            self.set_reg(inst.rd, regs[inst.ra] + regs[inst.rb])
        elif mn == "l.sub":
            self.set_reg(inst.rd, regs[inst.ra] - regs[inst.rb])
        elif mn == "l.and":
            self.set_reg(inst.rd, regs[inst.ra] & regs[inst.rb])
        elif mn == "l.or":
            self.set_reg(inst.rd, regs[inst.ra] | regs[inst.rb])
        elif mn == "l.xor":
            self.set_reg(inst.rd, regs[inst.ra] ^ regs[inst.rb])
        elif mn == "l.mul":
            self.set_reg(inst.rd, regs[inst.ra] * regs[inst.rb])
        elif mn == "l.sll":
            self.set_reg(inst.rd, regs[inst.ra] << (regs[inst.rb] & 31))
        elif mn == "l.srl":
            self.set_reg(inst.rd, regs[inst.ra] >> (regs[inst.rb] & 31))
        elif mn == "l.sra":
            value = regs[inst.ra]
            if value & 0x80000000:
                value -= 1 << 32
            self.set_reg(inst.rd, value >> (regs[inst.rb] & 31))
        elif mn == "l.addi":
            self.set_reg(inst.rd, regs[inst.ra] + inst.imm)
        elif mn == "l.muli":
            self.set_reg(inst.rd, regs[inst.ra] * inst.imm)
        elif mn == "l.andi":
            self.set_reg(inst.rd, regs[inst.ra] & (inst.imm & 0xFFFF))
        elif mn == "l.ori":
            self.set_reg(inst.rd, regs[inst.ra] | (inst.imm & 0xFFFF))
        elif mn == "l.xori":
            self.set_reg(inst.rd, regs[inst.ra] ^ (inst.imm & 0xFFFF))
        elif mn == "l.slli":
            self.set_reg(inst.rd, regs[inst.ra] << inst.imm)
        elif mn == "l.srli":
            self.set_reg(inst.rd, regs[inst.ra] >> inst.imm)
        elif mn == "l.srai":
            value = regs[inst.ra]
            if value & 0x80000000:
                value -= 1 << 32
            self.set_reg(inst.rd, value >> inst.imm)
        elif mn == "l.movhi":
            self.set_reg(inst.rd, (inst.imm & 0xFFFF) << 16)
        elif mn == "l.lwz":
            self.set_reg(inst.rd, self.read_word(regs[inst.ra] + inst.imm))
        elif mn == "l.lbz":
            self.set_reg(inst.rd, self.read_byte(regs[inst.ra] + inst.imm))
        elif mn == "l.sw":
            self.write_word(regs[inst.ra] + inst.imm, regs[inst.rb])
        elif mn == "l.sb":
            self.write_byte(regs[inst.ra] + inst.imm, regs[inst.rb])
        elif mn == "l.j":
            next_pc = self.pc + 4 * inst.imm
        elif mn == "l.jal":
            self.set_reg(9, self.pc + 4)  # link register, OR1K convention
            next_pc = self.pc + 4 * inst.imm
        elif mn == "l.jr" or mn == "l.jalr":
            if mn == "l.jalr":
                self.set_reg(9, self.pc + 4)
            next_pc = regs[inst.rb]
        elif mn == "l.bf":
            if self.flag:
                next_pc = self.pc + 4 * inst.imm
        elif mn == "l.bnf":
            if not self.flag:
                next_pc = self.pc + 4 * inst.imm
        elif mn == "l.sfeq":
            self.flag = regs[inst.ra] == regs[inst.rb]
        elif mn == "l.sfne":
            self.flag = regs[inst.ra] != regs[inst.rb]
        elif mn == "l.sfgtu":
            self.flag = regs[inst.ra] > regs[inst.rb]
        elif mn == "l.sfgeu":
            self.flag = regs[inst.ra] >= regs[inst.rb]
        elif mn == "l.sfltu":
            self.flag = regs[inst.ra] < regs[inst.rb]
        elif mn == "l.sfleu":
            self.flag = regs[inst.ra] <= regs[inst.rb]
        elif mn == "l.sbox":
            operand = regs[inst.ra]
            result = 0
            for shift in (24, 16, 8, 0):
                result |= SBOX[(operand >> shift) & 0xFF] << shift
            self.set_reg(inst.rd, result)
            self.stats.sbox_events.append(
                (self.stats.cycles, operand, result))
        else:  # pragma: no cover - decode is exhaustive
            raise CPUError(f"unimplemented mnemonic {mn!r}")

        self.stats.instructions += 1
        self.stats.cycles += 1
        self.stats.opcode_counts[mn] = self.stats.opcode_counts.get(mn, 0) + 1
        if mn == "l.nop" and inst.imm:
            self.halted = True
        self.pc = next_pc & WORD_MASK
        return inst

    def run(self, max_instructions: int = 10_000_000,
            until_halt: bool = True) -> ExecutionStats:
        """Run until the halt NOP (``l.nop 1``) or the instruction budget."""
        for _ in range(max_instructions):
            if self.halted:
                return self.stats
            self.step()
        if until_halt and not self.halted:
            raise CPUError(
                f"program did not halt within {max_instructions} instructions")
        return self.stats
