"""AES-128 firmware for the OpenRISC-flavoured core.

Two variants of §6's benchmark software:

* ``use_ise=False`` — pure software AES: SubBytes through a 256-byte
  S-box table in memory, the reference a designer would run on the
  unmodified core;
* ``use_ise=True`` — the protected build: SubBytes executes on the
  custom functional unit via four ``l.sbox`` word instructions per round
  (4 bytes per instruction x 4 words = the 16-byte state), everything
  else identical.

The round keys are expanded host-side and loaded as data — key schedule
runs once per key while the paper's benchmark encrypts 5000 blocks, so
moving it off the measured loop matches the experimental setup.  Rounds
are generated fully unrolled (straight-line code); the outer block loop
uses real compare-and-branch instructions.

The firmware's cycle count and the cycles at which ``l.sbox`` executes
are the inputs to the ISE duty factor and the Fig. 5 gating timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..aes import SBOX, expand_key
from ..aes.sbox import xtime
from ..errors import CPUError
from .assembler import assemble
from .core import CPU, ExecutionStats

# Memory map (byte addresses).
CODE_BASE = 0x0000
STATE = 0x8000
ROUND_KEYS = 0x8010
SBOX_TABLE = 0x8100
XTIME_TABLE = 0x8200
SCRATCH = 0x8300
RCON_TABLE = 0x8400
N_BLOCKS_WORD = 0x8FF0
PLAINTEXT = 0x9000
CIPHERTEXT = 0xC000

#: FIPS-197 round constants (first byte of each Rcon word).
RCON_BYTES = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)

_R = {
    "state": 1, "rk": 2, "sbox": 3, "xt": 4, "scratch": 5,
    "pt": 16, "ct": 17, "blocks": 18,
}
_T = [6, 7, 8, 9, 10, 11, 12, 13, 14, 15]  # temporaries


@dataclass
class AESFirmware:
    """Generated firmware plus its memory-map symbols."""

    source: str
    use_ise: bool
    n_blocks: int
    expand_key_on_core: bool = False
    symbols: Dict[str, int] = field(default_factory=dict)

    def assemble_image(self) -> Dict[int, int]:
        return assemble(self.source)

    def run(self, key: bytes, plaintexts: Sequence[bytes],
            cpu: Optional[CPU] = None) -> Tuple[List[bytes], ExecutionStats]:
        """Assemble, load, execute; returns (ciphertexts, stats)."""
        if len(plaintexts) != self.n_blocks:
            raise CPUError(
                f"firmware built for {self.n_blocks} blocks, "
                f"got {len(plaintexts)} plaintexts")
        cpu = cpu or CPU()
        cpu.load_image(self.assemble_image())
        # Round keys: either expanded host-side or just the cipher key
        # (the firmware's own key schedule fills the rest).
        if self.expand_key_on_core:
            flat = list(key)
        else:
            flat = [b for rk in expand_key(key) for b in rk]
        for i, byte in enumerate(flat):
            cpu.write_byte(ROUND_KEYS + i, byte)
        # Plaintexts.
        for b, block in enumerate(plaintexts):
            if len(block) != 16:
                raise CPUError("plaintext blocks must be 16 bytes")
            for i, byte in enumerate(block):
                cpu.write_byte(PLAINTEXT + 16 * b + i, byte)
        cpu.write_word(N_BLOCKS_WORD, self.n_blocks)
        cpu.pc = CODE_BASE
        stats = cpu.run(max_instructions=40_000_000)
        ciphertexts = [
            bytes(cpu.read_byte(CIPHERTEXT + 16 * b + i) for i in range(16))
            for b in range(self.n_blocks)
        ]
        return ciphertexts, stats


def _emit_load_address(lines: List[str], reg: int, value: int) -> None:
    lines.append(f"    l.movhi r{reg}, {value >> 16}")
    lines.append(f"    l.ori r{reg}, r{reg}, {value & 0xFFFF}")


def _emit_add_round_key(lines: List[str], round_index: int) -> None:
    s, rk = _R["state"], _R["rk"]
    t0, t1 = _T[0], _T[1]
    for col in range(4):
        lines.append(f"    l.lwz r{t0}, {4 * col}(r{s})")
        lines.append(f"    l.lwz r{t1}, {16 * round_index + 4 * col}(r{rk})")
        lines.append(f"    l.xor r{t0}, r{t0}, r{t1}")
        lines.append(f"    l.sw {4 * col}(r{s}), r{t0}")


def _emit_sub_shift_sw(lines: List[str]) -> None:
    """SubBytes+ShiftRows fused, via the in-memory S-box table."""
    s, tbl, scr = _R["state"], _R["sbox"], _R["scratch"]
    t0, t1 = _T[0], _T[1]
    for row in range(4):
        for col in range(4):
            src = row + 4 * ((col + row) % 4)
            dst = row + 4 * col
            lines.append(f"    l.lbz r{t0}, {src}(r{s})")
            lines.append(f"    l.add r{t1}, r{tbl}, r{t0}")
            lines.append(f"    l.lbz r{t0}, 0(r{t1})")
            lines.append(f"    l.sb {dst}(r{scr}), r{t0}")
    _emit_copy_scratch_to_state(lines)


def _emit_sub_shift_ise(lines: List[str]) -> None:
    """SubBytes on the custom functional unit, then ShiftRows."""
    s, scr = _R["state"], _R["scratch"]
    t0 = _T[0]
    for col in range(4):
        lines.append(f"    l.lwz r{t0}, {4 * col}(r{s})")
        lines.append(f"    l.sbox r{t0}, r{t0}")
        lines.append(f"    l.sw {4 * col}(r{s}), r{t0}")
    for row in range(4):
        for col in range(4):
            src = row + 4 * ((col + row) % 4)
            dst = row + 4 * col
            lines.append(f"    l.lbz r{t0}, {src}(r{s})")
            lines.append(f"    l.sb {dst}(r{scr}), r{t0}")
    _emit_copy_scratch_to_state(lines)


def _emit_copy_scratch_to_state(lines: List[str]) -> None:
    s, scr = _R["state"], _R["scratch"]
    t0 = _T[0]
    for col in range(4):
        lines.append(f"    l.lwz r{t0}, {4 * col}(r{scr})")
        lines.append(f"    l.sw {4 * col}(r{s}), r{t0}")


def _emit_mix_columns(lines: List[str]) -> None:
    """out_i = a_i ^ t ^ xtime(a_i ^ a_(i+1)), t = a0^a1^a2^a3."""
    s, xt = _R["state"], _R["xt"]
    a = _T[0:4]          # a0..a3
    t_all = _T[4]        # running xor of the column
    u = _T[5]
    addr = _T[6]
    for col in range(4):
        base = 4 * col
        for i in range(4):
            lines.append(f"    l.lbz r{a[i]}, {base + i}(r{s})")
        lines.append(f"    l.xor r{t_all}, r{a[0]}, r{a[1]}")
        lines.append(f"    l.xor r{t_all}, r{t_all}, r{a[2]}")
        lines.append(f"    l.xor r{t_all}, r{t_all}, r{a[3]}")
        for i in range(4):
            nxt = a[(i + 1) % 4]
            lines.append(f"    l.xor r{u}, r{a[i]}, r{nxt}")
            lines.append(f"    l.add r{addr}, r{xt}, r{u}")
            lines.append(f"    l.lbz r{u}, 0(r{addr})")
            lines.append(f"    l.xor r{u}, r{u}, r{t_all}")
            lines.append(f"    l.xor r{u}, r{u}, r{a[i]}")
            lines.append(f"    l.sb {base + i}(r{s}), r{u}")


def _emit_key_schedule(lines: List[str], use_ise: bool) -> None:
    """FIPS-197 key expansion in a real loop (44 words, branches).

    Registers r20-r26 are used; the ISE build performs SubWord with a
    single ``l.sbox`` (the instruction applies the S-box to all four
    bytes — exactly SubWord), the software build does four table
    lookups.
    """
    rk, sbox = _R["rk"], _R["sbox"]
    i_reg, addr, temp, limit, scratch1, scratch2, rcon = \
        20, 21, 22, 23, 24, 25, 26
    lines.append(f"    l.addi r{i_reg}, r0, 4")
    lines.append(f"    l.addi r{limit}, r0, 44")
    _emit_load_address(lines, rcon, RCON_TABLE)
    lines.append("ks_loop:")
    # addr = rk + 4*i ; temp = word[i-1]
    lines.append(f"    l.slli r{addr}, r{i_reg}, 2")
    lines.append(f"    l.add r{addr}, r{addr}, r{rk}")
    lines.append(f"    l.lwz r{temp}, -4(r{addr})")
    # every 4th word: temp = SubWord(RotWord(temp)) XOR Rcon[i/4 - 1]
    lines.append(f"    l.andi r{scratch1}, r{i_reg}, 3")
    lines.append(f"    l.sfeq r{scratch1}, r0")
    lines.append("    l.bnf ks_no_rot")
    # RotWord: left-rotate by 8.
    lines.append(f"    l.slli r{scratch1}, r{temp}, 8")
    lines.append(f"    l.srli r{scratch2}, r{temp}, 24")
    lines.append(f"    l.or r{temp}, r{scratch1}, r{scratch2}")
    if use_ise:
        lines.append(f"    l.sbox r{temp}, r{temp}")
    else:
        # SubWord: four byte lookups through the in-memory table.
        lines.append(f"    l.sw 0(r{_R['scratch']}), r{temp}")
        for byte in range(4):
            lines.append(f"    l.lbz r{scratch1}, {byte}(r{_R['scratch']})")
            lines.append(f"    l.add r{scratch2}, r{sbox}, r{scratch1}")
            lines.append(f"    l.lbz r{scratch1}, 0(r{scratch2})")
            lines.append(f"    l.sb {byte}(r{_R['scratch']}), r{scratch1}")
        lines.append(f"    l.lwz r{temp}, 0(r{_R['scratch']})")
    # Rcon: table byte (i/4 - 1) into the top byte.
    lines.append(f"    l.srli r{scratch1}, r{i_reg}, 2")
    lines.append(f"    l.addi r{scratch1}, r{scratch1}, -1")
    lines.append(f"    l.add r{scratch1}, r{rcon}, r{scratch1}")
    lines.append(f"    l.lbz r{scratch1}, 0(r{scratch1})")
    lines.append(f"    l.slli r{scratch1}, r{scratch1}, 24")
    lines.append(f"    l.xor r{temp}, r{temp}, r{scratch1}")
    lines.append("ks_no_rot:")
    # word[i] = word[i-4] XOR temp
    lines.append(f"    l.lwz r{scratch1}, -16(r{addr})")
    lines.append(f"    l.xor r{temp}, r{temp}, r{scratch1}")
    lines.append(f"    l.sw 0(r{addr}), r{temp}")
    lines.append(f"    l.addi r{i_reg}, r{i_reg}, 1")
    lines.append(f"    l.sfltu r{i_reg}, r{limit}")
    lines.append("    l.bf ks_loop")


def aes_firmware(n_blocks: int = 1, use_ise: bool = False,
                 expand_key_on_core: bool = False) -> AESFirmware:
    """Generate the AES-128 encryption firmware.

    With ``expand_key_on_core`` the firmware receives only the 16-byte
    cipher key and runs the FIPS-197 key schedule itself before the
    encryption loop (one-time cost, exactly like a real deployment).
    """
    if n_blocks < 1:
        raise CPUError("need at least one block")
    lines: List[str] = [f".org {CODE_BASE:#x}", "start:"]
    for name, addr in (("state", STATE), ("rk", ROUND_KEYS),
                       ("sbox", SBOX_TABLE), ("xt", XTIME_TABLE),
                       ("scratch", SCRATCH), ("pt", PLAINTEXT),
                       ("ct", CIPHERTEXT)):
        _emit_load_address(lines, _R[name], addr)
    t0 = _T[0]
    _emit_load_address(lines, t0, N_BLOCKS_WORD)
    lines.append(f"    l.lwz r{_R['blocks']}, 0(r{t0})")
    if expand_key_on_core:
        _emit_key_schedule(lines, use_ise)

    lines.append("block_loop:")
    # Load plaintext into the state.
    for col in range(4):
        lines.append(f"    l.lwz r{t0}, {4 * col}(r{_R['pt']})")
        lines.append(f"    l.sw {4 * col}(r{_R['state']}), r{t0}")
    _emit_add_round_key(lines, 0)
    sub_shift = _emit_sub_shift_ise if use_ise else _emit_sub_shift_sw
    for rnd in range(1, 10):
        sub_shift(lines)
        _emit_mix_columns(lines)
        _emit_add_round_key(lines, rnd)
    sub_shift(lines)
    _emit_add_round_key(lines, 10)
    # Store ciphertext, advance pointers, loop.
    for col in range(4):
        lines.append(f"    l.lwz r{t0}, {4 * col}(r{_R['state']})")
        lines.append(f"    l.sw {4 * col}(r{_R['ct']}), r{t0}")
    lines.append(f"    l.addi r{_R['pt']}, r{_R['pt']}, 16")
    lines.append(f"    l.addi r{_R['ct']}, r{_R['ct']}, 16")
    lines.append(f"    l.addi r{_R['blocks']}, r{_R['blocks']}, -1")
    lines.append(f"    l.sfeq r{_R['blocks']}, r0")
    lines.append("    l.bnf block_loop")
    lines.append("    l.nop 1   # halt")

    # Tables (only the software build dereferences the S-box table, but
    # both carry it — the unprotected core's memory image is identical).
    lines.append(f".org {SBOX_TABLE:#x}")
    lines.append(".byte " + ", ".join(str(v) for v in SBOX))
    lines.append(f".org {XTIME_TABLE:#x}")
    lines.append(".byte " + ", ".join(str(xtime(v)) for v in range(256)))
    lines.append(f".org {RCON_TABLE:#x}")
    lines.append(".byte " + ", ".join(str(v) for v in RCON_BYTES))

    symbols = {
        "STATE": STATE, "ROUND_KEYS": ROUND_KEYS, "SBOX_TABLE": SBOX_TABLE,
        "XTIME_TABLE": XTIME_TABLE, "SCRATCH": SCRATCH,
        "RCON_TABLE": RCON_TABLE, "PLAINTEXT": PLAINTEXT,
        "CIPHERTEXT": CIPHERTEXT, "N_BLOCKS_WORD": N_BLOCKS_WORD,
    }
    return AESFirmware(source="\n".join(lines) + "\n", use_ise=use_ise,
                       n_blocks=n_blocks,
                       expand_key_on_core=expand_key_on_core,
                       symbols=symbols)
