"""A two-pass assembler for the :mod:`repro.cpu.isa` instruction set.

Syntax (one statement per line, ``#`` or ``;`` comments):

.. code-block:: text

    .org 0x100            # set location counter (bytes)
    .word 0xdeadbeef, 12  # literal data words
    .byte 1, 2, 3         # literal bytes
    .space 16             # zero fill
    start:                # label
        l.movhi r1, hi(state)
        l.ori   r1, r1, lo(state)
        l.lwz   r2, 0(r1)
        l.sbox  r3, r2
        l.bf    done
        l.j     start
    done:
        l.nop

``hi(sym)``/``lo(sym)`` split a label address into halves for the movhi/
ori idiom; branch/jump targets take labels directly (PC-relative word
offsets are computed by the assembler).
"""

from __future__ import annotations

import re
from typing import Dict, List

from ..errors import AssemblerError
from .isa import OPCODES, Instruction, encode

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_MEM_RE = re.compile(r"^(?P<off>[^()]*)\((?P<reg>r\d+)\)$")


def _strip(line: str) -> str:
    for marker in ("#", ";"):
        idx = line.find(marker)
        if idx >= 0:
            line = line[:idx]
    return line.strip()


def _parse_reg(token: str, line_no: int) -> int:
    token = token.strip()
    if not token.startswith("r"):
        raise AssemblerError(f"line {line_no}: expected register, got {token!r}")
    try:
        reg = int(token[1:])
    except ValueError:
        raise AssemblerError(f"line {line_no}: bad register {token!r}") from None
    if not 0 <= reg <= 31:
        raise AssemblerError(f"line {line_no}: register out of range {token!r}")
    return reg


class _Statement:
    """One pending instruction or datum from pass 1."""

    def __init__(self, kind: str, addr: int, line_no: int, payload):
        self.kind = kind          # "inst" | "word" | "byte"
        self.addr = addr
        self.line_no = line_no
        self.payload = payload


def assemble(source: str, base: int = 0) -> Dict[int, int]:
    """Assemble to a ``{byte address: byte value}`` image.

    Returns a sparse byte image (big-endian words) so programs can place
    code and data anywhere.
    """
    labels: Dict[str, int] = {}
    statements: List[_Statement] = []
    location = base

    # ---- pass 1: layout + label collection --------------------------------
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = _strip(raw)
        if not line:
            continue
        while True:
            match = re.match(r"^([A-Za-z_][A-Za-z0-9_]*):\s*(.*)$", line)
            if not match:
                break
            label, line = match.group(1), match.group(2).strip()
            if label in labels:
                raise AssemblerError(f"line {line_no}: duplicate label {label!r}")
            labels[label] = location
        if not line:
            continue
        parts = line.split(None, 1)
        head = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        if head == ".org":
            location = _eval_int(rest, labels, line_no, allow_labels=False)
            if location % 4 and "l." in rest:
                raise AssemblerError(f"line {line_no}: misaligned .org")
        elif head == ".space":
            count = _eval_int(rest, labels, line_no, allow_labels=False)
            statements.append(_Statement("byte", location, line_no,
                                         ["0"] * count))
            location += count
        elif head == ".word":
            values = [v.strip() for v in rest.split(",") if v.strip()]
            if location % 4:
                raise AssemblerError(f"line {line_no}: misaligned .word")
            statements.append(_Statement("word", location, line_no, values))
            location += 4 * len(values)
        elif head == ".byte":
            values = [v.strip() for v in rest.split(",") if v.strip()]
            statements.append(_Statement("byte", location, line_no, values))
            location += len(values)
        elif head.startswith("l."):
            if head not in OPCODES:
                raise AssemblerError(f"line {line_no}: unknown mnemonic {head!r}")
            if location % 4:
                raise AssemblerError(f"line {line_no}: misaligned instruction")
            statements.append(_Statement("inst", location, line_no,
                                         (head, rest)))
            location += 4
        else:
            raise AssemblerError(f"line {line_no}: cannot parse {line!r}")

    # ---- pass 2: encoding --------------------------------------------------
    image: Dict[int, int] = {}

    def emit_word(addr: int, value: int) -> None:
        value &= 0xFFFFFFFF
        for i in range(4):
            image[addr + i] = (value >> (24 - 8 * i)) & 0xFF

    for stmt in statements:
        if stmt.kind == "word":
            for i, text in enumerate(stmt.payload):
                emit_word(stmt.addr + 4 * i,
                          _eval_int(text, labels, stmt.line_no))
        elif stmt.kind == "byte":
            for i, text in enumerate(stmt.payload):
                value = _eval_int(text, labels, stmt.line_no)
                if not -128 <= value <= 255:
                    raise AssemblerError(
                        f"line {stmt.line_no}: byte out of range {value}")
                image[stmt.addr + i] = value & 0xFF
        else:
            mnemonic, operands = stmt.payload
            inst = _parse_instruction(mnemonic, operands, stmt.addr, labels,
                                      stmt.line_no)
            emit_word(stmt.addr, encode(inst))
    return image


def _eval_int(text: str, labels: Dict[str, int], line_no: int,
              allow_labels: bool = True) -> int:
    text = text.strip()
    if not text:
        raise AssemblerError(f"line {line_no}: missing value")
    for fn, transform in (("hi(", lambda v: (v >> 16) & 0xFFFF),
                          ("lo(", lambda v: v & 0xFFFF)):
        if text.lower().startswith(fn) and text.endswith(")"):
            inner = text[len(fn):-1]
            return transform(_eval_int(inner, labels, line_no))
    if allow_labels and text in labels:
        return labels[text]
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError(
            f"line {line_no}: undefined symbol or bad number {text!r}"
        ) from None


def _parse_instruction(mnemonic: str, operands: str, addr: int,
                       labels: Dict[str, int], line_no: int) -> Instruction:
    _, _, fmt = OPCODES[mnemonic]
    ops = [o.strip() for o in operands.split(",")] if operands.strip() else []

    def need(n: int) -> None:
        if len(ops) != n:
            raise AssemblerError(
                f"line {line_no}: {mnemonic} expects {n} operands, "
                f"got {len(ops)}")

    if fmt == "N":
        if len(ops) > 1:
            raise AssemblerError(
                f"line {line_no}: {mnemonic} takes at most one operand")
        imm = _eval_int(ops[0], labels, line_no) if ops else 0
        return Instruction(mnemonic, imm=imm)
    if fmt == "J":
        need(1)
        target = _eval_int(ops[0], labels, line_no)
        offset = (target - addr) // 4
        return Instruction(mnemonic, imm=offset)
    if fmt == "IH":
        need(2)
        return Instruction(mnemonic, rd=_parse_reg(ops[0], line_no),
                           imm=_eval_int(ops[1], labels, line_no) & 0xFFFF)
    if fmt in ("I", "IU", "SHI"):
        need(3)
        return Instruction(mnemonic, rd=_parse_reg(ops[0], line_no),
                           ra=_parse_reg(ops[1], line_no),
                           imm=_eval_int(ops[2], labels, line_no))
    if fmt == "LD":
        need(2)
        match = _MEM_RE.match(ops[1])
        if not match:
            raise AssemblerError(
                f"line {line_no}: expected off(reg), got {ops[1]!r}")
        return Instruction(mnemonic, rd=_parse_reg(ops[0], line_no),
                           ra=_parse_reg(match.group("reg"), line_no),
                           imm=_eval_int(match.group("off") or "0", labels,
                                         line_no))
    if fmt == "ST":
        need(2)
        match = _MEM_RE.match(ops[0])
        if not match:
            raise AssemblerError(
                f"line {line_no}: expected off(reg), got {ops[0]!r}")
        return Instruction(mnemonic,
                           ra=_parse_reg(match.group("reg"), line_no),
                           rb=_parse_reg(ops[1], line_no),
                           imm=_eval_int(match.group("off") or "0", labels,
                                         line_no))
    if fmt == "R":
        need(3)
        return Instruction(mnemonic, rd=_parse_reg(ops[0], line_no),
                           ra=_parse_reg(ops[1], line_no),
                           rb=_parse_reg(ops[2], line_no))
    if fmt == "SF":
        need(2)
        return Instruction(mnemonic, ra=_parse_reg(ops[0], line_no),
                           rb=_parse_reg(ops[1], line_no))
    if fmt == "RB":
        need(1)
        return Instruction(mnemonic, rb=_parse_reg(ops[0], line_no))
    if fmt == "RA":
        need(2)
        return Instruction(mnemonic, rd=_parse_reg(ops[0], line_no),
                           ra=_parse_reg(ops[1], line_no))
    raise AssemblerError(f"line {line_no}: unhandled format {fmt!r}")
