"""Instruction set: an OpenRISC-flavoured 32-bit RISC subset.

Encodings use a 6-bit major opcode in bits [31:26], in the spirit of the
ORBIS32 encoding (exact bit compatibility with OR1K is not a goal — the
paper's measurements depend on instruction *behaviour* and cycle counts,
not on binary encodings).

Formats
-------
* R-type: ``|op|rd|ra|rb|0...|subop(4)|`` — register ALU ops.
* I-type: ``|op|rd|ra|imm16|`` — immediates, loads; stores use
  ``|op|imm_hi5|ra|rb|imm_lo11|``.
* J-type: ``|op|off26|`` — jumps/branches, PC-relative in words.

The custom instruction ``l.sbox rd, ra`` applies the AES S-box to each
of the four bytes of ``ra`` — the four-S-box functional unit of §6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import CPUError

WORD_MASK = 0xFFFFFFFF

# Major opcodes.
OP_J = 0x00
OP_JAL = 0x01
OP_BNF = 0x03
OP_BF = 0x04
OP_NOP = 0x05
OP_MOVHI = 0x06
OP_JR = 0x11
OP_JALR = 0x12
OP_LWZ = 0x21
OP_LBZ = 0x23
OP_ADDI = 0x27
OP_ANDI = 0x29
OP_ORI = 0x2A
OP_XORI = 0x2B
OP_MULI = 0x2C
OP_SHIFTI = 0x2E
OP_SW = 0x35
OP_SB = 0x36
OP_ALU = 0x38
OP_SF = 0x39
OP_SBOX = 0x3C

# ALU sub-opcodes (OP_ALU).
ALU_ADD = 0x0
ALU_SUB = 0x2
ALU_AND = 0x3
ALU_OR = 0x4
ALU_XOR = 0x5
ALU_MUL = 0x6
ALU_SLL = 0x8
ALU_SRL = 0x9
ALU_SRA = 0xA

# Shift-immediate sub-opcodes (OP_SHIFTI, bits [7:6]).
SHI_SLL = 0x0
SHI_SRL = 0x1
SHI_SRA = 0x2

# Set-flag sub-opcodes (OP_SF, in the rd field).
SF_EQ = 0x0
SF_NE = 0x1
SF_GTU = 0x2
SF_GEU = 0x3
SF_LTU = 0x4
SF_LEU = 0x5

#: mnemonic -> (major opcode, sub-opcode or None, format)
OPCODES: Dict[str, Tuple[int, Optional[int], str]] = {
    "l.j": (OP_J, None, "J"),
    "l.jal": (OP_JAL, None, "J"),
    "l.bnf": (OP_BNF, None, "J"),
    "l.bf": (OP_BF, None, "J"),
    "l.nop": (OP_NOP, None, "N"),
    "l.movhi": (OP_MOVHI, None, "IH"),
    "l.jr": (OP_JR, None, "RB"),
    "l.jalr": (OP_JALR, None, "RB"),
    "l.lwz": (OP_LWZ, None, "LD"),
    "l.lbz": (OP_LBZ, None, "LD"),
    "l.addi": (OP_ADDI, None, "I"),
    "l.andi": (OP_ANDI, None, "IU"),
    "l.ori": (OP_ORI, None, "IU"),
    "l.xori": (OP_XORI, None, "IU"),
    "l.muli": (OP_MULI, None, "I"),
    "l.slli": (OP_SHIFTI, SHI_SLL, "SHI"),
    "l.srli": (OP_SHIFTI, SHI_SRL, "SHI"),
    "l.srai": (OP_SHIFTI, SHI_SRA, "SHI"),
    "l.sw": (OP_SW, None, "ST"),
    "l.sb": (OP_SB, None, "ST"),
    "l.add": (OP_ALU, ALU_ADD, "R"),
    "l.sub": (OP_ALU, ALU_SUB, "R"),
    "l.and": (OP_ALU, ALU_AND, "R"),
    "l.or": (OP_ALU, ALU_OR, "R"),
    "l.xor": (OP_ALU, ALU_XOR, "R"),
    "l.mul": (OP_ALU, ALU_MUL, "R"),
    "l.sll": (OP_ALU, ALU_SLL, "R"),
    "l.srl": (OP_ALU, ALU_SRL, "R"),
    "l.sra": (OP_ALU, ALU_SRA, "R"),
    "l.sfeq": (OP_SF, SF_EQ, "SF"),
    "l.sfne": (OP_SF, SF_NE, "SF"),
    "l.sfgtu": (OP_SF, SF_GTU, "SF"),
    "l.sfgeu": (OP_SF, SF_GEU, "SF"),
    "l.sfltu": (OP_SF, SF_LTU, "SF"),
    "l.sfleu": (OP_SF, SF_LEU, "SF"),
    "l.sbox": (OP_SBOX, None, "RA"),
}

_BY_OPCODE: Dict[int, str] = {}
for _mn, (_op, _sub, _fmt) in OPCODES.items():
    _BY_OPCODE.setdefault(_op, _mn)


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction."""

    mnemonic: str
    rd: int = 0
    ra: int = 0
    rb: int = 0
    imm: int = 0  # sign-extended where the format says so

    def __repr__(self) -> str:
        return f"Instruction({disassemble_fields(self)})"


def _check_reg(r: int, what: str) -> None:
    if not 0 <= r <= 31:
        raise CPUError(f"{what} register out of range: {r}")


def _signed16(value: int) -> int:
    value &= 0xFFFF
    return value - 0x10000 if value & 0x8000 else value


def _signed26(value: int) -> int:
    value &= 0x3FFFFFF
    return value - 0x4000000 if value & 0x2000000 else value


def encode(inst: Instruction) -> int:
    """Encode an :class:`Instruction` to its 32-bit word."""
    try:
        op, sub, fmt = OPCODES[inst.mnemonic]
    except KeyError:
        raise CPUError(f"unknown mnemonic {inst.mnemonic!r}") from None
    _check_reg(inst.rd, "rd")
    _check_reg(inst.ra, "ra")
    _check_reg(inst.rb, "rb")
    word = op << 26
    if fmt == "J":
        if not -(1 << 25) <= inst.imm < (1 << 25):
            raise CPUError(f"jump offset out of range: {inst.imm}")
        word |= inst.imm & 0x3FFFFFF
    elif fmt == "N":
        # l.nop carries an informational immediate (OR1K convention;
        # l.nop 1 is the simulator's halt request).
        if not 0 <= inst.imm < (1 << 16):
            raise CPUError(f"nop immediate out of range: {inst.imm}")
        word |= inst.imm & 0xFFFF
    elif fmt in ("I", "IU", "LD", "IH"):
        if fmt in ("I", "LD"):
            if not -(1 << 15) <= inst.imm < (1 << 15):
                raise CPUError(f"immediate out of range: {inst.imm}")
        else:
            if not 0 <= inst.imm < (1 << 16):
                raise CPUError(f"unsigned immediate out of range: {inst.imm}")
        word |= (inst.rd << 21) | (inst.ra << 16) | (inst.imm & 0xFFFF)
    elif fmt == "ST":
        if not -(1 << 15) <= inst.imm < (1 << 15):
            raise CPUError(f"store offset out of range: {inst.imm}")
        imm = inst.imm & 0xFFFF
        word |= ((imm >> 11) << 21) | (inst.ra << 16) | (inst.rb << 11) | (
            imm & 0x7FF)
    elif fmt == "R":
        word |= (inst.rd << 21) | (inst.ra << 16) | (inst.rb << 11) | sub
    elif fmt == "SHI":
        if not 0 <= inst.imm < 32:
            raise CPUError(f"shift amount out of range: {inst.imm}")
        word |= (inst.rd << 21) | (inst.ra << 16) | (sub << 6) | inst.imm
    elif fmt == "SF":
        word |= (sub << 21) | (inst.ra << 16) | (inst.rb << 11)
    elif fmt == "RB":
        word |= inst.rb << 11
    elif fmt == "RA":
        word |= (inst.rd << 21) | (inst.ra << 16)
    else:  # pragma: no cover - formats are exhaustive
        raise CPUError(f"unhandled format {fmt!r}")
    return word & WORD_MASK


def decode(word: int) -> Instruction:
    """Decode a 32-bit word to an :class:`Instruction`."""
    word &= WORD_MASK
    op = word >> 26
    rd = (word >> 21) & 0x1F
    ra = (word >> 16) & 0x1F
    rb = (word >> 11) & 0x1F
    imm16 = word & 0xFFFF

    if op in (OP_J, OP_JAL, OP_BF, OP_BNF):
        return Instruction(_BY_OPCODE[op], imm=_signed26(word))
    if op == OP_NOP:
        return Instruction("l.nop", imm=imm16)
    if op == OP_MOVHI:
        return Instruction("l.movhi", rd=rd, imm=imm16)
    if op in (OP_JR, OP_JALR):
        return Instruction(_BY_OPCODE[op], rb=rb)
    if op in (OP_LWZ, OP_LBZ):
        return Instruction(_BY_OPCODE[op], rd=rd, ra=ra, imm=_signed16(imm16))
    if op == OP_ADDI or op == OP_MULI:
        return Instruction(_BY_OPCODE[op], rd=rd, ra=ra, imm=_signed16(imm16))
    if op in (OP_ANDI, OP_ORI, OP_XORI):
        return Instruction(_BY_OPCODE[op], rd=rd, ra=ra, imm=imm16)
    if op == OP_SHIFTI:
        sub = (word >> 6) & 0x3
        for mn, (mop, msub, mfmt) in OPCODES.items():
            if mop == OP_SHIFTI and msub == sub:
                return Instruction(mn, rd=rd, ra=ra, imm=word & 0x1F)
        raise CPUError(f"bad shift sub-opcode {sub}")
    if op in (OP_SW, OP_SB):
        imm = ((rd << 11) | (word & 0x7FF))
        return Instruction(_BY_OPCODE[op], ra=ra, rb=rb, imm=_signed16(imm))
    if op == OP_ALU:
        sub = word & 0xF
        for mn, (mop, msub, mfmt) in OPCODES.items():
            if mop == OP_ALU and msub == sub:
                return Instruction(mn, rd=rd, ra=ra, rb=rb)
        raise CPUError(f"bad ALU sub-opcode {sub:#x}")
    if op == OP_SF:
        for mn, (mop, msub, mfmt) in OPCODES.items():
            if mop == OP_SF and msub == rd:
                return Instruction(mn, ra=ra, rb=rb)
        raise CPUError(f"bad set-flag sub-opcode {rd:#x}")
    if op == OP_SBOX:
        return Instruction("l.sbox", rd=rd, ra=ra)
    raise CPUError(f"unknown opcode {op:#04x} in word {word:#010x}")


def disassemble_fields(inst: Instruction) -> str:
    op, sub, fmt = OPCODES[inst.mnemonic]
    if fmt == "J":
        return f"{inst.mnemonic} {inst.imm}"
    if fmt == "N":
        return f"{inst.mnemonic} {inst.imm}" if inst.imm else inst.mnemonic
    if fmt == "IH":
        return f"{inst.mnemonic} r{inst.rd}, {inst.imm:#x}"
    if fmt in ("I", "IU"):
        return f"{inst.mnemonic} r{inst.rd}, r{inst.ra}, {inst.imm}"
    if fmt == "LD":
        return f"{inst.mnemonic} r{inst.rd}, {inst.imm}(r{inst.ra})"
    if fmt == "ST":
        return f"{inst.mnemonic} {inst.imm}(r{inst.ra}), r{inst.rb}"
    if fmt == "R":
        return f"{inst.mnemonic} r{inst.rd}, r{inst.ra}, r{inst.rb}"
    if fmt == "SHI":
        return f"{inst.mnemonic} r{inst.rd}, r{inst.ra}, {inst.imm}"
    if fmt == "SF":
        return f"{inst.mnemonic} r{inst.ra}, r{inst.rb}"
    if fmt == "RB":
        return f"{inst.mnemonic} r{inst.rb}"
    if fmt == "RA":
        return f"{inst.mnemonic} r{inst.rd}, r{inst.ra}"
    return inst.mnemonic


def disassemble(word: int) -> str:
    """Decode and pretty-print one instruction word."""
    return disassemble_fields(decode(word))
