"""An OpenRISC-flavoured 32-bit embedded processor with the S-box ISE.

§6 augments an OpenRISC 1000 core with a custom functional unit of four
parallel S-boxes and runs a software AES on it to measure how rarely the
protected logic is active (0.01 % in the paper's benchmark) — the number
that makes fine-grain power gating pay off.

This package provides the pieces of that experiment: a 32-bit RISC ISA
subset with the custom ``l.sbox`` instruction (:mod:`repro.cpu.isa`), a
two-pass assembler (:mod:`repro.cpu.assembler`), a cycle-counting
simulator with ISE activity tracking (:mod:`repro.cpu.core`), and AES-128
firmware generators in pure-software and ISE variants
(:mod:`repro.cpu.programs`).

Simplifications vs the real OR1200 (documented, none affect the duty
measurement): no branch delay slots, single-cycle memory, no caches or
exceptions.
"""

from .isa import Instruction, OPCODES, encode, decode, disassemble
from .assembler import assemble, AssemblerError
from .core import CPU, ExecutionStats
from .programs import aes_firmware, AESFirmware

__all__ = [
    "Instruction",
    "OPCODES",
    "encode",
    "decode",
    "disassemble",
    "assemble",
    "AssemblerError",
    "CPU",
    "ExecutionStats",
    "aes_firmware",
    "AESFirmware",
]
