"""AES-128 (FIPS-197) and the reduced side-channel target.

The paper evaluates on AES in two ways: the full cipher runs in software
on the OpenRISC core (with SubBytes accelerated by the S-box ISE), and a
*reduced* AES — one key addition followed by one S-box lookup — is the
standard target circuit for the DPA/CPA evaluation (Fig. 6).

The S-box is constructed from first principles (GF(2⁸) inversion plus
the affine map) and checked against the FIPS-197 table.
"""

from .sbox import SBOX, INV_SBOX, sbox, inv_sbox, gf_mul, gf_inverse
from .aes import AES128, encrypt_block, decrypt_block, expand_key
from .reduced import ReducedAES

__all__ = [
    "SBOX",
    "INV_SBOX",
    "sbox",
    "inv_sbox",
    "gf_mul",
    "gf_inverse",
    "AES128",
    "encrypt_block",
    "decrypt_block",
    "expand_key",
    "ReducedAES",
]
