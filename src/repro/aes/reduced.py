"""The reduced AES side-channel target.

§6: "we synthesized, placed and routed the commonly accepted reduced
version of the AES algorithm composed by a key addition and a S-box
look-up-table".  One byte of plaintext is XORed with one byte of secret
key and pushed through the S-box — the textbook first-round CPA target,
small enough to enumerate *all* 256×256 plaintext/key pairs as the paper
does.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..errors import ReproError
from .sbox import SBOX


class ReducedAES:
    """AddRoundKey + SubBytes on a single byte."""

    def __init__(self, key: int):
        if not 0 <= key <= 0xFF:
            raise ReproError(f"key byte out of range: {key}")
        self.key = key

    def intermediate(self, plaintext: int) -> int:
        """The S-box input (after key addition)."""
        if not 0 <= plaintext <= 0xFF:
            raise ReproError(f"plaintext byte out of range: {plaintext}")
        return plaintext ^ self.key

    def output(self, plaintext: int) -> int:
        """The S-box output — the attacked intermediate value."""
        return SBOX[self.intermediate(plaintext)]

    def outputs(self, plaintexts: Iterable[int]) -> List[int]:
        return [self.output(p) for p in plaintexts]

    @staticmethod
    def all_pairs() -> List[Tuple[int, int]]:
        """Every (plaintext, key) pair, as the paper enumerates."""
        return [(p, k) for k in range(256) for p in range(256)]

    @staticmethod
    def hypothesis(plaintext: int, key_guess: int) -> int:
        """Predicted S-box output under a key guess (the attacker view)."""
        return SBOX[(plaintext ^ key_guess) & 0xFF]
