"""Bit-level views of AES's linear layers.

ShiftRows is a pure byte permutation and MixColumns is linear over
GF(2), so a hardware datapath implements them as wiring and XOR trees
respectively.  This module derives both from the reference byte-level
operations, keeping the hardware generator
(:mod:`repro.synth.aes_core`) free of hand-written constants.

Bit conventions: state bit index ``8*i + b`` refers to byte ``i`` of the
16-byte block (column-major FIPS order) and bit ``b`` counted MSB-first
within the byte.
"""

from __future__ import annotations

from typing import List

from .aes import _mix_columns, _shift_rows

STATE_BITS = 128


def shift_rows_byte_map() -> List[int]:
    """``out[i] = in[map[i]]`` byte permutation of ShiftRows."""
    probe = list(range(16))
    shifted = _shift_rows(probe)
    # shifted[i] names the source byte index placed at position i.
    return list(shifted)


def shift_rows_bit_map() -> List[int]:
    """The same permutation at bit granularity (128 entries)."""
    byte_map = shift_rows_byte_map()
    bits = []
    for i in range(16):
        src = byte_map[i]
        for b in range(8):
            bits.append(8 * src + b)
    return bits


def mix_columns_column_matrix() -> List[List[int]]:
    """The 32x32 GF(2) matrix of MixColumns on one column.

    ``matrix[out_bit]`` lists the input bit indices XORed into that
    output bit (both indexed MSB-first across the 4-byte column).
    """
    matrix: List[List[int]] = [[] for _ in range(32)]
    for in_bit in range(32):
        column = [0, 0, 0, 0]
        column[in_bit // 8] = 1 << (7 - (in_bit % 8))
        state = column + [0] * 12  # one column, rest zero
        mixed = _mix_columns(state)[:4]
        for out_byte in range(4):
            for b in range(8):
                if (mixed[out_byte] >> (7 - b)) & 1:
                    matrix[8 * out_byte + b].append(in_bit)
    return matrix


def mix_columns_bit_map() -> List[List[int]]:
    """Full-state MixColumns: ``out_bit -> [input bits]`` (128 rows).

    Columns are independent; the per-column matrix is replicated with
    the appropriate offsets.
    """
    column = mix_columns_column_matrix()
    rows: List[List[int]] = []
    for col in range(4):
        offset = 32 * col
        for out_bit in range(32):
            rows.append([offset + i for i in column[out_bit]])
    return rows


def apply_bit_linear(rows: List[List[int]], bits: List[int]) -> List[int]:
    """Evaluate a bit-linear map on a bit vector (for cross-checks)."""
    return [sum(bits[i] for i in row) & 1 for row in rows]


def state_to_bits(block: bytes) -> List[int]:
    """16 bytes -> 128 bits, MSB-first per byte."""
    bits = []
    for byte in block:
        for b in range(8):
            bits.append((byte >> (7 - b)) & 1)
    return bits


def bits_to_state(bits: List[int]) -> bytes:
    """128 bits -> 16 bytes."""
    out = bytearray(16)
    for i in range(16):
        value = 0
        for b in range(8):
            value = (value << 1) | (bits[8 * i + b] & 1)
        out[i] = value
    return bytes(out)
