"""AES-128 block cipher (FIPS-197).

A straightforward, test-vector-verified implementation.  The state is a
16-byte ``bytes`` value in the standard column-major order (byte ``i``
sits at row ``i % 4``, column ``i // 4``).  Both directions and the full
key schedule are provided; the CPU firmware (:mod:`repro.cpu.programs`)
executes the same algorithm instruction by instruction, and the two are
cross-checked in the integration tests.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..errors import ReproError
from .sbox import SBOX, INV_SBOX, gf_mul

RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]

N_ROUNDS = 10
BLOCK_BYTES = 16
KEY_BYTES = 16


def _check_block(data: bytes, what: str) -> bytes:
    data = bytes(data)
    if len(data) != BLOCK_BYTES:
        raise ReproError(f"{what} must be {BLOCK_BYTES} bytes, got {len(data)}")
    return data


def expand_key(key: bytes) -> List[List[int]]:
    """FIPS-197 key expansion: 11 round keys of 16 bytes each."""
    key = _check_block(key, "key")
    words: List[List[int]] = [list(key[4 * i:4 * i + 4]) for i in range(4)]
    for i in range(4, 4 * (N_ROUNDS + 1)):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]                   # RotWord
            temp = [SBOX[b] for b in temp]               # SubWord
            temp[0] ^= RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], temp)])
    round_keys = []
    for r in range(N_ROUNDS + 1):
        rk: List[int] = []
        for w in words[4 * r:4 * r + 4]:
            rk.extend(w)
        round_keys.append(rk)
    return round_keys


def _sub_bytes(state: List[int]) -> List[int]:
    return [SBOX[b] for b in state]


def _inv_sub_bytes(state: List[int]) -> List[int]:
    return [INV_SBOX[b] for b in state]


def _shift_rows(state: List[int]) -> List[int]:
    out = list(state)
    for row in range(1, 4):
        values = [state[row + 4 * col] for col in range(4)]
        values = values[row:] + values[:row]
        for col in range(4):
            out[row + 4 * col] = values[col]
    return out


def _inv_shift_rows(state: List[int]) -> List[int]:
    out = list(state)
    for row in range(1, 4):
        values = [state[row + 4 * col] for col in range(4)]
        values = values[-row:] + values[:-row]
        for col in range(4):
            out[row + 4 * col] = values[col]
    return out


def _mix_columns(state: List[int]) -> List[int]:
    out = [0] * 16
    for col in range(4):
        a = state[4 * col:4 * col + 4]
        out[4 * col + 0] = gf_mul(a[0], 2) ^ gf_mul(a[1], 3) ^ a[2] ^ a[3]
        out[4 * col + 1] = a[0] ^ gf_mul(a[1], 2) ^ gf_mul(a[2], 3) ^ a[3]
        out[4 * col + 2] = a[0] ^ a[1] ^ gf_mul(a[2], 2) ^ gf_mul(a[3], 3)
        out[4 * col + 3] = gf_mul(a[0], 3) ^ a[1] ^ a[2] ^ gf_mul(a[3], 2)
    return out


def _inv_mix_columns(state: List[int]) -> List[int]:
    out = [0] * 16
    for col in range(4):
        a = state[4 * col:4 * col + 4]
        out[4 * col + 0] = (gf_mul(a[0], 14) ^ gf_mul(a[1], 11) ^
                            gf_mul(a[2], 13) ^ gf_mul(a[3], 9))
        out[4 * col + 1] = (gf_mul(a[0], 9) ^ gf_mul(a[1], 14) ^
                            gf_mul(a[2], 11) ^ gf_mul(a[3], 13))
        out[4 * col + 2] = (gf_mul(a[0], 13) ^ gf_mul(a[1], 9) ^
                            gf_mul(a[2], 14) ^ gf_mul(a[3], 11))
        out[4 * col + 3] = (gf_mul(a[0], 11) ^ gf_mul(a[1], 13) ^
                            gf_mul(a[2], 9) ^ gf_mul(a[3], 14))
    return out


def _add_round_key(state: Sequence[int], rk: Sequence[int]) -> List[int]:
    return [s ^ k for s, k in zip(state, rk)]


def encrypt_block(plaintext: bytes, key: bytes) -> bytes:
    """AES-128 encryption of one block."""
    state = list(_check_block(plaintext, "plaintext"))
    round_keys = expand_key(key)
    state = _add_round_key(state, round_keys[0])
    for r in range(1, N_ROUNDS):
        state = _sub_bytes(state)
        state = _shift_rows(state)
        state = _mix_columns(state)
        state = _add_round_key(state, round_keys[r])
    state = _sub_bytes(state)
    state = _shift_rows(state)
    state = _add_round_key(state, round_keys[N_ROUNDS])
    return bytes(state)


def decrypt_block(ciphertext: bytes, key: bytes) -> bytes:
    """AES-128 decryption of one block."""
    state = list(_check_block(ciphertext, "ciphertext"))
    round_keys = expand_key(key)
    state = _add_round_key(state, round_keys[N_ROUNDS])
    state = _inv_shift_rows(state)
    state = _inv_sub_bytes(state)
    for r in range(N_ROUNDS - 1, 0, -1):
        state = _add_round_key(state, round_keys[r])
        state = _inv_mix_columns(state)
        state = _inv_shift_rows(state)
        state = _inv_sub_bytes(state)
    state = _add_round_key(state, round_keys[0])
    return bytes(state)


class AES128:
    """Object wrapper with a precomputed key schedule."""

    def __init__(self, key: bytes):
        self.key = _check_block(key, "key")
        self.round_keys = expand_key(self.key)

    def encrypt(self, plaintext: bytes) -> bytes:
        return encrypt_block(plaintext, self.key)

    def decrypt(self, ciphertext: bytes) -> bytes:
        return decrypt_block(ciphertext, self.key)

    def encrypt_many(self, blocks: Iterable[bytes]) -> List[bytes]:
        return [self.encrypt(b) for b in blocks]
