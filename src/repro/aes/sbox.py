"""The AES S-box, built from its algebraic definition.

FIPS-197 defines SubBytes as multiplicative inversion in
GF(2⁸) = GF(2)[x]/(x⁸+x⁴+x³+x+1) followed by an affine transformation
over GF(2).  We construct the table that way (rather than pasting the
byte table) so the unit tests can cross-check construction against the
published vectors, and so the GF helpers are available to MixColumns.
"""

from __future__ import annotations

from typing import List

from ..errors import ReproError

#: The AES irreducible polynomial x^8 + x^4 + x^3 + x + 1.
AES_POLY = 0x11B


def gf_mul(a: int, b: int) -> int:
    """Carry-less multiply modulo the AES polynomial."""
    if not (0 <= a <= 0xFF and 0 <= b <= 0xFF):
        raise ReproError("gf_mul operands must be bytes")
    result = 0
    x, y = a, b
    while y:
        if y & 1:
            result ^= x
        y >>= 1
        x <<= 1
        if x & 0x100:
            x ^= AES_POLY
    return result


def gf_pow(a: int, exponent: int) -> int:
    """Exponentiation in GF(2⁸) by square-and-multiply."""
    result = 1
    base = a
    e = exponent
    while e:
        if e & 1:
            result = gf_mul(result, base)
        base = gf_mul(base, base)
        e >>= 1
    return result


def gf_inverse(a: int) -> int:
    """Multiplicative inverse in GF(2⁸); 0 maps to 0 (AES convention)."""
    if a == 0:
        return 0
    # a^(2^8 - 2) = a^254 is the inverse in GF(2^8).
    return gf_pow(a, 254)


def _affine(b: int) -> int:
    """The AES affine map: b XOR rot(b,4,5,6,7) XOR 0x63."""
    result = 0
    for i in range(8):
        bit = ((b >> i) ^ (b >> ((i + 4) % 8)) ^ (b >> ((i + 5) % 8)) ^
               (b >> ((i + 6) % 8)) ^ (b >> ((i + 7) % 8)) ^ (0x63 >> i)) & 1
        result |= bit << i
    return result


def _build_sbox() -> List[int]:
    return [_affine(gf_inverse(x)) for x in range(256)]


def _invert_table(table: List[int]) -> List[int]:
    inverse = [0] * 256
    for i, v in enumerate(table):
        inverse[v] = i
    return inverse


SBOX: List[int] = _build_sbox()
INV_SBOX: List[int] = _invert_table(SBOX)

# Cross-check a few FIPS-197 anchor values at import time: a wrong S-box
# would silently invalidate every security experiment downstream.
_ANCHORS = {0x00: 0x63, 0x01: 0x7C, 0x53: 0xED, 0xFF: 0x16, 0xC9: 0xDD}
for _in, _out in _ANCHORS.items():
    if SBOX[_in] != _out:
        raise ReproError(
            f"S-box construction broken: S[{_in:#04x}] = {SBOX[_in]:#04x}, "
            f"expected {_out:#04x}")


def sbox(value: int) -> int:
    """Forward S-box lookup."""
    return SBOX[value & 0xFF]


def inv_sbox(value: int) -> int:
    """Inverse S-box lookup."""
    return INV_SBOX[value & 0xFF]


def xtime(a: int) -> int:
    """Multiply by x (i.e. 2) in GF(2⁸) — the MixColumns primitive."""
    return gf_mul(a, 2)
