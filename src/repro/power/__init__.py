"""Block-level power and current-trace modelling.

The paper switches tools at the block level: cells are characterised in
SPICE, but the 3000-cell S-box ISE is simulated with a fast-SPICE engine
(Synopsys Nanosim) driven by logic activity in VCD form.  This package
is our fast engine.  Per-instance current contributions are calibrated
against the transistor-level models:

* **CMOS** — a charge packet per output transition
  (``energy_toggle / Vdd``) plus static leakage;
* **MCML** — a constant tail current per cell, a small symmetric
  switching disturbance, and the crucial *data-dependent residual*: with
  mismatched loads the two branches drop slightly different voltages, so
  the tail current depends weakly on which branch is active.  Each
  instance draws its residual once from the technology's Pelgrom model —
  this is the only data-dependent term, and it is orders of magnitude
  below the CMOS signal;
* **PG-MCML** — the MCML model gated by the sleep schedule with an
  exponential wake transient, plus the CMOS sleep-tree buffers.

:mod:`repro.power.noise` adds measurement noise and the paper's 1 µA
amplitude quantisation.
"""

from .models import BlockPowerModel, InstancePower
from .trace import (
    activity_current,
    differential_baseline,
    trace_matrix,
    wddl_baseline,
    wddl_current,
    TraceGrid,
)
from .gating import (
    GatingSchedule,
    gated_block_current,
    ungated_block_current,
    schedule_from_sbox_events,
)
from .noise import MeasurementChain
from .preprocess import add_jitter, align, center, compress, standardize, window

__all__ = [
    "BlockPowerModel",
    "InstancePower",
    "activity_current",
    "differential_baseline",
    "trace_matrix",
    "wddl_baseline",
    "wddl_current",
    "TraceGrid",
    "GatingSchedule",
    "gated_block_current",
    "ungated_block_current",
    "schedule_from_sbox_events",
    "MeasurementChain",
    "add_jitter",
    "align",
    "center",
    "compress",
    "standardize",
    "window",
]
