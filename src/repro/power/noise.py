"""The measurement chain: noise and amplitude quantisation.

§6 records SPICE currents "using very high resolution both for current
(1 µA) and time (1 ps)".  A 1 µA amplitude floor is a *lot* of dynamic
range for a 30 mA block — but it is six orders of magnitude above the
sub-nA per-sample information carried by MCML mismatch residuals, so the
instrument itself is part of why the differential styles resist attack.
The chain applies, in order: additive Gaussian noise (probe/supply),
then uniform quantisation to the amplitude resolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import TraceError
from ..units import uA


@dataclass
class MeasurementChain:
    """A current probe with noise and finite resolution.

    Parameters
    ----------
    noise_sigma:
        RMS additive noise per sample, amperes.  Even a lab-grade setup
        shows µA-level supply noise on a multi-mA rail.
    resolution:
        Amplitude quantisation step, amperes (paper: 1 µA).  ``0``
        disables quantisation (an ideal probe).
    seed:
        Noise generator seed (reproducible campaigns).
    """

    noise_sigma: float = uA(0.5)
    resolution: float = uA(1.0)
    seed: Optional[int] = 1234

    def __post_init__(self) -> None:
        if self.noise_sigma < 0.0 or self.resolution < 0.0:
            raise TraceError("noise and resolution must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    def measure(self, samples: np.ndarray) -> np.ndarray:
        """Push ideal current samples through the instrument."""
        measured = np.asarray(samples, dtype=float)
        if self.noise_sigma > 0.0:
            measured = measured + self._rng.normal(
                0.0, self.noise_sigma, size=measured.shape)
        if self.resolution > 0.0:
            measured = np.round(measured / self.resolution) * self.resolution
        return measured

    def rng_state(self) -> dict:
        """JSON-serialisable noise-generator state.

        Checkpointed campaigns snapshot this after every chunk so a
        resumed acquisition continues the exact same noise stream —
        byte-identical traces whether or not the run was interrupted.
        """
        return self._rng.bit_generator.state

    def set_rng_state(self, state: dict) -> None:
        """Restore a state captured by :meth:`rng_state`."""
        self._rng.bit_generator.state = state

    def ideal(self) -> "MeasurementChain":
        """The same chain with a perfect probe (for ablations)."""
        return MeasurementChain(noise_sigma=0.0, resolution=0.0,
                                seed=self.seed)
