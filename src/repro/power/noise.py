"""The measurement chain: noise and amplitude quantisation.

§6 records SPICE currents "using very high resolution both for current
(1 µA) and time (1 ps)".  A 1 µA amplitude floor is a *lot* of dynamic
range for a 30 mA block — but it is six orders of magnitude above the
sub-nA per-sample information carried by MCML mismatch residuals, so the
instrument itself is part of why the differential styles resist attack.
The chain applies, in order: additive Gaussian noise (probe/supply),
then uniform quantisation to the amplitude resolution.

Noise is **counter-based**: every trace's noise is drawn from its own
Philox generator keyed by ``(chain entropy, trace index)`` via
``np.random.SeedSequence(entropy, spawn_key=(index,))``.  Trace *i*
therefore sees the same noise whether the campaign runs serially,
split across worker processes, chunked for checkpointing, or resumed
after a kill — there is no shared mutable RNG state whose consumption
order could change the measured traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, Optional, Union

import numpy as np

from ..errors import TraceError
from ..units import uA


@dataclass
class MeasurementChain:
    """A current probe with noise and finite resolution.

    Parameters
    ----------
    noise_sigma:
        RMS additive noise per sample, amperes.  Even a lab-grade setup
        shows µA-level supply noise on a multi-mA rail.
    resolution:
        Amplitude quantisation step, amperes (paper: 1 µA).  ``0``
        disables quantisation (an ideal probe).
    seed:
        Campaign entropy for the per-trace noise generators.  ``None``
        draws fresh entropy once at construction — the chain is still
        internally consistent (trace *i* always gets the same noise for
        this chain object) but cannot be reproduced by a new chain.
    """

    noise_sigma: float = uA(0.5)
    resolution: float = uA(1.0)
    seed: Optional[int] = 1234

    #: Identifies the per-trace seeding scheme.  Checkpoint fingerprints
    #: embed it so a snapshot taken under one scheme is never silently
    #: resumed under another.
    SCHEME: ClassVar[str] = "philox-per-trace-v1"

    def __post_init__(self) -> None:
        if self.noise_sigma < 0.0 or self.resolution < 0.0:
            raise TraceError("noise and resolution must be non-negative")
        entropy = self.seed if self.seed is not None else \
            np.random.SeedSequence().entropy
        self._entropy = int(entropy)
        self._next_index = 0

    def trace_rng(self, trace_index: int) -> np.random.Generator:
        """The noise generator for one trace, by campaign-global index.

        Deriving the generator from ``(entropy, trace_index)`` rather
        than from consumed stream position makes the noise a pure
        function of the index: any worker, in any order, reproduces it.
        """
        if trace_index < 0:
            raise TraceError(f"trace index must be >= 0: {trace_index}")
        sequence = np.random.SeedSequence(
            entropy=self._entropy, spawn_key=(int(trace_index),))
        return np.random.Generator(np.random.Philox(sequence))

    def measure(self, samples: np.ndarray,
                trace_index: Optional[int] = None) -> np.ndarray:
        """Push ideal current samples through the instrument.

        ``trace_index`` selects the counter-based noise generator; when
        omitted the chain's internal counter supplies the next index, so
        a plain sequential loop of ``measure`` calls is byte-identical
        to indexed acquisition of the same traces.  Indexed calls do not
        advance the counter (parallel workers never perturb each other).
        """
        measured = np.asarray(samples, dtype=float)
        if trace_index is None:
            trace_index = self._next_index
            self._next_index += 1
        if self.noise_sigma > 0.0:
            rng = self.trace_rng(trace_index)
            measured = measured + rng.normal(
                0.0, self.noise_sigma, size=measured.shape)
        if self.resolution > 0.0:
            measured = np.round(measured / self.resolution) * self.resolution
        return measured

    def measure_block(self, samples: np.ndarray,
                      first_index: int = 0) -> np.ndarray:
        """Measure a ``(B, n)`` block of traces at consecutive indices.

        Row ``i`` is byte-identical to ``measure(samples[i],
        trace_index=first_index + i)``: the noise stays per-trace
        (each row draws from its own Philox generator, exactly the
        draws the serial call would make), and only the instrument
        arithmetic — noise addition and amplitude quantisation — runs
        vectorised over the block.  Like indexed :meth:`measure` calls,
        a block does not advance the chain's internal counter.
        """
        measured = np.asarray(samples, dtype=float)
        if measured.ndim != 2:
            raise TraceError(
                f"measure_block expects a (traces, samples) block, "
                f"got shape {measured.shape}")
        if first_index < 0:
            raise TraceError(f"trace index must be >= 0: {first_index}")
        if self.noise_sigma > 0.0 and measured.shape[0]:
            noise = np.stack([
                self.trace_rng(first_index + i).normal(
                    0.0, self.noise_sigma, size=measured.shape[1])
                for i in range(measured.shape[0])])
            measured = measured + noise
        if self.resolution > 0.0:
            measured = np.round(measured / self.resolution) * self.resolution
        return measured

    def fingerprint(self) -> Dict[str, Union[str, float]]:
        """JSON-serialisable identity of the noise process.

        Checkpointed campaigns embed this in the snapshot fingerprint:
        a checkpoint written with different entropy, a different noise
        configuration, or an older seeding scheme refuses to resume
        instead of silently splicing two different noise streams.  The
        per-trace derivation makes any *state* round-trip unnecessary —
        the index alone reconstructs the stream.
        """
        return {"scheme": self.SCHEME, "entropy": str(self._entropy),
                "noise_sigma": float(self.noise_sigma),
                "resolution": float(self.resolution)}

    def ideal(self) -> "MeasurementChain":
        """The same chain with a perfect probe (for ablations)."""
        return MeasurementChain(noise_sigma=0.0, resolution=0.0,
                                seed=self.seed)
